// Golden Lindley-kernel regression: the stepped-engine refactor routed
// every simulation path (Run, RunBOP, RunMix, the sweeps) through one
// shared lindleyStep kernel, and this test pins the kernel's sample paths
// to a manifest captured BEFORE that refactor. It regenerates the
// small-scale fig8/9/10 series in-process and compares every value at
// rtol 0 — any arithmetic drift in the kernel, the block pipeline, or the
// seed derivation is a hard failure, not a tolerance question.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// kernelTinyConfig reproduces the run that captured
// results/golden/kernel_tiny.jsonl:
//
//	repro -exp fig8,fig9,fig10 -reps 1 -frames 400 -seed 1996
//
// Results are bit-identical for every worker count, so Workers is pinned
// to 1 only for scheduling economy.
var kernelTinyConfig = experiments.SimConfig{Reps: 1, Frames: 400, Seed: 1996, Workers: 1}

func TestLindleyKernelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	man, err := telemetry.ReadManifest("results/golden/kernel_tiny.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]telemetry.ResultRecord{}
	for _, r := range man.Results {
		want[r.ID] = r
	}
	if len(want) != 5 {
		t.Fatalf("baseline has %d results, want 5 (fig8a,fig8b,fig9a,fig9b,fig10)", len(want))
	}

	var got []*experiments.Result
	fig8, err := experiments.Fig8(kernelTinyConfig)
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := experiments.Fig9(kernelTinyConfig)
	if err != nil {
		t.Fatal(err)
	}
	fig10, err := experiments.Fig10(kernelTinyConfig)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, fig8...)
	got = append(got, fig9...)
	got = append(got, fig10)

	if len(got) != len(want) {
		t.Fatalf("regenerated %d results, baseline has %d", len(got), len(want))
	}
	for _, r := range got {
		base, ok := want[r.ID]
		if !ok {
			t.Errorf("%s: not in baseline", r.ID)
			continue
		}
		if len(r.Series) != len(base.Series) {
			t.Errorf("%s: %d series, baseline has %d", r.ID, len(r.Series), len(base.Series))
			continue
		}
		for i, s := range r.Series {
			bs := base.Series[i]
			if s.Label != bs.Label {
				t.Errorf("%s series %d: label %q, baseline %q", r.ID, i, s.Label, bs.Label)
				continue
			}
			compareExact(t, r.ID, s.Label, "x", s.X, bs.X)
			compareExact(t, r.ID, s.Label, "y", s.Y, bs.Y)
			compareExact(t, r.ID, s.Label, "lo", s.Lo, bs.Lo)
			compareExact(t, r.ID, s.Label, "hi", s.Hi, bs.Hi)
		}
	}
}

// compareExact demands bit-equality (rtol 0): encoding/json round-trips
// float64 exactly, so the committed baseline carries the full-precision
// pre-refactor values.
func compareExact(t *testing.T, id, label, field string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s %s %s: %d values, baseline has %d", id, label, field, len(got), len(want))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s %s %s[%d]: %v != baseline %v (kernel drift)",
				id, label, field, i, got[i], want[i])
		}
	}
}
