// Package repro reproduces Ryu & Elwalid, "The Importance of Long-Range
// Dependence of VBR Video Traffic in ATM Traffic Engineering: Myths and
// Realities" (ACM SIGCOMM 1996).
//
// The library lives under internal/:
//
//   - internal/core — Critical Time Scale and the Bahadur-Rao / Large-N /
//     Weibull buffer overflow asymptotics (the paper's contribution).
//   - internal/dar, internal/fbndp, internal/fgn — the stochastic source
//     substrates (Jacobs-Lewis DAR(p), fractal-binomial-noise-driven
//     Poisson, Davies-Harte fractional Gaussian noise).
//   - internal/models — the paper's video models V^v, Z^a, S and L with
//     the full Table 1 parameter derivation.
//   - internal/mux — the finite/infinite-buffer ATM multiplexer simulator.
//   - internal/experiments — one driver per table and figure.
//   - internal/cac, internal/hurst, internal/stats, internal/solver,
//     internal/fft, internal/traffic, internal/modelspec — supporting
//     subsystems.
//
// Executables live under cmd/ (repro, ctscalc, bopcalc, atmsim, acfgen,
// fitdar) and runnable examples under examples/. bench_test.go at this
// root regenerates every table and figure as a Go benchmark. See README.md
// for a tour, DESIGN.md for the system inventory and EXPERIMENTS.md for
// the paper-versus-measured record.
package repro
