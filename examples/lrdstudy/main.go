// LRD study: verify that the repository's traffic generators actually
// produce the long-range dependence they advertise, using the Hurst
// estimators — and watch the burst-within-burst structure survive
// aggregation, the visual signature of self-similarity (paper Fig 2 and
// Leland et al.).
//
// Run with: go run ./examples/lrdstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/fgn"
	"repro/internal/hurst"
	"repro/internal/models"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	const frames = 1 << 18

	fmt.Println("Hurst estimation across generators (design H in brackets):")
	fmt.Printf("%-18s %14s %14s\n", "model", "variance-time", "R/S")

	// FGN: exact synthesis, the calibration reference.
	f, err := fgn.NewModel(0.9, 500, 5000)
	if err != nil {
		log.Fatal(err)
	}
	report(f.Name()+" [0.90]", traffic.Generate(f.NewGenerator(1), frames))

	// Z^a: FBNDP + DAR(1), designed H = (α+1)/2 = 0.9.
	z, err := models.NewZ(0.9)
	if err != nil {
		log.Fatal(err)
	}
	report(z.Name()+" [0.90]", traffic.Generate(z.NewGenerator(2), frames))

	// L: pure FBNDP, designed H = 0.86.
	l, err := models.NewL()
	if err != nil {
		log.Fatal(err)
	}
	report(l.Name()+"       [0.86]", traffic.Generate(l.NewGenerator(3), frames))

	// The SRD control: DAR(1) matched to Z^0.9 — the estimators must read
	// ≈ 0.5-0.6 despite the identical lag-1 correlation.
	s, err := models.FitS(z, 1)
	if err != nil {
		log.Fatal(err)
	}
	report(s.Name()+" [0.50]", traffic.Generate(s.NewGenerator(4), frames))

	// Burst-within-burst: the coefficient of variation of the aggregated
	// series shrinks like m^{H-1}; for SRD it shrinks like m^{-1/2}.
	fmt.Println("\nstd dev of m-frame averages (LRD decays slowly, SRD fast):")
	fmt.Printf("%-6s %14s %14s\n", "m", z.Name(), s.Name())
	zs := traffic.Generate(z.NewGenerator(5), frames)
	ss := traffic.Generate(s.NewGenerator(6), frames)
	for _, m := range []int{1, 10, 100, 1000} {
		fmt.Printf("%-6d %14.1f %14.1f\n", m, aggSD(zs, m), aggSD(ss, m))
	}
	fmt.Println("\nAt m = 1000 the LRD model still fluctuates visibly while the")
	fmt.Println("Markov model has averaged out — yet their loss rates at practical")
	fmt.Println("ATM buffer sizes match. That contrast is the paper's whole point.")
}

func report(label string, xs []float64) {
	vt, err := hurst.VarianceTime(xs, 10, len(xs)/32)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := hurst.RS(xs, 32, len(xs)/8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %14.3f %14.3f\n", label, vt, rs)
}

func aggSD(xs []float64, m int) float64 {
	n := len(xs) / m
	agg := make([]float64, n)
	for b := 0; b < n; b++ {
		agg[b] = stats.Mean(xs[b*m : (b+1)*m])
	}
	return stats.StdDev(agg)
}
