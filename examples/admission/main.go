// Admission sizing: how many real-time VBR video connections fit on an
// ATM link at CLR ≤ 1e-6 under a hard delay bound? This example runs the
// paper's operational bottom line: the admissible-connection count from a
// full LRD model and from its one-parameter DAR(1) Markov fit agree to
// within a connection or two, across delay bounds — so capturing long-term
// correlations buys nothing for admission control.
//
// Run with: go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"repro/internal/cac"
	"repro/internal/models"
)

func main() {
	// An OC-3 payload: 155.52 Mbps × (48/53 payload) / 424 bits per cell
	// ≈ 353,208 cells/s. Real-time video keeps per-hop delay tight.
	const capacity = 353208.0
	target := 1e-6

	z, err := models.NewZ(0.975) // LRD video: strong short + Hurst-0.9 tail
	if err != nil {
		log.Fatal(err)
	}
	d1, err := models.FitS(z, 1) // its DAR(1) fit: one matched correlation
	if err != nil {
		log.Fatal(err)
	}
	l, err := models.NewL() // pure LRD model matching only the ACF tail
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("link: %.0f cells/s, loss target %g\n", capacity, target)
	fmt.Printf("source: %s (mean %.0f cells/frame ≈ %.2f Mbps)\n\n",
		z.Name(), z.Mean(), z.Mean()/models.Ts*424/1e6)
	fmt.Printf("%-12s %14s %14s %14s %10s\n",
		"delay bound", z.Name(), d1.Name(), l.Name(), "peak-rate")

	for _, delayMs := range []float64{2, 5, 10, 20, 30} {
		link := cac.Link{CellsPerSec: capacity, Ts: models.Ts, Delay: delayMs / 1000}
		nz, err := cac.Admissible(z, link, target, cac.BahadurRao)
		if err != nil {
			log.Fatal(err)
		}
		nd, err := cac.Admissible(d1, link, target, cac.BahadurRao)
		if err != nil {
			log.Fatal(err)
		}
		nl, err := cac.Admissible(l, link, target, cac.BahadurRao)
		if err != nil {
			log.Fatal(err)
		}
		// Peak-rate allocation baseline: admit by worst case μ + 5σ.
		peak := int(link.CellsPerFrame() / (z.Mean() + 5*70.7))
		fmt.Printf("%8.0f ms %14d %14d %14d %10d\n", delayMs, nz, nd, nl, peak)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - DAR(1) tracks the LRD model Z within a connection or two: the")
	fmt.Println("    order-of-magnitude loss differences at large buffers translate")
	fmt.Println("    to almost nothing in admitted load (paper §5.4).")
	fmt.Println("  - The tail-only model L misprices the practical regime because it")
	fmt.Println("    misses the short-term correlations that dominate small buffers.")
	fmt.Println("  - Statistical multiplexing admits far more than peak-rate sizing.")

	// Effective bandwidth view at a fixed population.
	fmt.Println()
	eb, err := cac.EffectiveBandwidth(z, 30, 269, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("effective bandwidth of %s at N=30, 20 ms buffer: %.1f cells/frame\n",
		z.Name(), eb)
	fmt.Printf("  (mean 500, so the LRD source costs only %.1f%% headroom)\n",
		(eb/z.Mean()-1)*100)
}
