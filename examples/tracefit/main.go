// Tracefit: the Heyman-Lakshman / Elwalid workflow the paper builds on.
// Treat a recorded VBR frame-size trace as the ground truth, estimate its
// marginal and autocorrelations, fit parsimonious DAR(p) Markov models to
// the first few lags, and compare their predicted overflow behaviour with
// the trace model's.
//
// The "trace" here is a synthetic Z^0.975 sample path (the paper's stand-in
// for LRD videoconferencing traces), so the fitted models can also be
// compared with the analytic truth.
//
// Run with: go run ./examples/tracefit
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dar"
	"repro/internal/models"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	// 1. "Record" a trace: half a million frames of Z^0.975.
	truth, err := models.NewZ(0.975)
	if err != nil {
		log.Fatal(err)
	}
	trace := traffic.Generate(truth.NewGenerator(1996), 500000)
	fmt.Printf("trace: %d frames from %s\n", len(trace), truth.Name())

	// 2. Measure first- and second-order statistics.
	mean := stats.Mean(trace)
	variance := stats.Variance(trace)
	acf := stats.ACF(trace, 20)
	fmt.Printf("measured: mean %.1f cells/frame, variance %.0f\n", mean, variance)
	fmt.Printf("measured ACF: r(1)=%.3f r(2)=%.3f r(3)=%.3f r(10)=%.3f\n\n",
		acf[1], acf[2], acf[3], acf[10])

	// 3. Fit DAR(p) models to the measured correlations.
	var fits []*dar.Process
	for _, p := range []int{1, 2, 3} {
		f, err := dar.Fit(acf[1:p+1], dar.GaussianMarginal(mean, variance))
		if err != nil {
			log.Fatalf("DAR(%d): %v", p, err)
		}
		sel := f.SelectionProbs()
		fmt.Printf("fitted DAR(%d): rho=%.4f a=%v\n", p, f.Rho(), fmtFloats(sel))
		fits = append(fits, f)
	}

	// 4. Compare predicted overflow probabilities against the analytic
	//    truth across the practical buffer range.
	fmt.Printf("\n%-12s %14s", "buffer msec", "truth (Z)")
	for _, f := range fits {
		fmt.Printf(" %14s", fmt.Sprintf("DAR(%d)", f.Order()))
	}
	fmt.Println()
	for _, msec := range []float64{2, 5, 10, 20, 30} {
		b := core.BufferSecondsToCells(msec/1000, 538, models.Ts)
		op := core.Operating{C: 538, B: b, N: 30}
		pz, err := core.BahadurRao(truth, op, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.0f %14.3g", msec, pz)
		for _, f := range fits {
			pf, err := core.BahadurRao(f, op, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %14.3g", pf)
		}
		fmt.Println()
	}
	fmt.Println("\nEach added correlation lag tightens the prediction; even p = 1")
	fmt.Println("lands within the accuracy that admission control needs (paper §5.4).")
}

func fmtFloats(xs []float64) string {
	out := "["
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", x)
	}
	return out + "]"
}
