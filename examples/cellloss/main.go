// Cellloss: what a cell loss rate means to a video decoder. A video frame
// rides in one AAL5 CPCS-PDU; losing any one of its ~500 cells fails the
// frame's CRC-32 and discards the whole frame, so the frame loss ratio is
// the cell loss ratio amplified by burst structure. This example moves
// real 53-byte cells: it segments a frame with AAL5, corrupts one cell,
// shows the reassembler rejecting the PDU, then measures CLR-to-FLR
// amplification in the cell-granular multiplexer.
//
// Run with: go run ./examples/cellloss
package main

import (
	"fmt"
	"log"

	"repro/internal/atm"
	"repro/internal/cellsim"
	"repro/internal/models"
	"repro/internal/randx"
	"repro/internal/shaper"
	"repro/internal/traffic"
)

func main() {
	// 1. One video frame through the real AAL5 cell stack.
	frame := make([]byte, 20000) // ≈ a 500-cell frame minus overhead
	randx.NewRand(1).Read(frame)
	hdr := atm.Header{VPI: 12, VCI: 34}
	cells, err := atm.SegmentAAL5(hdr, frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame of %d bytes → %d ATM cells (%d bytes on the wire)\n",
		len(frame), len(cells), len(cells)*atm.CellSize)
	back, err := atm.ReassembleAAL5(cells, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reassembled cleanly: %d bytes, CRC-32 verified\n", len(back))

	// Drop one mid-frame cell: the CRC catches it and the frame dies.
	truncated := append(append([][]byte{}, cells[:100]...), cells[101:]...)
	if _, err := atm.ReassembleAAL5(truncated, false); err != nil {
		fmt.Printf("dropping 1 of %d cells → reassembly: %v\n\n", len(cells), err)
	}

	// 2. Measure the amplification at the multiplexer. N = 10 Z^0.975
	//    sources at 97%% load, tight buffer, cell-granular queue.
	z, err := models.NewZ(0.975)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cellsim.RunFrameLoss(cellsim.Config{
		Model: z, N: 10, SlotsPerFrame: 5150,
		BufferCells: 100, Frames: 20000, Warmup: 1000, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cell-level multiplexer (N=10, 97%% load, 100-cell buffer):\n")
	fmt.Printf("  cell loss ratio   CLR = %.3g\n", res.CLR)
	fmt.Printf("  frame damage rate FLR = %.3g\n", res.FLR)
	fmt.Printf("  amplification %.0f× (mean frame ≈ 500 cells; losses cluster,\n",
		res.FLR/res.CLR)
	fmt.Println("  so amplification sits below the 500× worst case)")

	// 3. Would policing the source at its contract rate have helped?
	frames := traffic.Generate(z.NewGenerator(3), 20000)
	for _, headroom := range []float64{1.0, 1.2, 1.5} {
		frac, err := shaper.PoliceFrames(frames, models.Ts,
			headroom*z.Mean()/models.Ts, models.Ts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GCRA policing at %.1f× mean rate tags %.2g%% of cells\n",
			headroom, frac*100)
	}
	fmt.Println("\nPolicing at the mean rate punishes the VBR source's natural")
	fmt.Println("burstiness; the paper's answer is statistical multiplexing with a")
	fmt.Println("buffer sized by the critical time scale, not per-source policing.")
}
