// Quickstart: build the paper's LRD video model Z^0.9, compute its
// Critical Time Scale and Bahadur-Rao overflow estimate at a 10 ms buffer,
// and confirm with a short multiplexer simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/mux"
)

func main() {
	// 1. An LRD VBR video source: Gaussian frames (μ=500 cells, σ²=5000 at
	//    25 fps), geometric short-term correlations (a = 0.9) riding on a
	//    power-law tail (Hurst 0.9).
	z, err := models.NewZ(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: mean %.0f cells/frame, variance %.0f, H = 0.9\n",
		z.Name(), z.Mean(), z.Variance())
	fmt.Printf("ACF: r(1)=%.3f r(5)=%.3f r(100)=%.3f r(1000)=%.3f\n\n",
		z.ACF(1), z.ACF(5), z.ACF(100), z.ACF(1000))

	// 2. Operating point: 30 sources share a link at c = 538 cells/frame
	//    each (93% load) with a 10 ms buffer.
	const (
		n       = 30
		c       = 538.0
		delayMs = 10.0
	)
	b := core.BufferSecondsToCells(delayMs/1000, c, models.Ts)
	op := core.Operating{C: c, B: b, N: n}

	// 3. Critical time scale: how many frame correlations matter here?
	cts, err := core.CTS(z, op, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical time scale at %.0f ms buffer: m* = %d frames\n", delayMs, cts.M)
	fmt.Printf("  -> correlations beyond lag %d do not affect the loss rate;\n", cts.M)
	fmt.Printf("     the Hurst tail lives at lags 10-1000+, far beyond m*.\n\n")

	// 4. Overflow estimates.
	br, err := core.BahadurRao(z, op, 0)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := core.LargeN(z, op, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overflow estimates: Bahadur-Rao %.3g, large-N %.3g\n\n", br, ln)

	// 5. The paper's thesis in one measurement: fit a one-parameter DAR(1)
	//    Markov model to Z's lag-1 correlation and simulate the finite-
	//    buffer multiplexer with it. Its loss matches the LRD source's.
	//    (Simulating Z itself needs paper-scale effort — 60 × 500k frames,
	//    see cmd/atmsim; the converged values agree, see EXPERIMENTS.md.)
	d1, err := models.FitS(z, 1)
	if err != nil {
		log.Fatal(err)
	}
	simB := core.BufferSecondsToCells(0.002, c, models.Ts) // 2 ms: loss observable
	simBR, err := core.BahadurRao(z, core.Operating{C: c, B: simB, N: n}, 0)
	if err != nil {
		log.Fatal(err)
	}
	results, err := mux.RunReplications(mux.Config{
		Model: d1, N: n, C: c, B: simB,
		Frames: 100000, Warmup: 5000, Seed: 7,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	ci := mux.CLREstimate(results, 0.95)
	fmt.Printf("at a 2 ms buffer: Bahadur-Rao estimate for %s: %.3g\n", z.Name(), simBR)
	fmt.Printf("                  simulated CLR of the %s fit: %s\n", d1.Name(), ci)
	fmt.Println("\nThe asymptotic sits the paper's ~2 orders above the measured CLR")
	fmt.Println("(Fig 10), and the small m* is why the one-parameter Markov fit")
	fmt.Println("predicts this LRD source's QOS accurately.")
}
