// Integration tests: cross-module checks that exercise the whole pipeline
// the way cmd/repro and the examples do — model specification, analytic
// machinery and simulation agreeing with each other.
package repro_test

import (
	"math"
	"testing"

	"repro/internal/cac"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hurst"
	"repro/internal/models"
	"repro/internal/modelspec"
	"repro/internal/mux"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// TestPipelineSpecToSimulation drives one model from command-line spec
// through CTS, asymptotics and simulation, checking cross-module
// consistency (asymptotic upper-bounds simulated BOP order-of-magnitude,
// CLR below BOP).
func TestPipelineSpecToSimulation(t *testing.T) {
	m, err := modelspec.Parse("dar:0.975:1")
	if err != nil {
		t.Fatal(err)
	}
	op := core.Operating{C: 538, B: 26.9, N: 30}

	cts, err := core.CTS(m, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cts.M < 1 || cts.M > 100 {
		t.Fatalf("implausible CTS %d for a 2 ms buffer", cts.M)
	}
	br, err := core.BahadurRao(m, op, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Infinite-buffer simulation of P(W > N·b): the B-R estimate must land
	// within an order of magnitude (it tracked within ~1.5× in calibration;
	// DAR's non-Gaussian burst structure costs a little).
	bop, err := mux.RunBOP(mux.BOPConfig{
		Model: m, N: op.N, C: op.C, Frames: 400000, Warmup: 5000, Seed: 3,
		Thresholds: []float64{float64(op.N) * op.B},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := bop.Prob[0]
	if sim <= 0 {
		t.Fatal("no overflow observed; scale too small for this test")
	}
	if ratio := sim / br; ratio < 0.1 || ratio > 10 {
		t.Fatalf("simulated BOP %v vs B-R %v: ratio %v outside [0.1, 10]", sim, br, ratio)
	}

	// Finite-buffer CLR is far below the overflow probability (the paper's
	// Fig 10 shows ≈2 orders).
	clr, err := mux.Run(mux.Config{
		Model: m, N: op.N, C: op.C, B: op.B,
		Frames: 400000, Warmup: 5000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clr.CLR >= sim {
		t.Fatalf("CLR %v should sit well below BOP %v", clr.CLR, sim)
	}
}

// TestPipelineHeadline replays the paper's headline comparison end to end
// at small scale: the DAR(1) fit of an LRD source admits nearly the same
// number of connections, and their analytic loss curves agree at small
// buffers.
func TestPipelineHeadline(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := models.FitS(z, 1)
	if err != nil {
		t.Fatal(err)
	}
	link := cac.Link{CellsPerSec: 365566, Ts: models.Ts, Delay: 0.010}
	nz, err := cac.Admissible(z, link, 1e-6, cac.BahadurRao)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := cac.Admissible(d, link, 1e-6, cac.BahadurRao)
	if err != nil {
		t.Fatal(err)
	}
	if diff := nd - nz; diff < -2 || diff > 2 {
		t.Fatalf("admission gap %d connections (Z %d, DAR %d)", diff, nz, nd)
	}
}

// TestPipelineGeneratorsAreWhatTheyClaim cross-checks every generator
// family against the hurst estimators and its own analytic moments — the
// full zoo in one table-driven sweep.
func TestPipelineGeneratorsAreWhatTheyClaim(t *testing.T) {
	// Bands are wide: single-path Hurst slopes and LRD sample means carry
	// stable-law noise (the per-substrate packages test tighter statistics
	// with replication averaging). What matters here is the SRD/LRD
	// separation across the zoo through one shared pipeline.
	cases := []struct {
		spec   string
		minH   float64
		maxH   float64
		frames int
	}{
		{"dar1:0.9", 0.40, 0.65, 150000},
		{"fgn:0.9", 0.80, 1.00, 1 << 17},
		{"z:0.9", 0.67, 1.02, 200000},
		{"mginf:0.9", 0.67, 1.02, 200000},
	}
	for _, c := range cases {
		m, err := modelspec.Parse(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		var meanSum, hSum float64
		const seeds = 3
		for seed := int64(1); seed <= seeds; seed++ {
			xs := traffic.Generate(m.NewGenerator(seed*911), c.frames)
			meanSum += stats.Mean(xs)
			h, err := hurst.VarianceTime(xs, 16, len(xs)/32)
			if err != nil {
				t.Fatal(err)
			}
			hSum += h
		}
		if got := meanSum / seeds; math.Abs(got-m.Mean())/m.Mean() > 0.1 {
			t.Errorf("%s: mean %v vs analytic %v", c.spec, got, m.Mean())
		}
		if h := hSum / seeds; h < c.minH || h > c.maxH {
			t.Errorf("%s: estimated H %v outside [%v, %v]", c.spec, h, c.minH, c.maxH)
		}
	}
}

// TestPipelineExperimentRendering pushes one full experiment through the
// Render/CSV path, as cmd/repro does.
func TestPipelineExperimentRendering(t *testing.T) {
	rs, err := experiments.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Render()) < 100 || len(r.CSV()) < 100 {
			t.Fatalf("%s: implausibly short rendering", r.ID)
		}
	}
	tab, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.String()) < 200 {
		t.Fatal("table rendering too short")
	}
}
