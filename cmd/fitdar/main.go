// Command fitdar fits DAR(p) Markov models to a target: either an analytic
// model (via -model) or a measured frame-size trace (via -trace, one frame
// size per line). It prints the fitted parameters in the paper's Table 1
// format and compares the fitted ACF with the target's.
//
// Usage:
//
//	fitdar [-model z:0.975 | -trace sizes.txt] [-orders 1,2,3] [-lags 10]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dar"
	"repro/internal/modelspec"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	var (
		modelSpec = flag.String("model", "z:0.975", "analytic target model spec")
		tracePath = flag.String("trace", "", "path to a trace file (one frame size per line); overrides -model")
		orders    = flag.String("orders", "1,2,3", "DAR orders to fit")
		lags      = flag.Int("lags", 10, "comparison lags to print")
	)
	flag.Parse()

	var (
		targetACF func(k int) float64
		mean      float64
		variance  float64
		name      string
	)
	if *tracePath != "" {
		xs, err := readTrace(*tracePath)
		if err != nil {
			fatal(err)
		}
		acf := stats.ACF(xs, *lags+16)
		targetACF = func(k int) float64 { return acf[k] }
		mean, variance = stats.Mean(xs), stats.Variance(xs)
		name = fmt.Sprintf("trace(%s, %d frames)", *tracePath, len(xs))
	} else {
		m, err := modelspec.Parse(*modelSpec)
		if err != nil {
			fatal(err)
		}
		targetACF = m.ACF
		mean, variance = m.Mean(), m.Variance()
		name = m.Name()
	}
	fmt.Printf("target: %s  mean=%.4g variance=%.4g\n\n", name, mean, variance)

	var fitted []*dar.Process
	for _, os_ := range strings.Split(*orders, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(os_))
		if err != nil || p < 1 {
			fatal(fmt.Errorf("bad order %q", os_))
		}
		target := make([]float64, p)
		for k := 1; k <= p; k++ {
			target[k-1] = targetACF(k)
		}
		proc, err := dar.Fit(target, dar.GaussianMarginal(mean, variance))
		if err != nil {
			fmt.Printf("DAR(%d): fit failed: %v\n", p, err)
			continue
		}
		sel := proc.SelectionProbs()
		parts := make([]string, len(sel))
		for i, s := range sel {
			parts[i] = fmt.Sprintf("a%d=%.4f", i+1, s)
		}
		fmt.Printf("DAR(%d): rho=%.4f %s\n", p, proc.Rho(), strings.Join(parts, " "))
		fitted = append(fitted, proc)
	}

	fmt.Printf("\n%-6s %12s", "lag", "target")
	for _, p := range fitted {
		fmt.Printf(" %12s", fmt.Sprintf("DAR(%d)", p.Order()))
	}
	fmt.Println()
	for k := 1; k <= *lags; k++ {
		fmt.Printf("%-6d %12.6f", k, targetACF(k))
		for _, p := range fitted {
			fmt.Printf(" %12.6f", p.ACF(k))
		}
		fmt.Println()
	}
}

func readTrace(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var xs []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("bad trace line %q: %w", line, err)
		}
		xs = append(xs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(xs) < 100 {
		return nil, fmt.Errorf("trace too short (%d frames; need ≥ 100)", len(xs))
	}
	return xs, nil
}

func fatal(err error) {
	telemetry.Log.SetPrefix("fitdar")
	telemetry.Log.Errorf("%v", err)
	os.Exit(1)
}
