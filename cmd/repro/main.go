// Command repro regenerates every table and figure of the paper's
// evaluation. By default it prints all experiments to stdout at a reduced
// simulation scale; use -exp to select specific experiments, -out to write
// text and CSV files, and -reps/-frames to approach the paper's 60 × 500k
// simulation effort.
//
// Usage:
//
//	repro [-exp all|table1,fig1,...,fig10] [-reps N] [-frames N]
//	      [-seed N] [-out DIR] [-csv] [-workers N] [-checkpoint FILE]
//
// Simulation replications fan out over -workers cores (default: all);
// results are bit-identical for every worker count. With -checkpoint,
// completed replications are persisted so an interrupted run (Ctrl-C)
// resumes where it stopped instead of restarting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids (table1, fig1..fig10) or 'all' (figs + table1 + extmpeg,extsub,extmarg)")
		reps    = flag.Int("reps", experiments.DefaultSim.Reps, "simulation replications (paper: 60)")
		frames  = flag.Int("frames", experiments.DefaultSim.Frames, "frames per replication (paper: 500000)")
		seed    = flag.Int64("seed", experiments.DefaultSim.Seed, "master random seed")
		outDir  = flag.String("out", "", "directory for .txt/.csv outputs (default: stdout only)")
		csv     = flag.Bool("csv", false, "also print CSV to stdout")
		workers = flag.Int("workers", 0, "parallel simulation workers (0 = all cores, 1 = serial)")
		ckpt    = flag.String("checkpoint", "", "checkpoint file: persist finished replications and resume interrupted runs")
	)
	flag.Parse()

	// Interrupts cancel in-flight replications cleanly so the checkpoint
	// stays consistent and the run can be resumed.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	eng := runner.New(*workers)
	if *ckpt != "" {
		c, err := runner.OpenCheckpoint(*ckpt)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		if n := c.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "repro: resuming with %d checkpointed replications from %s\n", n, *ckpt)
		}
		eng.SetCheckpoint(c)
	}
	stopLog := eng.LogProgress(5*time.Second, os.Stderr)
	defer stopLog()

	sim := experiments.SimConfig{
		Reps: *reps, Frames: *frames, Seed: *seed,
		Engine: eng, Ctx: ctx,
	}
	if err := sim.Validate(); err != nil {
		fatal(err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		if e != "" {
			want[e] = true
		}
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	if selected("table1") {
		tab, err := experiments.Table1()
		if err != nil {
			fatal(err)
		}
		emitText("table1", tab.String(), *outDir)
	}

	type driver struct {
		id  string
		run func() ([]*experiments.Result, error)
	}
	drivers := []driver{
		{"fig1", experiments.Fig1},
		{"fig2", func() ([]*experiments.Result, error) {
			r, err := experiments.Fig2(500, *seed)
			return []*experiments.Result{r}, err
		}},
		{"fig3", experiments.Fig3},
		{"fig4", experiments.Fig4},
		{"fig5", experiments.Fig5},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig8", func() ([]*experiments.Result, error) { return experiments.Fig8(sim) }},
		{"fig9", func() ([]*experiments.Result, error) { return experiments.Fig9(sim) }},
		{"fig10", func() ([]*experiments.Result, error) {
			r, err := experiments.Fig10(sim)
			return []*experiments.Result{r}, err
		}},
		// Extensions beyond the published evaluation (paper §6 directions);
		// included in -exp all.
		{"extmpeg", experiments.ExtMPEG},
		{"extsub", experiments.ExtSubstrates},
		{"extweibull", experiments.ExtWeibull},
		{"extmarg", func() ([]*experiments.Result, error) {
			r, err := experiments.ExtMarginals(sim)
			return []*experiments.Result{r}, err
		}},
		{"extflr", func() ([]*experiments.Result, error) {
			r, err := experiments.ExtFLR(sim)
			return []*experiments.Result{r}, err
		}},
	}
	for _, d := range drivers {
		if !selected(d.id) {
			continue
		}
		if err := ctx.Err(); err != nil {
			fatal(fmt.Errorf("interrupted (rerun with -checkpoint to resume): %w", context.Cause(ctx)))
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", d.id)
		results, err := d.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", d.id, err))
		}
		for _, r := range results {
			emitText(r.ID, r.Render(), *outDir)
			if *csv {
				fmt.Println(r.CSV())
			}
			if *outDir != "" {
				path := filepath.Join(*outDir, r.ID+".csv")
				if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
	if st := eng.Stats(); st.RepsTotal > 0 {
		fmt.Fprintln(os.Stderr, st.String())
	}
}

func emitText(id, text, outDir string) {
	fmt.Println(text)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(outDir, id+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
