// Command repro regenerates every table and figure of the paper's
// evaluation. By default it prints all experiments to stdout at a reduced
// simulation scale; use -exp to select specific experiments, -out to write
// text and CSV files, and -reps/-frames to approach the paper's 60 × 500k
// simulation effort.
//
// Usage:
//
//	repro [-exp all|table1,fig1,...,fig10] [-reps N] [-frames N]
//	      [-seed N] [-out DIR] [-csv] [-workers N] [-checkpoint FILE]
//	      [-telemetry ADDR]
//
// Simulation replications fan out over -workers cores (default: all);
// results are bit-identical for every worker count. With -checkpoint,
// completed replications are persisted so an interrupted run (Ctrl-C)
// resumes where it stopped instead of restarting.
//
// Observability: with -out DIR the run writes DIR/manifest.jsonl — a
// structured JSONL record of the run (seed, git revision, config, per-stage
// wall times, per-series results with CLR confidence bounds, wall/CPU
// totals and the final metrics snapshot) that telemetry.ReadManifest
// decodes. With -telemetry ADDR (e.g. ":6060") an HTTP endpoint serves
// live metrics (/metrics Prometheus text, /vars JSON) and /debug/pprof
// profiles while the run progresses. Neither sink perturbs results:
// fixed-seed outputs are bit-identical with telemetry on or off.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids (table1, fig1..fig10) or 'all' (figs + table1 + extmpeg,extsub,extmarg)")
		reps    = flag.Int("reps", experiments.DefaultSim.Reps, "simulation replications (paper: 60)")
		frames  = flag.Int("frames", experiments.DefaultSim.Frames, "frames per replication (paper: 500000)")
		seed    = flag.Int64("seed", experiments.DefaultSim.Seed, "master random seed")
		outDir  = flag.String("out", "", "directory for .txt/.csv outputs and the run manifest (default: stdout only)")
		csv     = flag.Bool("csv", false, "also print CSV to stdout")
		workers = flag.Int("workers", 0, "parallel simulation workers (0 = all cores, 1 = serial)")
		ckpt    = flag.String("checkpoint", "", "checkpoint file: persist finished replications and resume interrupted runs")
		telem   = flag.String("telemetry", "", "serve live metrics/pprof on this address (e.g. :6060); empty = off")
	)
	flag.Parse()
	start := time.Now()

	// Interrupts cancel in-flight replications cleanly so the checkpoint
	// stays consistent and the run can be resumed.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// The engine records into the process-wide default registry so runner
	// progress, mux chunk metrics and experiment stage timers share the
	// exposition endpoint and manifest snapshot.
	eng := runner.NewWithRegistry(*workers, telemetry.Default)
	if *ckpt != "" {
		c, err := runner.OpenCheckpoint(*ckpt)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		if n := c.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "repro: resuming with %d checkpointed replications from %s\n", n, *ckpt)
		}
		eng.SetCheckpoint(c)
	}
	// stopLog flushes a final stats line, so short runs still report totals.
	stopLog := eng.LogProgress(5*time.Second, os.Stderr)
	defer stopLog()

	if *telem != "" {
		srv, addr, err := telemetry.Serve(*telem, telemetry.Default)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "repro: telemetry on http://%s (/metrics, /vars, /debug/pprof/)\n", addr)
	}

	sim := experiments.SimConfig{
		Reps: *reps, Frames: *frames, Seed: *seed,
		Engine: eng, Ctx: ctx,
	}
	if err := sim.Validate(); err != nil {
		fatal(err)
	}

	var manifest *telemetry.ManifestWriter
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		var err error
		manifest, err = telemetry.CreateManifest(filepath.Join(*outDir, "manifest.jsonl"), telemetry.ManifestHeader{
			Tool:  "repro",
			Args:  os.Args[1:],
			Start: start.Format(time.RFC3339Nano),
			Seed:  *seed,
			Config: map[string]string{
				"exp":     *exps,
				"reps":    fmt.Sprint(*reps),
				"frames":  fmt.Sprint(*frames),
				"workers": fmt.Sprint(eng.Workers()),
			},
		})
		if err != nil {
			fatal(err)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		if e != "" {
			want[e] = true
		}
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	if selected("table1") {
		t0 := time.Now()
		tab, err := experiments.Table1()
		if err != nil {
			fatal(err)
		}
		emitText("table1", tab.String(), *outDir)
		if manifest != nil {
			manifest.Stage(telemetry.StageRecord{ID: "table1", WallSeconds: time.Since(t0).Seconds()})
		}
	}

	type driver struct {
		id  string
		run func() ([]*experiments.Result, error)
	}
	drivers := []driver{
		{"fig1", experiments.Fig1},
		{"fig2", func() ([]*experiments.Result, error) {
			r, err := experiments.Fig2(500, *seed)
			return []*experiments.Result{r}, err
		}},
		{"fig3", experiments.Fig3},
		{"fig4", experiments.Fig4},
		{"fig5", experiments.Fig5},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig8", func() ([]*experiments.Result, error) { return experiments.Fig8(sim) }},
		{"fig9", func() ([]*experiments.Result, error) { return experiments.Fig9(sim) }},
		{"fig10", func() ([]*experiments.Result, error) {
			r, err := experiments.Fig10(sim)
			return []*experiments.Result{r}, err
		}},
		// Extensions beyond the published evaluation (paper §6 directions);
		// included in -exp all.
		{"extmpeg", experiments.ExtMPEG},
		{"extsub", experiments.ExtSubstrates},
		{"extweibull", experiments.ExtWeibull},
		{"extmarg", func() ([]*experiments.Result, error) {
			r, err := experiments.ExtMarginals(sim)
			return []*experiments.Result{r}, err
		}},
		{"extflr", func() ([]*experiments.Result, error) {
			r, err := experiments.ExtFLR(sim)
			return []*experiments.Result{r}, err
		}},
	}
	for _, d := range drivers {
		if !selected(d.id) {
			continue
		}
		if err := ctx.Err(); err != nil {
			fatal(fmt.Errorf("interrupted (rerun with -checkpoint to resume): %w", context.Cause(ctx)))
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", d.id)
		t0 := time.Now()
		results, err := d.run()
		if manifest != nil {
			rec := telemetry.StageRecord{ID: d.id, WallSeconds: time.Since(t0).Seconds()}
			if err != nil {
				rec.Err = err.Error()
			}
			manifest.Stage(rec)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", d.id, err))
		}
		for _, r := range results {
			emitText(r.ID, r.Render(), *outDir)
			if *csv {
				fmt.Println(r.CSV())
			}
			if *outDir != "" {
				path := filepath.Join(*outDir, r.ID+".csv")
				if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
			if manifest != nil {
				manifest.Result(resultRecord(d.id, r))
			}
		}
	}
	stopLog()
	if manifest != nil {
		err := manifest.Close(telemetry.RunSummary{
			WallSeconds: time.Since(start).Seconds(),
			CPUSeconds:  telemetry.CPUSeconds(),
			End:         time.Now().Format(time.RFC3339Nano),
			Metrics:     telemetry.Default.Snapshot(),
		})
		if err != nil {
			fatal(err)
		}
	}
}

// resultRecord converts an experiment result into its manifest form,
// preserving the replication confidence bounds that the rendered tables
// drop.
func resultRecord(stage string, r *experiments.Result) telemetry.ResultRecord {
	rec := telemetry.ResultRecord{Stage: stage, ID: r.ID, Title: r.Title}
	for _, s := range r.Series {
		rec.Series = append(rec.Series, telemetry.SeriesRecord{
			Label: s.Label, X: s.X, Y: s.Y, Lo: s.Lo, Hi: s.Hi,
		})
	}
	return rec
}

func emitText(id, text, outDir string) {
	fmt.Println(text)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(outDir, id+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
