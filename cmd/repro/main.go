// Command repro regenerates every table and figure of the paper's
// evaluation. By default it prints all experiments to stdout at a reduced
// simulation scale; use -exp to select specific experiments, -out to write
// text and CSV files, and -reps/-frames to approach the paper's 60 × 500k
// simulation effort.
//
// Usage:
//
//	repro [-exp all|table1,fig1,...,fig10] [-reps N] [-frames N]
//	      [-seed N] [-out DIR] [-csv] [-workers N] [-checkpoint FILE]
//	      [-telemetry ADDR] [-flight FILE] [-flight-interval DUR] [-slo RULES]
//	      [-profile DIR] [-profile-interval DUR]
//
// Simulation replications fan out over -workers cores (default: all);
// results are bit-identical for every worker count. With -checkpoint,
// completed replications are persisted so an interrupted run (Ctrl-C)
// resumes where it stopped instead of restarting.
//
// Observability: with -out DIR the run writes DIR/manifest.jsonl — a
// structured JSONL record of the run (seed, git revision, config, per-stage
// wall times, per-series results with CLR confidence bounds and convergence
// verdicts, wall/CPU totals, the final metrics snapshot and the span timing
// table) that telemetry.ReadManifest decodes. With -telemetry ADDR (e.g.
// ":6060") an HTTP endpoint serves live metrics (/metrics Prometheus text,
// /vars JSON) and /debug/pprof profiles while the run progresses. With
// -trace FILE the run records a span tree (figure → sweep → replication →
// mux chunk) and writes it as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing. With -flight FILE the flight recorder
// snapshots all metrics every -flight-interval (default 1s) into a
// delta-encoded JSONL time-series log — replay it with obsreport — and
// serves the recent history at /vars/history on the -telemetry endpoint.
// With -slo RULES (see internal/telemetry/slo for the grammar) each
// snapshot is evaluated online and any breached rule fails the run with
// exit status 3. With -profile DIR the continuous profiler captures
// periodic CPU windows plus heap/goroutine snapshots into a bounded
// on-disk store, each sample labelled with the figure/model/sweep-point/
// path/lane it was spent on (inspect with profdiff or obsreport
// -profile). -v/-quiet raise/lower log verbosity. None of these sinks
// perturbs results: fixed-seed outputs are bit-identical with every
// combination on or off.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/diag"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/telemetry/obs"
	"repro/internal/telemetry/prof"
	"repro/internal/trace"
)

var logx = telemetry.Log

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids (table1, fig1..fig10, ext...) or 'all' (figs + table1 + extmpeg,extsub,extweibull,extmarg,extflr,extloop)")
		reps    = flag.Int("reps", experiments.DefaultSim.Reps, "simulation replications (paper: 60)")
		frames  = flag.Int("frames", experiments.DefaultSim.Frames, "frames per replication (paper: 500000)")
		seed    = flag.Int64("seed", experiments.DefaultSim.Seed, "master random seed")
		outDir  = flag.String("out", "", "directory for .txt/.csv outputs and the run manifest (default: stdout only)")
		csv     = flag.Bool("csv", false, "also print CSV to stdout")
		workers = flag.Int("workers", 0, "parallel simulation workers (0 = all cores, 1 = serial)")
		ckpt    = flag.String("checkpoint", "", "checkpoint file: persist finished replications and resume interrupted runs")
		telem   = flag.String("telemetry", "", "serve live metrics/pprof on this address (e.g. :6060); empty = off")
		trc     = flag.String("trace", "", "write Chrome trace-event JSON of the run's span tree to this file (load in Perfetto)")
		convRel = flag.Float64("convrel", 0, "target relative 95% CI half-width for convergence verdicts (0 = default 0.5)")
		verbose = flag.Bool("v", false, "verbose logging (debug level)")
		quiet   = flag.Bool("quiet", false, "log errors only (overrides -v)")
	)
	obsFlags := obs.AddFlags()
	flag.Parse()
	logx.SetPrefix("repro")
	logx.SetLevel(telemetry.LevelFromFlags(*verbose, *quiet))
	start := time.Now()

	// The tracer is nil unless -trace is given; every span descending from
	// it is then a no-op, so the instrumented paths cost one branch.
	var tracer *trace.Tracer
	if *trc != "" {
		tracer = trace.New()
	}

	// Interrupts cancel in-flight replications cleanly so the checkpoint
	// stays consistent and the run can be resumed.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// The engine records into the process-wide default registry so runner
	// progress, mux chunk metrics and experiment stage timers share the
	// exposition endpoint and manifest snapshot.
	eng := runner.NewWithRegistry(*workers, telemetry.Default)
	if *ckpt != "" {
		c, err := runner.OpenCheckpoint(*ckpt)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		if n := c.Len(); n > 0 {
			logx.Infof("resuming with %d checkpointed replications from %s", n, *ckpt)
		}
		eng.SetCheckpoint(c)
	}
	// stopLog flushes a final stats line, so short runs still report
	// totals; routing through the leveled logger makes -quiet silence it.
	stopLog := eng.LogProgress(5*time.Second, logx.Writer(telemetry.LevelInfo))
	defer stopLog()

	// The flight recorder and online SLO evaluation only read the registry,
	// so results stay bit-identical with them on or off (CI diffs the smoke
	// manifests at rtol 0 to prove it).
	sess, err := obsFlags.Start(telemetry.Default, "repro")
	if err != nil {
		fatal(err)
	}

	if *telem != "" {
		srv, addr, err := telemetry.Serve(*telem, telemetry.Default, sess.Routes()...)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		logx.Infof("telemetry on http://%s (/metrics, /vars, /debug/pprof/)", addr)
	}

	sim := experiments.SimConfig{
		Reps: *reps, Frames: *frames, Seed: *seed,
		Engine: eng, Ctx: ctx,
		ConvMaxRelCI: *convRel,
	}
	if err := sim.Validate(); err != nil {
		fatal(err)
	}

	var manifest *telemetry.ManifestWriter
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		var err error
		manifest, err = telemetry.CreateManifest(filepath.Join(*outDir, "manifest.jsonl"), telemetry.ManifestHeader{
			Tool:  "repro",
			Args:  os.Args[1:],
			Start: start.Format(time.RFC3339Nano),
			Seed:  *seed,
			Config: map[string]string{
				"exp":     *exps,
				"reps":    fmt.Sprint(*reps),
				"frames":  fmt.Sprint(*frames),
				"workers": fmt.Sprint(eng.Workers()),
			},
		})
		if err != nil {
			fatal(err)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		if e != "" {
			want[e] = true
		}
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	if selected("table1") {
		t0 := time.Now()
		sp := tracer.Root("table1")
		tab, err := experiments.Table1()
		sp.End()
		if err != nil {
			fatal(err)
		}
		emitText("table1", tab.String(), *outDir)
		if manifest != nil {
			manifest.Stage(telemetry.StageRecord{ID: "table1", WallSeconds: time.Since(t0).Seconds()})
		}
	}

	// Simulation-backed drivers receive the figure's root span through
	// SimConfig so sweeps, replications and mux chunks nest below it;
	// analytic drivers just run inside the span's extent. The figure id
	// also becomes the outermost profiling label, so CPU samples from any
	// worker goroutine attribute back to the figure being regenerated.
	withSpan := func(id string, sp trace.Span) experiments.SimConfig {
		s := sim
		s.Span = sp
		s.Ctx = prof.WithLabels(ctx, prof.Labels{Figure: id})
		return s
	}
	type driver struct {
		id  string
		run func(sp trace.Span) ([]*experiments.Result, error)
	}
	analytic := func(fn func() ([]*experiments.Result, error)) func(trace.Span) ([]*experiments.Result, error) {
		return func(trace.Span) ([]*experiments.Result, error) { return fn() }
	}
	drivers := []driver{
		{"fig1", analytic(experiments.Fig1)},
		{"fig2", func(trace.Span) ([]*experiments.Result, error) {
			r, err := experiments.Fig2(500, *seed)
			return []*experiments.Result{r}, err
		}},
		{"fig3", analytic(experiments.Fig3)},
		{"fig4", analytic(experiments.Fig4)},
		{"fig5", analytic(experiments.Fig5)},
		{"fig6", analytic(experiments.Fig6)},
		{"fig7", analytic(experiments.Fig7)},
		{"fig8", func(sp trace.Span) ([]*experiments.Result, error) { return experiments.Fig8(withSpan("fig8", sp)) }},
		{"fig9", func(sp trace.Span) ([]*experiments.Result, error) { return experiments.Fig9(withSpan("fig9", sp)) }},
		{"fig10", func(sp trace.Span) ([]*experiments.Result, error) {
			r, err := experiments.Fig10(withSpan("fig10", sp))
			return []*experiments.Result{r}, err
		}},
		// Extensions beyond the published evaluation (paper §6 directions);
		// included in -exp all.
		{"extmpeg", analytic(experiments.ExtMPEG)},
		{"extsub", analytic(experiments.ExtSubstrates)},
		{"extweibull", analytic(experiments.ExtWeibull)},
		{"extmarg", func(sp trace.Span) ([]*experiments.Result, error) {
			r, err := experiments.ExtMarginals(withSpan("extmarg", sp))
			return []*experiments.Result{r}, err
		}},
		{"extflr", func(sp trace.Span) ([]*experiments.Result, error) {
			r, err := experiments.ExtFLR(withSpan("extflr", sp))
			return []*experiments.Result{r}, err
		}},
		{"extloop", func(sp trace.Span) ([]*experiments.Result, error) {
			r, err := experiments.ExtClosedLoop(withSpan("extloop", sp))
			return []*experiments.Result{r}, err
		}},
	}
	for _, d := range drivers {
		if !selected(d.id) {
			continue
		}
		if err := ctx.Err(); err != nil {
			fatal(fmt.Errorf("interrupted (rerun with -checkpoint to resume): %w", context.Cause(ctx)))
		}
		logx.Infof("running %s...", d.id)
		t0 := time.Now()
		sp := tracer.Root(d.id)
		results, err := d.run(sp)
		sp.End()
		if manifest != nil {
			rec := telemetry.StageRecord{ID: d.id, WallSeconds: time.Since(t0).Seconds()}
			if err != nil {
				rec.Err = err.Error()
			}
			manifest.Stage(rec)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", d.id, err))
		}
		for _, r := range results {
			emitText(r.ID, r.Render(), *outDir)
			if *csv {
				fmt.Println(r.CSV())
			}
			if *outDir != "" {
				path := filepath.Join(*outDir, r.ID+".csv")
				if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
			if manifest != nil {
				manifest.Result(resultRecord(d.id, r))
			}
		}
	}
	stopLog()
	if manifest != nil {
		err := manifest.Close(telemetry.RunSummary{
			WallSeconds: time.Since(start).Seconds(),
			CPUSeconds:  telemetry.CPUSeconds(),
			End:         time.Now().Format(time.RFC3339Nano),
			Metrics:     telemetry.Default.Snapshot(),
			Spans:       spanSummaries(tracer),
		})
		if err != nil {
			fatal(err)
		}
	}
	if *trc != "" {
		if err := tracer.WriteChromeFile(*trc); err != nil {
			fatal(err)
		}
		logx.Infof("wrote %d spans to %s (load in Perfetto or chrome://tracing)", tracer.Len(), *trc)
	}
	// The SLO verdict is the exit gate: a breached rule (or a torn flight
	// log) fails the run even though every figure rendered.
	if !sess.Finish() {
		os.Exit(3)
	}
}

// resultRecord converts an experiment result into its manifest form,
// preserving the replication confidence bounds and convergence verdicts
// that the rendered tables drop.
func resultRecord(stage string, r *experiments.Result) telemetry.ResultRecord {
	rec := telemetry.ResultRecord{Stage: stage, ID: r.ID, Title: r.Title}
	for _, s := range r.Series {
		sr := telemetry.SeriesRecord{
			Label: s.Label, X: s.X, Y: s.Y, Lo: s.Lo, Hi: s.Hi,
		}
		for _, v := range s.Verdicts {
			sr.Conv = append(sr.Conv, convRecord(v))
		}
		rec.Series = append(rec.Series, sr)
	}
	return rec
}

// convRecord converts a diag verdict into its manifest form. An undefined
// relative CI (±Inf: fewer than two finite observations, or a zero mean
// with spread) becomes −1, since JSON cannot carry non-finite numbers.
func convRecord(v diag.Verdict) telemetry.ConvRecord {
	rel := v.RelCI
	if math.IsInf(rel, 0) || math.IsNaN(rel) {
		rel = -1
	}
	return telemetry.ConvRecord{
		N: v.N, NonFinite: v.NonFinite, RelCI: rel, ESS: v.ESS, Converged: v.Converged,
	}
}

// spanSummaries converts the tracer's aggregated timing table into its
// manifest form (nil tracer → nil, omitted from the summary line).
func spanSummaries(t *trace.Tracer) []telemetry.SpanSummary {
	var out []telemetry.SpanSummary
	for _, s := range t.Summarize() {
		out = append(out, telemetry.SpanSummary{
			Name: s.Name, Count: s.Count, TotalSeconds: s.TotalSeconds,
			MinSeconds: s.MinSeconds, MaxSeconds: s.MaxSeconds,
		})
	}
	return out
}

func emitText(id, text, outDir string) {
	fmt.Println(text)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(outDir, id+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	logx.Errorf("%v", err)
	os.Exit(1)
}
