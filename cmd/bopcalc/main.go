// Command bopcalc evaluates the buffer overflow probability asymptotics of
// the paper (§4) for one or more models: the Bahadur-Rao estimate, the
// Large-N estimate, and — for models with a known Hurst parameter — the
// closed-form Weibull approximation of Eq. 6.
//
// Usage:
//
//	bopcalc [-models z:0.975,dar:0.975:1] [-c 538] [-n 30]
//	        [-maxmsec 30] [-points 16] [-weibull-h 0] [-weibull-g 0.9]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/modelspec"
	"repro/internal/telemetry"
)

func main() {
	var (
		specs    = flag.String("models", "z:0.975,dar:0.975:1,l", "comma-separated model specs")
		c        = flag.Float64("c", experiments.BopC, "bandwidth per source, cells/frame")
		n        = flag.Int("n", experiments.BopN, "number of multiplexed sources")
		maxMsec  = flag.Float64("maxmsec", 30, "largest total buffer (max delay) in msec")
		points   = flag.Int("points", 16, "number of buffer points")
		weibullH = flag.Float64("weibull-h", 0, "if > 0, also print the Eq. 6 Weibull estimate for this Hurst parameter")
		weibullG = flag.Float64("weibull-g", 0.9, "g(Ts) used by the Weibull estimate")
	)
	flag.Parse()

	ms, err := modelspec.ParseList(*specs)
	if err != nil {
		fatal(err)
	}
	if *points < 2 || *maxMsec <= 0 {
		fatal(fmt.Errorf("need points ≥ 2 and maxmsec > 0"))
	}

	fmt.Printf("%-12s", "buffer msec")
	for _, m := range ms {
		fmt.Printf(" %14s %14s", m.Name()+" B-R", "large-N")
	}
	if *weibullH > 0 {
		fmt.Printf(" %14s", "weibull")
	}
	fmt.Println()
	for i := 0; i < *points; i++ {
		msec := float64(i) * *maxMsec / float64(*points-1)
		fmt.Printf("%-12.3f", msec)
		op := core.Operating{C: *c, B: experiments.MsecToPerSourceCells(msec, *c), N: *n}
		for _, m := range ms {
			br, err := core.BahadurRao(m, op, 0)
			if err != nil {
				fatal(err)
			}
			ln, err := core.LargeN(m, op, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Printf(" %14.6g %14.6g", br, ln)
		}
		if *weibullH > 0 {
			w, err := core.WeibullLRD(core.LRDParams{
				H: *weibullH, G: *weibullG, Mu: 500, Sigma2: 5000,
			}, op)
			if err != nil {
				fatal(err)
			}
			fmt.Printf(" %14.6g", w)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	telemetry.Log.SetPrefix("bopcalc")
	telemetry.Log.Errorf("%v", err)
	os.Exit(1)
}
