// Command admitload is the closed-loop load generator for admitd: worker
// pools drive admit/release session churn across weighted source classes
// and report achieved decision throughput and client-observed latency
// quantiles.
//
// Two transports:
//
//	admitload -addr http://127.0.0.1:8080        # drive a running daemon
//	admitload -inproc                            # self-contained: spin an
//	                                             # in-process server and
//	                                             # measure the decision path
//
// In -inproc mode the run also records the admit/release journal and
// replays it through the batch feasibility check afterwards, so a single
// invocation demonstrates the service's capacity-safety invariant:
//
//	admitload -inproc -decisions 200000 -workers 8
//
// Usage:
//
//	admitload [-addr URL | -inproc] [-links core:365566:20:1e-6]
//	          [-classes 'z:0.975*3,dar:0.975:1*2,l*1'] [-workers 8]
//	          [-decisions 100000] [-maxactive 64] [-bias 0.55]
//	          [-duration 0] [-seed 1996] [-estimator br] [-quiet]
//	          [-flight FILE] [-flight-interval DUR] [-slo RULES]
//	          [-profile DIR] [-profile-interval DUR]
//
// With -flight FILE the generator's client-side metrics (achieved QPS,
// observed latency quantiles, error counts) are snapshotted periodically
// into a JSONL flight log for obsreport; -slo RULES evaluates SLO rules
// against those snapshots online; -profile DIR captures continuous
// CPU/heap profiles of the generator into a bounded store for profdiff.
//
// The exit status is non-zero if any request failed (non-2xx / transport
// error), if an SLO rule breached, or, in -inproc mode, if the journal
// replay finds an infeasible admitted state.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/admitd"
	"repro/internal/admitd/loadgen"
	"repro/internal/cac"
	"repro/internal/telemetry"
	"repro/internal/telemetry/obs"
)

var logx = telemetry.Log

func main() {
	var (
		addr      = flag.String("addr", "", "base URL of a running admitd (e.g. http://127.0.0.1:8080)")
		inproc    = flag.Bool("inproc", false, "run against an in-process server instead of -addr")
		links     = flag.String("links", "core:365566:20:1e-6", "link specs for -inproc; for -addr, the link names to target (name:... specs also accepted)")
		classes   = flag.String("classes", "z:0.975*3,dar:0.975:1*2,l*1", "weighted class list, spec*weight comma-separated")
		workers   = flag.Int("workers", 8, "concurrent closed-loop workers")
		decisions = flag.Int64("decisions", 100000, "total decision budget (admits+releases, 0 = run until -duration)")
		maxactive = flag.Int("maxactive", 64, "active sessions held per worker")
		bias      = flag.Float64("bias", 0.55, "probability of admit over release when sessions are held")
		duration  = flag.Duration("duration", 0, "wall-clock bound (0 = budget only)")
		seedFlag  = flag.Int64("seed", 1996, "master seed for the per-worker RNGs")
		estName   = flag.String("estimator", "br", "overflow estimator for -inproc: br or largen")
		qosDelay  = flag.Float64("qos-delay", 0, "per-request delay bound override in ms (0 = link default)")
		qosCLR    = flag.Float64("qos-clr", 0, "per-request CLR override (0 = link default)")
		quiet     = flag.Bool("quiet", false, "errors and the report only")
	)
	obsFlags := obs.AddFlags()
	flag.Parse()
	logx.SetPrefix("admitload")
	if *quiet {
		logx.SetLevel(telemetry.LevelError)
	}
	if (*addr == "") == !*inproc {
		fatal(fmt.Errorf("exactly one of -addr or -inproc is required"))
	}

	classList, err := parseClasses(*classes)
	if err != nil {
		fatal(err)
	}
	lcs, err := admitd.ParseLinkSpecs(*links)
	if err != nil {
		fatal(err)
	}
	linkNames := make([]string, len(lcs))
	for i, lc := range lcs {
		linkNames[i] = lc.Name
	}

	var client loadgen.Client
	var srv *admitd.Server
	if *inproc {
		est, err := cac.ParseEstimator(*estName)
		if err != nil {
			fatal(err)
		}
		srv = admitd.NewServer(admitd.Config{Estimator: est, Journal: true})
		for _, lc := range lcs {
			if err := srv.AddLink(lc); err != nil {
				fatal(err)
			}
		}
		client = loadgen.Direct{Srv: srv}
		logx.Infof("in-process server: links %s, estimator %s", strings.Join(linkNames, ","), est)
	} else {
		client = loadgen.HTTP{Base: strings.TrimRight(*addr, "/")}
		logx.Infof("driving %s: links %s", *addr, strings.Join(linkNames, ","))
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if *duration > 0 {
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	// The load generator records into its own registry (client-side view),
	// so a flight log from admitload captures the driver's latency and
	// churn metrics, distinct from the daemon's server-side log.
	reg := telemetry.NewRegistry()
	sess, err := obsFlags.Start(reg, "admitload")
	if err != nil {
		fatal(err)
	}
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Links:              linkNames,
		Classes:            classList,
		Workers:            *workers,
		MaxActivePerWorker: *maxactive,
		Decisions:          *decisions,
		AdmitBias:          *bias,
		Seed:               *seedFlag,
		Registry:           reg,
		QoSDelayMs:         *qosDelay,
		QoSCLR:             *qosCLR,
	}, client)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("decisions  %d (admits %d: %d admitted / %d rejected; releases %d)\n",
		rep.Decisions, rep.Admits, rep.Admitted, rep.Rejected, rep.Releases)
	fmt.Printf("elapsed    %v\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput %.0f decisions/sec\n", rep.QPS)
	fmt.Printf("latency    p50 %v  p95 %v  p99 %v (client-observed)\n", rep.P50, rep.P95, rep.P99)
	fmt.Printf("errors     %d\n", rep.Errors)

	exit := 0
	if rep.Errors > 0 {
		logx.Errorf("%d request(s) failed", rep.Errors)
		exit = 1
	}
	if srv != nil {
		// Server-side decision quantiles (no transport in the way) and the
		// capacity-safety audit.
		for _, name := range linkNames {
			st, err := srv.DecisionStats(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("link %-8s decisions %d  p50 %s  p95 %s  p99 %s (server-side)\n",
				name, st.Count, secs(st.P50), secs(st.P95), secs(st.P99))
			replay, err := srv.ReplayJournal(name)
			if err != nil {
				logx.Errorf("journal replay: %v", err)
				exit = 1
				continue
			}
			fmt.Printf("link %-8s replay: %d events, %d distinct admitted states all feasible, final active %d\n",
				name, replay.Events, replay.States, replay.FinalActive)
		}
	}
	if !sess.Finish() && exit == 0 {
		exit = 3
	}
	os.Exit(exit)
}

// parseClasses parses "spec*weight,..." ('*weight' optional, default 1).
func parseClasses(s string) ([]loadgen.Class, error) {
	var out []loadgen.Class
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		spec, weight := f, 1.0
		if i := strings.LastIndexByte(f, '*'); i >= 0 {
			w, err := strconv.ParseFloat(f[i+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("bad class weight in %q: %w", f, err)
			}
			spec, weight = f[:i], w
		}
		out = append(out, loadgen.Class{Spec: spec, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no classes in %q", s)
	}
	return out, nil
}

func secs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

func fatal(err error) {
	logx.Errorf("%v", err)
	os.Exit(1)
}
