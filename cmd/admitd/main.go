// Command admitd runs the online admission-control service: an HTTP/JSON
// daemon answering per-call CAC questions ("can I admit one more source
// of class X at QoS (delay, CLR)?") for heterogeneous VBR video mixes,
// with the telemetry exposition endpoints mounted alongside the API.
//
// Usage:
//
//	admitd [-listen :8080] [-links core:365566:20:1e-6,edge:96000:10:1e-5]
//	       [-estimator br|largen] [-journal] [-cache 8192]
//	       [-flight FILE] [-flight-interval DUR] [-slo RULES]
//	       [-profile DIR] [-profile-interval DUR] [-v|-quiet]
//
// Endpoints: POST /v1/admit, POST /v1/release, GET /v1/links,
// GET|POST /v1/quote, GET /healthz, plus /metrics, /vars, /debug/pprof/
// and — with -flight — /vars/history, the flight recorder's ring of
// recent metric snapshots.
//
// On SIGINT/SIGTERM the daemon drains in-flight requests (5 s bound),
// then runs a goroutine-leak check and exits non-zero if any worker
// survived the drain — the same gate the test suite applies, so a leaky
// build cannot pass a smoke run. With -slo RULES the snapshots are also
// evaluated online against SLO rules (p99 latency bounds, loss bands,
// stall detection; see internal/telemetry/slo) and a breached rule joins
// that same non-zero exit gate. With -profile DIR the continuous
// profiler captures periodic CPU/heap/goroutine snapshots of the serving
// process into a bounded store for profdiff.
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admitd"
	"repro/internal/cac"
	"repro/internal/leakcheck"
	"repro/internal/telemetry"
	"repro/internal/telemetry/obs"
)

var logx = telemetry.Log

func main() {
	var (
		listen    = flag.String("listen", ":8080", "address to serve on (host:port; port 0 for ephemeral)")
		links     = flag.String("links", "core:365566:20:1e-6", "comma-separated link specs, name:cells_per_sec:delay_ms:clr")
		estName   = flag.String("estimator", "br", "overflow estimator: br (Bahadur-Rao) or largen")
		journal   = flag.Bool("journal", false, "record the admit/release journal (unbounded memory; for audits and soaks)")
		cacheSize = flag.Int("cache", admitd.DefaultCacheSize, "per-link decision cache entries per generation")
		verbose   = flag.Bool("v", false, "debug logging")
		quiet     = flag.Bool("quiet", false, "errors only")
	)
	obsFlags := obs.AddFlags()
	flag.Parse()
	logx.SetPrefix("admitd")
	switch {
	case *verbose:
		logx.SetLevel(telemetry.LevelDebug)
	case *quiet:
		logx.SetLevel(telemetry.LevelError)
	}

	est, err := cac.ParseEstimator(*estName)
	if err != nil {
		fatal(err)
	}
	lcs, err := admitd.ParseLinkSpecs(*links)
	if err != nil {
		fatal(err)
	}
	sess, err := obsFlags.Start(telemetry.Default, "admitd")
	if err != nil {
		fatal(err)
	}
	srv := admitd.NewServer(admitd.Config{
		Estimator: est,
		Registry:  telemetry.Default,
		Journal:   *journal,
		CacheSize: *cacheSize,
		History:   sess.History(),
	})
	for _, lc := range lcs {
		if err := srv.AddLink(lc); err != nil {
			fatal(err)
		}
	}

	addr, err := srv.Start(*listen)
	if err != nil {
		fatal(err)
	}
	logx.Infof("serving on %s (links %s, estimator %s, journal %v)",
		addr, strings.Join(srv.LinkNames(), ","), est, *journal)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigc
	signal.Stop(sigc)
	logx.Infof("%v: draining", sig)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
	// Stop the recorder before the leak check — its sampling goroutine is
	// part of the daemon and must drain with it, not trip the gate.
	obsOK := sess.Finish()
	if leaked := leakcheck.WaitClean(3 * time.Second); len(leaked) > 0 {
		logx.Errorf("%d goroutine(s) survived the drain:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
		os.Exit(1)
	}
	// The SLO verdict folds into the same exit gate as the drain and leak
	// checks: a daemon that breached its latency or loss rules mid-soak
	// must not exit green.
	if !obsOK {
		os.Exit(1)
	}
	logx.Infof("drained clean")
}

func fatal(err error) {
	logx.Errorf("%v", err)
	os.Exit(1)
}
