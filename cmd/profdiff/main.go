// Command profdiff inspects and compares continuous-profiling stores
// (the -profile DIR output of repro/atmsim/admitd/admitload) and gates
// CI on them. It answers three questions: where did this run spend its
// CPU and allocations (report), how did that change between two runs
// (diff), and does the run still satisfy the committed attribution
// baseline (check) — the floor that catches a new code path forgetting
// its prof.Do labels long before anyone stares at a flame graph.
//
// Usage:
//
//	profdiff [-top 15] STORE                     # report one store
//	profdiff [-threshold 0.20] [-fail] OLD NEW   # diff two stores
//	profdiff -check BASELINE.json STORE          # gate vs committed baseline
//
// Diffs compare each function's *share* of the run's total, not raw
// nanoseconds: shares are stable across machines of different speeds,
// which is what lets a laptop profile diff against a CI runner's.
// Thresholds are direction-aware the same way benchdiff's are — CPU
// time and allocation columns regress upward — and functions below
// -minshare of either run are ignored as noise. The check mode decodes
// every live profile (a parse error is always a hard failure) and
// enforces the baseline's minimum label-attribution fraction.
//
// Exit status: 0 = clean; 1 = usage, I/O or profile parse error;
// 2 = gate failure (a regression with -fail, or a -check floor breach).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/telemetry"
	"repro/internal/telemetry/prof"
)

var logx = telemetry.Log

func main() {
	var (
		top       = flag.Int("top", 15, "rows in top-N tables")
		threshold = flag.Float64("threshold", 0.20, "fractional share worsening flagged as regression (0.20 = 20%)")
		minShare  = flag.Float64("minshare", 0.01, "ignore functions below this share of the total in both runs")
		failFlag  = flag.Bool("fail", false, "diff mode: exit 2 when regressions are found (default: report only)")
		check     = flag.String("check", "", "baseline JSON (e.g. results/golden/profile_attribution.json); gate STORE against it")
		verbose   = flag.Bool("v", false, "show all comparisons, not only interesting ones")
		quiet     = flag.Bool("quiet", false, "log errors only (overrides -v)")
	)
	flag.Parse()
	logx.SetPrefix("profdiff")
	logx.SetLevel(telemetry.LevelFromFlags(*verbose, *quiet))

	var code int
	switch {
	case *check != "":
		if flag.NArg() != 1 {
			usage()
		}
		code = runCheck(os.Stdout, *check, flag.Arg(0))
	case flag.NArg() == 1:
		code = runReport(os.Stdout, flag.Arg(0), *top)
	case flag.NArg() == 2:
		code = runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *minShare, *failFlag, *verbose)
	default:
		usage()
	}
	os.Exit(code)
}

func usage() {
	logx.Errorf("usage: profdiff [flags] STORE | profdiff [flags] OLD NEW | profdiff -check BASELINE.json STORE")
	os.Exit(1)
}

// openProfiles reads a store and decodes every live profile of one kind.
func openProfiles(dir, kind string) (*prof.Store, []*prof.Profile, error) {
	st, err := prof.ReadStore(dir)
	if err != nil {
		return nil, nil, err
	}
	ps, err := st.Profiles(kind)
	if err != nil {
		return nil, nil, err
	}
	return st, ps, nil
}

// runReport prints one store's header, top-N CPU and allocation tables,
// and the per-key label attribution summary.
func runReport(w io.Writer, dir string, top int) int {
	st, cpus, err := openProfiles(dir, prof.KindCPU)
	if err != nil {
		logx.Errorf("%v", err)
		return 1
	}
	h := st.Header
	fmt.Fprintf(w, "store %s: tool=%s start=%s %s rev=%s\n", dir, h.Tool, h.Start, h.GoVersion, h.GitRevision)
	fmt.Fprintf(w, "sets: %d live, %d evicted; kinds: %v\n", len(st.Live()), len(st.Sets)-len(st.Live()), st.Kinds())

	rows, total := prof.TopFunctions(cpus, "cpu", top)
	fmt.Fprintf(w, "\ncpu: %d windows, %.3f s sampled\n", len(cpus), float64(total)/1e9)
	printFuncs(w, rows, total, "s", 1e9)

	frac, labeled, tot := prof.Attribution(cpus, prof.Keys, "cpu")
	fmt.Fprintf(w, "\nlabel attribution: %.1f%% of cpu samples carry an experiment label (%.3f of %.3f s)\n",
		100*frac, float64(labeled)/1e9, float64(tot)/1e9)
	for _, key := range prof.Keys {
		byVal, keyLabeled, _ := prof.ByLabel(cpus, key, "cpu")
		if len(byVal) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-12s %5.1f%% labelled:", key, pct(keyLabeled, tot))
		for i, r := range byVal {
			if i == 5 {
				fmt.Fprintf(w, " …(%d more)", len(byVal)-i)
				break
			}
			fmt.Fprintf(w, " %s=%.1f%%", r.Value, pct(r.Total, tot))
		}
		fmt.Fprintln(w)
	}

	heaps, err := st.Profiles(prof.KindHeap)
	if err != nil {
		logx.Errorf("%v", err)
		return 1
	}
	if arows, atotal := prof.TopFunctions(heaps, "alloc_space", top); atotal > 0 {
		fmt.Fprintf(w, "\nalloc_space: %.1f MiB cumulative\n", float64(atotal)/(1<<20))
		printFuncs(w, arows, atotal, "MiB", 1<<20)
	}
	return 0
}

func printFuncs(w io.Writer, rows []prof.FuncTotal, total int64, unit string, scale float64) {
	fmt.Fprintf(w, "  %10s %6s %10s  %s\n", "flat "+unit, "flat%", "cum "+unit, "function")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10.3f %5.1f%% %10.3f  %s\n",
			float64(r.Flat)/scale, pct(r.Flat, total), float64(r.Cum)/scale, r.Name)
	}
}

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// shareDelta is one function's share-of-total comparison between two
// stores.
type shareDelta struct {
	Name     string
	Old, New float64 // shares in [0,1]
	// Regression is true when the share worsened by more than the
	// threshold in the column's worse direction (upward, for cpu and
	// allocation columns).
	Regression bool
}

// shares merges one value column across profiles into per-function flat
// shares of the grand total.
func shares(ps []*prof.Profile, valueType string) map[string]float64 {
	rows, total := prof.TopFunctions(ps, valueType, 0)
	out := make(map[string]float64, len(rows))
	if total == 0 {
		return out
	}
	for _, r := range rows {
		if r.Flat != 0 {
			out[r.Name] = float64(r.Flat) / float64(total)
		}
	}
	return out
}

// diffShares compares per-function shares. Functions below minShare in
// both runs are ignored; a function absent from one run has share 0
// there. CPU and allocation columns are lower-is-better, so a share
// increase beyond threshold (relative, against the old share) is a
// regression; a function newly above minShare with no old share at all
// is a new hotspot and also flags.
func diffShares(old, new map[string]float64, threshold, minShare float64) []shareDelta {
	names := map[string]bool{}
	for n := range old {
		names[n] = true
	}
	for n := range new {
		names[n] = true
	}
	var out []shareDelta
	for _, n := range sortedNames(names) {
		d := shareDelta{Name: n, Old: old[n], New: new[n]}
		if d.Old < minShare && d.New < minShare {
			continue
		}
		switch {
		case d.Old == 0:
			d.Regression = d.New >= minShare // new hotspot
		default:
			d.Regression = d.New/d.Old-1 > threshold
		}
		out = append(out, d)
	}
	// Worst first: biggest share growth leads the table.
	sort.SliceStable(out, func(i, j int) bool { return out[i].New-out[i].Old > out[j].New-out[j].Old })
	return out
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// runDiff compares two stores column by column and reports share
// regressions. Timing noise cancels out by construction — only the
// distribution of samples across functions matters.
func runDiff(w io.Writer, oldDir, newDir string, threshold, minShare float64, fail, verbose bool) int {
	nReg := 0
	for _, col := range []struct{ kind, valueType string }{
		{prof.KindCPU, "cpu"},
		{prof.KindHeap, "alloc_space"},
	} {
		_, oldPs, err := openProfiles(oldDir, col.kind)
		if err != nil {
			logx.Errorf("%v", err)
			return 1
		}
		_, newPs, err := openProfiles(newDir, col.kind)
		if err != nil {
			logx.Errorf("%v", err)
			return 1
		}
		oldSh, newSh := shares(oldPs, col.valueType), shares(newPs, col.valueType)
		if len(oldSh) == 0 && len(newSh) == 0 {
			continue
		}
		deltas := diffShares(oldSh, newSh, threshold, minShare)
		fmt.Fprintf(w, "%s share of total (threshold %.0f%%, min share %.1f%%):\n",
			col.valueType, 100*threshold, 100*minShare)
		fmt.Fprintf(w, "  %6s %6s %7s  %s\n", "old%", "new%", "delta", "function")
		shown := 0
		for _, d := range deltas {
			if d.Regression {
				nReg++
			}
			if !verbose && !d.Regression && abs(d.New-d.Old) < minShare {
				continue
			}
			mark := ""
			if d.Regression {
				mark = "  REGRESSION"
			}
			fmt.Fprintf(w, "  %5.1f%% %5.1f%% %+6.1fpp  %s%s\n",
				100*d.Old, 100*d.New, 100*(d.New-d.Old), d.Name, mark)
			shown++
		}
		if shown == 0 {
			fmt.Fprintf(w, "  (no function moved more than %.1fpp)\n", 100*minShare)
		}
	}
	fmt.Fprintf(w, "%d share regressions\n", nReg)
	if fail && nReg > 0 {
		return 2
	}
	return 0
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Baseline is the committed attribution contract a profile store must
// satisfy (results/golden/profile_attribution.json in CI). Zero-valued
// fields take defaults, so the file states only what it constrains.
type Baseline struct {
	SchemaVersion int `json:"schema_version"`
	// ValueType is the sample column the floor applies to (default cpu).
	ValueType string `json:"value_type,omitempty"`
	// Keys are the label keys that count as "attributed" (default: the
	// fixed experiment key set prof.Keys).
	Keys []string `json:"keys,omitempty"`
	// MinLabelAttribution is the floor on the fraction of samples
	// carrying at least one of Keys.
	MinLabelAttribution float64 `json:"min_label_attribution"`
	// MinLiveSets guards against a store that technically parses but
	// captured nothing (default 1).
	MinLiveSets int `json:"min_live_sets,omitempty"`
}

// runCheck gates a store against the committed baseline: every live
// profile of every kind must decode (parse errors are exit 1, the
// blocking class), and the label-attribution fraction must not drop
// below the committed floor (exit 2).
func runCheck(w io.Writer, baselinePath, dir string) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		logx.Errorf("%v", err)
		return 1
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		logx.Errorf("baseline %s: %v", baselinePath, err)
		return 1
	}
	if b.ValueType == "" {
		b.ValueType = "cpu"
	}
	if len(b.Keys) == 0 {
		b.Keys = prof.Keys
	}
	if b.MinLiveSets == 0 {
		b.MinLiveSets = 1
	}
	st, err := prof.ReadStore(dir)
	if err != nil {
		logx.Errorf("%v", err)
		return 1
	}
	var cpus []*prof.Profile
	for _, kind := range st.Kinds() {
		ps, err := st.Profiles(kind)
		if err != nil {
			logx.Errorf("%v", err)
			return 1
		}
		fmt.Fprintf(w, "%s: %d profiles decoded\n", kind, len(ps))
		if kind == prof.KindCPU {
			cpus = ps
		}
	}
	if live := len(st.Live()); live < b.MinLiveSets {
		fmt.Fprintf(w, "FAIL: %d live sets, baseline requires >= %d\n", live, b.MinLiveSets)
		return 2
	}
	frac, labeled, total := prof.Attribution(cpus, b.Keys, b.ValueType)
	fmt.Fprintf(w, "attribution(%v): %.1f%% of %s samples (%d of %d), floor %.1f%%\n",
		b.Keys, 100*frac, b.ValueType, labeled, total, 100*b.MinLabelAttribution)
	if frac < b.MinLabelAttribution {
		fmt.Fprintf(w, "FAIL: attribution below the committed floor — a code path is likely missing its prof.Do labels\n")
		return 2
	}
	fmt.Fprintf(w, "OK\n")
	return 0
}
