package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry/prof"
)

// writeStore builds a one-set synthetic store whose CPU profile spends
// the given nanoseconds per function. Functions named in labeled get a
// figure label; the rest stay unattributed.
func writeStore(t *testing.T, dir string, ns map[string]int64, labeled map[string]bool) {
	t.Helper()
	p := &prof.Profile{
		SampleTypes: []prof.ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
	}
	for _, fn := range sortedNames(toSet(ns)) {
		s := prof.Sample{Stack: []string{fn, "main.main"}, Values: []int64{1, ns[fn]}}
		if labeled[fn] {
			s.Labels = map[string]string{prof.KeyFigure: "fig8"}
		}
		p.Samples = append(p.Samples, s)
	}
	w, err := prof.CreateStore(dir, prof.StoreHeader{Tool: "test"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteSet(1.0, map[string][]byte{prof.KindCPU: prof.Encode(p)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func toSet(m map[string]int64) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func TestReportSingleStore(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, map[string]int64{"mux.lindleyStep": 900, "gc": 100},
		map[string]bool{"mux.lindleyStep": true})
	var out strings.Builder
	if code := runReport(&out, dir, 10); code != 0 {
		t.Fatalf("runReport = %d, want 0\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{"mux.lindleyStep", "label attribution: 90.0%", "figure"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestDiffDetectsInjectedRegression(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeStore(t, oldDir, map[string]int64{"hot": 600, "cold": 400}, nil)
	// Injected regression: "cold" grows from 40% to 70% of the run.
	writeStore(t, newDir, map[string]int64{"hot": 300, "cold": 700}, nil)
	var out strings.Builder
	code := runDiff(&out, oldDir, newDir, 0.20, 0.01, true, false)
	if code != 2 {
		t.Fatalf("runDiff = %d, want 2 (injected regression must gate)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("diff output does not flag the regression:\n%s", out.String())
	}
	// Without -fail the same diff reports but exits clean.
	if code := runDiff(&out, oldDir, newDir, 0.20, 0.01, false, false); code != 0 {
		t.Errorf("runDiff without -fail = %d, want 0", code)
	}
}

func TestDiffCleanOnIdenticalStores(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	ns := map[string]int64{"hot": 600, "cold": 400}
	writeStore(t, oldDir, ns, nil)
	writeStore(t, newDir, ns, nil)
	var out strings.Builder
	if code := runDiff(&out, oldDir, newDir, 0.20, 0.01, true, false); code != 0 {
		t.Fatalf("runDiff on identical stores = %d, want 0\n%s", code, out.String())
	}
}

func TestDiffFlagsNewHotspot(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeStore(t, oldDir, map[string]int64{"hot": 1000}, nil)
	writeStore(t, newDir, map[string]int64{"hot": 800, "sneaky": 200}, nil)
	var out strings.Builder
	if code := runDiff(&out, oldDir, newDir, 0.20, 0.01, true, false); code != 2 {
		t.Fatalf("runDiff = %d, want 2 (new hotspot must gate)\n%s", code, out.String())
	}
}

func TestCheckAgainstBaseline(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(`{"schema_version":1,"min_label_attribution":0.9}`), 0o644); err != nil {
		t.Fatal(err)
	}

	good := t.TempDir()
	writeStore(t, good, map[string]int64{"a": 950, "b": 50}, map[string]bool{"a": true})
	var out strings.Builder
	if code := runCheck(&out, base, good); code != 0 {
		t.Fatalf("runCheck(good) = %d, want 0\n%s", code, out.String())
	}

	bad := t.TempDir()
	writeStore(t, bad, map[string]int64{"a": 500, "b": 500}, map[string]bool{"a": true})
	out.Reset()
	if code := runCheck(&out, base, bad); code != 2 {
		t.Fatalf("runCheck(bad) = %d, want 2\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("check output does not explain the failure:\n%s", out.String())
	}
}

func TestCheckParseErrorIsBlocking(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(`{"schema_version":1,"min_label_attribution":0.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeStore(t, dir, map[string]int64{"a": 100}, map[string]bool{"a": true})
	// Corrupt the profile body: the check must fail hard (exit 1), not
	// report partial attribution.
	name := filepath.Join(dir, "cpu_000001.pb.gz")
	if err := os.WriteFile(name, []byte("\x1f\x8bnot a gzip stream at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := runCheck(&out, base, dir); code != 1 {
		t.Fatalf("runCheck(corrupt) = %d, want 1\n%s", code, out.String())
	}
}
