// Command acfgen prints the analytic autocorrelation function of one or
// more models — and optionally the empirical ACF of a generated sample
// path alongside — reproducing the data behind the paper's Figures 1 and 3.
//
// Usage:
//
//	acfgen [-models z:0.975,dar:0.975:2,l] [-maxlag 100] [-log]
//	       [-empirical 0] [-seed 1]
//
// With -empirical N > 0, a path of N frames is generated per model and its
// sample ACF printed next to the analytic one. With -log, lags are sampled
// geometrically (for tail plots).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/modelspec"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func main() {
	var (
		specs     = flag.String("models", "z:0.975,dar:0.975:1", "comma-separated model specs")
		maxLag    = flag.Int("maxlag", 100, "largest lag")
		logLags   = flag.Bool("log", false, "geometric lag spacing (tail view)")
		empirical = flag.Int("empirical", 0, "if > 0, frames of sample path for empirical ACF")
		seed      = flag.Int64("seed", 1, "seed for empirical paths")
	)
	flag.Parse()

	ms, err := modelspec.ParseList(*specs)
	if err != nil {
		fatal(err)
	}
	if *maxLag < 1 {
		fatal(fmt.Errorf("maxlag must be ≥ 1"))
	}

	var lags []int
	if *logLags {
		prev := 0
		for f := 1.0; f <= float64(*maxLag); f *= 1.3 {
			if k := int(f); k > prev {
				lags = append(lags, k)
				prev = k
			}
		}
	} else {
		for k := 1; k <= *maxLag; k++ {
			lags = append(lags, k)
		}
	}

	empACF := map[string][]float64{}
	if *empirical > 0 {
		for _, m := range ms {
			xs := traffic.Generate(m.NewGenerator(*seed), *empirical)
			empACF[m.Name()] = stats.ACF(xs, *maxLag)
		}
	}

	fmt.Printf("%-8s", "lag")
	for _, m := range ms {
		fmt.Printf(" %14s", m.Name())
		if *empirical > 0 {
			fmt.Printf(" %14s", "empirical")
		}
	}
	fmt.Println()
	for _, k := range lags {
		fmt.Printf("%-8d", k)
		for _, m := range ms {
			fmt.Printf(" %14.6g", m.ACF(k))
			if *empirical > 0 {
				fmt.Printf(" %14.6g", empACF[m.Name()][k])
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	telemetry.Log.SetPrefix("acfgen")
	telemetry.Log.Errorf("%v", err)
	os.Exit(1)
}
