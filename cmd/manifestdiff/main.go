// Command manifestdiff compares two run manifests series by series and
// reports numerical drift — the scientific audit that turns "the numbers
// look similar" into a machine-checkable gate. CI diffs every fixed-seed
// smoke run against a committed golden manifest, so an unintended change
// to any result (a solver tweak, a generator reorder, a compiler surprise)
// fails the build instead of silently shifting a figure.
//
// Usage:
//
//	manifestdiff [-rtol 1e-9] [-atol 0] [-series PAT=RTOL,...]
//	             [-fail-on-drift] [-v] [-quiet] GOLDEN CANDIDATE
//
// Two values match when |a−b| ≤ atol + rtol·max(|a|,|b|); the default
// rtol 1e-9 treats last-bit float formatting differences as equal while
// catching any real change. Per-series overrides ("fig8a/*=1e-6") use
// path.Match globs against "resultID/seriesLabel" and take the first
// matching pattern. Missing results, missing series, length mismatches and
// seed mismatches are always drift. Exit status: 0 = no drift, 1 = usage
// or I/O error, 2 = drift detected (with -fail-on-drift; without it the
// report is printed and the exit is 0, for exploratory comparisons).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

var logx = telemetry.Log

func main() {
	var (
		rtol    = flag.Float64("rtol", 1e-9, "default relative tolerance")
		atol    = flag.Float64("atol", 0, "absolute tolerance added to the relative term")
		series  = flag.String("series", "", "per-series overrides: comma-separated glob=rtol pairs matched against resultID/seriesLabel (e.g. 'fig8a/*=1e-6')")
		failDr  = flag.Bool("fail-on-drift", false, "exit with status 2 when any drift is found")
		verbose = flag.Bool("v", false, "report every compared series, not just drifting ones")
		quiet   = flag.Bool("quiet", false, "log errors only (overrides -v)")
	)
	flag.Parse()
	logx.SetPrefix("manifestdiff")
	logx.SetLevel(telemetry.LevelFromFlags(*verbose, *quiet))
	if flag.NArg() != 2 {
		logx.Errorf("usage: manifestdiff [flags] GOLDEN CANDIDATE")
		os.Exit(1)
	}
	overrides, err := parseOverrides(*series)
	if err != nil {
		fatal(err)
	}
	golden, err := telemetry.ReadManifest(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cand, err := telemetry.ReadManifest(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	d := differ{rtol: *rtol, atol: *atol, overrides: overrides}
	d.compare(golden, cand)

	if d.drifts == 0 {
		logx.Infof("no drift: %d series compared, %d values within tolerance", d.seriesSeen, d.valuesSeen)
		return
	}
	fmt.Fprintf(os.Stderr, "manifestdiff: %d drift(s) across %d series (%d values compared)\n",
		d.drifts, d.seriesSeen, d.valuesSeen)
	if *failDr {
		os.Exit(2)
	}
}

// differ accumulates the comparison state and report.
type differ struct {
	rtol, atol float64
	overrides  []override

	seriesSeen int
	valuesSeen int
	drifts     int
}

type override struct {
	pattern string
	rtol    float64
}

// parseOverrides decodes "glob=rtol,glob=rtol" and validates the globs
// eagerly so a typo fails at startup, not silently at match time.
func parseOverrides(s string) ([]override, error) {
	var out []override
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pat, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -series entry %q (want glob=rtol)", part)
		}
		r, err := strconv.ParseFloat(val, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad tolerance in -series entry %q", part)
		}
		if _, err := path.Match(pat, "probe"); err != nil {
			return nil, fmt.Errorf("bad glob in -series entry %q: %w", part, err)
		}
		out = append(out, override{pattern: pat, rtol: r})
	}
	return out, nil
}

// tolFor returns the relative tolerance for a series key
// ("resultID/label"), first matching override wins.
func (d *differ) tolFor(key string) float64 {
	for _, o := range d.overrides {
		if ok, _ := path.Match(o.pattern, key); ok {
			return o.rtol
		}
	}
	return d.rtol
}

func (d *differ) drift(format string, args ...any) {
	d.drifts++
	fmt.Printf("DRIFT  "+format+"\n", args...)
}

func (d *differ) compare(golden, cand *telemetry.Manifest) {
	// Seeds gate everything: two runs with different seeds are expected to
	// differ, so comparing their numbers would only produce noise.
	if golden.Header.Seed != cand.Header.Seed {
		d.drift("header: seed %d (golden) != %d (candidate); numeric comparison skipped",
			golden.Header.Seed, cand.Header.Seed)
		return
	}
	candRes := map[string]telemetry.ResultRecord{}
	for _, r := range cand.Results {
		candRes[r.ID] = r
	}
	for _, gr := range golden.Results {
		cr, ok := candRes[gr.ID]
		if !ok {
			d.drift("%s: result missing from candidate", gr.ID)
			continue
		}
		d.compareResult(gr, cr)
	}
}

func (d *differ) compareResult(gr, cr telemetry.ResultRecord) {
	candSeries := map[string]telemetry.SeriesRecord{}
	for _, s := range cr.Series {
		candSeries[s.Label] = s
	}
	for _, gs := range gr.Series {
		key := gr.ID + "/" + gs.Label
		cs, ok := candSeries[gs.Label]
		if !ok {
			d.drift("%s: series missing from candidate", key)
			continue
		}
		d.seriesSeen++
		rtol := d.tolFor(key)
		before := d.drifts
		d.compareVec(key, "x", gs.X, cs.X, rtol)
		d.compareVec(key, "y", gs.Y, cs.Y, rtol)
		d.compareVec(key, "lo", gs.Lo, cs.Lo, rtol)
		d.compareVec(key, "hi", gs.Hi, cs.Hi, rtol)
		if d.drifts == before {
			logx.Debugf("%s: ok (%d points, rtol %g)", key, len(gs.Y), rtol)
		}
	}
}

func (d *differ) compareVec(key, col string, g, c []float64, rtol float64) {
	if len(g) != len(c) {
		d.drift("%s.%s: length %d (golden) != %d (candidate)", key, col, len(g), len(c))
		return
	}
	for i := range g {
		d.valuesSeen++
		if !withinTol(g[i], c[i], rtol, d.atol) {
			d.drift("%s.%s[%d]: %.17g (golden) != %.17g (candidate), rel err %.3g, rtol %g",
				key, col, i, g[i], c[i], relErr(g[i], c[i]), rtol)
		}
	}
}

// withinTol implements |a−b| ≤ atol + rtol·max(|a|,|b|), with NaN equal to
// NaN (a manifest recording NaN twice has not drifted).
func withinTol(a, b, rtol, atol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	//lint:floateq bit-identical values (incl. ±Inf, where the tolerance arithmetic would produce NaN) are never drift
	if a == b {
		return true
	}
	return math.Abs(a-b) <= atol+rtol*math.Max(math.Abs(a), math.Abs(b))
}

// relErr reports |a−b|/max(|a|,|b|) for drift messages (0 when both zero).
func relErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func fatal(err error) {
	logx.Errorf("%v", err)
	os.Exit(1)
}
