package main

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
	"repro/internal/telemetry/prof"
	"repro/internal/telemetry/slo"
)

// writeLog records a short synthetic run and returns the flight log path.
func writeLog(t *testing.T) string {
	t.Helper()
	reg := telemetry.NewRegistry()
	c := reg.Counter("cells_total")
	g := reg.Gauge("occupancy")
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r, err := flight.Start(reg, flight.Options{Interval: flight.DefaultInterval, Path: path, Tool: "obsreport-test"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		c.Add(int64(10 * i))
		g.Set(float64(i))
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlightSectionAndMarkdown(t *testing.T) {
	path := writeLog(t)
	lg, err := flight.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	sec := buildFlightSection(lg, 40)
	if sec.Frames != len(lg.Frames) {
		t.Fatalf("frames %d != %d", sec.Frames, len(lg.Frames))
	}
	if len(sec.Series) == 0 {
		t.Fatal("no active series found")
	}
	names := map[string]bool{}
	for _, s := range sec.Series {
		names[s.Name] = true
		if len(s.Values) != sec.Frames {
			t.Errorf("series %s has %d values for %d frames", s.Name, len(s.Values), sec.Frames)
		}
		if s.Spark == "" {
			t.Errorf("series %s has empty sparkline", s.Name)
		}
	}
	if !names["cells_total"] || !names["occupancy"] {
		t.Fatalf("missing series: %v", names)
	}

	// Bounds that hold at the baseline frame too (frame 0 reads absent
	// counters as zero, by design).
	rules, err := slo.ParseList("value(cells_total) <= 1000; stalled(occupancy) <= 1")
	if err != nil {
		t.Fatal(err)
	}
	eng := slo.NewEngine(nil, rules)
	for _, f := range lg.Frames {
		eng.Observe(f.Metrics, f.ElapsedSeconds)
	}
	v := eng.Verdict()
	rep := Report{Flight: sec, SLO: &v}
	md := rep.Markdown()
	for _, want := range []string{"## Flight recording", "cells_total", "## SLO verdict", "PASS"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if v.Failed {
		t.Fatalf("verdict failed: %s", v.Summary())
	}
}

// writeBridgedLog records a flight log with the runtime/metrics bridge
// attached, so frames carry go_* runtime-health metrics.
func writeBridgedLog(t *testing.T) string {
	t.Helper()
	reg := telemetry.NewRegistry()
	c := reg.Counter("cells_total")
	bridge := prof.NewRuntimeBridge(reg)
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r, err := flight.Start(reg, flight.Options{
		Interval: flight.DefaultInterval, Path: path, Tool: "obsreport-test",
		BeforeSnapshot: bridge.Poll,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Add(7)
	// /gc/heap/live:bytes only updates at the end of a GC cycle; force one
	// so the final frame carries a live heap figure.
	runtime.GC()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRuntimeSection(t *testing.T) {
	lg, err := flight.ReadLog(writeBridgedLog(t))
	if err != nil {
		t.Fatal(err)
	}
	sec := buildRuntimeSection(lg)
	if sec == nil {
		t.Fatal("no runtime section from a bridged log")
	}
	if sec.Goroutines == nil || sec.GoroutineHighWater < 1 {
		t.Errorf("goroutine high-water = %v, want >= 1", sec.GoroutineHighWater)
	}
	if sec.HeapLive == nil || sec.HeapLive.Last <= 0 {
		t.Errorf("heap live series missing or zero: %+v", sec.HeapLive)
	}
	md := Report{Runtime: sec}.Markdown()
	for _, want := range []string{"## Runtime health", "go_goroutines", "go_heap_live_bytes", "high-water"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}

	// A log without bridge metrics yields no section at all.
	plain, err := flight.ReadLog(writeLog(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := buildRuntimeSection(plain); got != nil {
		t.Errorf("unbridged log produced a runtime section: %+v", got)
	}
}

func TestProfileSection(t *testing.T) {
	dir := t.TempDir()
	p := &prof.Profile{
		SampleTypes: []prof.ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Samples: []prof.Sample{
			{Stack: []string{"mux.lindleyStep", "mux.Run"}, Values: []int64{900},
				Labels: map[string]string{prof.KeyFigure: "fig8", prof.KeyPath: "chunked"}},
			{Stack: []string{"runtime.gcBgMarkWorker"}, Values: []int64{100}},
		},
	}
	w, err := prof.CreateStore(dir, prof.StoreHeader{Tool: "test"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteSet(1.0, map[string][]byte{prof.KindCPU: prof.Encode(p)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sec, err := buildProfileSection(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sec.Attribution != 0.9 { //lint:floateq 900 of 1000 synthetic nanos is exact
		t.Errorf("attribution = %v, want 0.9", sec.Attribution)
	}
	if sec.CPUWindows != 1 || sec.LiveSets != 1 {
		t.Errorf("coverage: %+v", sec)
	}
	md := Report{Profile: sec}.Markdown()
	for _, want := range []string{"## Profile attribution", "mux.lindleyStep", "90.0%", "figure", "fig8"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}); got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}); got != "▄▄▄" {
		t.Errorf("constant sparkline %q", got)
	}
	if got := sparkline(nil); got != "" {
		t.Errorf("empty sparkline %q", got)
	}
}

func TestDeltasAndActivity(t *testing.T) {
	d := deltas([]float64{10, 15, 15, 30})
	want := []float64{10, 5, 0, 15}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("deltas = %v, want %v", d, want)
		}
	}
	flat := MetricSeries{Min: 0, Max: 0}
	if activity(flat) != 0 {
		t.Error("flat series should rank zero")
	}
	busy := MetricSeries{Min: 0, Max: 10}
	if activity(busy) <= activity(flat) {
		t.Error("busy series should outrank flat")
	}
}
