package main

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/telemetry"
)

// sparkBars is the eight-level unicode bar alphabet.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as one bar per frame, scaled to the series'
// own [min, max]. A constant series renders mid-level bars; non-finite
// values render as spaces.
func sparkline(vs []float64) string {
	mn, mx := minMax(vs)
	span := mx - mn
	var b strings.Builder
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteByte(' ')
			continue
		}
		if span == 0 {
			b.WriteRune(sparkBars[3])
			continue
		}
		i := int((v - mn) / span * float64(len(sparkBars)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(sparkBars) {
			i = len(sparkBars) - 1
		}
		b.WriteRune(sparkBars[i])
	}
	return b.String()
}

// Markdown renders the full run report.
func (r Report) Markdown() string {
	var b strings.Builder
	b.WriteString("# Run report\n")
	if r.Manifest != nil {
		writeManifestSection(&b, r)
	}
	if r.Flight != nil {
		writeFlightSection(&b, r.Flight)
	}
	if r.Runtime != nil {
		writeRuntimeSection(&b, r.Runtime)
	}
	if r.Profile != nil {
		writeProfileSection(&b, r.Profile)
	}
	if r.SLO != nil {
		writeSLOSection(&b, r)
	}
	return b.String()
}

// writeRuntimeSection renders the Go-runtime health view: GC pause and
// heap sparklines plus the goroutine high-water mark.
func writeRuntimeSection(b *strings.Builder, rt *RuntimeSection) {
	fmt.Fprintf(b, "\n## Runtime health\n\n")
	fmt.Fprintf(b, "%d GC pauses over %.4g cycles; goroutine high-water %.0f.\n",
		rt.GCPauses, rt.GCCycles, rt.GoroutineHighWater)
	fmt.Fprintf(b, "\n| metric | series | min | max | last |\n|---|---|---|---|---|\n")
	for _, ms := range []*MetricSeries{rt.GCPauseP99, rt.HeapLive, rt.Goroutines} {
		if ms == nil {
			continue
		}
		fmt.Fprintf(b, "| `%s` | `%s` | %.4g | %.4g | %.4g |\n",
			ms.Name, ms.Spark, ms.Min, ms.Max, ms.Last)
	}
}

// writeProfileSection renders the continuous-profiling store summary:
// top-N CPU functions and the experiment-label attribution table.
func writeProfileSection(b *strings.Builder, p *ProfileSection) {
	fmt.Fprintf(b, "\n## Profile attribution\n\n")
	fmt.Fprintf(b, "Store `%s`: %d live sets (%d evicted), kinds %v, %d CPU windows totalling %.3fs sampled (tool `%s`, revision `%s`).\n",
		p.Dir, p.LiveSets, p.EvictedSets, p.Kinds, p.CPUWindows,
		float64(p.TotalCPUNanos)/1e9, p.Header.Tool, p.Header.GitRevision)
	fmt.Fprintf(b, "\n**%.1f%%** of sampled CPU carries an experiment label.\n", 100*p.Attribution)
	if len(p.Top) > 0 {
		fmt.Fprintf(b, "\n| function | flat | flat%% | cum |\n|---|---|---|---|\n")
		for _, fn := range p.Top {
			pctv := 0.0
			if p.TotalCPUNanos > 0 {
				pctv = 100 * float64(fn.Flat) / float64(p.TotalCPUNanos)
			}
			fmt.Fprintf(b, "| `%s` | %.3fs | %.1f%% | %.3fs |\n",
				fn.Name, float64(fn.Flat)/1e9, pctv, float64(fn.Cum)/1e9)
		}
	}
	if len(p.Keys) > 0 {
		fmt.Fprintf(b, "\n| label key | labelled | busiest values |\n|---|---|---|\n")
		for _, ka := range p.Keys {
			vals := make([]string, 0, len(ka.Top))
			for _, lt := range ka.Top {
				share := 0.0
				if p.TotalCPUNanos > 0 {
					share = 100 * float64(lt.Total) / float64(p.TotalCPUNanos)
				}
				vals = append(vals, fmt.Sprintf("%s (%.1f%%)", lt.Value, share))
			}
			fmt.Fprintf(b, "| `%s` | %.1f%% | %s |\n", ka.Key, ka.LabeledPct, strings.Join(vals, ", "))
		}
	}
}

func writeManifestSection(b *strings.Builder, r Report) {
	m := r.Manifest
	fmt.Fprintf(b, "\n## Run\n\n")
	fmt.Fprintf(b, "| field | value |\n|---|---|\n")
	fmt.Fprintf(b, "| tool | `%s` |\n", m.Header.Tool)
	if len(m.Header.Args) > 0 {
		fmt.Fprintf(b, "| args | `%s` |\n", strings.Join(m.Header.Args, " "))
	}
	fmt.Fprintf(b, "| start | %s |\n", m.Header.Start)
	fmt.Fprintf(b, "| seed | %d |\n", m.Header.Seed)
	fmt.Fprintf(b, "| go | %s |\n", m.Header.GoVersion)
	fmt.Fprintf(b, "| revision | `%s` |\n", m.Header.GitRevision)
	if m.Summary != nil {
		fmt.Fprintf(b, "| wall | %.2fs |\n", m.Summary.WallSeconds)
		fmt.Fprintf(b, "| cpu | %.2fs |\n", m.Summary.CPUSeconds)
	} else {
		fmt.Fprintf(b, "| summary | *missing — run was interrupted* |\n")
	}

	if len(m.Stages) > 0 {
		fmt.Fprintf(b, "\n## Stages\n\n| stage | wall | status |\n|---|---|---|\n")
		for _, s := range m.Stages {
			status := "ok"
			if s.Err != "" {
				status = "ERROR: " + s.Err
			}
			fmt.Fprintf(b, "| %s | %.2fs | %s |\n", s.ID, s.WallSeconds, status)
		}
	}

	if len(m.Results) > 0 {
		fmt.Fprintf(b, "\n## Results\n\n| result | title | series | points |\n|---|---|---|---|\n")
		for _, res := range m.Results {
			points := 0
			for _, s := range res.Series {
				points += len(s.Y)
			}
			fmt.Fprintf(b, "| %s | %s | %d | %d |\n", res.ID, res.Title, len(res.Series), points)
		}
	}

	if m.Summary != nil && len(m.Summary.Spans) > 0 {
		fmt.Fprintf(b, "\n## Span summary\n\n| span | count | total | min | max |\n|---|---|---|---|---|\n")
		for _, sp := range m.Summary.Spans {
			fmt.Fprintf(b, "| %s | %d | %.3fs | %.3fs | %.3fs |\n",
				sp.Name, sp.Count, sp.TotalSeconds, sp.MinSeconds, sp.MaxSeconds)
		}
	}
}

func writeFlightSection(b *strings.Builder, f *FlightSection) {
	fmt.Fprintf(b, "\n## Flight recording\n\n")
	fmt.Fprintf(b, "%d frames over %.1fs (cadence %.2gs, tool `%s`, revision `%s`).\n",
		f.Frames, f.DurationSeconds, f.Header.IntervalSeconds, f.Header.Tool, f.Header.GitRevision)
	if len(f.Series) == 0 {
		fmt.Fprintf(b, "\nNo metric moved during the recording.\n")
		return
	}
	fmt.Fprintf(b, "Showing %d active series of %d recorded (counters as per-frame deltas, gauges as levels).\n",
		len(f.Series), f.TotalSeries)
	fmt.Fprintf(b, "\n| metric | mode | series | min | max | last |\n|---|---|---|---|---|---|\n")
	for _, s := range f.Series {
		fmt.Fprintf(b, "| `%s` | %s | `%s` | %.4g | %.4g | %.4g |\n",
			seriesName(s), s.Mode, s.Spark, s.Min, s.Max, s.Last)
	}
}

func seriesName(s MetricSeries) string {
	return instrumentKey(telemetry.Snapshot{Name: s.Name, Labels: s.Labels})
}

func writeSLOSection(b *strings.Builder, r Report) {
	v := r.SLO
	verdict := "**PASS**"
	if v.Failed {
		verdict = "**FAIL**"
	}
	fmt.Fprintf(b, "\n## SLO verdict: %s\n\n", verdict)
	fmt.Fprintf(b, "| rule | evals | breaches | last | status |\n|---|---|---|---|---|\n")
	for _, rr := range v.Rules {
		status := "pass"
		if !rr.Pass {
			status = "FAIL"
			if rr.Note != "" {
				status += " — " + rr.Note
			}
			if rr.LastBreach != "" {
				status += " — " + rr.LastBreach
			}
		}
		fmt.Fprintf(b, "| `%s` | %d | %d | %.4g | %s |\n",
			rr.Rule, rr.Evaluations, rr.Breaches, rr.LastValue, status)
	}
}
