// Command obsreport merges a run's observability artifacts — manifest,
// flight log, span summary, and SLO verdicts — into one self-contained
// run report: what ran, what it produced, how its metrics evolved over
// time (per-metric sparkline series), and whether it met its objectives.
//
// Usage:
//
//	obsreport [-manifest FILE] [-flight FILE] [-slo RULES]
//	          [-format md|json] [-out FILE] [-max-series 40]
//	          [-fail-on-breach] [-v] [-quiet]
//
// At least one of -manifest and -flight is required. SLO rules (same
// syntax as the online -slo flag on the run binaries; see
// internal/telemetry/slo) are replayed offline over the decoded flight
// frames, so a soak recorded yesterday can be judged against objectives
// written today. Exit status: 0 = report written (and SLOs green, if any),
// 1 = usage or I/O error, 2 = SLO breach with -fail-on-breach.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
	"repro/internal/telemetry/slo"
)

var logx = telemetry.Log

func main() {
	var (
		manifestPath = flag.String("manifest", "", "run manifest (JSONL) to fold into the report")
		flightPath   = flag.String("flight", "", "flight log (JSONL) to fold into the report")
		rules        = flag.String("slo", "", "semicolon-separated SLO rules replayed over the flight log")
		format       = flag.String("format", "md", "report format: md or json")
		out          = flag.String("out", "", "output file (default stdout)")
		maxSeries    = flag.Int("max-series", 40, "cap on sparkline series in the flight section (most active first)")
		failBreach   = flag.Bool("fail-on-breach", false, "exit with status 2 when any SLO rule fails")
		verbose      = flag.Bool("v", false, "verbose logging (debug level)")
		quiet        = flag.Bool("quiet", false, "log errors only (overrides -v)")
	)
	flag.Parse()
	logx.SetPrefix("obsreport")
	logx.SetLevel(telemetry.LevelFromFlags(*verbose, *quiet))
	if *manifestPath == "" && *flightPath == "" {
		logx.Errorf("usage: obsreport -manifest FILE and/or -flight FILE [flags]")
		os.Exit(1)
	}
	if *format != "md" && *format != "json" {
		fatal(fmt.Errorf("unknown -format %q (want md or json)", *format))
	}

	rep := Report{}
	if *manifestPath != "" {
		m, err := telemetry.ReadManifest(*manifestPath)
		if err != nil {
			fatal(err)
		}
		rep.Manifest = m
	}
	if *flightPath != "" {
		lg, err := flight.ReadLog(*flightPath)
		if err != nil {
			fatal(err)
		}
		rep.Flight = buildFlightSection(lg, *maxSeries)
		if *rules != "" {
			rs, err := slo.ParseList(*rules)
			if err != nil {
				fatal(err)
			}
			eng := slo.NewEngine(nil, rs)
			for _, f := range lg.Frames {
				eng.Observe(f.Metrics, f.ElapsedSeconds)
			}
			v := eng.Verdict()
			rep.SLO = &v
		}
	} else if *rules != "" {
		fatal(fmt.Errorf("-slo needs a -flight log to replay against"))
	}

	var body string
	if *format == "json" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		body = string(b) + "\n"
	} else {
		body = rep.Markdown()
	}
	if *out == "" {
		fmt.Print(body)
	} else if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
		fatal(err)
	} else {
		logx.Infof("wrote %s report to %s", *format, *out)
	}
	if rep.SLO != nil && rep.SLO.Failed {
		logx.Errorf("SLO verdict: FAILED\n%s", rep.SLO.Summary())
		if *failBreach {
			os.Exit(2)
		}
	}
}

// Report is the merged run report (the -format json output shape).
type Report struct {
	Manifest *telemetry.Manifest `json:"manifest,omitempty"`
	Flight   *FlightSection      `json:"flight,omitempty"`
	SLO      *slo.Verdict        `json:"slo,omitempty"`
}

// FlightSection summarises a flight log: identity, coverage, and one
// sparkline series per active metric.
type FlightSection struct {
	Header          flight.LogHeader `json:"header"`
	Frames          int              `json:"frames"`
	DurationSeconds float64          `json:"duration_seconds"`
	TotalSeries     int              `json:"total_series"`
	Series          []MetricSeries   `json:"series"` // active metrics, most active first, capped
}

// MetricSeries is one metric's evolution across frames. Counters and
// histogram counts are shown as per-frame deltas ("flow"), gauges and
// quantiles as absolute levels.
type MetricSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   telemetry.Kind    `json:"kind"`
	Mode   string            `json:"mode"` // "delta" or "level"
	Values []float64         `json:"values"`
	Spark  string            `json:"spark"`
	Min    float64           `json:"min"`
	Max    float64           `json:"max"`
	Last   float64           `json:"last"`
}

// buildFlightSection extracts per-metric series from decoded frames,
// keeping the max most active (largest |max−min|·relative movement) so a
// registry with hundreds of static instruments reports only what moved.
func buildFlightSection(lg *flight.Log, max int) *FlightSection {
	sec := &FlightSection{Header: lg.Header, Frames: len(lg.Frames)}
	if len(lg.Frames) == 0 {
		return sec
	}
	sec.DurationSeconds = lg.Frames[len(lg.Frames)-1].ElapsedSeconds

	type track struct {
		meta   telemetry.Snapshot
		values []float64 // raw observed value per frame (padded on first sight)
	}
	tracks := make(map[string]*track)
	keys := []string{}
	for fi, f := range lg.Frames {
		for _, m := range f.Metrics {
			key := instrumentKey(m)
			tr, ok := tracks[key]
			if !ok {
				tr = &track{meta: m}
				// Metrics that appear mid-run backfill zeros so every
				// series spans all frames.
				tr.values = make([]float64, fi)
				tracks[key] = tr
				keys = append(keys, key)
			}
			tr.values = append(tr.values, rawValue(m))
		}
		// Metrics absent from this frame (can't happen today — frames are
		// full snapshots — but cheap to guard) carry their last value.
		for _, key := range keys {
			tr := tracks[key]
			if len(tr.values) <= fi {
				tr.values = append(tr.values, tr.values[len(tr.values)-1])
			}
		}
	}
	sec.TotalSeries = len(keys)
	sort.Strings(keys)

	for _, key := range keys {
		tr := tracks[key]
		ms := MetricSeries{
			Name:   tr.meta.Name,
			Labels: tr.meta.Labels,
			Kind:   tr.meta.Kind,
		}
		switch tr.meta.Kind {
		case telemetry.KindCounter, telemetry.KindFloatCounter, telemetry.KindHistogram, telemetry.KindTimer:
			ms.Mode = "delta"
			ms.Values = deltas(tr.values)
		default:
			ms.Mode = "level"
			ms.Values = tr.values
		}
		ms.Min, ms.Max = minMax(ms.Values)
		if len(tr.values) > 0 {
			ms.Last = tr.values[len(tr.values)-1]
		}
		if ms.Min == ms.Max && ms.Min == 0 { //lint:floateq exact zero marks a series that never moved — drop it from the report
			continue
		}
		ms.Spark = sparkline(ms.Values)
		sec.Series = append(sec.Series, ms)
	}
	// Most active first: widest dynamic range relative to magnitude wins.
	sort.SliceStable(sec.Series, func(i, j int) bool {
		return activity(sec.Series[i]) > activity(sec.Series[j])
	})
	if len(sec.Series) > max {
		logx.Infof("flight section capped at %d of %d active series (-max-series)", max, len(sec.Series))
		sec.Series = sec.Series[:max]
	}
	return sec
}

// rawValue reads the trackable scalar from a snapshot: counters and gauges
// their value, distributions their cumulative count.
func rawValue(m telemetry.Snapshot) float64 {
	switch m.Kind {
	case telemetry.KindHistogram, telemetry.KindTimer:
		return float64(m.Count)
	}
	return m.Value
}

func deltas(vs []float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs))
	out[0] = vs[0]
	for i := 1; i < len(vs); i++ {
		out[i] = vs[i] - vs[i-1]
	}
	return out
}

func minMax(vs []float64) (float64, float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	mn, mx := vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// activity ranks series for the report cap: range normalised by magnitude,
// so a counter ticking in the millions and a gauge wobbling around 0.1
// compete fairly.
func activity(ms MetricSeries) float64 {
	span := ms.Max - ms.Min
	scale := ms.Max
	if -ms.Min > scale {
		scale = -ms.Min
	}
	if scale == 0 {
		return 0
	}
	return span / scale
}

// instrumentKey renders name{k=v,...} with sorted labels.
func instrumentKey(s telemetry.Snapshot) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func fatal(err error) {
	logx.Errorf("%v", err)
	os.Exit(1)
}
