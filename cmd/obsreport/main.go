// Command obsreport merges a run's observability artifacts — manifest,
// flight log, profile store, span summary, and SLO verdicts — into one
// self-contained run report: what ran, what it produced, how its metrics
// evolved over time (per-metric sparkline series), how the Go runtime
// behaved (GC pause and heap sparklines, goroutine high-water mark),
// where the CPU went (top-N profile attribution), and whether it met its
// objectives.
//
// Usage:
//
//	obsreport [-manifest FILE] [-flight FILE] [-profile DIR] [-slo RULES]
//	          [-format md|json] [-out FILE] [-max-series 40] [-top 10]
//	          [-fail-on-breach] [-v] [-quiet]
//
// At least one of -manifest, -flight and -profile is required. SLO rules
// (same syntax as the online -slo flag on the run binaries; see
// internal/telemetry/slo) are replayed offline over the decoded flight
// frames, so a soak recorded yesterday can be judged against objectives
// written today. The runtime-health section appears when the flight log
// carries the go_* metrics of the runtime/metrics bridge (any -flight
// run records them); the profile section reads a -profile DIR store
// written by the continuous profiler. Exit status: 0 = report written
// (and SLOs green, if any), 1 = usage or I/O error, 2 = SLO breach with
// -fail-on-breach.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
	"repro/internal/telemetry/prof"
	"repro/internal/telemetry/slo"
)

var logx = telemetry.Log

func main() {
	var (
		manifestPath = flag.String("manifest", "", "run manifest (JSONL) to fold into the report")
		flightPath   = flag.String("flight", "", "flight log (JSONL) to fold into the report")
		profileDir   = flag.String("profile", "", "continuous-profiling store directory to fold into the report")
		topN         = flag.Int("top", 10, "rows in the profile section's top-functions table")
		rules        = flag.String("slo", "", "semicolon-separated SLO rules replayed over the flight log")
		format       = flag.String("format", "md", "report format: md or json")
		out          = flag.String("out", "", "output file (default stdout)")
		maxSeries    = flag.Int("max-series", 40, "cap on sparkline series in the flight section (most active first)")
		failBreach   = flag.Bool("fail-on-breach", false, "exit with status 2 when any SLO rule fails")
		verbose      = flag.Bool("v", false, "verbose logging (debug level)")
		quiet        = flag.Bool("quiet", false, "log errors only (overrides -v)")
	)
	flag.Parse()
	logx.SetPrefix("obsreport")
	logx.SetLevel(telemetry.LevelFromFlags(*verbose, *quiet))
	if *manifestPath == "" && *flightPath == "" && *profileDir == "" {
		logx.Errorf("usage: obsreport -manifest FILE, -flight FILE and/or -profile DIR [flags]")
		os.Exit(1)
	}
	if *format != "md" && *format != "json" {
		fatal(fmt.Errorf("unknown -format %q (want md or json)", *format))
	}

	rep := Report{}
	if *manifestPath != "" {
		m, err := telemetry.ReadManifest(*manifestPath)
		if err != nil {
			fatal(err)
		}
		rep.Manifest = m
	}
	if *flightPath != "" {
		lg, err := flight.ReadLog(*flightPath)
		if err != nil {
			fatal(err)
		}
		rep.Flight = buildFlightSection(lg, *maxSeries)
		rep.Runtime = buildRuntimeSection(lg)
		if *rules != "" {
			rs, err := slo.ParseList(*rules)
			if err != nil {
				fatal(err)
			}
			eng := slo.NewEngine(nil, rs)
			for _, f := range lg.Frames {
				eng.Observe(f.Metrics, f.ElapsedSeconds)
			}
			v := eng.Verdict()
			rep.SLO = &v
		}
	} else if *rules != "" {
		fatal(fmt.Errorf("-slo needs a -flight log to replay against"))
	}
	if *profileDir != "" {
		sec, err := buildProfileSection(*profileDir, *topN)
		if err != nil {
			fatal(err)
		}
		rep.Profile = sec
	}

	var body string
	if *format == "json" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		body = string(b) + "\n"
	} else {
		body = rep.Markdown()
	}
	if *out == "" {
		fmt.Print(body)
	} else if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
		fatal(err)
	} else {
		logx.Infof("wrote %s report to %s", *format, *out)
	}
	if rep.SLO != nil && rep.SLO.Failed {
		logx.Errorf("SLO verdict: FAILED\n%s", rep.SLO.Summary())
		if *failBreach {
			os.Exit(2)
		}
	}
}

// Report is the merged run report (the -format json output shape).
type Report struct {
	Manifest *telemetry.Manifest `json:"manifest,omitempty"`
	Flight   *FlightSection      `json:"flight,omitempty"`
	Runtime  *RuntimeSection     `json:"runtime,omitempty"`
	Profile  *ProfileSection     `json:"profile,omitempty"`
	SLO      *slo.Verdict        `json:"slo,omitempty"`
}

// RuntimeSection is the Go-runtime health view assembled from the go_*
// metrics the runtime/metrics bridge records into flight frames.
type RuntimeSection struct {
	// GCPauseP99 tracks the p99 GC pause per frame (seconds, level).
	GCPauseP99 *MetricSeries `json:"gc_pause_p99,omitempty"`
	// GCPauses is the cumulative pause count over the recording.
	GCPauses int64 `json:"gc_pauses"`
	// GCCycles is the total completed GC cycles over the recording.
	GCCycles float64 `json:"gc_cycles"`
	// HeapLive tracks go_heap_live_bytes (bytes, level).
	HeapLive *MetricSeries `json:"heap_live,omitempty"`
	// Goroutines tracks go_goroutines; GoroutineHighWater is its max.
	Goroutines         *MetricSeries `json:"goroutines,omitempty"`
	GoroutineHighWater float64       `json:"goroutine_high_water"`
}

// buildRuntimeSection extracts the bridged runtime metrics from flight
// frames; nil when the log predates the bridge (no go_* metrics).
func buildRuntimeSection(lg *flight.Log) *RuntimeSection {
	sec := &RuntimeSection{
		GCPauseP99: frameSeries(lg, prof.MetricGCPause, func(s telemetry.Snapshot) float64 { return s.P99 }),
		HeapLive:   frameSeries(lg, prof.MetricHeapLive, func(s telemetry.Snapshot) float64 { return s.Value }),
		Goroutines: frameSeries(lg, prof.MetricGoroutines, func(s telemetry.Snapshot) float64 { return s.Value }),
	}
	if sec.GCPauseP99 == nil && sec.HeapLive == nil && sec.Goroutines == nil {
		return nil
	}
	if sec.Goroutines != nil {
		sec.GoroutineHighWater = sec.Goroutines.Max
	}
	for _, f := range lg.Frames {
		for _, m := range f.Metrics {
			switch m.Name {
			case prof.MetricGCPause:
				sec.GCPauses = m.Count
			case prof.MetricGCCycles:
				sec.GCCycles = m.Value
			}
		}
	}
	return sec
}

// frameSeries tracks one unlabelled metric across frames as a level
// series; nil when the metric never appears.
func frameSeries(lg *flight.Log, name string, value func(telemetry.Snapshot) float64) *MetricSeries {
	ms := MetricSeries{Name: name, Mode: "level"}
	found := false
	for _, f := range lg.Frames {
		v := 0.0
		for _, m := range f.Metrics {
			if m.Name == name && len(m.Labels) == 0 {
				v = value(m)
				found = true
				break
			}
		}
		ms.Values = append(ms.Values, v)
	}
	if !found {
		return nil
	}
	ms.Kind = telemetry.KindGauge
	ms.Min, ms.Max = minMax(ms.Values)
	ms.Last = ms.Values[len(ms.Values)-1]
	ms.Spark = sparkline(ms.Values)
	return &ms
}

// ProfileSection summarises a continuous-profiling store: coverage,
// top-N CPU functions, and the experiment-label attribution the CI
// baseline gates on.
type ProfileSection struct {
	Dir         string           `json:"dir"`
	Header      prof.StoreHeader `json:"header"`
	LiveSets    int              `json:"live_sets"`
	EvictedSets int              `json:"evicted_sets"`
	Kinds       []string         `json:"kinds"`
	CPUWindows  int              `json:"cpu_windows"`
	// TotalCPUNanos is the sampled CPU total across all windows;
	// Attribution is the fraction of it carrying an experiment label.
	TotalCPUNanos int64            `json:"total_cpu_nanos"`
	Attribution   float64          `json:"label_attribution"`
	Top           []prof.FuncTotal `json:"top_functions,omitempty"`
	Keys          []KeyAttribution `json:"keys,omitempty"`
}

// KeyAttribution is one label key's share of the sampled CPU, with its
// busiest values.
type KeyAttribution struct {
	Key        string            `json:"key"`
	LabeledPct float64           `json:"labeled_pct"`
	Top        []prof.LabelTotal `json:"top,omitempty"`
}

func buildProfileSection(dir string, topN int) (*ProfileSection, error) {
	st, err := prof.ReadStore(dir)
	if err != nil {
		return nil, err
	}
	cpus, err := st.Profiles(prof.KindCPU)
	if err != nil {
		return nil, err
	}
	sec := &ProfileSection{
		Dir:         dir,
		Header:      st.Header,
		LiveSets:    len(st.Live()),
		EvictedSets: len(st.Sets) - len(st.Live()),
		Kinds:       st.Kinds(),
		CPUWindows:  len(cpus),
	}
	sec.Top, sec.TotalCPUNanos = prof.TopFunctions(cpus, "cpu", topN)
	sec.Attribution, _, _ = prof.Attribution(cpus, prof.Keys, "cpu")
	for _, key := range prof.Keys {
		rows, labeled, total := prof.ByLabel(cpus, key, "cpu")
		if len(rows) == 0 {
			continue
		}
		ka := KeyAttribution{Key: key}
		if total > 0 {
			ka.LabeledPct = 100 * float64(labeled) / float64(total)
		}
		if len(rows) > 5 {
			rows = rows[:5]
		}
		ka.Top = rows
		sec.Keys = append(sec.Keys, ka)
	}
	return sec, nil
}

// FlightSection summarises a flight log: identity, coverage, and one
// sparkline series per active metric.
type FlightSection struct {
	Header          flight.LogHeader `json:"header"`
	Frames          int              `json:"frames"`
	DurationSeconds float64          `json:"duration_seconds"`
	TotalSeries     int              `json:"total_series"`
	Series          []MetricSeries   `json:"series"` // active metrics, most active first, capped
}

// MetricSeries is one metric's evolution across frames. Counters and
// histogram counts are shown as per-frame deltas ("flow"), gauges and
// quantiles as absolute levels.
type MetricSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   telemetry.Kind    `json:"kind"`
	Mode   string            `json:"mode"` // "delta" or "level"
	Values []float64         `json:"values"`
	Spark  string            `json:"spark"`
	Min    float64           `json:"min"`
	Max    float64           `json:"max"`
	Last   float64           `json:"last"`
}

// buildFlightSection extracts per-metric series from decoded frames,
// keeping the max most active (largest |max−min|·relative movement) so a
// registry with hundreds of static instruments reports only what moved.
func buildFlightSection(lg *flight.Log, max int) *FlightSection {
	sec := &FlightSection{Header: lg.Header, Frames: len(lg.Frames)}
	if len(lg.Frames) == 0 {
		return sec
	}
	sec.DurationSeconds = lg.Frames[len(lg.Frames)-1].ElapsedSeconds

	type track struct {
		meta   telemetry.Snapshot
		values []float64 // raw observed value per frame (padded on first sight)
	}
	tracks := make(map[string]*track)
	keys := []string{}
	for fi, f := range lg.Frames {
		for _, m := range f.Metrics {
			key := instrumentKey(m)
			tr, ok := tracks[key]
			if !ok {
				tr = &track{meta: m}
				// Metrics that appear mid-run backfill zeros so every
				// series spans all frames.
				tr.values = make([]float64, fi)
				tracks[key] = tr
				keys = append(keys, key)
			}
			tr.values = append(tr.values, rawValue(m))
		}
		// Metrics absent from this frame (can't happen today — frames are
		// full snapshots — but cheap to guard) carry their last value.
		for _, key := range keys {
			tr := tracks[key]
			if len(tr.values) <= fi {
				tr.values = append(tr.values, tr.values[len(tr.values)-1])
			}
		}
	}
	sec.TotalSeries = len(keys)
	sort.Strings(keys)

	for _, key := range keys {
		tr := tracks[key]
		ms := MetricSeries{
			Name:   tr.meta.Name,
			Labels: tr.meta.Labels,
			Kind:   tr.meta.Kind,
		}
		switch tr.meta.Kind {
		case telemetry.KindCounter, telemetry.KindFloatCounter, telemetry.KindHistogram, telemetry.KindTimer:
			ms.Mode = "delta"
			ms.Values = deltas(tr.values)
		default:
			ms.Mode = "level"
			ms.Values = tr.values
		}
		ms.Min, ms.Max = minMax(ms.Values)
		if len(tr.values) > 0 {
			ms.Last = tr.values[len(tr.values)-1]
		}
		if ms.Min == ms.Max && ms.Min == 0 { //lint:floateq exact zero marks a series that never moved — drop it from the report
			continue
		}
		ms.Spark = sparkline(ms.Values)
		sec.Series = append(sec.Series, ms)
	}
	// Most active first: widest dynamic range relative to magnitude wins.
	sort.SliceStable(sec.Series, func(i, j int) bool {
		return activity(sec.Series[i]) > activity(sec.Series[j])
	})
	if len(sec.Series) > max {
		logx.Infof("flight section capped at %d of %d active series (-max-series)", max, len(sec.Series))
		sec.Series = sec.Series[:max]
	}
	return sec
}

// rawValue reads the trackable scalar from a snapshot: counters and gauges
// their value, distributions their cumulative count.
func rawValue(m telemetry.Snapshot) float64 {
	switch m.Kind {
	case telemetry.KindHistogram, telemetry.KindTimer:
		return float64(m.Count)
	}
	return m.Value
}

func deltas(vs []float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs))
	out[0] = vs[0]
	for i := 1; i < len(vs); i++ {
		out[i] = vs[i] - vs[i-1]
	}
	return out
}

func minMax(vs []float64) (float64, float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	mn, mx := vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// activity ranks series for the report cap: range normalised by magnitude,
// so a counter ticking in the millions and a gauge wobbling around 0.1
// compete fairly.
func activity(ms MetricSeries) float64 {
	span := ms.Max - ms.Min
	scale := ms.Max
	if -ms.Min > scale {
		scale = -ms.Min
	}
	if scale == 0 {
		return 0
	}
	return span / scale
}

// instrumentKey renders name{k=v,...} with sorted labels.
func instrumentKey(s telemetry.Snapshot) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func fatal(err error) {
	logx.Errorf("%v", err)
	os.Exit(1)
}
