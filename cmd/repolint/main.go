// Command repolint is the repository's multichecker: it runs every
// analyzer in internal/analysis over the module and exits non-zero on
// any finding. CI gates on it next to vet and the race detector; run it
// locally with
//
//	go run ./cmd/repolint ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always lints the whole module (the invariants are global properties —
// a clean subset proves nothing). Suppress a finding with a justified
// waiver comment on or above the offending line:
//
//	//lint:<analyzer> <justification>
//	//lint:<analyzer> expires=2026-12-31 <justification>
//
// e.g. //lint:floateq identical bits are never drift. Bare waivers,
// waivers naming unknown analyzers, expired waivers and waivers that
// suppress nothing are themselves findings. Use -list to print the
// registered analyzers and the invariant each one encodes.
//
// Reporting and debt management:
//
//	repolint -json                          # findings as JSON on stdout
//	repolint -sarif out.sarif               # SARIF 2.1.0 for CI code scanning
//	repolint -baseline lint_baseline.json   # suppress known findings
//	repolint -write-baseline lint_baseline.json   # accept current findings
//	repolint -run seedflow,hotalloc         # subset of the suite
//	repolint -write-escape-budget           # re-baseline hot-path escapes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", "", "module root to lint (default: walk up from the working directory)")
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer subset to run (default: full suite)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	baselinePath := fs.String("baseline", "", "suppress findings matching this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	writeEscapes := fs.Bool("write-escape-budget", false, "re-baseline results/golden/escape_budget.json from the current hot-path escapes and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: repolint [-C dir] [-list] [-run names] [-json] [-sarif file] [-baseline file] [-write-baseline file] [-write-escape-budget] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *runNames != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*runNames, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	}
	if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}

	if *writeEscapes {
		return regenEscapeBudget(root, stdout, stderr)
	}

	diags, err := analysis.LintModuleWith(root, analyzers, analysis.RunOptions{Now: time.Now()})
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	findings := analysis.Findings(diags, root)

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, findings); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "repolint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	suppressed := 0
	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		var stale []analysis.Finding
		findings, suppressed, stale = base.Apply(findings)
		// Paid-down debt is a nudge, not a failure: the baseline should
		// shrink in the same PR, but blocking on it would punish fixes.
		for _, f := range stale {
			fmt.Fprintf(stderr, "repolint: baseline entry no longer matches (fixed?): %s:%d %s [%s]\n",
				f.File, f.Line, f.Message, f.Analyzer)
		}
	}

	report := &analysis.Report{
		Schema:     1,
		Module:     root,
		Analyzers:  analyzerNames(analyzers),
		Findings:   findings,
		Suppressed: suppressed,
	}
	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err == nil {
			err = report.WriteSARIF(f, analyzers)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	}
	if *jsonOut {
		if err := report.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s)", len(findings))
		if suppressed > 0 {
			fmt.Fprintf(stderr, " (%d suppressed by baseline)", suppressed)
		}
		fmt.Fprintln(stderr)
		return 1
	}
	if suppressed > 0 {
		fmt.Fprintf(stderr, "repolint: clean (%d suppressed by baseline)\n", suppressed)
	}
	return 0
}

func analyzerNames(analyzers []*analysis.Analyzer) []string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return names
}

// regenEscapeBudget recomputes the hot-path escape baseline. The hot-path
// set is taken from the existing budget file when present, else the
// repository default, so a re-baseline never silently drops a package
// from the fence.
func regenEscapeBudget(root string, stdout, stderr io.Writer) int {
	hotPaths := analysis.DefaultHotPaths
	if existing, err := analysis.LoadEscapeBudget(root); err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	} else if existing != nil && len(existing.HotPaths) > 0 {
		hotPaths = existing.HotPaths
	}
	budget, err := analysis.BuildEscapeBudget(root, hotPaths)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	if err := analysis.WriteEscapeBudget(root, budget); err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	total := 0
	for _, fns := range budget.Budgets {
		for _, msgs := range fns {
			for _, n := range msgs {
				total += n
			}
		}
	}
	fmt.Fprintf(stdout, "repolint: escape budget re-baselined: %d site(s) across %d hot package(s) (%s)\n",
		total, len(hotPaths), budget.Go)
	return 0
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
