// Command repolint is the repository's multichecker: it runs every
// analyzer in internal/analysis over the module and exits non-zero on
// any finding. CI gates on it next to vet and the race detector; run it
// locally with
//
//	go run ./cmd/repolint ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always lints the whole module (the invariants are global properties —
// a clean subset proves nothing). Suppress a finding with a justified
// waiver comment on or above the offending line:
//
//	//lint:<analyzer> <justification>
//
// e.g. //lint:floateq identical bits are never drift. Bare waivers
// without a justification are themselves findings. Use -list to print
// the registered analyzers and the invariant each one encodes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", "", "module root to lint (default: walk up from the working directory)")
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: repolint [-C dir] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	}
	if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}

	diags, err := analysis.LintModule(root, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	for _, d := range diags {
		// Positions relative to the module root keep CI logs readable.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
