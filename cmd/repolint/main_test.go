package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// suiteNames derives the expected analyzer set from the registry itself:
// the suite contract (exact names and order) is pinned once, in
// internal/analysis's TestSuiteRegistersNineAnalyzers, and every other
// consumer — this multichecker included — follows the registry.
func suiteNames() []string {
	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}
	return names
}

// TestListRegistersAllAnalyzers checks the multichecker wires up the
// full suite: every analyzer name appears in -list output and the exit
// code is zero.
func TestListRegistersAllAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	want := suiteNames()
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != len(want) {
		t.Errorf("-list printed %d analyzers, want %d:\n%s", got, len(want), out)
	}
	for _, name := range want {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func brokenmodDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "brokenmod"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestBrokenModuleFailsEveryAnalyzer lints a fixture module carrying
// one violation per analyzer: the exit code must be non-zero and every
// analyzer must appear among the findings. For hotalloc this is the
// tentpole's exit-code proof: the fixture commits an empty escape budget
// over a package with a guaranteed heap escape, so a hot-path allocation
// regression demonstrably fails the lint gate.
func TestBrokenModuleFailsEveryAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", brokenmodDir(t)}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run(-C brokenmod) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range suiteNames() {
		if !strings.Contains(out, "["+name+"]") {
			t.Errorf("no %s finding reported on brokenmod:\n%s", name, out)
		}
	}
	// The expired-waiver satellite, end to end: brokenmod carries a
	// waiver dated in the past, which must surface as a waiver finding.
	if !strings.Contains(out, "expired") {
		t.Errorf("no expired-waiver finding reported on brokenmod:\n%s", out)
	}
	// Seedflow diagnostics carry the offending flow path.
	if !strings.Contains(out, "constant 42") {
		t.Errorf("seedflow finding missing its flow path:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr.String())
	}
}

// TestRunSubset exercises -run: only the named analyzers execute.
func TestRunSubset(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", brokenmodDir(t), "-run", "rngsource"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run(-run rngsource) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[rngsource]") {
		t.Errorf("-run rngsource missing its finding:\n%s", out)
	}
	if strings.Contains(out, "[floateq]") {
		t.Errorf("-run rngsource leaked other analyzers' findings:\n%s", out)
	}
	var stdout2, stderr2 strings.Builder
	if code := run([]string{"-run", "nosuch"}, &stdout2, &stderr2); code != 2 {
		t.Fatalf("run(-run nosuch) = %d, want 2", code)
	}
}

// TestJSONReport checks -json emits a well-formed report with
// fingerprinted findings.
func TestJSONReport(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", brokenmodDir(t), "-json"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run(-json) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var report analysis.Report
	if err := json.Unmarshal([]byte(stdout.String()), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if report.Schema != 1 || len(report.Findings) == 0 {
		t.Fatalf("report = schema %d with %d findings, want schema 1 with findings", report.Schema, len(report.Findings))
	}
	for _, f := range report.Findings {
		if f.Fingerprint == "" || f.File == "" || f.Analyzer == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path not module-relative: %s", f.File)
		}
	}
}

// TestSARIFOutput checks -sarif writes a structurally sound 2.1.0 log.
func TestSARIFOutput(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "out.sarif")
	var stdout, stderr strings.Builder
	code := run([]string{"-C", brokenmodDir(t), "-sarif", sarifPath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run(-sarif) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Partial map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output invalid: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "repolint" {
		t.Fatalf("SARIF shape wrong: version %q, %d runs", doc.Version, len(doc.Runs))
	}
	if len(doc.Runs[0].Results) == 0 {
		t.Fatal("SARIF log has no results for brokenmod")
	}
	for _, r := range doc.Runs[0].Results {
		if r.Partial["repolint/v1"] == "" {
			t.Errorf("result %q missing fingerprint", r.Message.Text)
		}
	}
	// Rules cover the full suite plus the synthetic waiver rule.
	if got, want := len(doc.Runs[0].Tool.Driver.Rules), len(suiteNames())+1; got != want {
		t.Errorf("SARIF rules = %d, want %d", got, want)
	}
}

// TestBaselineRoundTrip proves the debt workflow: -write-baseline
// captures current findings, and a rerun with -baseline suppresses all
// of them and exits clean.
func TestBaselineRoundTrip(t *testing.T) {
	basePath := filepath.Join(t.TempDir(), "baseline.json")
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", brokenmodDir(t), "-write-baseline", basePath}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-write-baseline) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	var stdout2, stderr2 strings.Builder
	code := run([]string{"-C", brokenmodDir(t), "-baseline", basePath}, &stdout2, &stderr2)
	if code != 0 {
		t.Fatalf("run(-baseline) = %d, want 0\nstdout: %s\nstderr: %s", code, stdout2.String(), stderr2.String())
	}
	if !strings.Contains(stderr2.String(), "suppressed by baseline") {
		t.Errorf("stderr missing suppression summary: %s", stderr2.String())
	}
}

// TestUnknownFlag pins the usage exit code apart from the findings one.
func TestUnknownFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-no-such-flag) = %d, want 2", code)
	}
}
