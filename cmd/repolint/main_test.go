package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// suiteAnalyzers is the suite contract; DESIGN.md §11 documents exactly
// these invariants.
var suiteAnalyzers = []string{"rngsource", "walltime", "maporder", "printguard", "floateq", "pprofimport", "proflabels"}

// TestListRegistersAllAnalyzers checks the multichecker wires up the
// full suite: every analyzer name appears in -list output and the exit
// code is zero.
func TestListRegistersAllAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != len(suiteAnalyzers) {
		t.Errorf("-list printed %d analyzers, want %d:\n%s", got, len(suiteAnalyzers), out)
	}
	for _, name := range suiteAnalyzers {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

// TestBrokenModuleFailsEveryAnalyzer lints a fixture module carrying
// one violation per analyzer: the exit code must be non-zero and every
// analyzer must appear among the findings.
func TestBrokenModuleFailsEveryAnalyzer(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "brokenmod"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-C", dir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run(-C brokenmod) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range suiteAnalyzers {
		if !strings.Contains(out, "["+name+"]") {
			t.Errorf("no %s finding reported on brokenmod:\n%s", name, out)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr.String())
	}
}

// TestUnknownFlag pins the usage exit code apart from the findings one.
func TestUnknownFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-no-such-flag) = %d, want 2", code)
	}
}
