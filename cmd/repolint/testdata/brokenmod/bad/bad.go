// Package bad violates every repolint invariant exactly once, so the
// multichecker test can assert each analyzer reports through the CLI.
package bad

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/pprof" // second pprofimport violation (runtime/pprof outside prof)
	"time"

	_ "net/http/pprof" // pprofimport violation
)

// Jitter is an rngsource violation (global RNG draw) and a walltime
// violation (clock read in a deterministic package).
func Jitter() time.Duration {
	return time.Since(time.Now().Add(-time.Duration(rand.Intn(10))))
}

// Dump is a maporder violation (output in iteration order) and a
// printguard violation (fmt.Println in library code).
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Same is a floateq violation.
func Same(a, b float64) bool {
	return a == b
}

// Label is a proflabels violation (label API outside the prof package,
// plus a key outside the fixed set).
func Label(ctx context.Context) context.Context {
	return pprof.WithLabels(ctx, pprof.Labels("experiment", "x"))
}

// Model mimics the traffic generator constructor contract so the
// seedflow sink detection fires on any NewGenerator(int64) method.
type Model struct{}

// NewGenerator matches the seed-consuming constructor shape.
func (Model) NewGenerator(seed int64) int64 { return seed }

// Hardcoded is a seedflow violation: a constant seed handed to a
// generator constructor in non-test, non-example code.
func Hardcoded() int64 {
	var m Model
	return m.NewGenerator(42)
}

// Stale carries an expired waiver: the date is in the past, so the
// waiver is itself a finding and no longer suppresses anything.
func Stale(a, b float64) bool {
	//lint:floateq expires=2020-01-01 long-lapsed exception
	return a != b
}
