// Package bad violates every repolint invariant exactly once, so the
// multichecker test can assert each analyzer reports through the CLI.
package bad

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/pprof" // second pprofimport violation (runtime/pprof outside prof)
	"time"

	_ "net/http/pprof" // pprofimport violation
)

// Jitter is an rngsource violation (global RNG draw) and a walltime
// violation (clock read in a deterministic package).
func Jitter() time.Duration {
	return time.Since(time.Now().Add(-time.Duration(rand.Intn(10))))
}

// Dump is a maporder violation (output in iteration order) and a
// printguard violation (fmt.Println in library code).
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Same is a floateq violation.
func Same(a, b float64) bool {
	return a == b
}

// Label is a proflabels violation (label API outside the prof package,
// plus a key outside the fixed set).
func Label(ctx context.Context) context.Context {
	return pprof.WithLabels(ctx, pprof.Labels("experiment", "x"))
}
