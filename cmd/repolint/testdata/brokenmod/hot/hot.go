// Package hot is a declared hot path (see results/golden/escape_budget.json)
// carrying one heap escape the committed budget does not allow, so the
// hotalloc gate must fail this module.
package hot

// Grow heap-allocates: the slice is returned, so escape analysis cannot
// keep it on the stack.
func Grow(n int) []int64 {
	buf := make([]int64, n)
	for i := range buf {
		buf[i] = int64(i)
	}
	return buf
}
