module brk

go 1.22
