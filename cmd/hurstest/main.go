// Command hurstest estimates the Hurst parameter of a frame-size series —
// either a trace file (one value per line) or a freshly generated model
// path — using three estimators: aggregated variance-time, rescaled range
// (R/S) and the low-frequency periodogram slope (GPH style). Agreement
// across estimators is the practical test for long-range dependence
// (paper §2).
//
// Usage:
//
//	hurstest [-model z:0.975 | -trace sizes.txt] [-frames 262144] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/hurst"
	"repro/internal/modelspec"
	"repro/internal/spectrum"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func main() {
	var (
		modelSpec = flag.String("model", "z:0.9", "model spec to generate from")
		tracePath = flag.String("trace", "", "trace file (one frame size per line); overrides -model")
		frames    = flag.Int("frames", 1<<18, "frames to generate when using -model")
		seed      = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	var xs []float64
	var label string
	if *tracePath != "" {
		var err error
		xs, err = readTrace(*tracePath)
		if err != nil {
			fatal(err)
		}
		label = *tracePath
	} else {
		m, err := modelspec.Parse(*modelSpec)
		if err != nil {
			fatal(err)
		}
		xs = traffic.Generate(m.NewGenerator(*seed), *frames)
		label = m.Name()
	}
	if len(xs) < 4096 {
		fatal(fmt.Errorf("series too short (%d frames; need ≥ 4096)", len(xs)))
	}

	fmt.Printf("series: %s, %d frames\n", label, len(xs))
	fmt.Printf("moments: %s\n\n", stats.Summarize(xs))

	vt, err := hurst.VarianceTime(xs, 10, len(xs)/32)
	report("variance-time", vt, err)
	rs, err := hurst.RS(xs, 32, len(xs)/8)
	report("rescaled range", rs, err)
	gph, err := spectrum.HurstFromPeriodogram(xs, 0.1)
	report("periodogram (GPH)", gph, err)

	fmt.Println("\nH ≈ 0.5 is short-range dependence; H ∈ (0.5, 1) is LRD.")
	fmt.Println("Disagreement between estimators usually means non-stationarity")
	fmt.Println("or periodic structure (check the GOP pattern for MPEG traces).")
}

func report(name string, h float64, err error) {
	if err != nil {
		fmt.Printf("%-20s error: %v\n", name, err)
		return
	}
	fmt.Printf("%-20s H = %.3f\n", name, h)
}

func readTrace(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var xs []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("bad trace line %q: %w", line, err)
		}
		xs = append(xs, v)
	}
	return xs, sc.Err()
}

func fatal(err error) {
	telemetry.Log.SetPrefix("hurstest")
	telemetry.Log.Errorf("%v", err)
	os.Exit(1)
}
