// Command admit sizes an ATM link: the maximum number of homogeneous VBR
// video connections admissible at a cell-loss target under a delay bound,
// plus the per-source effective bandwidth (paper §5.4 and package cac).
//
// Usage:
//
//	admit [-models z:0.975,dar:0.975:1,l] [-capacity 365566]
//	      [-delays 2,5,10,20,30] [-clr 1e-6] [-estimator br|largen]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cac"
	"repro/internal/models"
	"repro/internal/modelspec"
	"repro/internal/telemetry"
)

func main() {
	var (
		specs    = flag.String("models", "z:0.975,dar:0.975:1,l", "comma-separated model specs")
		capacity = flag.Float64("capacity", 365566, "link capacity in cells/sec (default ≈ OC-3)")
		delays   = flag.String("delays", "2,5,10,20,30", "delay bounds in msec, comma-separated")
		clr      = flag.Float64("clr", 1e-6, "cell loss rate target")
		estName  = flag.String("estimator", "br", "overflow estimator: br (Bahadur-Rao) or largen")
	)
	flag.Parse()

	ms, err := modelspec.ParseList(*specs)
	if err != nil {
		fatal(err)
	}
	est, err := cac.ParseEstimator(*estName)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("link %.0f cells/s, CLR target %g, estimator %s\n\n",
		*capacity, *clr, est)
	fmt.Printf("%-12s", "delay msec")
	for _, m := range ms {
		fmt.Printf(" %16s", m.Name())
	}
	fmt.Println()
	for _, f := range strings.Split(*delays, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || d < 0 {
			fatal(fmt.Errorf("bad delay %q", f))
		}
		link := cac.LinkMs(*capacity, models.Ts, d)
		fmt.Printf("%-12.1f", d)
		for _, m := range ms {
			n, err := cac.Admissible(m, link, *clr, est)
			if err != nil {
				fatal(err)
			}
			fmt.Printf(" %16d", n)
		}
		fmt.Println()
	}

	// Effective bandwidth at a fixed population for context.
	fmt.Printf("\neffective bandwidth (cells/frame) at N=30, 20 ms delay:\n")
	for _, m := range ms {
		b := *capacity * 0.020 / 30
		c, err := cac.EffectiveBandwidth(m, 30, b, *clr)
		if err != nil {
			fmt.Printf("  %-16s %v\n", m.Name(), err)
			continue
		}
		fmt.Printf("  %-16s %.1f (mean %.0f, headroom %.1f%%)\n",
			m.Name(), c, m.Mean(), (c/m.Mean()-1)*100)
	}
}

func fatal(err error) {
	telemetry.Log.SetPrefix("admit")
	telemetry.Log.Errorf("%v", err)
	os.Exit(1)
}
