// Command atmsim runs the paper's finite-buffer ATM multiplexer simulation
// (§5.5) for one or more models and reports the measured cell loss rate
// with replication confidence intervals.
//
// Usage:
//
//	atmsim [-models z:0.975] [-c 538] [-n 30] [-buffers 0,2,5,10,20]
//	       [-frames 100000] [-reps 8] [-seed 1] [-workers 0] [-bop]
//	       [-adaptive] [-telemetry ADDR] [-flight FILE] [-slo RULES]
//	       [-profile DIR]
//
// With -adaptive (or an aimd:<spec> model spec) sources are closed-loop:
// an AIMD controller scales each source's frame sizes against the queue
// state fed back by the stepped multiplexer engine. Closed-loop CLR runs
// execute one replication batch per buffer size instead of the coupled
// single-pass sweep, since feedback couples arrivals to the buffer.
//
// With -bop the infinite-buffer overflow probability P(W > x) is measured
// instead, at the workload levels implied by -buffers. CLR replications
// fan out over -workers cores (default: all); the estimates are
// bit-identical for every worker count. With -telemetry ADDR (e.g. ":6060")
// an HTTP endpoint serves live metrics (/metrics, /vars) and /debug/pprof
// profiles for the duration of the run. With -trace FILE the run records a
// span tree (model → replication → mux chunk) and writes Chrome
// trace-event JSON loadable in Perfetto. With -flight FILE periodic
// metric snapshots are recorded to a JSONL flight log (served live at
// /vars/history on the -telemetry endpoint, replayed by obsreport), and
// -slo RULES evaluates SLO rules online against each snapshot, exiting
// non-zero on any breach. -profile DIR captures continuous CPU/heap
// profiles, labelled by model, sweep point, engine path and worker lane,
// into a bounded store (inspect with profdiff). -v/-quiet adjust log
// verbosity. None of these sinks perturbs results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/modelspec"
	"repro/internal/mux"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/telemetry/obs"
	"repro/internal/telemetry/prof"
	"repro/internal/trace"
	"repro/internal/traffic"
)

var logx = telemetry.Log

func main() {
	var (
		specs    = flag.String("models", "z:0.975,dar:0.975:1", "comma-separated model specs")
		c        = flag.Float64("c", experiments.BopC, "bandwidth per source, cells/frame")
		n        = flag.Int("n", experiments.BopN, "number of multiplexed sources")
		buffers  = flag.String("buffers", "0,2,5,10,15,20", "total-buffer sizes in msec, comma-separated")
		frames   = flag.Int("frames", 100000, "frames per replication (paper: 500000)")
		reps     = flag.Int("reps", 8, "replications (paper: 60)")
		seed     = flag.Int64("seed", 1, "master seed")
		workers  = flag.Int("workers", 0, "parallel replication workers (0 = all cores, 1 = serial)")
		bop      = flag.Bool("bop", false, "measure infinite-buffer P(W > x) instead of finite-buffer CLR")
		adaptive = flag.Bool("adaptive", false, "wrap every model in the closed-loop AIMD rate controller (default parameters; equivalent to an aimd:<spec> prefix)")
		telem    = flag.String("telemetry", "", "serve live metrics/pprof on this address (e.g. :6060); empty = off")
		trc      = flag.String("trace", "", "write Chrome trace-event JSON of the run's span tree to this file (load in Perfetto)")
		verbose  = flag.Bool("v", false, "verbose logging (debug level)")
		quiet    = flag.Bool("quiet", false, "log errors only (overrides -v)")
	)
	obsFlags := obs.AddFlags()
	flag.Parse()
	logx.SetPrefix("atmsim")
	logx.SetLevel(telemetry.LevelFromFlags(*verbose, *quiet))

	var tracer *trace.Tracer
	if *trc != "" {
		tracer = trace.New()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	eng := runner.NewWithRegistry(*workers, telemetry.Default)
	sess, err := obsFlags.Start(telemetry.Default, "atmsim")
	if err != nil {
		fatal(err)
	}
	if *telem != "" {
		srv, addr, err := telemetry.Serve(*telem, telemetry.Default, sess.Routes()...)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		logx.Infof("telemetry on http://%s (/metrics, /vars, /debug/pprof/)", addr)
	}

	ms, err := modelspec.ParseList(*specs)
	if err != nil {
		fatal(err)
	}
	if *adaptive {
		for i, m := range ms {
			if traffic.IsClosedLoopModel(m) {
				continue // already adaptive (e.g. an aimd:<spec> model)
			}
			a, err := models.NewAIMD(m, models.AIMDConfig{})
			if err != nil {
				fatal(err)
			}
			ms[i] = a
		}
	}
	msecs, err := parseFloats(*buffers)
	if err != nil {
		fatal(err)
	}
	cells := make([]float64, len(msecs))
	for i, m := range msecs {
		cells[i] = experiments.MsecToPerSourceCells(m, *c)
	}

	for _, m := range ms {
		fmt.Printf("model %s  (N=%d, c=%g cells/frame, %d reps × %d frames)\n",
			m.Name(), *n, *c, *reps, *frames)
		sp := tracer.Root("model "+m.Name(), trace.Int("N", *n), trace.Float("c", *c))
		// Profiling coordinate: all work below attributes to this model.
		mctx := prof.WithLabels(ctx, prof.Labels{Model: m.Name()})
		if *bop {
			thresholds := make([]float64, len(cells))
			for i, b := range cells {
				thresholds[i] = b * float64(*n) // total workload levels
			}
			res, err := mux.RunBOP(mux.BOPConfig{
				Model: m, N: *n, C: *c, Frames: *frames * *reps,
				Warmup: *frames / 10, Seed: *seed, Thresholds: thresholds,
				Span: sp,
			})
			sp.End()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-12s %-14s\n", "buffer msec", "P(W>x)")
			for i := range res.Thresholds {
				fmt.Printf("  %-12.3f %-14.6g\n", msecs[i], res.Prob[i])
			}
			continue
		}
		cfg := mux.Config{
			Model: m, N: *n, C: *c, Frames: *frames,
			Warmup: *frames / 20, Seed: *seed,
		}
		// Closed-loop models cannot share a coupled buffer sweep (the
		// feedback tap makes arrivals depend on the buffer), so each
		// buffer runs its own replication batch through the stepped
		// engine; open-loop models keep the coupled single-pass sweep.
		var byBuffer [][]mux.Result
		if traffic.IsClosedLoopModel(m) {
			byBuffer = make([][]mux.Result, len(cells))
			for i, b := range cells {
				c := cfg
				c.B = b
				// Per-buffer batches are independent runs, so samples also
				// carry the buffer size they were spent on.
				bctx := prof.WithLabels(mctx, prof.Labels{SweepPoint: fmt.Sprintf("%gmsec", msecs[i])})
				results, err := mux.RunReplicationsEngine(trace.ContextWith(bctx, sp), eng, c, *reps)
				if err != nil {
					sp.End()
					fatal(err)
				}
				byBuffer[i] = results
			}
			sp.End()
		} else {
			var err error
			byBuffer, err = mux.SweepReplicationsEngine(
				trace.ContextWith(prof.WithLabels(mctx, prof.Labels{SweepPoint: "coupled"}), sp),
				eng, cfg, cells, *reps)
			sp.End()
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("  %-12s %-14s %-22s\n", "buffer msec", "CLR", "95% CI")
		for i := range cells {
			ci := mux.CLREstimate(byBuffer[i], 0.95)
			fmt.Printf("  %-12.3f %-14.6g [%.3g, %.3g]\n",
				msecs[i], ci.Point, ci.Low(), ci.High())
		}
	}
	if *trc != "" {
		if err := tracer.WriteChromeFile(*trc); err != nil {
			fatal(err)
		}
		logx.Infof("wrote %d spans to %s (load in Perfetto or chrome://tracing)", tracer.Len(), *trc)
	}
	if !sess.Finish() {
		os.Exit(3)
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no buffer sizes given")
	}
	return out, nil
}

func fatal(err error) {
	logx.Errorf("%v", err)
	os.Exit(1)
}
