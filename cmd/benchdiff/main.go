// Command benchdiff records the repository's benchmark trajectory and
// reports regressions. It runs the root-package benchmarks (or parses a
// pre-recorded `go test -bench` output), writes the results as
// bench/BENCH_<date>.json, and diffs them against the most recent previous
// recording with a configurable regression threshold.
//
// Usage:
//
//	benchdiff [-dir bench] [-bench REGEX] [-benchtime 1x] [-pkg .]
//	          [-threshold 0.20] [-parse FILE] [-against FILE]
//	          [-write=true] [-fail]
//
// Typical flows:
//
//	benchdiff                         # run, record today's file, diff vs latest
//	benchdiff -benchtime 3s -fail     # gate: exit 1 on any regression
//	benchdiff -parse out.txt -write=false   # report-only on captured output
//
// CI runs it with -benchtime 1x as a non-blocking report step: shared
// runners are too noisy to gate on, but the per-PR delta table plus the
// committed BENCH_*.json trail make real slowdowns in the hot paths
// (block-streamed mux, FGN synthesis, CTS sweeps) visible the day they
// land. For trustworthy numbers run locally with -benchtime 3s on an idle
// machine before and after a performance-sensitive change.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/telemetry"
)

var logx = telemetry.Log

func main() {
	var (
		dir       = flag.String("dir", "bench", "directory holding BENCH_<date>.json recordings")
		benchRe   = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value (e.g. 1x, 3s)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		threshold = flag.Float64("threshold", 0.20, "fractional worsening flagged as regression (0.20 = 20%)")
		parse     = flag.String("parse", "", "parse this pre-recorded `go test -bench` output instead of running")
		against   = flag.String("against", "", "baseline BENCH_*.json (default: newest in -dir older than today's)")
		write     = flag.Bool("write", true, "write BENCH_<date>.json into -dir")
		failFlag  = flag.Bool("fail", false, "exit 1 when regressions are found (default: report only)")
		verbose   = flag.Bool("v", false, "show all comparisons, not only interesting ones")
		quiet     = flag.Bool("quiet", false, "log errors only (overrides -v)")
	)
	flag.Parse()
	logx.SetPrefix("benchdiff")
	logx.SetLevel(telemetry.LevelFromFlags(*verbose, *quiet))

	bs, err := collect(*parse, *benchRe, *benchtime, *pkg)
	if err != nil {
		fatal(err)
	}
	if len(bs) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}
	host, _ := os.Hostname()
	cur := benchfmt.File{
		Date:        time.Now().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GitRevision: telemetry.GitRevision(),
		Host:        host,
		Benchmarks:  bs,
	}

	curPath := filepath.Join(*dir, "BENCH_"+cur.Date+".json")
	basePath := *against
	if basePath == "" {
		latest, err := benchfmt.Latest(*dir)
		if err != nil {
			fatal(err)
		}
		// Re-running on the same day must not diff against itself.
		if latest == curPath {
			basePath = previous(*dir, curPath)
		} else {
			basePath = latest
		}
	}

	if *write {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		if err := benchfmt.WriteFile(curPath, cur); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(bs), curPath)
	}

	// A single recording is the expected state of a fresh checkout or a
	// first CI run, not an error: say so plainly and exit 0 so report-only
	// pipelines don't need special-casing.
	if basePath == "" {
		if *write {
			fmt.Printf("no baseline found: %s holds no BENCH_*.json older than %s; today's recording becomes the baseline for the next run\n",
				*dir, curPath)
		} else {
			fmt.Printf("no baseline found: %s holds no BENCH_*.json to diff against (and -write=false recorded nothing); nothing to compare\n",
				*dir)
		}
		return
	}
	base, err := benchfmt.ReadFile(basePath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("diff vs %s (%s, %s):\n", basePath, base.Date, base.GitRevision)
	deltas := benchfmt.Diff(base, cur, *threshold)
	benchfmt.Report(os.Stdout, deltas, *threshold, !*verbose)
	if *failFlag && benchfmt.Regressions(deltas) > 0 {
		os.Exit(1)
	}
}

// collect obtains benchmark results either from a capture file or by
// running the benchmarks.
func collect(parsePath, benchRe, benchtime, pkg string) ([]benchfmt.Benchmark, error) {
	if parsePath != "" {
		f, err := os.Open(parsePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return benchfmt.Parse(f)
	}
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchtime", benchtime, pkg}
	logx.Infof("go %s", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return benchfmt.Parse(strings.NewReader(string(out)))
}

// previous returns the newest BENCH_*.json in dir older than exclude
// ("" when none).
func previous(dir, exclude string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	prev := ""
	for _, m := range matches {
		if m != exclude && m > prev && m < exclude {
			prev = m
		}
	}
	return prev
}

func fatal(err error) {
	logx.Errorf("%v", err)
	os.Exit(1)
}
