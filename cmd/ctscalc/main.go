// Command ctscalc computes the Critical Time Scale m*_b of one or more
// video traffic models across a range of buffer sizes, reproducing the
// analysis behind the paper's Figure 4.
//
// Usage:
//
//	ctscalc [-models z:0.975,dar:0.975:1,l] [-c 526] [-n 100]
//	        [-maxmsec 30] [-points 16]
//
// Output: one row per buffer size with m*_b and the rate function I(c,b)
// for each model.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/modelspec"
	"repro/internal/telemetry"
)

func main() {
	var (
		specs   = flag.String("models", "z:0.7,z:0.9,z:0.975,z:0.99", "comma-separated model specs (see internal/modelspec)")
		c       = flag.Float64("c", experiments.Fig4C, "bandwidth per source, cells/frame")
		n       = flag.Int("n", experiments.Fig4N, "number of multiplexed sources")
		maxMsec = flag.Float64("maxmsec", 30, "largest total buffer (max delay) in msec")
		points  = flag.Int("points", 16, "number of buffer points")
	)
	flag.Parse()

	ms, err := modelspec.ParseList(*specs)
	if err != nil {
		fatal(err)
	}
	if *points < 2 || *maxMsec <= 0 {
		fatal(fmt.Errorf("need points ≥ 2 and maxmsec > 0"))
	}

	fmt.Printf("%-12s", "buffer msec")
	for _, m := range ms {
		fmt.Printf(" %14s %12s", m.Name()+" m*", "I(c,b)")
	}
	fmt.Println()
	for i := 0; i < *points; i++ {
		msec := float64(i) * *maxMsec / float64(*points-1)
		fmt.Printf("%-12.3f", msec)
		for _, m := range ms {
			op := core.Operating{C: *c, B: experiments.MsecToPerSourceCells(msec, *c), N: *n}
			res, err := core.CTS(m, op, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Printf(" %14d %12.5g", res.M, res.Rate)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	telemetry.Log.SetPrefix("ctscalc")
	telemetry.Log.Errorf("%v", err)
	os.Exit(1)
}
