// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (go test -bench=.), plus ablation benchmarks for the
// design choices DESIGN.md calls out (generator throughput, CTS scan cost
// by ACF family, FGN synthesis scaling, multiplexer throughput).
//
// Simulation benchmarks run at a reduced scale per iteration; cmd/repro
// -reps/-frames reaches the paper's 60 × 500k effort when wanted.
package repro_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/admitd"
	"repro/internal/core"
	"repro/internal/dar"
	"repro/internal/experiments"
	"repro/internal/fgn"
	"repro/internal/models"
	"repro/internal/mux"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
	"repro/internal/telemetry/prof"
	"repro/internal/traffic"
)

// benchSim is the per-iteration simulation scale for figure benchmarks —
// small enough that one iteration of the costliest figure (Fig 8, which
// includes the phase-change-heavy V^1.5 model) stays under a minute.
var benchSim = experiments.SimConfig{Reps: 1, Frames: 1500, Seed: 1}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1ACFFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2SamplePaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(500, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3ACFPanels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4CTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5BOP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Efficacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7WideRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SimCLR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSim
		cfg.Seed += int64(i)
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9SimEfficacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSim
		cfg.Seed += int64(i)
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Asymptotics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSim
		cfg.Seed += int64(i)
		if _, err := experiments.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks -------------------------------------------------

// Generator throughput per model family (frames/op).
func benchGenerator(b *testing.B, m traffic.Model) {
	b.Helper()
	g := m.NewGenerator(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextFrame()
	}
}

func BenchmarkGenZ(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	benchGenerator(b, z)
}

func BenchmarkGenV(b *testing.B) {
	v, err := models.NewV(1)
	if err != nil {
		b.Fatal(err)
	}
	benchGenerator(b, v)
}

func BenchmarkGenL(b *testing.B) {
	l, err := models.NewL()
	if err != nil {
		b.Fatal(err)
	}
	benchGenerator(b, l)
}

func BenchmarkGenDAR3(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	s, err := models.FitS(z, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchGenerator(b, s)
}

func BenchmarkGenFGN(b *testing.B) {
	f, err := fgn.NewModel(0.9, 500, 5000)
	if err != nil {
		b.Fatal(err)
	}
	benchGenerator(b, f)
}

// CTS scan cost by ACF family at a 20 ms buffer.
func benchCTS(b *testing.B, m traffic.Model) {
	b.Helper()
	op := core.Operating{
		C: experiments.BopC,
		B: experiments.MsecToPerSourceCells(20, experiments.BopC),
		N: experiments.BopN,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CTS(m, op, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCTSMarkov(b *testing.B) {
	p, err := dar.NewDAR1(0.9, dar.GaussianMarginal(models.Mean, models.Variance))
	if err != nil {
		b.Fatal(err)
	}
	benchCTS(b, p)
}

func BenchmarkCTSCompositeLRD(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	benchCTS(b, z)
}

func BenchmarkCTSExactLRD(b *testing.B) {
	f, err := fgn.NewModel(0.9, models.Mean, models.Variance)
	if err != nil {
		b.Fatal(err)
	}
	benchCTS(b, f)
}

// FGN synthesis scaling in block length.
func BenchmarkFGNSynthesis(b *testing.B) {
	for _, blockLen := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(byteSize(blockLen), func(b *testing.B) {
			m, err := fgn.NewModel(0.9, 500, 5000)
			if err != nil {
				b.Fatal(err)
			}
			m.BlockLen = blockLen
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := m.NewGenerator(int64(i))
				_ = g.NextFrame() // forces one block synthesis
			}
		})
	}
}

func byteSize(n int) string {
	switch {
	case n >= 1<<16:
		return "64k"
	case n >= 1<<14:
		return "16k"
	default:
		return "4k"
	}
}

// Serial-vs-parallel replication throughput through the orchestration
// engine. The workers=1 sub-benchmark is the legacy serial path; the
// workers=NumCPU sub-benchmark records the speedup the runner buys on this
// hardware (results are bit-identical between the two).
func BenchmarkSweepReplicationsParallel(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	buffers := []float64{0, 27, 134, 269}
	cfg := mux.Config{Model: z, N: 30, C: 538, Frames: 1000}
	// Enough replications to fill the pool even on wide machines; at
	// least 4 workers on the parallel leg so single-core CI still
	// exercises (and times) the concurrent path.
	par := runtime.NumCPU()
	if par < 4 {
		par = 4
	}
	reps := 2 * par
	for _, workers := range []int{1, par} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				_, err := mux.SweepReplicationsEngine(context.Background(),
					runner.New(workers), cfg, buffers, reps)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(reps*cfg.Frames)*float64(b.N)/b.Elapsed().Seconds(),
				"frames/sec")
		})
	}
}

// replayWorkload synthesises one FGN trace and wraps it as a replay
// model: the cheapest source the pipeline can drive, so the scalar/block
// benchmark pair below measures the multiplexer pull mechanism itself
// rather than a generator's arithmetic.
func replayWorkload(b *testing.B) *traffic.Replay {
	b.Helper()
	f, err := fgn.NewModel(0.9, 500, 5000)
	if err != nil {
		b.Fatal(err)
	}
	f.BlockLen = 1 << 16
	trace := traffic.Generate(f.NewGenerator(1), 1<<16)
	rep, err := traffic.NewReplay("fgn-trace", trace)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// benchMuxRun drives N=100 sources through mux.Run and reports aggregate
// source-frames/sec (N × frames per wall second).
func benchMuxRun(b *testing.B, m traffic.Model) {
	b.Helper()
	cfg := mux.Config{Model: m, N: 100, C: 526, B: 100, Frames: 20000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := mux.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.N)*float64(cfg.Frames)*float64(b.N)/b.Elapsed().Seconds(),
		"frames/sec")
}

// BenchmarkMuxRunScalar is the pre-refactor baseline: traffic.ScalarModel
// hides every native Fill, forcing one interface call per source per
// frame — the legacy aggregate() pull.
func BenchmarkMuxRunScalar(b *testing.B) {
	benchMuxRun(b, traffic.ScalarModel(replayWorkload(b)))
}

// BenchmarkMuxRunBlock is the same workload through the block-streaming
// pipeline (chunked fills, contiguous Lindley recursion). Results are
// bit-identical to the scalar run; only the throughput differs.
func BenchmarkMuxRunBlock(b *testing.B) {
	benchMuxRun(b, replayWorkload(b))
}

// BenchmarkMuxRunBlockFlight is BenchmarkMuxRunBlock with the flight
// recorder live on the process registry at its default 1 s cadence and a
// JSONL log sink attached — the exact `-flight` production configuration.
// The benchdiff baseline holds its throughput within 1% of the plain
// block run: the recorder only scrapes, the simulation never waits on it.
func BenchmarkMuxRunBlockFlight(b *testing.B) {
	rec, err := flight.Start(telemetry.Default, flight.Options{
		Path: filepath.Join(b.TempDir(), "flight.jsonl"),
		Tool: "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Stop()
	benchMuxRun(b, replayWorkload(b))
}

// BenchmarkMuxRunBlockProfiled is BenchmarkMuxRunBlock with the
// continuous profiler live at its default production cadence (CPU
// windows, heap/goroutine snapshots, bounded store) — the exact
// `-profile` configuration. The benchdiff baseline holds its throughput
// within 1% of the plain block run: profiling is purely observational,
// the simulation never waits on the collector.
func BenchmarkMuxRunBlockProfiled(b *testing.B) {
	col, err := prof.StartCollector(prof.CollectorOptions{
		Dir:      filepath.Join(b.TempDir(), "profiles"),
		Tool:     "bench",
		Registry: telemetry.Default,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer col.Stop()
	benchMuxRun(b, replayWorkload(b))
}

// BenchmarkFlightSnapshot prices one recorder frame — a full registry
// scrape plus the delta-encoded log line — against a registry populated
// like a mid-run simulation: 40 counters, 10 gauges, and 10 histograms
// carrying a thousand observations each. One counter advances per
// iteration so every frame writes a real (non-empty) delta line.
func BenchmarkFlightSnapshot(b *testing.B) {
	reg := telemetry.NewRegistry()
	active := reg.Counter("bench_active_total")
	for i := 0; i < 40; i++ {
		reg.Counter(fmt.Sprintf("bench_counter_%02d_total", i)).Add(int64(i))
	}
	for i := 0; i < 10; i++ {
		reg.Gauge(fmt.Sprintf("bench_gauge_%02d", i)).Set(float64(i))
		h := reg.Histogram(fmt.Sprintf("bench_hist_%02d", i))
		for j := 0; j < 1000; j++ {
			h.Observe(float64(j%97) + 0.5)
		}
	}
	rec, err := flight.Start(reg, flight.Options{
		Interval: time.Hour, // benchmark drives Record itself
		Path:     filepath.Join(b.TempDir(), "flight.jsonl"),
		Tool:     "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		active.Inc()
		rec.Record()
	}
}

// BenchmarkEngineStepOpenLoop forces the same open-loop workload through
// the per-frame stepped engine (Config.ForceStep). Results are
// bit-identical to BenchmarkMuxRunBlock; the gap prices the per-frame
// bookkeeping the feedback tap costs when nothing is closed-loop, and
// the benchdiff gate holds the chunked fast path itself within 5% of the
// pre-engine baseline.
func BenchmarkEngineStepOpenLoop(b *testing.B) {
	m := replayWorkload(b)
	cfg := mux.Config{Model: m, N: 100, C: 526, B: 100, Frames: 20000, ForceStep: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := mux.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.N)*float64(cfg.Frames)*float64(b.N)/b.Elapsed().Seconds(),
		"frames/sec")
}

// BenchmarkEngineStepClosedLoop wraps the replay workload in the AIMD
// controller, so every frame draws per-source scalars, runs the shared
// Lindley kernel, and delivers feedback to all 100 sources — the full
// closed-loop price.
func BenchmarkEngineStepClosedLoop(b *testing.B) {
	m, err := models.NewAIMD(replayWorkload(b), models.AIMDConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := mux.Config{Model: m, N: 100, C: 526, B: 100, Frames: 20000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := mux.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.N)*float64(cfg.Frames)*float64(b.N)/b.Elapsed().Seconds(),
		"frames/sec")
}

// BenchmarkCTSSweep prices a full Fig-4-style buffer sweep against one
// model with a fresh moment cache per iteration — the cost of the cached
// V(m) path including the one-time ACF walk, across all grid points.
func BenchmarkCTSSweep(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mo := traffic.NewMoments(z)
		for _, msec := range experiments.BufferGridMsec {
			op := core.Operating{
				C: experiments.Fig4C,
				B: experiments.MsecToPerSourceCells(msec, experiments.Fig4C),
				N: experiments.Fig4N,
			}
			if _, err := core.CTSMoments(mo, op, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Multiplexer throughput: frames/sec through the coupled buffer sweep.
func BenchmarkMuxSweep(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	buffers := []float64{0, 27, 134, 269}
	cfg := mux.Config{Model: z, N: 30, C: 538, Frames: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := mux.RunSweep(cfg, buffers); err != nil {
			b.Fatal(err)
		}
	}
}

// Admission-service benchmarks: the per-decision cost of the online CAC
// path against a standing heterogeneous mix. "cold" recomputes the
// large-deviations feasibility check every iteration (cache flushed);
// "cache-hit" measures the steady-churn fast path the decision cache
// serves. DryRun keeps the mix — and therefore the cache key — stable.
func BenchmarkAdmitDecision(b *testing.B) {
	srv := admitd.NewServer(admitd.Config{})
	if err := srv.AddLink(admitd.LinkConfig{Name: "core", CellsPerSec: 365566, DelayMs: 20, CLR: 1e-6}); err != nil {
		b.Fatal(err)
	}
	for _, seed := range []struct {
		spec string
		n    int
	}{{"z:0.975", 10}, {"dar:0.975:1", 5}} {
		resp, err := srv.Admit(admitd.AdmitRequest{Link: "core", Class: seed.spec, Count: seed.n})
		if err != nil || !resp.Admitted {
			b.Fatalf("seeding mix: %+v, %v", resp, err)
		}
	}
	req := admitd.AdmitRequest{Link: "core", Class: "z:0.975", DryRun: true}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srv.FlushCaches()
			if _, err := srv.Admit(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		if _, err := srv.Admit(req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := srv.Admit(req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.CacheHit {
				b.Fatal("decision missed the cache")
			}
		}
	})
}

// mixSigSink defeats dead-code elimination in BenchmarkMixSignature.
var mixSigSink string

// BenchmarkMixSignature prices the canonical signature rendering that
// forms every decision-cache key and journal-replay state identity.
func BenchmarkMixSignature(b *testing.B) {
	classes := []admitd.ClassCount{
		{Class: "z:0.975", Count: 14},
		{Class: "DAR:0.975:1", Count: 9},
		{Class: "l", Count: 3},
		{Class: "v:1.5", Count: 2},
	}
	for i := 0; i < b.N; i++ {
		mixSigSink = admitd.MixSignature(classes)
	}
}
