package models

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/traffic"
)

func TestAllModelsShareMarginal(t *testing.T) {
	// The crucial design property (paper §3): identical Gaussian marginals,
	// so first-order statistics contribute nothing to queueing differences.
	var ms []traffic.Model
	for _, v := range VValues {
		m, err := NewV(v)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	for _, a := range ZValues {
		m, err := NewZ(a)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	l, err := NewL()
	if err != nil {
		t.Fatal(err)
	}
	ms = append(ms, l)
	z, _ := NewZ(0.975)
	for _, p := range SOrders {
		s, err := FitS(z, p)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, s)
	}
	for _, m := range ms {
		if math.Abs(m.Mean()-Mean) > 1e-6 {
			t.Errorf("%s: mean %v, want %v", m.Name(), m.Mean(), Mean)
		}
		if math.Abs(m.Variance()-Variance)/Variance > 1e-6 {
			t.Errorf("%s: variance %v, want %v", m.Name(), m.Variance(), Variance)
		}
	}
}

func TestZParameterValidation(t *testing.T) {
	for _, a := range []float64{0, 1, -0.2, 1.3} {
		if _, err := NewZ(a); err == nil {
			t.Errorf("NewZ(%v): expected error", a)
		}
	}
}

func TestVParameterValidation(t *testing.T) {
	for _, v := range []float64{0, -1} {
		if _, err := NewV(v); err == nil {
			t.Errorf("NewV(%v): expected error", v)
		}
	}
}

func TestZEqualComponentSplit(t *testing.T) {
	z, err := NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z.V()-1) > 1e-9 {
		t.Fatalf("Z weight v = %v, want 1", z.V())
	}
	if math.Abs(z.X.Mean()-z.Y.Mean()) > 1e-9 {
		t.Fatal("Z components should contribute equal means")
	}
}

func TestTable1T0Values(t *testing.T) {
	// Paper Table 1: T0 = 3.48 ms for V^v, 2.57 ms for Z^a.
	v, err := NewV(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.X.P.T0 * 1000; math.Abs(got-3.48) > 0.01 {
		t.Errorf("V T0 = %v ms, want ≈3.48", got)
	}
	z, err := NewZ(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.X.P.T0 * 1000; math.Abs(got-2.57) > 0.01 {
		t.Errorf("Z T0 = %v ms, want ≈2.57", got)
	}
	l, err := NewL()
	if err != nil {
		t.Fatal(err)
	}
	// Our self-consistent derivation gives 1.89 ms (paper prints 1.83; see
	// EXPERIMENTS.md for the reconciliation).
	if got := l.P.T0 * 1000; math.Abs(got-1.89) > 0.01 {
		t.Errorf("L T0 = %v ms, want ≈1.89", got)
	}
}

func TestTable1LambdaValues(t *testing.T) {
	// Paper Table 1: λ = 5000, 6250, 7500 cells/s across v = 0.67, 1, 1.5.
	wants := map[float64]float64{0.67: 5000, 1: 6250, 1.5: 7500}
	for v, want := range wants {
		m, err := NewV(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.X.P.Lambda; math.Abs(got-want)/want > 0.005 {
			t.Errorf("V^%v: lambda = %v, want ≈%v", v, got, want)
		}
	}
	z, _ := NewZ(0.9)
	if got := z.X.P.Lambda; math.Abs(got-6250) > 1 {
		t.Errorf("Z lambda = %v, want 6250", got)
	}
	l, _ := NewL()
	if got := l.P.Lambda; math.Abs(got-12500) > 1 {
		t.Errorf("L lambda = %v, want 12500", got)
	}
}

func TestVFirstLagCorrelationPinned(t *testing.T) {
	// The defining property of the V^v family: identical r(1) across v.
	ref, err := NewV(1)
	if err != nil {
		t.Fatal(err)
	}
	r1 := ref.ACF(1)
	for _, v := range []float64{0.3, 0.67, 1.5, 3} {
		m, err := NewV(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.ACF(1); math.Abs(got-r1) > 1e-9 {
			t.Errorf("V^%v: r(1) = %v, want %v", v, got, r1)
		}
	}
}

func TestVShortTermCorrelationsClose(t *testing.T) {
	// Paper Fig 3-(a): the first ~5 lags of V^0.67, V^1, V^1.5 are very
	// close to each other.
	var ms []*Composite
	for _, v := range VValues {
		m, err := NewV(v)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	// "Very close" in the paper's Fig 3-(a) sense: exact at lag 1, then
	// within ~0.08 absolute through lag 5 (the paper's own parameters give
	// a spread of ≈0.066 at lag 5).
	for k := 1; k <= 5; k++ {
		lo, hi := 1.0, 0.0
		for _, m := range ms {
			r := m.ACF(k)
			lo, hi = math.Min(lo, r), math.Max(hi, r)
		}
		limit := 0.08
		if k == 1 {
			limit = 1e-9
		}
		if hi-lo > limit {
			t.Errorf("lag %d: V^v ACF spread %v exceeds %v", k, hi-lo, limit)
		}
	}
}

func TestVLongTermCorrelationsDiffer(t *testing.T) {
	// The long-lag correlations of V^v must scale with v/(1+v).
	v1, _ := NewV(0.67)
	v2, _ := NewV(1.5)
	k := 500
	want := (1.5 / 2.5) / (0.67 / 1.67)
	got := v2.ACF(k) / v1.ACF(k)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("V long-lag ratio = %v, want ≈%v", got, want)
	}
}

func TestVDerivedANearPaper(t *testing.T) {
	// Paper Table 1 lists a = 0.799761, 0.8, 0.800362. Our self-consistent
	// derivation lands within 0.006 of those values (see EXPERIMENTS.md);
	// the defining invariant (pinned r(1)) is tested exactly above.
	wants := map[float64]float64{0.67: 0.799761, 1: 0.8, 1.5: 0.800362}
	for v, want := range wants {
		m, err := NewV(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Y.Rho(); math.Abs(got-want) > 0.006 {
			t.Errorf("V^%v: a = %v, want ≈%v", v, got, want)
		}
	}
}

func TestZShortTermCorrelationsSpread(t *testing.T) {
	// Paper Fig 3-(b): larger a gives stronger short-term correlations.
	prev := 0.0
	for _, a := range ZValues {
		z, err := NewZ(a)
		if err != nil {
			t.Fatal(err)
		}
		r5 := z.ACF(5)
		if r5 <= prev {
			t.Fatalf("Z^%v: ACF(5) = %v not increasing in a", a, r5)
		}
		prev = r5
	}
}

func TestZLongTermCorrelationsIdentical(t *testing.T) {
	// All Z^a share the FBNDP tail: at large lags the a^k term vanishes
	// (for a = 0.99 the geometric residue only dies past lag ~1500).
	z1, _ := NewZ(0.7)
	z2, _ := NewZ(0.99)
	for _, k := range []int{2000, 5000} {
		r1, r2 := z1.ACF(k), z2.ACF(k)
		if math.Abs(r1-r2)/r1 > 0.01 {
			t.Fatalf("lag %d: Z^0.7 %v vs Z^0.99 %v should match", k, r1, r2)
		}
	}
}

func TestZAndLTailsClose(t *testing.T) {
	// Paper Fig 3-(b): Z^a and L long-term correlations are close up to at
	// least 1000 lags (within a factor ~1.6 on this log-log scale, crossing
	// near lag 900).
	z, _ := NewZ(0.975)
	l, _ := NewL()
	for _, k := range []int{50, 200, 800, 1000} {
		ratio := l.ACF(k) / z.ACF(k)
		if ratio < 0.6 || ratio > 1.8 {
			t.Fatalf("lag %d: L/Z ACF ratio %v outside [0.6, 1.8]", k, ratio)
		}
	}
}

func TestFitLAlphaRecoversPaperChoice(t *testing.T) {
	// The tail-fit over lags 10..1000 against Z^a should land near the
	// paper's α = 0.72.
	z, _ := NewZ(0.975)
	alpha, err := FitLAlpha(z, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 0.66 || alpha > 0.78 {
		t.Fatalf("fitted α = %v, want ≈0.72", alpha)
	}
}

func TestFitLAlphaValidation(t *testing.T) {
	z, _ := NewZ(0.9)
	if _, err := FitLAlpha(z, 0, 100); err == nil {
		t.Error("lagLo < 1 should error")
	}
	if _, err := FitLAlpha(z, 100, 50); err == nil {
		t.Error("inverted window should error")
	}
}

func TestFitSMatchesACF(t *testing.T) {
	z, _ := NewZ(0.975)
	for _, p := range SOrders {
		s, err := FitS(z, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for k := 1; k <= p; k++ {
			if math.Abs(s.ACF(k)-z.ACF(k)) > 1e-9 {
				t.Fatalf("DAR(%d): ACF(%d) = %v, want %v", p, k, s.ACF(k), z.ACF(k))
			}
		}
	}
	if _, err := FitS(z, 0); err == nil {
		t.Error("order 0 should error")
	}
}

func TestCompositeGeneratorMoments(t *testing.T) {
	z, err := NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	var meanSum, varSum float64
	const reps = 4
	for seed := int64(1); seed <= reps; seed++ {
		xs := traffic.Generate(z.NewGenerator(seed), 80000)
		meanSum += stats.Mean(xs)
		varSum += stats.Variance(xs)
	}
	if got := meanSum / reps; math.Abs(got-500)/500 > 0.05 {
		t.Fatalf("Z^0.9 replication mean %v, want ≈500", got)
	}
	if got := varSum / reps; got < 3200 || got > 7000 {
		t.Fatalf("Z^0.9 replication variance %v, want ≈5000 (LRD-widened band)", got)
	}
}

func TestCompositeGeneratorShortACF(t *testing.T) {
	z, _ := NewZ(0.975)
	xs := traffic.Generate(z.NewGenerator(13), 200000)
	acf := stats.ACF(xs, 3)
	for k := 1; k <= 3; k++ {
		if math.Abs(acf[k]-z.ACF(k)) > 0.08 {
			t.Fatalf("ACF(%d) = %v, analytic %v", k, acf[k], z.ACF(k))
		}
	}
}

func TestCompositeGeneratorReproducible(t *testing.T) {
	z, _ := NewZ(0.7)
	a := traffic.Generate(z.NewGenerator(3), 100)
	b := traffic.Generate(z.NewGenerator(3), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed paths diverged")
		}
	}
}

func TestDeriveTable1Complete(t *testing.T) {
	tab, err := DeriveTable1()
	if err != nil {
		t.Fatal(err)
	}
	// 3 V rows + 4 Z rows + 1 L row.
	if len(tab.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(tab.Rows))
	}
	// 2 targets × 3 orders of DAR fits.
	if len(tab.Fits) != 6 {
		t.Fatalf("got %d fits, want 6", len(tab.Fits))
	}
	if tab.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestDeriveTable1FitsMatchPaper(t *testing.T) {
	tab, err := DeriveTable1()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 1 DAR fits (ρ, a_i) with loose tolerances: ours are exact
	// Yule-Walker solutions against our analytic Z ACF.
	type want struct {
		rho float64
		sel []float64
	}
	wants := map[[2]float64]want{
		{0.7, 1}:   {0.68, []float64{1}},
		{0.975, 1}: {0.82, []float64{1}},
		{0.975, 2}: {0.87, []float64{0.70, 0.30}},
		{0.7, 2}:   {0.72, []float64{0.84, 0.16}},
		{0.975, 3}: {0.89, []float64{0.63, 0.18, 0.19}},
		{0.7, 3}:   {0.73, []float64{0.82, 0.10, 0.08}},
	}
	for _, f := range tab.Fits {
		w, ok := wants[[2]float64{f.TargetA, float64(f.Order)}]
		if !ok {
			continue
		}
		if math.Abs(f.Rho-w.rho) > 0.02 {
			t.Errorf("Z^%v DAR(%d): rho = %v, want ≈%v", f.TargetA, f.Order, f.Rho, w.rho)
		}
		for i := range w.sel {
			if math.Abs(f.Sel[i]-w.sel[i]) > 0.05 {
				t.Errorf("Z^%v DAR(%d): a%d = %v, want ≈%v",
					f.TargetA, f.Order, i+1, f.Sel[i], w.sel[i])
			}
		}
	}
}

func BenchmarkZGenerator(b *testing.B) {
	z, err := NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	g := z.NewGenerator(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextFrame()
	}
}
