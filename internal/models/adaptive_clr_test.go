package models_test

import (
	"testing"

	"repro/internal/models"
	"repro/internal/mux"
)

// TestAIMDReducesCLRUnderCongestion is the controller sanity check: at a
// congested operating point (N=30 Z^0.975 sources on c=510, ~98%
// offered utilisation) the adaptive source must lose markedly fewer
// cells than its open-loop twin, without starving itself — the realised
// mean rate stays within a small band of the open-loop one. The twin
// shares the master seed, so both runs see the same underlying base
// sample paths and differ only through the controller.
func TestAIMDReducesCLRUnderCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := models.NewAIMD(z, models.AIMDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mux.Config{N: 30, C: 510, B: 25, Frames: 8000, Warmup: 400, Seed: 7}

	cfg.Model = z
	open, err := mux.RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Model = adaptive
	closed, err := mux.RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}

	openCLR := mux.CLREstimate(open, 0.95).Point
	closedCLR := mux.CLREstimate(closed, 0.95).Point
	if openCLR < 1e-4 {
		t.Fatalf("operating point not congested enough: open-loop CLR %v", openCLR)
	}
	if closedCLR >= openCLR/2 {
		t.Fatalf("adaptive CLR %v not at least 2x below open-loop %v", closedCLR, openCLR)
	}

	// Equal-mean-rate check: adaptation must shed only the congested
	// tail, not throttle the source wholesale.
	var openArr, closedArr float64
	for i := range open {
		openArr += open[i].ArrivedCells
		closedArr += closed[i].ArrivedCells
	}
	if closedArr < 0.9*openArr || closedArr > openArr {
		t.Fatalf("adaptive arrivals %v outside [90%%, 100%%] of open-loop %v",
			closedArr, openArr)
	}
}
