package models

import (
	"math"
	"testing"

	"repro/internal/traffic"
)

func TestAIMDConfigDefaults(t *testing.T) {
	got := AIMDConfig{}.withDefaults()
	if got != DefaultAIMD {
		t.Fatalf("zero config → %+v, want DefaultAIMD %+v", got, DefaultAIMD)
	}
	partial := AIMDConfig{Target: 0.5, Decrease: 0.8}.withDefaults()
	if partial.Target != 0.5 || partial.Decrease != 0.8 {
		t.Fatalf("explicit fields overwritten: %+v", partial)
	}
	if partial.Increase != DefaultAIMD.Increase || partial.MaxRate != DefaultAIMD.MaxRate {
		t.Fatalf("zero fields not defaulted: %+v", partial)
	}
	if err := DefaultAIMD.Validate(); err != nil {
		t.Fatalf("DefaultAIMD invalid: %v", err)
	}
}

func TestAIMDConfigValidate(t *testing.T) {
	bad := []AIMDConfig{
		{Target: 1.5},            // target above 1
		{Target: -0.1},           // negative target
		{Increase: -0.01},        // negative increase
		{Decrease: 1.5},          // decrease not a back-off
		{MinRate: 2, MaxRate: 1}, // inverted clamp
		{Smoothing: 2},           // EWMA weight above 1
	}
	for i, c := range bad {
		if err := c.withDefaults().Validate(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestNewAIMDNilBase(t *testing.T) {
	if _, err := NewAIMD(nil, AIMDConfig{}); err == nil {
		t.Fatal("nil base should error")
	}
}

func TestAIMDModelDelegates(t *testing.T) {
	z, err := NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAIMD(z, AIMDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "AIMD[Z^0.975]" {
		t.Fatalf("name %q", m.Name())
	}
	if m.Mean() != z.Mean() || m.Variance() != z.Variance() || m.ACF(5) != z.ACF(5) {
		t.Fatal("offered-process moments must delegate to the base model")
	}
	if m.Base() != traffic.Model(z) {
		t.Fatal("Base() must return the wrapped model")
	}
	if !traffic.IsClosedLoopModel(m) {
		t.Fatal("AIMD generators must be closed-loop")
	}
	if traffic.IsClosedLoopModel(z) {
		t.Fatal("base Z model must stay open-loop")
	}
}

// calmFeedback is an uncongested observation: empty queue, no loss.
var calmFeedback = traffic.Feedback{Buffer: 100, Capacity: 500, Utilization: 0.5}

func TestAIMDControllerIncreasesWhenCalm(t *testing.T) {
	z, err := NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAIMD(z, AIMDConfig{MinRate: 0.3, MaxRate: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	g := m.NewGenerator(1).(*aimdGen)
	g.rate = 0.5
	prev := g.rate
	for i := 0; i < 10; i++ {
		g.Observe(calmFeedback)
		if g.rate < prev {
			t.Fatalf("rate fell to %v while calm", g.rate)
		}
		prev = g.rate
	}
	want := 0.5 + 10*m.Config().Increase
	if math.Abs(g.rate-want) > 1e-12 {
		t.Fatalf("rate %v after 10 calm frames, want %v", g.rate, want)
	}
	for i := 0; i < 1000; i++ {
		g.Observe(calmFeedback)
	}
	if g.rate != 0.9 {
		t.Fatalf("rate %v must clamp at MaxRate 0.9", g.rate)
	}
}

func TestAIMDControllerBacksOffOnLoss(t *testing.T) {
	z, err := NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAIMD(z, AIMDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.NewGenerator(1).(*aimdGen)
	lossy := calmFeedback
	lossy.Loss = 12
	g.Observe(lossy)
	want := 1.0 * m.Config().Decrease
	if math.Abs(g.rate-want) > 1e-12 {
		t.Fatalf("rate %v after one loss frame, want %v", g.rate, want)
	}
	for i := 0; i < 1000; i++ {
		g.Observe(lossy)
	}
	if g.rate != m.Config().MinRate {
		t.Fatalf("rate %v must clamp at MinRate %v", g.rate, m.Config().MinRate)
	}
}

func TestAIMDControllerBacksOffAboveTargetOccupancy(t *testing.T) {
	z, err := NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAIMD(z, AIMDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.NewGenerator(1).(*aimdGen)
	full := traffic.Feedback{W: 95, Buffer: 100, Capacity: 500, Utilization: 1}
	for i := 0; i < 50; i++ {
		g.Observe(full) // EWMA occupancy climbs toward 0.95 > Target 0.7
	}
	if g.rate >= 1 {
		t.Fatalf("rate %v did not back off with occupancy above target", g.rate)
	}
}

func TestAIMDRateScalesFrames(t *testing.T) {
	// NextFrame must be the base draw times the current rate, and the
	// base stream must advance exactly one draw per frame so congestion
	// history never desynchronises the underlying sample path.
	z, err := NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAIMD(z, AIMDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 77
	base := z.NewGenerator(seed)
	g := m.NewGenerator(seed).(*aimdGen)
	lossy := calmFeedback
	lossy.Loss = 5
	for i := 0; i < 20; i++ {
		want := base.NextFrame() * g.rate
		if got := g.NextFrame(); got != want {
			t.Fatalf("frame %d: got %v, want base·rate %v", i, got, want)
		}
		g.Observe(lossy) // rate decays; the paths must stay aligned
	}
}
