package models

import (
	"fmt"
	"strings"
)

// Table1Row is one line of the paper's Table 1: the resolved parameters of
// a V^v, Z^a or L model.
type Table1Row struct {
	Model  string
	V      float64 // weight v (0 when not applicable)
	Alpha  float64
	A      float64 // DAR(1) lag-1 correlation (0 for L)
	Lambda float64 // FBNDP mean rate, cells/sec
	T0     float64 // fractal onset time, seconds
	M      int
}

// Table1DARFit is one DAR(p) fit row of Table 1: model S matched to a Z^a.
type Table1DARFit struct {
	TargetA float64 // the a of the Z^a being matched
	Order   int
	Rho     float64
	Sel     []float64 // a_1..a_p
}

// Table1 is the full derived parameter table.
type Table1 struct {
	Rows []Table1Row
	Fits []Table1DARFit
}

// DeriveTable1 recomputes every derived parameter of the paper's Table 1
// from first principles: the V^v DAR parameters that pin the lag-1
// correlation, the fractal onset times that deliver the target variances,
// and the DAR(p) Yule-Walker fits to Z^0.7 and Z^0.975.
func DeriveTable1() (*Table1, error) {
	t := &Table1{}
	for _, v := range VValues {
		m, err := NewV(v)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Table1Row{
			Model:  m.Name(),
			V:      v,
			Alpha:  m.X.P.Alpha,
			A:      m.Y.Rho(),
			Lambda: m.X.P.Lambda,
			T0:     m.X.P.T0,
			M:      m.X.P.M,
		})
	}
	for _, a := range ZValues {
		m, err := NewZ(a)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Table1Row{
			Model:  m.Name(),
			V:      1,
			Alpha:  m.X.P.Alpha,
			A:      a,
			Lambda: m.X.P.Lambda,
			T0:     m.X.P.T0,
			M:      m.X.P.M,
		})
	}
	l, err := NewL()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Table1Row{
		Model:  l.Name(),
		Alpha:  l.P.Alpha,
		Lambda: l.P.Lambda,
		T0:     l.P.T0,
		M:      l.P.M,
	})

	for _, a := range []float64{0.7, 0.975} {
		z, err := NewZ(a)
		if err != nil {
			return nil, err
		}
		for _, p := range SOrders {
			s, err := FitS(z, p)
			if err != nil {
				return nil, err
			}
			t.Fits = append(t.Fits, Table1DARFit{
				TargetA: a,
				Order:   p,
				Rho:     s.Rho(),
				Sel:     s.SelectionProbs(),
			})
		}
	}
	return t, nil
}

// String renders the table in the paper's layout.
func (t *Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s %6s %10s %12s %9s %4s\n",
		"model", "v", "alpha", "a", "lambda c/s", "T0 msec", "M")
	for _, r := range t.Rows {
		a := "-"
		if r.A != 0 {
			a = fmt.Sprintf("%.6f", r.A)
		}
		v := "-"
		if r.V != 0 {
			v = fmt.Sprintf("%.2f", r.V)
		}
		fmt.Fprintf(&b, "%-8s %6s %6.2f %10s %12.0f %9.2f %4d\n",
			r.Model, v, r.Alpha, a, r.Lambda, r.T0*1000, r.M)
	}
	b.WriteString("\nDAR(p) fits (model S):\n")
	for _, f := range t.Fits {
		sel := make([]string, len(f.Sel))
		for i, s := range f.Sel {
			sel[i] = fmt.Sprintf("a%d=%.2f", i+1, s)
		}
		fmt.Fprintf(&b, "  Z^%-5g DAR(%d): rho=%.2f %s\n",
			f.TargetA, f.Order, f.Rho, strings.Join(sel, " "))
	}
	return b.String()
}
