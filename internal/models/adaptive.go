package models

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// metAIMDRate records the controller's rate factor, sampled every
// rateSampleStride frames per source so the histogram costs an atomic
// bucket increment amortised over a stride, not per frame. Observational
// only: sampling never touches the controller state or the random streams.
var metAIMDRate = telemetry.Default.Histogram("aimd_rate_factor")

// rateSampleStride is the per-source sampling stride of metAIMDRate.
const rateSampleStride = 64

// AIMDConfig parameterises the adaptive rate controller. The zero value
// selects the defaults below via withDefaults; explicit fields override
// individually.
type AIMDConfig struct {
	// Target is the queue-occupancy set point as a fraction of the total
	// buffer (utilization stands in on zero/infinite buffers). Above it
	// the controller backs off multiplicatively; at or below it the rate
	// grows additively. Default 0.7.
	Target float64
	// Increase is the additive rate-factor increase per uncongested
	// frame. Default 0.01.
	Increase float64
	// Decrease is the multiplicative back-off applied on loss or when the
	// smoothed occupancy exceeds Target. Default 0.9.
	Decrease float64
	// MinRate and MaxRate clamp the rate factor. The default MaxRate of 1
	// models rate-adaptive video: the source never exceeds its encoded
	// (open-loop) rate, it only degrades below it under congestion, so the
	// adapted process is dominated path-wise by the open-loop twin.
	// Defaults 0.3 and 1.0.
	MinRate, MaxRate float64
	// Smoothing is the EWMA weight of the newest occupancy sample in the
	// congestion signal, in (0, 1]. Default 0.25.
	Smoothing float64
}

// DefaultAIMD is the default controller parameterisation.
var DefaultAIMD = AIMDConfig{
	Target:    0.7,
	Increase:  0.01,
	Decrease:  0.9,
	MinRate:   0.3,
	MaxRate:   1.0,
	Smoothing: 0.25,
}

// withDefaults fills zero fields from DefaultAIMD.
func (c AIMDConfig) withDefaults() AIMDConfig {
	d := DefaultAIMD
	if c.Target != 0 {
		d.Target = c.Target
	}
	if c.Increase != 0 {
		d.Increase = c.Increase
	}
	if c.Decrease != 0 {
		d.Decrease = c.Decrease
	}
	if c.MinRate != 0 {
		d.MinRate = c.MinRate
	}
	if c.MaxRate != 0 {
		d.MaxRate = c.MaxRate
	}
	if c.Smoothing != 0 {
		d.Smoothing = c.Smoothing
	}
	return d
}

// Validate checks a fully-defaulted configuration.
func (c AIMDConfig) Validate() error {
	if c.Target <= 0 || c.Target > 1 {
		return fmt.Errorf("models: AIMD target %v outside (0, 1]", c.Target)
	}
	if c.Increase <= 0 {
		return fmt.Errorf("models: AIMD increase %v must be positive", c.Increase)
	}
	if c.Decrease <= 0 || c.Decrease >= 1 {
		return fmt.Errorf("models: AIMD decrease %v outside (0, 1)", c.Decrease)
	}
	if c.MinRate <= 0 || c.MinRate > c.MaxRate {
		return fmt.Errorf("models: AIMD rate clamp [%v, %v] invalid", c.MinRate, c.MaxRate)
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		return fmt.Errorf("models: AIMD smoothing %v outside (0, 1]", c.Smoothing)
	}
	return nil
}

// AIMD wraps a base traffic model so that every source it manufactures is
// closed-loop: frame sizes are the base model's draws scaled by a rate
// factor that an additive-increase/multiplicative-decrease controller
// adapts to the multiplexer feedback (smoothed queue occupancy and
// per-frame loss). It is the repository's first rate-adaptive source —
// the modern-video counterexample to the paper's strictly open-loop
// assumption.
//
// The analytic description (Mean, Variance, ACF) delegates to the base
// model: it characterises the source's *offered* open-loop process, which
// is what the CAC machinery budgets for; the realised process under
// congestion is by construction no larger. Sample-path statistics of the
// adapted process come from simulation only.
type AIMD struct {
	base traffic.Model
	cfg  AIMDConfig
	name string
}

// NewAIMD wraps base with an AIMD rate controller. Zero fields of cfg
// take the DefaultAIMD values.
func NewAIMD(base traffic.Model, cfg AIMDConfig) (*AIMD, error) {
	if base == nil {
		return nil, fmt.Errorf("models: AIMD needs a base model")
	}
	c := cfg.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &AIMD{base: base, cfg: c, name: "AIMD[" + base.Name() + "]"}, nil
}

// Name implements traffic.Model.
func (m *AIMD) Name() string { return m.name }

// Base returns the wrapped open-loop model.
func (m *AIMD) Base() traffic.Model { return m.base }

// Config returns the fully-defaulted controller parameters.
func (m *AIMD) Config() AIMDConfig { return m.cfg }

// Mean implements traffic.Model (the offered, open-loop mean).
func (m *AIMD) Mean() float64 { return m.base.Mean() }

// Variance implements traffic.Model (offered, open-loop).
func (m *AIMD) Variance() float64 { return m.base.Variance() }

// ACF implements traffic.Model (offered, open-loop).
func (m *AIMD) ACF(k int) float64 { return m.base.ACF(k) }

// NewGenerator implements traffic.Model. The returned generator
// implements traffic.FeedbackGenerator, so the multiplexer engine steps
// it frame-by-frame and delivers queue feedback after every frame.
func (m *AIMD) NewGenerator(seed int64) traffic.Generator {
	g := m.base.NewGenerator(seed)
	if g == nil {
		return nil
	}
	return &aimdGen{base: g, cfg: m.cfg, rate: 1}
}

// aimdGen is the closed-loop generator: deterministic in (seed, feedback
// sequence) — the controller state is a pure function of the observed
// feedback, and the base generator owns all randomness.
type aimdGen struct {
	base traffic.Generator
	cfg  AIMDConfig
	rate float64 // current rate factor, clamped to [MinRate, MaxRate]
	occ  float64 // EWMA of the occupancy signal
	n    uint64  // observed frames, for telemetry sampling
}

// NextFrame implements traffic.Generator: the base draw scaled by the
// current rate factor. The base stream is consumed at exactly one draw
// per frame regardless of the rate, so two AIMD sources with the same
// seed but different congestion histories stay on the same underlying
// sample path.
func (g *aimdGen) NextFrame() float64 {
	return g.base.NextFrame() * g.rate
}

// Observe implements traffic.FeedbackGenerator: one AIMD update per
// served frame.
func (g *aimdGen) Observe(fb traffic.Feedback) {
	g.occ += g.cfg.Smoothing * (fb.Occupancy() - g.occ)
	if fb.Loss > 0 || g.occ > g.cfg.Target {
		g.rate *= g.cfg.Decrease
	} else {
		g.rate += g.cfg.Increase
	}
	if g.rate < g.cfg.MinRate {
		g.rate = g.cfg.MinRate
	} else if g.rate > g.cfg.MaxRate {
		g.rate = g.cfg.MaxRate
	}
	if g.n%rateSampleStride == 0 {
		metAIMDRate.Observe(g.rate)
	}
	g.n++
}
