package models

import (
	"fmt"
	"strings"

	"repro/internal/randx"
	"repro/internal/traffic"
)

// MPEG is a cyclostationary MPEG-style source: a wide-sense-stationary
// activity process modulated by the deterministic periodic frame-type
// pattern of a group of pictures (GOP), X_n = w_{φ+n mod P}·B_n with a
// uniformly random phase φ. This is the paper's §6.2 future-work item
// ("finding CTS of various types of traffic sources including MPEG-coded
// video"): the I/P/B size periodicity adds strong correlation ripples at
// multiples of the GOP period on top of the base process's decay.
//
// With the random phase the process is WSS, with phase-averaged moments
//
//	μ   = w̄·μ_B
//	σ²  = avg(w²)·(σ_B²+μ_B²) − μ²
//	c(k) = W(k)·(σ_B²·r_B(k)+μ_B²) − w̄²·μ_B²,  W(k) = avg_n w_n·w_{n+k}
//
// so the ACF r(k) = c(k)/c(0) carries both the base decay and the
// periodic W(k) ripple, and can be fed to the CTS machinery unchanged.
type MPEG struct {
	base    traffic.Model
	weights []float64
	name    string
}

// TypicalGOP is a common 9-frame pattern with I:P:B size ratios of
// roughly 5:3:1, normalised by NewMPEG so the mean rate is preserved.
const TypicalGOP = "IBBPBBPBB"

// GOPWeights converts an I/P/B pattern string into raw frame-size weights
// using the given per-type sizes.
func GOPWeights(pattern string, i, p, b float64) ([]float64, error) {
	if pattern == "" {
		return nil, fmt.Errorf("models: empty GOP pattern")
	}
	out := make([]float64, 0, len(pattern))
	for _, c := range strings.ToUpper(pattern) {
		switch c {
		case 'I':
			out = append(out, i)
		case 'P':
			out = append(out, p)
		case 'B':
			out = append(out, b)
		default:
			return nil, fmt.Errorf("models: GOP pattern contains %q (want I, P, B)", c)
		}
	}
	return out, nil
}

// NewMPEG wraps base with the periodic weights, which are rescaled to
// average 1 so the mean frame size is unchanged. All weights must be
// positive and the period at least 2.
func NewMPEG(base traffic.Model, weights []float64) (*MPEG, error) {
	if base == nil {
		return nil, fmt.Errorf("models: nil base model")
	}
	if len(weights) < 2 {
		return nil, fmt.Errorf("models: GOP period %d must be ≥ 2", len(weights))
	}
	var sum float64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("models: non-positive GOP weight w[%d] = %v", i, w)
		}
		sum += w
	}
	mean := sum / float64(len(weights))
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / mean
	}
	return &MPEG{
		base:    base,
		weights: norm,
		name:    fmt.Sprintf("MPEG[%s]", base.Name()),
	}, nil
}

// Name implements traffic.Model.
func (m *MPEG) Name() string { return m.name }

// Period returns the GOP length P.
func (m *MPEG) Period() int { return len(m.weights) }

// Weights returns a copy of the normalised per-position weights.
func (m *MPEG) Weights() []float64 { return append([]float64(nil), m.weights...) }

// wBar2 returns avg(w²); avg(w) is 1 by construction.
func (m *MPEG) wBar2() float64 {
	var s float64
	for _, w := range m.weights {
		s += w * w
	}
	return s / float64(len(m.weights))
}

// weightCorr returns W(k) = avg_n w_n·w_{n+k}, periodic in k.
func (m *MPEG) weightCorr(k int) float64 {
	p := len(m.weights)
	k = ((k % p) + p) % p
	var s float64
	for n := 0; n < p; n++ {
		s += m.weights[n] * m.weights[(n+k)%p]
	}
	return s / float64(p)
}

// Mean implements traffic.Model.
func (m *MPEG) Mean() float64 { return m.base.Mean() }

// covariance returns the phase-averaged autocovariance c(k).
func (m *MPEG) covariance(k int) float64 {
	mb := m.base.Mean()
	vb := m.base.Variance()
	return m.weightCorr(k)*(vb*m.base.ACF(k)+mb*mb) - mb*mb
}

// Variance implements traffic.Model: c(0) = avg(w²)(σ_B²+μ_B²) − μ_B².
func (m *MPEG) Variance() float64 { return m.covariance(0) }

// ACF implements traffic.Model.
func (m *MPEG) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	return m.covariance(k) / m.covariance(0)
}

// NewGenerator implements traffic.Model: the base path scaled by the GOP
// weights from a uniformly random starting phase.
func (m *MPEG) NewGenerator(seed int64) traffic.Generator {
	rng := randx.NewRand(seed)
	phase := rng.Intn(len(m.weights))
	g := m.base.NewGenerator(rng.Int63())
	return &mpegGen{weights: m.weights, phase: phase, g: g, b: traffic.Blocks(g)}
}

// mpegGen modulates a base sample path by the periodic GOP weights.
type mpegGen struct {
	weights []float64
	phase   int
	g       traffic.Generator
	b       traffic.BlockGenerator
}

// NextFrame implements traffic.Generator.
func (g *mpegGen) NextFrame() float64 {
	w := g.weights[g.phase]
	g.phase = (g.phase + 1) % len(g.weights)
	return w * g.g.NextFrame()
}

// Fill implements traffic.BlockGenerator: one bulk pull from the base
// generator, then the periodic scaling in place (bit-identical to the
// scalar protocol).
func (g *mpegGen) Fill(dst []float64) {
	g.b.Fill(dst)
	for i := range dst {
		dst[i] *= g.weights[g.phase]
		g.phase = (g.phase + 1) % len(g.weights)
	}
}
