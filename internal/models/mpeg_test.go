package models

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/traffic"
)

func newMPEG(t testing.TB) (*MPEG, *Composite) {
	t.Helper()
	z, err := NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	w, err := GOPWeights(TypicalGOP, 5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMPEG(z, w)
	if err != nil {
		t.Fatal(err)
	}
	return m, z
}

func TestGOPWeights(t *testing.T) {
	w, err := GOPWeights("IBBP", 5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, 1, 3}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("weights %v, want %v", w, want)
		}
	}
	if _, err := GOPWeights("", 5, 3, 1); err == nil {
		t.Error("empty pattern should error")
	}
	if _, err := GOPWeights("IXB", 5, 3, 1); err == nil {
		t.Error("bad frame type should error")
	}
}

func TestNewMPEGValidation(t *testing.T) {
	z, _ := NewZ(0.9)
	if _, err := NewMPEG(nil, []float64{1, 2}); err == nil {
		t.Error("nil base should error")
	}
	if _, err := NewMPEG(z, []float64{1}); err == nil {
		t.Error("period 1 should error")
	}
	if _, err := NewMPEG(z, []float64{1, 0}); err == nil {
		t.Error("zero weight should error")
	}
}

func TestMPEGMeanPreserved(t *testing.T) {
	m, z := newMPEG(t)
	if math.Abs(m.Mean()-z.Mean()) > 1e-9 {
		t.Fatalf("mean %v, want %v", m.Mean(), z.Mean())
	}
	// Normalised weights average to 1.
	var s float64
	for _, w := range m.Weights() {
		s += w
	}
	if math.Abs(s/float64(m.Period())-1) > 1e-12 {
		t.Fatal("weights not normalised")
	}
}

func TestMPEGVarianceExceedsBase(t *testing.T) {
	// Modulation adds the deterministic I/P/B size variation on top of the
	// base variance.
	m, z := newMPEG(t)
	if m.Variance() <= z.Variance() {
		t.Fatalf("variance %v should exceed base %v", m.Variance(), z.Variance())
	}
}

func TestMPEGACFPeriodicRipple(t *testing.T) {
	// At exact GOP multiples the weight correlation W(k) peaks, so the ACF
	// must ripple upward relative to adjacent lags.
	m, _ := newMPEG(t)
	p := m.Period()
	for _, mult := range []int{1, 2, 4} {
		k := mult * p
		if !(m.ACF(k) > m.ACF(k-1) && m.ACF(k) > m.ACF(k+1)) {
			t.Fatalf("no GOP ripple at lag %d: %v %v %v",
				k, m.ACF(k-1), m.ACF(k), m.ACF(k+1))
		}
	}
	if m.ACF(0) != 1 || m.ACF(-3) != m.ACF(3) {
		t.Fatal("ACF basic properties violated")
	}
}

func TestMPEGGeneratorMatchesAnalytic(t *testing.T) {
	m, _ := newMPEG(t)
	var meanSum, varSum float64
	const reps = 4
	acfSum := make([]float64, m.Period()+2)
	for seed := int64(1); seed <= reps; seed++ {
		xs := traffic.Generate(m.NewGenerator(seed), 100000)
		meanSum += stats.Mean(xs)
		varSum += stats.Variance(xs)
		acf := stats.ACF(xs, m.Period()+1)
		for k := range acfSum {
			acfSum[k] += acf[k]
		}
	}
	if got := meanSum / reps; math.Abs(got-m.Mean())/m.Mean() > 0.05 {
		t.Fatalf("mean %v, want %v", got, m.Mean())
	}
	if got := varSum / reps; math.Abs(got-m.Variance())/m.Variance() > 0.2 {
		t.Fatalf("variance %v, want %v", got, m.Variance())
	}
	// The empirical ACF shows the analytic GOP ripple.
	k := m.Period()
	if got, want := acfSum[k]/reps, m.ACF(k); math.Abs(got-want) > 0.05 {
		t.Fatalf("ACF(%d) = %v, analytic %v", k, got, want)
	}
}

func TestMPEGGeneratorReproducible(t *testing.T) {
	m, _ := newMPEG(t)
	a := traffic.Generate(m.NewGenerator(3), 100)
	b := traffic.Generate(m.NewGenerator(3), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed paths diverged")
		}
	}
}

func TestMPEGName(t *testing.T) {
	m, _ := newMPEG(t)
	if m.Name() != "MPEG[Z^0.9]" {
		t.Fatalf("name %q", m.Name())
	}
}
