// Package models assembles the paper's four VBR video source models from
// the DAR and FBNDP substrates (paper §3, §5.1, Table 1):
//
//   - V^v — FBNDP + DAR(1) with the long-term correlation weight
//     v = σ²_X/σ²_Y swept while the lag-1 correlation is held fixed.
//   - Z^a — FBNDP + DAR(1) with v = 1 and the DAR(1) lag-1 correlation a
//     swept while the Hurst parameter is held fixed.
//   - S — a DAR(p) Markov model that exactly matches the first p
//     autocorrelations of a given Z^a.
//   - L — a pure FBNDP exact-LRD model whose ACF tail matches Z^a's.
//
// Every model shares the same Gaussian frame-size marginal: mean 500
// cells/frame, variance 5000, at 25 frames/s (Ts = 40 ms), so differences
// in queueing behaviour are attributable purely to second-order structure.
package models

import (
	"fmt"
	"math"

	"repro/internal/dar"
	"repro/internal/fbndp"
	"repro/internal/randx"
	"repro/internal/traffic"
)

// Canonical evaluation constants (paper §5.1).
const (
	// FrameRate is the video frame rate in frames/sec.
	FrameRate = 25.0
	// Ts is the frame duration in seconds.
	Ts = 1.0 / FrameRate
	// Mean is the frame-size mean μ in cells/frame.
	Mean = 500.0
	// Variance is the frame-size variance σ² in (cells/frame)².
	Variance = 5000.0
	// MZV is the FBNDP superposition order M for Z^a and V^v.
	MZV = 15
	// ML is the FBNDP superposition order M for L.
	ML = 30
	// AlphaZ is the FBNDP fractal exponent of Z^a (Hurst 0.9).
	AlphaZ = 0.8
	// AlphaV is the FBNDP fractal exponent of V^v (Hurst 0.95).
	AlphaV = 0.9
	// AlphaL is the FBNDP fractal exponent of L (Hurst 0.86), chosen so
	// L's ACF tail best fits Z^a's (paper §5.1 item 7).
	AlphaL = 0.72
	// RefA is the DAR(1) lag-1 correlation of the reference V^1 model.
	RefA = 0.8
)

// Composite is the sum of an independent FBNDP component X and DAR(1)
// component Y, the construction of both V^v and Z^a (paper §3.3). Its ACF
// is the variance-weighted mixture
//
//	r(k) = v/(v+1)·r_X(k) + 1/(v+1)·r_Y(k),  v = σ²_X/σ²_Y.
type Composite struct {
	X    *fbndp.Model
	Y    *dar.Process
	name string
}

// NewComposite wires the two components together.
func NewComposite(x *fbndp.Model, y *dar.Process, name string) *Composite {
	return &Composite{X: x, Y: y, name: name}
}

// Name implements traffic.Model.
func (c *Composite) Name() string { return c.name }

// Mean implements traffic.Model.
func (c *Composite) Mean() float64 { return c.X.Mean() + c.Y.Mean() }

// Variance implements traffic.Model.
func (c *Composite) Variance() float64 { return c.X.Variance() + c.Y.Variance() }

// V returns the long-term correlation weight v = σ²_X/σ²_Y.
func (c *Composite) V() float64 { return c.X.Variance() / c.Y.Variance() }

// ACF implements traffic.Model (paper Eq. 5).
func (c *Composite) ACF(k int) float64 {
	vx, vy := c.X.Variance(), c.Y.Variance()
	return (vx*c.X.ACF(k) + vy*c.Y.ACF(k)) / (vx + vy)
}

// NewGenerator implements traffic.Model: the sum of independent X and Y
// sample paths, with child seeds derived deterministically from seed.
func (c *Composite) NewGenerator(seed int64) traffic.Generator {
	r := randx.NewRand(seed)
	gx := c.X.NewGenerator(r.Int63())
	gy := c.Y.NewGenerator(r.Int63())
	return &compositeGen{
		gx: gx, gy: gy,
		bx: traffic.Blocks(gx), by: traffic.Blocks(gy),
	}
}

// compositeGen sums independent component sample paths. The components
// hold separate RNG streams, so filling X for a whole chunk and then Y
// yields exactly the per-frame interleaved path of the scalar protocol.
type compositeGen struct {
	gx, gy traffic.Generator
	bx, by traffic.BlockGenerator
	tmp    []float64 // scratch for the Y component during Fill
}

// NextFrame implements traffic.Generator.
func (g *compositeGen) NextFrame() float64 {
	return g.gx.NextFrame() + g.gy.NextFrame()
}

// Fill implements traffic.BlockGenerator (bit-identical to NextFrame).
func (g *compositeGen) Fill(dst []float64) {
	if cap(g.tmp) < len(dst) {
		g.tmp = make([]float64, len(dst))
	}
	tmp := g.tmp[:len(dst)]
	g.bx.Fill(dst)
	g.by.Fill(tmp)
	for i, v := range tmp {
		dst[i] += v
	}
}

// componentSplit computes the FBNDP component moments implied by weight v:
// σ²_X = σ²·v/(1+v), and μ_X from the FBNDP index-of-dispersion identity
// σ²_X/μ_X = 1 + (Ts/T0)^α = σ²/μ (all our models share dispersion 10).
func componentSplit(v float64) (muX, varX, muY, varY float64) {
	varX = Variance * v / (1 + v)
	varY = Variance - varX
	dispersion := Variance / Mean // = 1 + (Ts/T0)^α by construction
	muX = varX / dispersion
	muY = Mean - muX
	return
}

// NewZ constructs the asymptotic-LRD model Z^a for a given DAR(1) lag-1
// correlation a ∈ (0, 1). Z^a has v = 1: the FBNDP and DAR(1) components
// contribute equally to mean and variance (paper §3.3).
func NewZ(a float64) (*Composite, error) {
	if a <= 0 || a >= 1 {
		return nil, fmt.Errorf("models: Z parameter a = %v outside (0, 1)", a)
	}
	muX, varX, muY, varY := componentSplit(1)
	t0, err := fbndp.SolveT0(muX, varX, AlphaZ, Ts)
	if err != nil {
		return nil, fmt.Errorf("models: Z FBNDP onset time: %w", err)
	}
	x, err := fbndp.NewModel(fbndp.Params{
		Alpha: AlphaZ, Lambda: muX / Ts, T0: t0, M: MZV, Ts: Ts,
	})
	if err != nil {
		return nil, fmt.Errorf("models: Z FBNDP component: %w", err)
	}
	y, err := dar.NewDAR1(a, dar.GaussianMarginal(muY, varY))
	if err != nil {
		return nil, fmt.Errorf("models: Z DAR component: %w", err)
	}
	return NewComposite(x, y, fmt.Sprintf("Z^%g", a)), nil
}

// NewV constructs the model V^v for a given long-term correlation weight
// v > 0. The FBNDP onset time is fixed at the v = 1 derivation (paper
// Table 1: T0 = 3.48 ms for all three v), and the DAR(1) parameter a is
// solved so the lag-1 correlation of V^v equals that of the reference V^1
// with a = 0.8 (paper §3.3: "for different values of v, the first-lag
// correlation is identical").
func NewV(v float64) (*Composite, error) {
	if v <= 0 {
		return nil, fmt.Errorf("models: V parameter v = %v must be positive", v)
	}
	muX, _, muY, varY := componentSplit(v)
	// T0 from the v = 1 split, held fixed across v. Because every split
	// shares the dispersion σ²/μ, σ²_X = dispersion·μ_X holds automatically
	// for the other v as well.
	muX1, varX1, _, _ := componentSplit(1)
	t0, err := fbndp.SolveT0(muX1, varX1, AlphaV, Ts)
	if err != nil {
		return nil, fmt.Errorf("models: V FBNDP onset time: %w", err)
	}
	x, err := fbndp.NewModel(fbndp.Params{
		Alpha: AlphaV, Lambda: muX / Ts, T0: t0, M: MZV, Ts: Ts,
	})
	if err != nil {
		return nil, fmt.Errorf("models: V FBNDP component: %w", err)
	}
	a, err := SolveVA(v, x.P)
	if err != nil {
		return nil, err
	}
	y, err := dar.NewDAR1(a, dar.GaussianMarginal(muY, varY))
	if err != nil {
		return nil, fmt.Errorf("models: V DAR component: %w", err)
	}
	return NewComposite(x, y, fmt.Sprintf("V^%g", v)), nil
}

// SolveVA returns the DAR(1) parameter a of V^v that pins the composite
// lag-1 correlation to the reference value
// r_ref(1) = ½·r_X(1) + ½·RefA (the V^1 model):
//
//	a = [ r_ref(1) − w·r_X(1) ] / (1−w),  w = v/(1+v).
func SolveVA(v float64, x fbndp.Params) (float64, error) {
	rx1 := x.ACF(1)
	ref := 0.5*rx1 + 0.5*RefA
	w := v / (1 + v)
	a := (ref - w*rx1) / (1 - w)
	if a <= 0 || a >= 1 {
		return 0, fmt.Errorf("models: derived V DAR parameter a = %v infeasible for v = %v", a, v)
	}
	return a, nil
}

// NewL constructs the exact-LRD model L: a pure FBNDP with the full
// marginal (μ = 500, σ² = 5000), M = 30 and α = AlphaL (paper Table 1).
func NewL() (*fbndp.Model, error) {
	return NewLAlpha(AlphaL)
}

// NewLAlpha constructs an L-type model with an explicit fractal exponent,
// used by the tail-fitting search.
func NewLAlpha(alpha float64) (*fbndp.Model, error) {
	t0, err := fbndp.SolveT0(Mean, Variance, alpha, Ts)
	if err != nil {
		return nil, fmt.Errorf("models: L onset time: %w", err)
	}
	m, err := fbndp.NewModel(fbndp.Params{
		Alpha: alpha, Lambda: Mean / Ts, T0: t0, M: ML, Ts: Ts,
	})
	if err != nil {
		return nil, fmt.Errorf("models: L: %w", err)
	}
	m.SetName("L")
	return m, nil
}

// FitLAlpha searches for the fractal exponent α whose L-type model best
// fits the ACF tail of target over lags [lagLo, lagHi], minimising the mean
// squared log-ACF distance (the paper's §5.1 item 7 procedure, which
// selected α = 0.72 against Z^a). The search is a fine grid over (0.4,
// 0.98); the objective is smooth, so grid resolution 1e-3 suffices.
func FitLAlpha(target traffic.Model, lagLo, lagHi int) (float64, error) {
	if lagLo < 1 || lagHi <= lagLo {
		return 0, fmt.Errorf("models: invalid lag window [%d, %d]", lagLo, lagHi)
	}
	// Log-spaced lags keep the objective from being dominated by the
	// densely packed high lags.
	var lags []int
	for k := float64(lagLo); k <= float64(lagHi); k *= 1.15 {
		lags = append(lags, int(k))
	}
	best, bestObj := 0.0, math.Inf(1)
	for alpha := 0.40; alpha <= 0.98; alpha += 0.001 {
		m, err := NewLAlpha(alpha)
		if err != nil {
			continue
		}
		var obj float64
		ok := true
		for _, k := range lags {
			rt, rl := target.ACF(k), m.ACF(k)
			if rt <= 0 || rl <= 0 {
				ok = false
				break
			}
			d := math.Log(rl) - math.Log(rt)
			obj += d * d
		}
		if !ok {
			continue
		}
		if obj < bestObj {
			best, bestObj = alpha, obj
		}
	}
	if math.IsInf(bestObj, 1) {
		return 0, fmt.Errorf("models: tail fit failed over [%d, %d]", lagLo, lagHi)
	}
	return best, nil
}

// FitS constructs the paper's model S: a DAR(p) whose first p
// autocorrelations exactly match those of z, sharing the same Gaussian
// marginal (paper §3.1, Table 1).
func FitS(z traffic.Model, p int) (*dar.Process, error) {
	if p < 1 {
		return nil, fmt.Errorf("models: DAR order %d must be ≥ 1", p)
	}
	target := make([]float64, p)
	for k := 1; k <= p; k++ {
		target[k-1] = z.ACF(k)
	}
	s, err := dar.Fit(target, dar.GaussianMarginal(z.Mean(), z.Variance()))
	if err != nil {
		return nil, fmt.Errorf("models: DAR(%d) fit to %s: %w", p, z.Name(), err)
	}
	s.SetName(fmt.Sprintf("DAR(%d)[%s]", p, z.Name()))
	return s, nil
}

// Paper-standard parameter sweeps.
var (
	// VValues are the three long-term correlation weights of Fig 3-5, 8.
	VValues = []float64{0.67, 1, 1.5}
	// ZValues are the four short-term correlation levels of Fig 3-9.
	ZValues = []float64{0.7, 0.9, 0.975, 0.99}
	// SOrders are the DAR orders fit in Table 1 and Figs 6, 7, 9.
	SOrders = []int{1, 2, 3}
)
