package farima

import (
	"math"
	"testing"

	"repro/internal/hurst"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func TestNewValidation(t *testing.T) {
	for _, d := range []float64{0, 0.5, -0.1, 0.9} {
		if _, err := New(d, 0, 1); err == nil {
			t.Errorf("d=%v: expected error", d)
		}
	}
	if _, err := New(0.4, 0, 0); err == nil {
		t.Error("zero variance should error")
	}
}

func TestACFClosedForm(t *testing.T) {
	// Compare the recursion against the direct Gamma-ratio formula.
	d := 0.3
	m, err := New(d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct := func(k int) float64 {
		lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
		return math.Exp(lg(1-d) + lg(float64(k)+d) - lg(d) - lg(float64(k)+1-d))
	}
	for _, k := range []int{1, 2, 5, 10, 100, 1000} {
		if got, want := m.ACF(k), direct(k); math.Abs(got-want)/want > 1e-10 {
			t.Fatalf("ACF(%d) = %v, closed form %v", k, got, want)
		}
	}
	if m.ACF(0) != 1 || m.ACF(-3) != m.ACF(3) {
		t.Fatal("basic ACF properties violated")
	}
}

func TestACFFirstLag(t *testing.T) {
	// r(1) = d/(1−d).
	m, err := New(0.4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.ACF(1), 0.4/0.6; math.Abs(got-want) > 1e-14 {
		t.Fatalf("r(1) = %v, want %v", got, want)
	}
}

func TestACFHyperbolicTail(t *testing.T) {
	m, err := New(0.35, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1000, 10000} {
		want := m.TailConstant() * math.Pow(float64(k), 2*m.D-1)
		if got := m.ACF(k); math.Abs(got-want)/want > 0.01 {
			t.Fatalf("ACF(%d) = %v, tail asymptote %v", k, got, want)
		}
	}
}

func TestHurst(t *testing.T) {
	m, _ := New(0.4, 0, 1)
	if m.Hurst() != 0.9 {
		t.Fatalf("H = %v, want 0.9", m.Hurst())
	}
}

func TestGeneratorMomentsAndACF(t *testing.T) {
	m, err := New(0.4, 500, 5000)
	if err != nil {
		t.Fatal(err)
	}
	m.BlockLen = 1 << 14
	xs := traffic.Generate(m.NewGenerator(5), 1<<17)
	if got := stats.Mean(xs); math.Abs(got-500) > 10 {
		t.Fatalf("mean %v, want ≈500", got)
	}
	if got := stats.Variance(xs); math.Abs(got-5000)/5000 > 0.15 {
		t.Fatalf("variance %v, want ≈5000", got)
	}
	acf := stats.ACF(xs, 10)
	for k := 1; k <= 10; k++ {
		if math.Abs(acf[k]-m.ACF(k)) > 0.05 {
			t.Fatalf("empirical ACF(%d) = %v, analytic %v", k, acf[k], m.ACF(k))
		}
	}
}

func TestGeneratorLRD(t *testing.T) {
	m, err := New(0.4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.BlockLen = 1 << 15
	xs := traffic.Generate(m.NewGenerator(8), 1<<17)
	h, err := hurst.VarianceTime(xs, 10, len(xs)/32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.9) > 0.08 {
		t.Fatalf("estimated H %v, want ≈0.9", h)
	}
}

func TestGeneratorIsBlockGenerator(t *testing.T) {
	// The embedded fgn synthesiser provides a native block Fill; F-ARIMA
	// generators must inherit it (no scalar fallback in the mux hot path).
	m, _ := New(0.3, 0, 1)
	m.BlockLen = 256
	g := m.NewGenerator(4)
	if _, ok := g.(traffic.BlockGenerator); !ok {
		t.Fatalf("%T does not implement traffic.BlockGenerator", g)
	}
	a := traffic.Generate(m.NewGenerator(4), 500)
	b := traffic.FillFrames(traffic.Blocks(m.NewGenerator(4)), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: scalar %v != block %v", i, a[i], b[i])
		}
	}
}

func TestGeneratorReproducible(t *testing.T) {
	m, _ := New(0.3, 0, 1)
	m.BlockLen = 256
	a := traffic.Generate(m.NewGenerator(4), 500)
	b := traffic.Generate(m.NewGenerator(4), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed paths diverged")
		}
	}
}

func TestName(t *testing.T) {
	m, _ := New(0.25, 0, 1)
	if m.Name() != "F-ARIMA(d=0.25)" {
		t.Fatalf("name %q", m.Name())
	}
}
