// Package farima implements the fractional ARIMA(0, d, 0) process, the
// paper's §2 example of an *asymptotic* LRD process (F-ARIMA(p,d,q)
// family, Hurst H = d + 1/2 for 0 < d < 1/2). The autocorrelation has the
// exact closed form
//
//	r(k) = Γ(1−d)·Γ(k+d) / (Γ(d)·Γ(k+1−d))
//
// computed stably by the recursion r(k) = r(k−1)·(k−1+d)/(k−d), and the
// tail r(k) ~ Γ(1−d)/Γ(d)·k^{2d−1} — hyperbolic, like FGN, but with a
// different constant and different short-lag behaviour, which is exactly
// why the paper distinguishes asymptotic from exact LRD.
//
// Sample paths are synthesised exactly by circulant embedding (package
// fgn's generalised Gaussian synthesis).
package farima

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/fgn"
)

// Model is an F-ARIMA(0,d,0) frame-size process. It is a thin wrapper
// keeping d and the ACF memo; the traffic.Model implementation is the
// embedded Gaussian synthesiser, whose generators also satisfy
// traffic.BlockGenerator (native block Fill), so F-ARIMA inherits the
// block-streaming fast path for free.
type Model struct {
	*fgn.Model
	D float64

	mu  sync.Mutex
	mem []float64 // memoised r(0), r(1), ...
}

// New constructs an F-ARIMA(0,d,0) model with 0 < d < 1/2 (long-range
// dependent; H = d + 1/2) and the given marginal moments.
func New(d, mean, variance float64) (*Model, error) {
	if d <= 0 || d >= 0.5 {
		return nil, fmt.Errorf("farima: d = %v outside (0, 0.5)", d)
	}
	m := &Model{D: d}
	g, err := fgn.NewGaussianFromACF(
		fmt.Sprintf("F-ARIMA(d=%.3g)", d), mean, variance, m.acf)
	if err != nil {
		return nil, err
	}
	m.Model = g
	return m, nil
}

// Hurst returns H = d + 1/2.
func (m *Model) Hurst() float64 { return m.D + 0.5 }

// acf evaluates the exact F-ARIMA autocorrelation by the Gamma-ratio
// recursion, memoised (safe for concurrent use).
func (m *Model) acf(k int) float64 {
	if k < 0 {
		k = -k
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.mem == nil {
		// r(1) = d/(1−d).
		m.mem = []float64{1, m.D / (1 - m.D)}
	}
	for lag := len(m.mem); lag <= k; lag++ {
		fl := float64(lag)
		m.mem = append(m.mem, m.mem[lag-1]*(fl-1+m.D)/(fl-m.D))
	}
	return m.mem[k]
}

// TailConstant returns the hyperbolic-tail coefficient Γ(1−d)/Γ(d), with
// r(k) ≈ TailConstant·k^{2d−1} for large k.
func (m *Model) TailConstant() float64 {
	return math.Gamma(1-m.D) / math.Gamma(m.D)
}
