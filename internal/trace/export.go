package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// "X" (complete) events carry a start timestamp and duration in
// microseconds; "M" (metadata) events name the process and thread tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object form of a trace file; Perfetto and
// chrome://tracing both accept it.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports every completed span as Chrome trace-event JSON.
// Spans become complete ("X") events with pid 1 and tid = lane, so the
// orchestrator (figure and sweep spans, lane 0) and each replication
// worker render as separate named tracks; the parent link of every span is
// preserved in its args, keeping the figure → sweep → replication → chunk
// hierarchy recoverable by tooling. Events are sorted by start time, as
// the format recommends.
func (t *Tracer) WriteChrome(w io.Writer) error {
	recs := t.Records()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })

	lanes := map[int]bool{}
	events := make([]chromeEvent, 0, len(recs)+8)
	for _, r := range recs {
		args := make(map[string]any, len(r.Attrs)+2)
		for _, a := range r.Attrs {
			args[a.Key] = a.Value
		}
		args["span_id"] = r.ID
		if r.Parent != 0 {
			args["parent_id"] = r.Parent
		}
		lanes[r.Lane] = true
		events = append(events, chromeEvent{
			Name: r.Name,
			Ph:   "X",
			Pid:  1,
			Tid:  r.Lane,
			Ts:   float64(r.Start) / float64(time.Microsecond),
			Dur:  float64(r.Dur()) / float64(time.Microsecond),
			Cat:  "run",
			Args: args,
		})
	}

	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "repro run"},
	}}
	laneIDs := make([]int, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)
	for _, l := range laneIDs {
		name := "orchestrator"
		if l > 0 {
			name = fmt.Sprintf("worker %d", l)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: l,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	})
}

// WriteChromeFile writes the Chrome trace to path (truncating).
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	err = t.WriteChrome(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}

// Summary aggregates all spans of one name: how often it ran and where
// its wall-clock time went. Seconds are wall-clock and overlap across
// concurrent workers, so lane sums can exceed elapsed time.
type Summary struct {
	Name         string  `json:"name"`
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// Summarize aggregates completed spans by name, sorted by descending total
// time — the "where did the run go" table persisted into run manifests.
func (t *Tracer) Summarize() []Summary {
	recs := t.Records()
	byName := map[string]*Summary{}
	for _, r := range recs {
		s := byName[r.Name]
		if s == nil {
			s = &Summary{Name: r.Name, MinSeconds: r.Dur().Seconds()}
			byName[r.Name] = s
		}
		d := r.Dur().Seconds()
		s.Count++
		s.TotalSeconds += d
		if d < s.MinSeconds {
			s.MinSeconds = d
		}
		if d > s.MaxSeconds {
			s.MaxSeconds = d
		}
	}
	out := make([]Summary, 0, len(byName))
	for _, s := range byName {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		// Ordered comparisons instead of a != tie-break: same ordering,
		// no exact float equality.
		if out[i].TotalSeconds > out[j].TotalSeconds {
			return true
		}
		if out[i].TotalSeconds < out[j].TotalSeconds {
			return false
		}
		return out[i].Name < out[j].Name
	})
	return out
}
