package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// The zero Span and nil Tracer must be complete no-ops so instrumented
// code never branches on "is tracing on".
func TestDisabledIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Root("root", Int("i", 1))
	if sp.Active() {
		t.Fatal("span of nil tracer is active")
	}
	child := sp.Child("child").OnLane(3)
	child.SetAttrs(String("k", "v"))
	child.End()
	sp.End()
	if tr.Len() != 0 || tr.Records() != nil {
		t.Fatal("nil tracer recorded spans")
	}
	// FromContext on a bare context is the zero span.
	if got := FromContext(context.Background()); got.Active() {
		t.Fatal("bare context carries an active span")
	}
	// ContextWith of a zero span must not allocate a value context.
	ctx := context.Background()
	if ContextWith(ctx, Span{}) != ctx {
		t.Fatal("attaching the zero span changed the context")
	}
}

func TestSpanTreeAndLanes(t *testing.T) {
	tr := New()
	root := tr.Root("fig8", String("figure", "8"))
	sweep := root.Child("sweep", String("model", "Z^0.9"))
	rep := sweep.Child("rep", Int("index", 2)).OnLane(1)
	chunk := rep.Child("fill")
	chunk.End()
	rep.End()
	sweep.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["sweep"].Parent != byName["fig8"].ID {
		t.Error("sweep is not a child of fig8")
	}
	if byName["rep"].Parent != byName["sweep"].ID {
		t.Error("rep is not a child of sweep")
	}
	if byName["fill"].Parent != byName["rep"].ID {
		t.Error("fill is not a child of rep")
	}
	if byName["fig8"].Lane != 0 || byName["sweep"].Lane != 0 {
		t.Error("orchestrator spans must stay on lane 0")
	}
	if byName["rep"].Lane != 1 {
		t.Errorf("rep lane = %d, want 1", byName["rep"].Lane)
	}
	if byName["fill"].Lane != 1 {
		t.Error("chunk span did not inherit its replication's lane")
	}
	for _, r := range recs {
		if r.End < r.Start {
			t.Errorf("span %s ends (%v) before it starts (%v)", r.Name, r.End, r.Start)
		}
	}
	if byName["fig8"].Start > byName["fill"].Start {
		t.Error("root starts after its grandchild")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New()
	sweep := tr.Root("sweep")
	ctx := ContextWith(context.Background(), sweep)
	got := FromContext(ctx)
	rep := got.Child("rep")
	rep.End()
	sweep.End()
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "rep" || recs[0].Parent != recs[1].ID {
		t.Errorf("span recovered from context lost its parent link: %+v", recs)
	}
}

// Concurrent End calls from parallel workers must be race-free and lose
// nothing (run under -race in CI).
func TestConcurrentRecording(t *testing.T) {
	tr := New()
	root := tr.Root("root")
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := root.Child("rep", Int("i", i)).OnLane(w + 1)
				sp.Child("fill").End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got, want := tr.Len(), workers*each*2+1; got != want {
		t.Fatalf("recorded %d spans, want %d", got, want)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New()
	root := tr.Root("fig9")
	rep := root.Child("rep", Int("index", 0)).OnLane(2)
	rep.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	var complete, meta int
	var sawParent bool
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["name"] == "rep" {
				args := ev["args"].(map[string]any)
				if _, ok := args["parent_id"]; ok {
					sawParent = true
				}
				if ev["tid"].(float64) != 2 {
					t.Errorf("rep exported on tid %v, want lane 2", ev["tid"])
				}
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Errorf("exported %d complete events, want 2", complete)
	}
	if meta < 3 { // process_name + two thread_name tracks
		t.Errorf("exported %d metadata events, want ≥ 3", meta)
	}
	if !sawParent {
		t.Error("child event lost its parent_id arg")
	}
}

func TestSummarize(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		tr.Root("fill").End()
	}
	tr.Root("drain").End()
	sums := tr.Summarize()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	byName := map[string]Summary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	if byName["fill"].Count != 3 || byName["drain"].Count != 1 {
		t.Errorf("summary counts wrong: %+v", sums)
	}
	for _, s := range sums {
		if s.MinSeconds > s.MaxSeconds || s.TotalSeconds < s.MaxSeconds {
			t.Errorf("inconsistent summary %+v", s)
		}
	}
}
