package trace

import "context"

// ctxKey is the private context key for span propagation.
type ctxKey struct{}

// ContextWith returns a context carrying sp, for handing a parent span
// across API boundaries that already thread a context (e.g. the runner's
// replication fan-out). Attaching the zero Span is harmless: children of
// it are no-ops.
func ContextWith(ctx context.Context, sp Span) context.Context {
	if sp.tr == nil {
		return ctx // avoid an allocation on the disabled path
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or the zero (no-op) Span.
func FromContext(ctx context.Context) Span {
	sp, _ := ctx.Value(ctxKey{}).(Span)
	return sp
}
