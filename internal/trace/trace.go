// Package trace is the repository's span-tracing layer: it records where
// wall-clock time goes inside a run as a tree of spans — figure → sweep →
// replication → mux chunk fill/drain — and exports the tree as Chrome
// trace-event JSON (loadable in chrome://tracing and Perfetto) plus an
// aggregated per-name summary for run manifests.
//
// Design constraints, in order:
//
//  1. Tracing must never perturb results. Spans are observational: nothing
//     here touches random number streams or simulation state, so
//     fixed-seed outputs are bit-identical with tracing on or off.
//  2. Disabled tracing must be near-free. The zero Span and the nil
//     *Tracer are valid no-op values: starting a child of a zero Span is
//     one nil check and returns another zero Span, so instrumented hot
//     paths pay a single predictable branch when no -trace flag is given.
//  3. Recording must be cheap enough for per-chunk granularity. A span is
//     two time.Now calls plus one short mutex-protected append at End;
//     instrumentation sits at chunk (≤ 4096 frames) and coarser
//     boundaries, never per frame.
//
// Concurrency: spans from parallel replication workers are recorded on
// distinct lanes (OnLane), which the Chrome exporter maps to thread IDs so
// concurrent replications render side by side instead of as one
// impossibly-overlapping stack. A span inherits its parent's lane unless
// overridden.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any // string, int, int64 or float64 — kept JSON-encodable
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Record is one completed span, in the tracer's monotonic time base
// (durations since Tracer start).
type Record struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Lane   int // exporter thread lane; 0 = orchestrator
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
}

// Dur returns the span's wall-clock duration.
func (r Record) Dur() time.Duration { return r.End - r.Start }

// Tracer collects completed spans. The nil *Tracer is the disabled state:
// every operation on it (and on spans descended from it) is a no-op.
type Tracer struct {
	t0     time.Time
	nextID atomic.Uint64

	mu      sync.Mutex
	records []Record
}

// New returns an enabled tracer whose time base starts now.
func New() *Tracer {
	return &Tracer{t0: time.Now()}
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is a handle on an in-flight span. The zero Span is a valid no-op:
// children of it are no-ops and End does nothing, so instrumented code
// never needs to test whether tracing is on.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	lane   int
	name   string
	start  time.Duration
	attrs  []Attr
}

// Root starts a top-level span. A nil tracer returns the zero Span.
func (t *Tracer) Root(name string, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tr:    t,
		id:    t.nextID.Add(1),
		name:  name,
		start: time.Since(t.t0),
		attrs: attrs,
	}
}

// Child starts a sub-span of s, inheriting s's lane. On the zero Span it
// is a no-op returning another zero Span — the single branch that makes
// disabled tracing near-free on chunk-granularity hot paths.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.tr == nil {
		return Span{}
	}
	return Span{
		tr:     s.tr,
		id:     s.tr.nextID.Add(1),
		parent: s.id,
		lane:   s.lane,
		name:   name,
		start:  time.Since(s.tr.t0),
		attrs:  attrs,
	}
}

// OnLane returns a copy of s assigned to the given exporter lane
// (rendered as a thread track). Parallel replication workers get distinct
// lanes so their spans render side by side; descendants inherit the lane.
func (s Span) OnLane(lane int) Span {
	s.lane = lane
	return s
}

// Active reports whether the span records on End (false for the zero
// Span).
func (s Span) Active() bool { return s.tr != nil }

// SetAttrs appends annotations to the span before End.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s.tr != nil {
		s.attrs = append(s.attrs, attrs...)
	}
}

// End completes the span and records it. End on the zero Span is a no-op;
// a double End records a duplicate and is a programming error (not
// checked on the hot path).
func (s Span) End() {
	if s.tr == nil {
		return
	}
	rec := Record{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Lane:   s.lane,
		Start:  s.start,
		End:    time.Since(s.tr.t0),
		Attrs:  s.attrs,
	}
	s.tr.mu.Lock()
	s.tr.records = append(s.tr.records, rec)
	s.tr.mu.Unlock()
}

// Records returns a copy of every completed span, in End order. Nil
// tracers return nil.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Record(nil), t.records...)
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.records)
}
