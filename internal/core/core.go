// Package core implements the paper's analytical contribution: the
// Critical Time Scale (CTS) of a VBR video source and the large-deviations
// buffer overflow asymptotics it is derived from (paper §4).
//
// The setting is an ATM multiplexer fed by N statistically identical
// Gaussian frame-size sources with mean μ, variance σ² and autocorrelation
// r(k) (all in cells/frame units), drained at C = N·c cells/frame with a
// buffer of B = N·b cells. Three estimates of the buffer overflow
// probability P(W > B) are provided:
//
//   - Bahadur-Rao asymptotic (Eq. 7): exp(−N·I(c,b) − ½log[4πN·I(c,b)]),
//     where the rate function I(c,b) = inf_{m≥1} [b+m(c−μ)]²/(2V(m)) and
//     V(m) = σ²[m + 2Σ_{i<m}(m−i)r(i)] is the variance of an m-frame sum.
//   - Large-N asymptotic (Courcoubetis-Weber): exp(−N·I(c,b)).
//   - Weibull approximation for exact-LRD Gaussian sources (Eq. 6 and the
//     paper's Appendix), the closed form obtained when V(m) ≈ σ²g·m^{2H}.
//
// The minimiser m*_b of the rate function is the Critical Time Scale: the
// number of frame correlations that actually determine the overflow
// probability. Everything the paper argues follows from how m*_b grows
// with b — see CTS and its tests.
package core

import (
	"fmt"
	"math"

	"repro/internal/traffic"
)

// Operating describes a multiplexer operating point in per-source units.
type Operating struct {
	C float64 // bandwidth per source c, cells/frame
	B float64 // buffer space per source b, cells
	N int     // number of multiplexed sources
}

// Validate checks the operating point against model m (stability requires
// c > μ).
func (o Operating) Validate(m traffic.Model) error {
	if o.N < 1 {
		return fmt.Errorf("core: N = %d must be ≥ 1", o.N)
	}
	if o.B < 0 {
		return fmt.Errorf("core: buffer b = %v must be non-negative", o.B)
	}
	if o.C <= m.Mean() {
		return fmt.Errorf("core: bandwidth c = %v must exceed the mean %v for stability",
			o.C, m.Mean())
	}
	return nil
}

// VarianceOfSum is an incremental evaluator of V(m) = Var(Σ_{i=1..m} Y_i)
// for a process with the given variance and ACF. Each Advance costs O(1)
// plus one ACF evaluation.
type VarianceOfSum struct {
	model traffic.Model
	m     int     // current horizon
	s1    float64 // Σ_{i=1}^{m−1} r(i)
	s2    float64 // Σ_{i=1}^{m−1} i·r(i)
}

// NewVarianceOfSum starts the accumulator at m = 1, where V(1) = σ².
func NewVarianceOfSum(m traffic.Model) *VarianceOfSum {
	return &VarianceOfSum{model: m, m: 1}
}

// M returns the current horizon m.
func (v *VarianceOfSum) M() int { return v.m }

// Value returns V(m) at the current horizon.
func (v *VarianceOfSum) Value() float64 {
	fm := float64(v.m)
	return v.model.Variance() * (fm + 2*(fm*v.s1-v.s2))
}

// Advance moves the horizon from m to m+1.
func (v *VarianceOfSum) Advance() {
	r := v.model.ACF(v.m)
	v.s1 += r
	v.s2 += float64(v.m) * r
	v.m++
}

// AggregateVariance returns V(1..upTo) for model m as a slice indexed from
// 0 (entry i holds V(i+1)), served from the model's shared Moments cache.
func AggregateVariance(m traffic.Model, upTo int) []float64 {
	if upTo < 1 {
		return nil
	}
	mo := Moments(m)
	out := make([]float64, upTo)
	for i := range out {
		out[i] = mo.VarSum(i + 1)
	}
	return out
}

// CTSResult reports a critical time scale computation.
type CTSResult struct {
	M         int     // the critical time scale m*_b
	Rate      float64 // the rate function I(c,b) at the minimiser
	Converged bool    // false if the scan hit MaxM before the stop rule fired
}

// DefaultMaxM caps the CTS scan. The CTS grows like K·b with
// K ≤ H/((1−H)(c−μ)); for every experiment in the paper the scan ends long
// before this bound.
const DefaultMaxM = 4 << 20

// CTS computes the critical time scale m*_b = arginf_{m≥1} f(c,b,m)/2V(m)
// with f = [b + m(c−μ)]², along with the rate function value. maxM ≤ 0
// selects DefaultMaxM.
//
// The scan is safe to terminate early because V(m) = o(m²) for any process
// with r(k) → 0, so the objective diverges; we stop once m is four times
// past the incumbent minimiser (plus a slack of 64 lags) and the objective
// has tripled (solver.IntArgminSlack). V(m) is served from the model's
// shared Moments cache, so repeated CTS calls against one model — buffer
// sweeps, admission-control searches — cost one ACF walk in total.
func CTS(model traffic.Model, op Operating, maxM int) (CTSResult, error) {
	return CTSMoments(Moments(model), op, maxM)
}

// RateFunction returns I(c,b) alone; see CTS.
func RateFunction(model traffic.Model, op Operating, maxM int) (float64, error) {
	res, err := CTS(model, op, maxM)
	return res.Rate, err
}

// BahadurRao returns the Bahadur-Rao estimate of the buffer overflow
// probability (paper Eq. 7):
//
//	Ψ(c,b,N) ≈ exp(−N·I(c,b) − ½·log[4π·N·I(c,b)]).
//
// For b = 0 and I → 0 the correction term diverges; the estimate is clamped
// to 1.
func BahadurRao(model traffic.Model, op Operating, maxM int) (float64, error) {
	res, err := CTS(model, op, maxM)
	if err != nil {
		return 0, err
	}
	return brFromTotalRate(float64(op.N) * res.Rate), nil
}

// brFromTotalRate converts a total (population-scaled) rate-function value
// into the Bahadur-Rao probability estimate, clamped to [0, 1].
func brFromTotalRate(ni float64) float64 {
	if ni <= 0 {
		return 1
	}
	p := math.Exp(-ni - 0.5*math.Log(4*math.Pi*ni))
	if p > 1 {
		p = 1
	}
	probeProb.CheckPositive(p)
	return p
}

// LargeN returns the Courcoubetis-Weber large-N estimate exp(−N·I(c,b)),
// i.e. the Bahadur-Rao estimate without the prefactor correction.
func LargeN(model traffic.Model, op Operating, maxM int) (float64, error) {
	res, err := CTS(model, op, maxM)
	if err != nil {
		return 0, err
	}
	return math.Exp(-float64(op.N) * res.Rate), nil
}

// LRDParams carries the closed-form ingredients of the Weibull asymptotic
// for N homogeneous Gaussian exact-LRD sources (paper Eq. 6).
type LRDParams struct {
	H      float64 // Hurst parameter, 0.5 < H < 1 (H = 0.5 allowed: log-linear case)
	G      float64 // g(Ts) from the exact-LRD ACF (Eq. 2), 0 < g ≤ 1
	Mu     float64 // mean frame size per source, cells/frame
	Sigma2 float64 // frame-size variance per source
}

// Kappa returns κ(H) = H^H·(1−H)^{1−H}.
func Kappa(h float64) float64 {
	return math.Pow(h, h) * math.Pow(1-h, 1-h)
}

// WeibullJ returns the Weibull exponent
// J(N,b,c) = N^{2H−1}·(c−μ)^{2H}/(2g·σ²·κ(H)²) · B^{2−2H}, with B = N·b the
// total buffer.
func WeibullJ(p LRDParams, op Operating) float64 {
	totalB := float64(op.N) * op.B
	return math.Pow(float64(op.N), 2*p.H-1) *
		math.Pow(op.C-p.Mu, 2*p.H) /
		(2 * p.G * p.Sigma2 * Kappa(p.H) * Kappa(p.H)) *
		math.Pow(totalB, 2-2*p.H)
}

// WeibullLRD returns the paper's Eq. 6 estimate
// P(W > B) ≈ exp[−J − ½·log(4πJ)], the closed-form Bahadur-Rao asymptotic
// for exact-LRD Gaussian input. It reduces to log-linear decay in B when
// H = 1/2.
func WeibullLRD(p LRDParams, op Operating) (float64, error) {
	if p.H < 0.5 || p.H >= 1 {
		return 0, fmt.Errorf("core: Hurst parameter %v outside [0.5, 1)", p.H)
	}
	if p.G <= 0 || p.G > 1 {
		return 0, fmt.Errorf("core: g(Ts) = %v outside (0, 1]", p.G)
	}
	if p.Sigma2 <= 0 {
		return 0, fmt.Errorf("core: variance %v must be positive", p.Sigma2)
	}
	if op.C <= p.Mu {
		return 0, fmt.Errorf("core: bandwidth %v must exceed mean %v", op.C, p.Mu)
	}
	if op.N < 1 || op.B < 0 {
		return 0, fmt.Errorf("core: invalid operating point N=%d b=%v", op.N, op.B)
	}
	j := WeibullJ(p, op)
	if j <= 0 {
		return 1, nil
	}
	pr := math.Exp(-j - 0.5*math.Log(4*math.Pi*j))
	if pr > 1 {
		pr = 1
	}
	probeProb.CheckPositive(pr)
	return pr, nil
}

// CTSSlopeLRD returns the asymptotic CTS-per-buffer slope for a Gaussian
// exact-LRD process, K = H/((1−H)(c−μ)) (paper Appendix: x* = K·b).
func CTSSlopeLRD(h, c, mu float64) float64 {
	return h / ((1 - h) * (c - mu))
}

// CTSSlopeAR1 returns the asymptotic CTS-per-buffer slope for a Gaussian
// AR(1)-like process, K = 1/(c−μ) (paper §4.2, citing Courcoubetis-Weber).
func CTSSlopeAR1(c, mu float64) float64 {
	return 1 / (c - mu)
}

// BufferCellsToSeconds converts a per-source buffer allocation b (cells) at
// per-source bandwidth c (cells/frame) into the maximum queueing delay in
// seconds: the time to drain B = N·b cells at C = N·c cells per Ts.
func BufferCellsToSeconds(b, c, ts float64) float64 {
	return b / c * ts
}

// BufferSecondsToCells inverts BufferCellsToSeconds.
func BufferSecondsToCells(d, c, ts float64) float64 {
	return d / ts * c
}
