package core

import (
	"testing"

	"repro/internal/models"
	"repro/internal/traffic"
)

// sliceModel is deliberately non-comparable (slice field, value receiver)
// to exercise the registry's comparability guard.
type sliceModel struct {
	w whiteNoise
	r []float64
}

func (s sliceModel) Name() string                              { return "slice" }
func (s sliceModel) Mean() float64                             { return s.w.Mean() }
func (s sliceModel) Variance() float64                         { return s.w.Variance() }
func (s sliceModel) ACF(k int) float64                         { return s.w.ACF(k) }
func (s sliceModel) NewGenerator(seed int64) traffic.Generator { return nil }

func TestMomentsRegistry(t *testing.T) {
	p := mustDAR1(t, 0.8)
	mo := Moments(p)
	if mo == nil {
		t.Fatal("nil moments view")
	}
	if Moments(p) != mo {
		t.Fatal("same model did not share its cached view")
	}
	if Moments(mo) != mo {
		t.Fatal("a *Moments should be returned unchanged")
	}
	q := mustDAR1(t, 0.8)
	if Moments(q) == mo {
		t.Fatal("distinct model values must not share a view")
	}
	// Non-comparable dynamic types fall back to private views without
	// panicking on the map key.
	s := sliceModel{w: whiteNoise{500, 5000}, r: []float64{1}}
	a, b := Moments(s), Moments(s)
	if a == nil || b == nil || a == b {
		t.Fatal("non-comparable model should get fresh private views")
	}
}

// TestCTSMomentsBitIdentical re-runs the legacy incremental scan —
// VarianceOfSum advanced lag by lag with the stop rule inline — and
// demands exact equality with the cached-Moments path for both a Markov
// and an LRD-composite ACF at several operating points.
func TestCTSMomentsBitIdentical(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []traffic.Model{mustDAR1(t, 0.9), z} {
		for _, b := range []float64{0, 10, 100, 1000} {
			op := Operating{C: 538, B: b, N: 30}
			legacy := func() CTSResult {
				acc := NewVarianceOfSum(m)
				drift := op.C - m.Mean()
				obj := func(mm int) float64 {
					num := op.B + float64(mm)*drift
					return num * num / (2 * acc.Value())
				}
				best := CTSResult{M: 1, Rate: obj(1)}
				for mm := 2; mm <= DefaultMaxM; mm++ {
					acc.Advance()
					v := obj(mm)
					if v < best.Rate {
						best.M, best.Rate = mm, v
						continue
					}
					if mm >= 4*best.M+64 && v >= 3*best.Rate {
						best.Converged = true
						return best
					}
				}
				return best
			}()
			got, err := CTS(m, op, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got != legacy {
				t.Fatalf("%s b=%v: CTS %+v != legacy incremental scan %+v",
					m.Name(), b, got, legacy)
			}
		}
	}
}
