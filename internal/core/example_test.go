package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dar"
	"repro/internal/models"
)

// ExampleCTS computes the critical time scale of an LRD video source at a
// realistic ATM operating point: only the first m* frame correlations
// influence the loss rate.
func ExampleCTS() {
	z, err := models.NewZ(0.975)
	if err != nil {
		log.Fatal(err)
	}
	op := core.Operating{C: 538, B: 134.5, N: 30} // 10 ms buffer
	res, err := core.CTS(z, op, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m* = %d frames\n", res.M)
	// Output:
	// m* = 29 frames
}

// ExampleBahadurRao estimates the buffer overflow probability of a Markov
// video model.
func ExampleBahadurRao() {
	p, err := dar.NewDAR1(0.82, dar.GaussianMarginal(500, 5000))
	if err != nil {
		log.Fatal(err)
	}
	op := core.Operating{C: 538, B: 26.9, N: 30} // 2 ms buffer
	bop, err := core.BahadurRao(p, op, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(W > B) ≈ %.1e\n", bop)
	// Output:
	// P(W > B) ≈ 5.4e-05
}

// ExampleMixBahadurRao sizes a heterogeneous multiplex: LRD video sharing
// a link with Markov videoconference traffic.
func ExampleMixBahadurRao() {
	z, err := models.NewZ(0.975)
	if err != nil {
		log.Fatal(err)
	}
	d, err := models.FitS(z, 1)
	if err != nil {
		log.Fatal(err)
	}
	mix := core.Mix{
		{Model: z, Count: 15},
		{Model: d, Count: 15},
	}
	bop, err := core.MixBahadurRao(mix, 538*30, 134.5*30, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed-link P(W > B) ≈ %.0e\n", bop)
	// Output:
	// mixed-link P(W > B) ≈ 1e-06
}
