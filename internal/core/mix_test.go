package core

import (
	"math"
	"testing"

	"repro/internal/models"
)

func TestMixValidate(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	good := Mix{{Model: z, Count: 10}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Mix{
		{},
		{{Model: nil, Count: 1}},
		{{Model: z, Count: -1}},
		{{Model: z, Count: 0}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMixTotals(t *testing.T) {
	z, _ := models.NewZ(0.9)
	l, _ := models.NewL()
	mix := Mix{{Model: z, Count: 10}, {Model: l, Count: 5}}
	if mix.TotalCount() != 15 {
		t.Fatalf("count %d", mix.TotalCount())
	}
	if got := mix.MeanTotal(); math.Abs(got-15*500) > 1e-9 {
		t.Fatalf("mean %v", got)
	}
}

func TestHomogeneousMixMatchesPerSourceFormulation(t *testing.T) {
	// A mix of N identical sources must reproduce the per-source CTS, the
	// relation I_mix = N·I, and the identical B-R probability.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	op := Operating{C: 538, B: 100, N: n}
	per, err := CTS(z, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	mix := Mix{{Model: z, Count: n}}
	got, err := MixCTS(mix, 538*n, 100*n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != per.M {
		t.Fatalf("mix m* = %d, per-source %d", got.M, per.M)
	}
	if math.Abs(got.Rate-float64(n)*per.Rate)/got.Rate > 1e-12 {
		t.Fatalf("mix rate %v, want N·I = %v", got.Rate, float64(n)*per.Rate)
	}
	pbMix, err := MixBahadurRao(mix, 538*n, 100*n, 0)
	if err != nil {
		t.Fatal(err)
	}
	pbPer, err := BahadurRao(z, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pbMix-pbPer)/pbPer > 1e-12 {
		t.Fatalf("mix B-R %v vs per-source %v", pbMix, pbPer)
	}
}

func TestMixHeterogeneousBetweenPureMixes(t *testing.T) {
	// A 50/50 mix of a strongly and a weakly correlated class must fall
	// between the two pure configurations in overflow probability.
	strong, err := models.NewZ(0.99)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := models.NewZ(0.7)
	if err != nil {
		t.Fatal(err)
	}
	totalC, totalB := 538.0*30, 200.0*30
	pStrong, err := MixBahadurRao(Mix{{strong, 30}}, totalC, totalB, 0)
	if err != nil {
		t.Fatal(err)
	}
	pWeak, err := MixBahadurRao(Mix{{weak, 30}}, totalC, totalB, 0)
	if err != nil {
		t.Fatal(err)
	}
	pMix, err := MixBahadurRao(Mix{{strong, 15}, {weak, 15}}, totalC, totalB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(pWeak < pMix && pMix < pStrong) {
		t.Fatalf("ordering violated: weak %v, mix %v, strong %v", pWeak, pMix, pStrong)
	}
}

func TestMixLargeNAboveBahadurRao(t *testing.T) {
	z, _ := models.NewZ(0.9)
	mix := Mix{{z, 30}}
	br, err := MixBahadurRao(mix, 538*30, 100*30, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := MixLargeN(mix, 538*30, 100*30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br >= ln {
		t.Fatalf("B-R %v should sit below large-N %v", br, ln)
	}
}

func TestMixCTSUnstable(t *testing.T) {
	z, _ := models.NewZ(0.9)
	if _, err := MixCTS(Mix{{z, 30}}, 400*30, 10, 0); err == nil {
		t.Fatal("capacity below mean should error")
	}
	if _, err := MixCTS(Mix{{z, 30}}, 538*30, -1, 0); err == nil {
		t.Fatal("negative buffer should error")
	}
}
