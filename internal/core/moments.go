package core

import (
	"math"
	"reflect"
	"sync"

	"repro/internal/diag"
	"repro/internal/solver"
	"repro/internal/traffic"
)

// Numerical-health probes over the asymptotic estimates: a rate function
// gone NaN (broken ACF) or a probability underflowing to exact zero
// (N·I(c,b) past ~745) is counted rather than silently plotted.
var (
	probeRate = diag.NewProbe("core.RateFunction")
	probeProb = diag.NewProbe("core.OverflowProb")
)

// momentsCache maps comparable models to their shared traffic.Moments
// view, so every CTS scan, asymptotic estimate and admission-control
// search against the same model reuses one memoised ACF prefix-sum table
// instead of re-walking the ACF from lag 1.
var momentsCache sync.Map // traffic.Model → *traffic.Moments

// Moments returns the shared cached second-order view of m. Calls with
// the same (comparable) model value return the same *traffic.Moments;
// models of non-comparable dynamic type get a private, unshared view.
// Passing a *traffic.Moments returns it unchanged.
func Moments(m traffic.Model) *traffic.Moments {
	if mo, ok := m.(*traffic.Moments); ok {
		return mo
	}
	if m == nil || !reflect.TypeOf(m).Comparable() {
		return traffic.NewMoments(m)
	}
	if v, ok := momentsCache.Load(m); ok {
		return v.(*traffic.Moments)
	}
	v, _ := momentsCache.LoadOrStore(m, traffic.NewMoments(m))
	return v.(*traffic.Moments)
}

// CTSMoments computes the critical time scale against a cached moment
// view: each objective evaluation is O(1) after the one-time lag
// extension, so sweeping many operating points against one model costs
// one ACF walk total. The scan and stopping rule are identical to CTS
// (growFactor 4, slack 64, stopFactor 3), and the results are
// bit-identical to the incremental VarianceOfSum evaluation.
func CTSMoments(mo *traffic.Moments, op Operating, maxM int) (CTSResult, error) {
	if err := op.Validate(mo); err != nil {
		return CTSResult{}, err
	}
	if maxM <= 0 {
		maxM = DefaultMaxM
	}
	drift := op.C - mo.Mean()
	obj := func(m int) float64 {
		num := op.B + float64(m)*drift
		return num * num / (2 * mo.VarSum(m))
	}
	best, ok := solver.IntArgminSlack(obj, maxM, 4, 64, 3)
	probeRate.Check(best.Value)
	return CTSResult{M: best.Arg, Rate: best.Value, Converged: ok}, nil
}

// RateFunctionMoments returns I(c,b) alone; see CTSMoments.
func RateFunctionMoments(mo *traffic.Moments, op Operating, maxM int) (float64, error) {
	res, err := CTSMoments(mo, op, maxM)
	return res.Rate, err
}

// BahadurRaoMoments is BahadurRao against a cached moment view.
func BahadurRaoMoments(mo *traffic.Moments, op Operating, maxM int) (float64, error) {
	res, err := CTSMoments(mo, op, maxM)
	if err != nil {
		return 0, err
	}
	return brFromTotalRate(float64(op.N) * res.Rate), nil
}

// LargeNMoments is LargeN against a cached moment view.
func LargeNMoments(mo *traffic.Moments, op Operating, maxM int) (float64, error) {
	res, err := CTSMoments(mo, op, maxM)
	if err != nil {
		return 0, err
	}
	p := math.Exp(-float64(op.N) * res.Rate)
	probeProb.CheckPositive(p)
	return p, nil
}
