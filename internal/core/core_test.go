package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dar"
	"repro/internal/fgn"
	"repro/internal/models"
	"repro/internal/traffic"
)

// whiteNoise is a trivially uncorrelated model for closed-form checks.
type whiteNoise struct{ mu, sigma2 float64 }

func (w whiteNoise) Name() string      { return "white" }
func (w whiteNoise) Mean() float64     { return w.mu }
func (w whiteNoise) Variance() float64 { return w.sigma2 }
func (w whiteNoise) ACF(k int) float64 {
	if k == 0 {
		return 1
	}
	return 0
}
func (w whiteNoise) NewGenerator(seed int64) traffic.Generator {
	panic("not used")
}

func mustDAR1(t testing.TB, rho float64) *dar.Process {
	t.Helper()
	p, err := dar.NewDAR1(rho, dar.GaussianMarginal(500, 5000))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOperatingValidate(t *testing.T) {
	m := whiteNoise{500, 5000}
	cases := []Operating{
		{C: 538, B: 10, N: 0},  // bad N
		{C: 538, B: -1, N: 30}, // bad buffer
		{C: 500, B: 10, N: 30}, // c == mean: unstable
		{C: 400, B: 10, N: 30}, // c < mean
	}
	for i, op := range cases {
		if err := op.Validate(m); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if err := (Operating{C: 538, B: 0, N: 1}).Validate(m); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
}

func TestVarianceOfSumWhiteNoise(t *testing.T) {
	m := whiteNoise{0, 7}
	vs := AggregateVariance(m, 50)
	for i, v := range vs {
		want := 7 * float64(i+1)
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("V(%d) = %v, want %v", i+1, v, want)
		}
	}
}

func TestVarianceOfSumMatchesBruteForce(t *testing.T) {
	// V(m) = Σ_i Σ_j Cov(Y_i, Y_j) computed directly from the ACF.
	p := mustDAR1(t, 0.8)
	vs := AggregateVariance(p, 40)
	for m := 1; m <= 40; m++ {
		var brute float64
		for i := 1; i <= m; i++ {
			for j := 1; j <= m; j++ {
				lag := i - j
				if lag < 0 {
					lag = -lag
				}
				brute += p.Variance() * p.ACF(lag)
			}
		}
		if math.Abs(vs[m-1]-brute)/brute > 1e-10 {
			t.Fatalf("V(%d) = %v, brute force %v", m, vs[m-1], brute)
		}
	}
}

func TestVarianceOfSumSubQuadratic(t *testing.T) {
	// V(m) ≤ σ²m² with equality only for perfectly correlated input; this
	// bound is what makes the CTS finite.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewVarianceOfSum(z)
	for m := 1; m <= 5000; m++ {
		bound := z.Variance() * float64(m) * float64(m)
		if acc.Value() > bound {
			t.Fatalf("V(%d) = %v exceeds σ²m² = %v", m, acc.Value(), bound)
		}
		acc.Advance()
	}
}

func TestAggregateVarianceEdge(t *testing.T) {
	if AggregateVariance(whiteNoise{0, 1}, 0) != nil {
		t.Fatal("upTo < 1 should return nil")
	}
}

func TestCTSZeroBufferIsOne(t *testing.T) {
	// Paper §4.2: m*_0 = 1 always — correlations are irrelevant at zero
	// buffer.
	ms := []traffic.Model{
		whiteNoise{500, 5000},
		mustDAR1(t, 0.99),
	}
	z, err := models.NewZ(0.99)
	if err != nil {
		t.Fatal(err)
	}
	ms = append(ms, z)
	for _, m := range ms {
		res, err := CTS(m, Operating{C: 538, B: 0, N: 30}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.M != 1 {
			t.Errorf("%s: m*_0 = %d, want 1", m.Name(), res.M)
		}
	}
}

func TestCTSNonDecreasingInBuffer(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, b := range []float64{0, 5, 10, 20, 50, 100, 200, 400} {
		res, err := CTS(z, Operating{C: 538, B: b, N: 30}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.M < prev {
			t.Fatalf("m*_b decreased at b=%v: %d < %d", b, res.M, prev)
		}
		prev = res.M
	}
}

func TestCTSStrongerShortTermCorrelationsRaiseCTS(t *testing.T) {
	// Paper Fig 4-(b): higher a ⇒ larger m*_b at the same buffer.
	op := Operating{C: 526, B: 30, N: 100}
	prev := 0
	for _, a := range models.ZValues {
		z, err := models.NewZ(a)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CTS(z, op, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.M < prev {
			t.Fatalf("Z^%v: m* = %d < previous %d", a, res.M, prev)
		}
		prev = res.M
	}
	if prev < 2 {
		t.Fatalf("strongest model CTS %d suspiciously small", prev)
	}
}

func TestCTSSlopeAR1(t *testing.T) {
	// For an AR(1)-like process and large b, m*_b ≈ b/(c−μ).
	p := mustDAR1(t, 0.9)
	op := Operating{C: 526, B: 4000, N: 100}
	res, err := CTS(p, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := op.B * CTSSlopeAR1(op.C, p.Mean())
	if math.Abs(float64(res.M)-want)/want > 0.15 {
		t.Fatalf("m* = %d, AR(1) asymptote %v", res.M, want)
	}
}

func TestCTSSlopeLRD(t *testing.T) {
	// For FGN (exact V(m) = σ²m^{2H}), m*_b ≈ H/((1−H)(c−μ))·b.
	m, err := fgn.NewModel(0.9, 500, 5000)
	if err != nil {
		t.Fatal(err)
	}
	op := Operating{C: 526, B: 500, N: 100}
	res, err := CTS(m, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := op.B * CTSSlopeLRD(0.9, op.C, 500)
	if math.Abs(float64(res.M)-want)/want > 0.1 {
		t.Fatalf("m* = %d, LRD asymptote %v", res.M, want)
	}
}

func TestCTSFiniteForLRD(t *testing.T) {
	// The headline claim: even with LRD input the CTS is finite and the
	// scan's stopping rule fires.
	z, err := models.NewZ(0.99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CTS(z, Operating{C: 538, B: 300, N: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("stopping rule did not fire")
	}
	if res.M < 1 || res.M > 100000 {
		t.Fatalf("implausible CTS %d", res.M)
	}
}

func TestCTSInvalidOperatingPoint(t *testing.T) {
	if _, err := CTS(whiteNoise{500, 1}, Operating{C: 499, B: 1, N: 1}, 0); err == nil {
		t.Fatal("expected error for unstable point")
	}
}

func TestRateFunctionWhiteNoiseClosedForm(t *testing.T) {
	// For white noise, I(c,b) = inf_m (b+md)²/(2σ²m). Compare against a
	// fine continuous minimisation: the integer restriction makes I at
	// least the continuous value 2bd/σ²·... (continuous optimum m = b/d).
	w := whiteNoise{500, 5000}
	op := Operating{C: 526, B: 260, N: 1} // b/d = 10, integer-aligned
	got, err := RateFunction(w, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := op.C - w.mu
	want := (op.B + (op.B/d)*d) * (op.B + (op.B/d)*d) / (2 * w.sigma2 * op.B / d)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("I = %v, want %v", got, want)
	}
}

func TestBahadurRaoTighterThanLargeN(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	op := Operating{C: 538, B: 100, N: 30}
	br, err := BahadurRao(z, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := LargeN(z, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br >= ln {
		t.Fatalf("B-R %v should be below large-N %v", br, ln)
	}
	if br <= 0 || ln > 1 {
		t.Fatalf("estimates out of range: %v %v", br, ln)
	}
}

func TestBOPMonotoneInBuffer(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, b := range []float64{0, 20, 50, 100, 200} {
		p, err := BahadurRao(z, Operating{C: 538, B: b, N: 30}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Fatalf("BOP not decreasing at b=%v: %v >= %v", b, p, prev)
		}
		prev = p
	}
}

func TestBOPMonotoneInBandwidth(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, c := range []float64{520, 530, 540, 560} {
		p, err := BahadurRao(z, Operating{C: c, B: 50, N: 30}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Fatalf("BOP not decreasing at c=%v: %v >= %v", c, p, prev)
		}
		prev = p
	}
}

func TestStrongerCorrelationsSlowDecay(t *testing.T) {
	// Paper Fig 5-(b): at a fixed positive buffer, stronger short-term
	// correlations yield higher overflow probability.
	op := Operating{C: 538, B: 150, N: 30}
	prev := 0.0
	for _, a := range models.ZValues {
		z, err := models.NewZ(a)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BahadurRao(z, op, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Fatalf("Z^%v: BOP %v not increasing in a (prev %v)", a, p, prev)
		}
		prev = p
	}
}

func TestWeibullMatchesBahadurRaoOnFGN(t *testing.T) {
	// FGN has exactly V(m) = σ²m^{2H}, so the closed-form Weibull Eq. 6
	// must agree with the numerically minimised Bahadur-Rao up to the
	// integer-m restriction.
	h := 0.86
	m, err := fgn.NewModel(h, 500, 5000)
	if err != nil {
		t.Fatal(err)
	}
	p := LRDParams{H: h, G: 1, Mu: 500, Sigma2: 5000}
	for _, b := range []float64{50, 150, 400} {
		op := Operating{C: 538, B: b, N: 30}
		wb, err := WeibullLRD(p, op)
		if err != nil {
			t.Fatal(err)
		}
		br, err := BahadurRao(m, op, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(math.Log(wb) - math.Log(br)); d > 0.02*math.Abs(math.Log(br)) {
			t.Fatalf("b=%v: log Weibull %v vs log B-R %v", b, math.Log(wb), math.Log(br))
		}
	}
}

func TestWeibullHalfIsLogLinear(t *testing.T) {
	// H = 1/2 reduces Eq. 6's exponent to N·I of white noise: J = 2Nbd/σ².
	p := LRDParams{H: 0.5, G: 1, Mu: 500, Sigma2: 5000}
	op := Operating{C: 538, B: 100, N: 30}
	j := WeibullJ(p, op)
	d := op.C - p.Mu
	want := 2 * float64(op.N) * op.B * d / p.Sigma2
	if math.Abs(j-want)/want > 1e-12 {
		t.Fatalf("J = %v, want %v", j, want)
	}
}

func TestWeibullValidation(t *testing.T) {
	op := Operating{C: 538, B: 100, N: 30}
	bad := []LRDParams{
		{H: 0.4, G: 1, Mu: 500, Sigma2: 5000},
		{H: 1.0, G: 1, Mu: 500, Sigma2: 5000},
		{H: 0.9, G: 0, Mu: 500, Sigma2: 5000},
		{H: 0.9, G: 2, Mu: 500, Sigma2: 5000},
		{H: 0.9, G: 1, Mu: 500, Sigma2: 0},
		{H: 0.9, G: 1, Mu: 600, Sigma2: 5000},
	}
	for i, p := range bad {
		if _, err := WeibullLRD(p, op); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := WeibullLRD(LRDParams{H: 0.9, G: 1, Mu: 500, Sigma2: 5000},
		Operating{C: 538, B: -1, N: 30}); err == nil {
		t.Error("negative buffer: expected error")
	}
}

func TestKappa(t *testing.T) {
	if got := Kappa(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("κ(0.5) = %v, want 0.5", got)
	}
	// κ is maximised at the endpoints (→1) and equals H^H(1−H)^{1−H}.
	if got, want := Kappa(0.9), math.Pow(0.9, 0.9)*math.Pow(0.1, 0.1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("κ(0.9) = %v, want %v", got, want)
	}
}

func TestBufferConversionsRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		b := math.Abs(math.Mod(raw, 1e4))
		c, ts := 538.0, 0.04
		d := BufferCellsToSeconds(b, c, ts)
		return math.Abs(BufferSecondsToCells(d, c, ts)-b) < 1e-9*(1+b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// 20 ms at c = 538 cells/frame, Ts = 40 ms: 269 cells per source.
	if got := BufferSecondsToCells(0.020, 538, 0.04); math.Abs(got-269) > 1e-9 {
		t.Fatalf("20 ms = %v cells, want 269", got)
	}
}

func BenchmarkCTSZModel(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	op := Operating{C: 538, B: 200, N: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CTS(z, op, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: for random DAR(2) models and increasing buffers, the CTS is
// non-decreasing and the rate function non-increasing in b.
func TestCTSMonotoneProperty(t *testing.T) {
	f := func(rhoRaw, aRaw float64, bRaw uint16) bool {
		rho := 0.05 + 0.9*math.Abs(math.Mod(rhoRaw, 1))
		a1 := math.Abs(math.Mod(aRaw, 1))
		p, err := dar.New(rho, []float64{a1, 1 - a1}, dar.GaussianMarginal(500, 5000))
		if err != nil {
			return false
		}
		b := float64(bRaw % 1000)
		op1 := Operating{C: 538, B: b, N: 30}
		op2 := Operating{C: 538, B: b + 50, N: 30}
		r1, err := CTS(p, op1, 0)
		if err != nil {
			return false
		}
		r2, err := CTS(p, op2, 0)
		if err != nil {
			return false
		}
		return r2.M >= r1.M && r2.Rate >= r1.Rate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The CTS machinery must also cope with non-monotone ACFs (the MPEG GOP
// ripple): finite result, m*_0 = 1, sane growth.
func TestCTSNonMonotoneACF(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	w, err := models.GOPWeights(models.TypicalGOP, 5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := models.NewMPEG(z, w)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := CTS(mp, Operating{C: 538, B: 0, N: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.M != 1 {
		t.Fatalf("m*_0 = %d, want 1", r0.M)
	}
	r, err := CTS(mp, Operating{C: 538, B: 500, N: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.M < 1 || r.M > 50000 {
		t.Fatalf("implausible CTS %d for periodic ACF", r.M)
	}
}
