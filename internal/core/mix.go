package core

import (
	"fmt"
	"math"

	"repro/internal/solver"
	"repro/internal/traffic"
)

// Component is one traffic class in a heterogeneous multiplex: Count
// statistically identical sources of the given model.
type Component struct {
	Model traffic.Model
	Count int
}

// Mix is a heterogeneous superposition. The aggregate of independent
// Gaussian classes is Gaussian with summed means and summed m-frame sum
// variances, so the whole large-deviations machinery carries over with
// totals in place of per-source quantities:
//
//	I(C,B) = inf_{m≥1} [B + m(C−μ_tot)]² / (2·Σ_j n_j·V_j(m)).
//
// For a homogeneous mix this reduces exactly to N·I(c,b) of the
// per-source formulation.
type Mix []Component

// Validate checks the mix.
func (mix Mix) Validate() error {
	if len(mix) == 0 {
		return fmt.Errorf("core: empty mix")
	}
	for i, c := range mix {
		if c.Model == nil {
			return fmt.Errorf("core: mix component %d has nil model", i)
		}
		if c.Count < 0 {
			return fmt.Errorf("core: mix component %d has negative count", i)
		}
	}
	if mix.TotalCount() == 0 {
		return fmt.Errorf("core: mix has no sources")
	}
	return nil
}

// TotalCount returns the number of sources across classes.
func (mix Mix) TotalCount() int {
	var n int
	for _, c := range mix {
		n += c.Count
	}
	return n
}

// MeanTotal returns the aggregate mean rate in cells/frame.
func (mix Mix) MeanTotal() float64 {
	var mu float64
	for _, c := range mix {
		mu += float64(c.Count) * c.Model.Mean()
	}
	return mu
}

// MixCTS computes the critical time scale and rate function of a
// heterogeneous multiplex at total capacity totalC (cells/frame) and total
// buffer totalB (cells).
func MixCTS(mix Mix, totalC, totalB float64, maxM int) (CTSResult, error) {
	if err := mix.Validate(); err != nil {
		return CTSResult{}, err
	}
	if totalB < 0 {
		return CTSResult{}, fmt.Errorf("core: buffer %v must be non-negative", totalB)
	}
	mu := mix.MeanTotal()
	if totalC <= mu {
		return CTSResult{}, fmt.Errorf("core: capacity %v must exceed aggregate mean %v", totalC, mu)
	}
	if maxM <= 0 {
		maxM = DefaultMaxM
	}
	// Per-class cached moment views: components repeated across MixCTS
	// calls (CAC searches sweep counts with fixed models) share lag tables.
	moms := make([]*traffic.Moments, len(mix))
	for i, c := range mix {
		moms[i] = Moments(c.Model)
	}
	drift := totalC - mu
	obj := func(m int) float64 {
		var v float64
		for i, c := range mix {
			v += float64(c.Count) * moms[i].VarSum(m)
		}
		num := totalB + float64(m)*drift
		return num * num / (2 * v)
	}
	best, ok := solver.IntArgminSlack(obj, maxM, 4, 64, 3)
	return CTSResult{M: best.Arg, Rate: best.Value, Converged: ok}, nil
}

// MixBahadurRao returns the Bahadur-Rao overflow estimate for a
// heterogeneous multiplex: exp(−I − ½log(4πI)) with the mix rate function
// (which already contains the population scaling).
func MixBahadurRao(mix Mix, totalC, totalB float64, maxM int) (float64, error) {
	res, err := MixCTS(mix, totalC, totalB, maxM)
	if err != nil {
		return 0, err
	}
	return brFromTotalRate(res.Rate), nil
}

// MixLargeN returns exp(−I) for the mix.
func MixLargeN(mix Mix, totalC, totalB float64, maxM int) (float64, error) {
	res, err := MixCTS(mix, totalC, totalB, maxM)
	if err != nil {
		return 0, err
	}
	if res.Rate <= 0 {
		return 1, nil
	}
	return math.Exp(-res.Rate), nil
}
