package diag

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// minNormal is the smallest positive normal float64; magnitudes below it
// (other than exact zero) are subnormal, the usual precursor of a silent
// underflow to zero.
const minNormal = 2.2250738585072014e-308

// Probe counts numerical-health violations at one site — NaNs, ±Inf,
// subnormals and exact underflows-to-zero — in lock-free atomics. The
// all-finite fast path of Check is a handful of comparisons with no
// atomic traffic, cheap enough for per-evaluation use inside optimizer
// scans. Each violation is mirrored into a telemetry.Default counter
// ("diag_health_total" with site/class labels, resolved once at probe
// creation) so it surfaces on /metrics and in run manifests without
// polling — and so even a pathological stream of violations costs two
// atomic adds each, never a registry lookup.
type Probe struct {
	site                     string
	nan, inf, subn, underflo atomic.Int64
	mNaN, mInf, mSubn, mUnd  *telemetry.Counter
}

// probes is the global registry of created probes, for HealthSnapshot.
var probes sync.Map // site string → *Probe

// NewProbe returns the probe for a site, creating it on first use. Sites
// are process-global so every caller of a kernel shares one count.
func NewProbe(site string) *Probe {
	if p, ok := probes.Load(site); ok {
		return p.(*Probe)
	}
	mirror := func(class string) *telemetry.Counter {
		return telemetry.Default.Counter("diag_health_total",
			telemetry.L("site", site), telemetry.L("class", class))
	}
	p, _ := probes.LoadOrStore(site, &Probe{
		site: site,
		mNaN: mirror("nan"), mInf: mirror("inf"),
		mSubn: mirror("subnormal"), mUnd: mirror("underflow"),
	})
	return p.(*Probe)
}

func (p *Probe) record(c *atomic.Int64, m *telemetry.Counter) {
	c.Add(1)
	m.Inc()
}

// Check screens one value: NaN, ±Inf and subnormal magnitudes are counted
// against the probe. It returns true when v is finite (subnormals are
// finite but still recorded). The all-good path costs only comparisons.
func (p *Probe) Check(v float64) bool {
	if math.IsNaN(v) {
		p.record(&p.nan, p.mNaN)
		return false
	}
	if math.IsInf(v, 0) {
		p.record(&p.inf, p.mInf)
		return false
	}
	if v != 0 && v < minNormal && v > -minNormal {
		p.record(&p.subn, p.mSubn)
	}
	return true
}

// CheckPositive screens a value that should be a strictly positive finite
// quantity (a probability, a variance): beyond Check it counts an exact
// zero as an underflow — the silent failure mode of exp(−N·I) at large
// rates, where the estimate vanishes without any IEEE flag surviving.
func (p *Probe) CheckPositive(v float64) bool {
	if !p.Check(v) {
		return false
	}
	if v == 0 {
		p.record(&p.underflo, p.mUnd)
	}
	return true
}

// HealthCounts is the point-in-time state of one probe.
type HealthCounts struct {
	Site      string `json:"site"`
	NaN       int64  `json:"nan,omitempty"`
	Inf       int64  `json:"inf,omitempty"`
	Subnormal int64  `json:"subnormal,omitempty"`
	Underflow int64  `json:"underflow,omitempty"`
}

// Total returns the number of violations recorded at the site.
func (h HealthCounts) Total() int64 { return h.NaN + h.Inf + h.Subnormal + h.Underflow }

// Counts snapshots the probe.
func (p *Probe) Counts() HealthCounts {
	return HealthCounts{
		Site:      p.site,
		NaN:       p.nan.Load(),
		Inf:       p.inf.Load(),
		Subnormal: p.subn.Load(),
		Underflow: p.underflo.Load(),
	}
}

// HealthSnapshot reports every probe that has recorded at least one
// violation, sorted by site — the end-of-run numerical health check the
// CLIs log and persist.
func HealthSnapshot() []HealthCounts {
	var out []HealthCounts
	probes.Range(func(_, v any) bool {
		c := v.(*Probe).Counts()
		if c.Total() > 0 {
			out = append(out, c)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}
