package diag

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	var sum float64
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	varDirect := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-12*math.Abs(mean) {
		t.Errorf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-varDirect) > 1e-9*varDirect {
		t.Errorf("var = %v, want %v", w.Var(), varDirect)
	}
	if w.N() != 1000 {
		t.Errorf("n = %d", w.N())
	}
}

func TestTrackerSequentialConvergence(t *testing.T) {
	// A tight stream around 1.0 converges quickly; FirstConvergedAt must
	// record the first crossing, not the last state.
	tr := NewTracker(0.10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		tr.Add(1 + 0.05*rng.NormFloat64())
	}
	if !tr.Converged() {
		t.Fatalf("tight stream unconverged: rel = %v", tr.Rel())
	}
	at := tr.FirstConvergedAt()
	if at < 2 || at > 20 {
		t.Errorf("first convergence at n=%d, expected a handful of reps", at)
	}
	// Two observations of a wildly spread stream must not claim convergence.
	wide := NewTracker(0.10)
	wide.Add(1)
	wide.Add(100)
	if wide.Converged() {
		t.Error("spread stream claimed convergence")
	}
	if wide.Rel() <= 0.10 {
		t.Errorf("rel = %v suspiciously tight", wide.Rel())
	}
}

func TestTrackerDegenerateStreams(t *testing.T) {
	// Identical values: exact interval, rel = 0, converged.
	c := NewTracker(0.01)
	c.Add(5)
	c.Add(5)
	c.Add(5)
	if got := c.Rel(); got != 0 {
		t.Errorf("constant stream rel = %v, want 0", got)
	}
	if !c.Converged() {
		t.Error("constant stream should be converged")
	}
	// All-zero CLRs (nothing lost at a huge buffer) are a legitimate
	// degenerate estimate, not a divide-by-zero.
	z := NewTracker(0.25)
	z.Add(0)
	z.Add(0)
	if !z.Converged() || z.Rel() != 0 {
		t.Errorf("all-zero stream: rel=%v converged=%v", z.Rel(), z.Converged())
	}
	// Zero mean with spread: undefined relative width, never converged.
	s := NewTracker(0.25)
	s.Add(1)
	s.Add(-1)
	if !math.IsInf(s.Rel(), 1) || s.Converged() {
		t.Errorf("zero-mean spread stream: rel=%v converged=%v", s.Rel(), s.Converged())
	}
	// Fewer than two observations: no interval yet.
	one := NewTracker(0.25)
	one.Add(3)
	if one.Converged() {
		t.Error("single observation claimed convergence")
	}
}

func TestTrackerQuarantinesNonFinite(t *testing.T) {
	tr := NewTracker(0.5)
	tr.Add(1)
	tr.Add(math.NaN())
	tr.Add(math.Inf(1))
	tr.Add(1)
	if tr.N() != 2 || tr.NonFinite() != 2 {
		t.Fatalf("n=%d nonfinite=%d, want 2/2", tr.N(), tr.NonFinite())
	}
	if tr.Mean() != 1 {
		t.Errorf("mean polluted by non-finite values: %v", tr.Mean())
	}
	if tr.Converged() {
		t.Error("stream with quarantined values claimed convergence")
	}
}

func TestESS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Independent draws: ESS ≈ n.
	iid := make([]float64, 400)
	for i := range iid {
		iid[i] = rng.NormFloat64()
	}
	if ess := ESS(iid); ess < 200 {
		t.Errorf("iid ESS = %v, want close to 400", ess)
	}
	// Strong AR(1) correlation: ESS ≪ n. Theoretical ESS for ρ=0.9 is
	// n·(1−ρ)/(1+ρ) ≈ n/19.
	ar := make([]float64, 400)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.9*ar[i-1] + rng.NormFloat64()
	}
	ess := ESS(ar)
	if ess > 100 {
		t.Errorf("AR(1) ρ=0.9 ESS = %v, want ≪ n", ess)
	}
	if ess < 1 {
		t.Errorf("ESS = %v below clamp", ess)
	}
	// Degenerate inputs.
	if got := ESS(nil); got != 0 {
		t.Errorf("ESS(nil) = %v", got)
	}
	if got := ESS([]float64{1}); got != 1 {
		t.Errorf("ESS(1 value) = %v", got)
	}
	if got := ESS([]float64{2, 2, 2}); got != 3 {
		t.Errorf("ESS(constant) = %v, want n", got)
	}
}

func TestAssess(t *testing.T) {
	// Tight replication set converges; ESS-scaled width stays finite.
	v := Assess([]float64{1.0, 1.02, 0.99, 1.01, 1.0, 0.98}, 0.25)
	if !v.Converged || v.N != 6 || v.NonFinite != 0 {
		t.Errorf("tight set: %+v", v)
	}
	// Wildly spread set does not.
	v = Assess([]float64{1e-7, 5e-6, 2e-8, 9e-6}, 0.25)
	if v.Converged {
		t.Errorf("spread set claimed convergence: %+v", v)
	}
	// A NaN anywhere disqualifies the point and is reported.
	v = Assess([]float64{1, 1, math.NaN()}, 0.25)
	if v.Converged || v.NonFinite != 1 {
		t.Errorf("NaN set: %+v", v)
	}
	// Verdict strings are loggable either way.
	if s := v.String(); s == "" {
		t.Error("empty verdict string")
	}
}

func TestProbe(t *testing.T) {
	p := NewProbe("test.site")
	if NewProbe("test.site") != p {
		t.Fatal("probe registry not shared per site")
	}
	if !p.Check(1.5) || !p.Check(-2) || !p.Check(0) {
		t.Error("finite values flagged")
	}
	if p.Check(math.NaN()) {
		t.Error("NaN passed Check")
	}
	if p.Check(math.Inf(-1)) {
		t.Error("-Inf passed Check")
	}
	p.Check(1e-310)         // subnormal: recorded but finite
	p.CheckPositive(0)      // exact underflow
	p.CheckPositive(1e-300) // fine
	c := p.Counts()
	if c.NaN != 1 || c.Inf != 1 || c.Subnormal != 1 || c.Underflow != 1 {
		t.Errorf("counts = %+v", c)
	}
	// The snapshot includes only firing probes.
	NewProbe("test.silent")
	found := false
	for _, h := range HealthSnapshot() {
		if h.Site == "test.silent" {
			t.Error("silent probe in snapshot")
		}
		if h.Site == "test.site" {
			found = true
		}
	}
	if !found {
		t.Error("firing probe missing from snapshot")
	}
	// Violations are mirrored into the default telemetry registry.
	mirrored := false
	for _, s := range telemetry.Default.Snapshot() {
		if s.Name == "diag_health_total" && s.Labels["site"] == "test.site" {
			mirrored = true
		}
	}
	if !mirrored {
		t.Error("violations not mirrored into telemetry.Default")
	}
}
