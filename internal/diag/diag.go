// Package diag provides online convergence diagnostics for simulated
// estimates — the statistical half of the observability layer. A CLR of
// 1e-6 needs enormous sample sizes before its confidence interval is
// meaningful, and LRD estimators are notorious for converging slowly and
// failing silently (Clegg et al., arXiv:1303.6841); this package makes
// "has this estimate actually converged?" a first-class, machine-checkable
// question instead of a leap of faith.
//
// Building blocks:
//
//   - Welford: numerically stable streaming mean/variance.
//   - Tracker: sequential relative-CI-width tracking over a stream of
//     replication estimates, recording if and when the interval first
//     tightened below a target.
//   - ESS: effective sample size under autocorrelation, via the
//     initial-positive-sequence truncation of the sample ACF.
//   - Assess: one-shot verdict over a finished series of estimates,
//     combining all of the above with finiteness screening.
//   - Probe (health.go): NaN/Inf/underflow counters for numerical
//     kernels, free on the all-finite fast path.
//
// Everything is observational: nothing here perturbs simulation state or
// random streams, so fixed-seed outputs are bit-identical with
// diagnostics on or off.
package diag

import (
	"fmt"
	"math"
)

// Welford is a numerically stable streaming mean/variance accumulator
// (Welford's online algorithm). The zero value is an empty accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than two
// observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// normalQuantile975 is the 97.5% standard-normal quantile, giving the
// two-sided 95% intervals used throughout the paper's replication design.
const normalQuantile975 = 1.959963984540054

// Tracker follows a stream of replication estimates and reports, after
// every observation, the relative half-width of the normal-approximation
// 95% confidence interval: z·(s/√n)/|mean|. It records the first n at
// which the width dropped to the target, which is the sequential stopping
// diagnostic ("how many replications would have sufficed") that a
// fixed-replication design never surfaces.
type Tracker struct {
	w         Welford
	maxRel    float64
	nonFinite int64
	firstConv int64 // first n with Rel() ≤ maxRel; 0 = never
}

// NewTracker builds a tracker that targets the given relative CI
// half-width (e.g. 0.25 for ±25%).
func NewTracker(maxRel float64) *Tracker {
	return &Tracker{maxRel: maxRel}
}

// Add folds one estimate in. Non-finite observations are quarantined:
// counted, excluded from the moments, and permanently disqualify
// convergence.
func (t *Tracker) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		t.nonFinite++
		return
	}
	t.w.Add(x)
	if t.firstConv == 0 && t.w.N() >= 2 && t.nonFinite == 0 && t.Rel() <= t.maxRel {
		t.firstConv = t.w.N()
	}
}

// N returns the number of finite observations.
func (t *Tracker) N() int64 { return t.w.N() }

// NonFinite returns the number of quarantined NaN/±Inf observations.
func (t *Tracker) NonFinite() int64 { return t.nonFinite }

// Mean returns the running mean over finite observations.
func (t *Tracker) Mean() float64 { return t.w.Mean() }

// Rel returns the current relative 95% CI half-width. A degenerate stream
// (all values identical, including all zero) reports 0 — the interval is
// exact; a zero mean with spread reports +Inf.
func (t *Tracker) Rel() float64 {
	if t.w.N() < 2 {
		return math.Inf(1)
	}
	s := t.w.Std()
	if s == 0 {
		return 0
	}
	m := math.Abs(t.w.Mean())
	if m == 0 {
		return math.Inf(1)
	}
	return normalQuantile975 * s / math.Sqrt(float64(t.w.N())) / m
}

// Converged reports whether the stream currently meets the target: at
// least two finite observations, no non-finite ones, and Rel ≤ maxRel.
func (t *Tracker) Converged() bool {
	return t.w.N() >= 2 && t.nonFinite == 0 && t.Rel() <= t.maxRel
}

// FirstConvergedAt returns the first n at which the interval met the
// target (0 when it never has). The interval can widen again afterwards;
// Converged reports the current state.
func (t *Tracker) FirstConvergedAt() int64 { return t.firstConv }

// ESS estimates the effective sample size of xs under autocorrelation:
// n / (1 + 2·Σρ_k), with the sample ACF summed over the initial positive
// sequence (truncated at the first non-positive ρ_k and at lag n/2, the
// standard guard against summing pure noise). Independent replications
// give ESS ≈ n; positively correlated streams — batch means of one long
// run, overlapping-window estimates — report the smaller number of
// effectively independent observations that CI widths should be scaled
// by. The result is clamped to [1, n]. Fewer than two finite observations
// (or zero variance) report float64(n).
func ESS(xs []float64) float64 {
	var fin []float64
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			fin = append(fin, x)
		}
	}
	n := len(fin)
	if n < 2 {
		return float64(n)
	}
	var mean float64
	for _, x := range fin {
		mean += x
	}
	mean /= float64(n)
	var c0 float64
	for _, x := range fin {
		d := x - mean
		c0 += d * d
	}
	c0 /= float64(n)
	if c0 == 0 {
		return float64(n)
	}
	var sum float64
	for k := 1; k <= n/2; k++ {
		var ck float64
		for i := 0; i+k < n; i++ {
			ck += (fin[i] - mean) * (fin[i+k] - mean)
		}
		rho := ck / float64(n) / c0
		if rho <= 0 {
			break
		}
		sum += rho
	}
	ess := float64(n) / (1 + 2*sum)
	if ess < 1 {
		return 1
	}
	if ess > float64(n) {
		return float64(n)
	}
	return ess
}

// Verdict is the convergence assessment of one finished series of
// estimates (e.g. the per-replication CLRs of one sweep point).
type Verdict struct {
	N         int     // finite observations
	NonFinite int     // quarantined NaN/±Inf observations
	Mean      float64 // mean of finite observations
	RelCI     float64 // relative 95% CI half-width, scaled by ESS
	ESS       float64 // effective sample size under autocorrelation
	Converged bool    // RelCI ≤ target, ≥ 2 finite obs, nothing quarantined
}

// String renders the verdict for log lines.
func (v Verdict) String() string {
	state := "converged"
	if !v.Converged {
		state = "UNCONVERGED"
	}
	return fmt.Sprintf("%s (n=%d ess=%.1f relCI=%.3g mean=%.4g nonfinite=%d)",
		state, v.N, v.ESS, v.RelCI, v.Mean, v.NonFinite)
}

// Assess renders the one-shot verdict for a finished series against a
// target relative CI half-width. The CI is widened by the effective
// sample size — √(n/ESS) — so autocorrelated series do not claim
// precision their information content cannot support.
func Assess(xs []float64, maxRel float64) Verdict {
	tr := NewTracker(maxRel)
	for _, x := range xs {
		tr.Add(x)
	}
	v := Verdict{
		N:         int(tr.N()),
		NonFinite: int(tr.NonFinite()),
		Mean:      tr.Mean(),
		ESS:       ESS(xs),
	}
	rel := tr.Rel()
	if v.ESS > 0 && !math.IsInf(rel, 0) {
		rel *= math.Sqrt(float64(v.N) / v.ESS)
	}
	v.RelCI = rel
	v.Converged = v.N >= 2 && v.NonFinite == 0 && rel <= maxRel
	return v
}
