package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, -4}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != -4 {
		t.Fatalf("got %v, want [3 -4]", x)
	}
}

func TestSolveKnown(t *testing.T) {
	// 2x + y = 5, x - y = 1  =>  x = 2, y = 1
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("got %v, want [2 1]", x)
	}
}

func TestSolveNeedsPivot(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{7, 9}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 9 || x[1] != 7 {
		t.Fatalf("got %v, want [9 7]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := Solve(a, b); err == nil {
		t.Fatal("expected error for singular matrix")
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected row-count error")
	}
	if _, err := Solve([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("expected column-count error")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != -1 || b[0] != 5 {
		t.Fatal("Solve mutated its inputs")
	}
}

// Property: for random well-conditioned systems, Solve(a, a·x) recovers x.
func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			a[i][i] += float64(n) + 1 // diagonal dominance => well conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBisectRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("got %v, want sqrt(2)", root)
	}
}

func TestBisectReversedInterval(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x - 1 }, 3, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-1) > 1e-10 {
		t.Fatalf("got %v, want 1", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if root != 0 {
		t.Fatalf("got %v, want 0", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err != ErrNoBracket {
		t.Fatalf("got %v, want ErrNoBracket", err)
	}
}

func TestGoldenMinQuadratic(t *testing.T) {
	x := GoldenMin(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10, 1e-10)
	if math.Abs(x-3) > 1e-8 {
		t.Fatalf("got %v, want 3", x)
	}
}

func TestGoldenMinReversedInterval(t *testing.T) {
	x := GoldenMin(func(x float64) float64 { return math.Abs(x + 1) }, 4, -4, 1e-10)
	if math.Abs(x+1) > 1e-8 {
		t.Fatalf("got %v, want -1", x)
	}
}

func TestIntArgminParabola(t *testing.T) {
	f := func(m int) float64 { d := float64(m - 17); return d * d }
	res, ok := IntArgmin(f, 10000, 3, 3)
	if !ok {
		t.Fatal("stopping rule did not fire")
	}
	if res.Arg != 17 || res.Value != 0 {
		t.Fatalf("got %+v, want argmin 17 value 0", res)
	}
}

func TestIntArgminAtOne(t *testing.T) {
	f := func(m int) float64 { return float64(m) }
	res, ok := IntArgmin(f, 10000, 3, 3)
	if !ok || res.Arg != 1 {
		t.Fatalf("got %+v ok=%v, want argmin 1", res, ok)
	}
}

func TestIntArgminCapped(t *testing.T) {
	// Strictly decreasing: the rule can never fire, maxM caps the scan.
	f := func(m int) float64 { return 1 / float64(m) }
	res, ok := IntArgmin(f, 50, 3, 3)
	if ok {
		t.Fatal("stopping rule should not fire for decreasing objective")
	}
	if res.Arg != 50 {
		t.Fatalf("got argmin %d, want 50", res.Arg)
	}
}

func TestIntArgminInvalidMax(t *testing.T) {
	if _, ok := IntArgmin(func(int) float64 { return 0 }, 0, 3, 3); ok {
		t.Fatal("expected ok=false for maxM < 1")
	}
	if _, ok := IntArgminSlack(func(int) float64 { return 0 }, 0, 3, 64, 3); ok {
		t.Fatal("expected ok=false for maxM < 1")
	}
}

func TestIntArgminSlackSurvivesEarlyRipple(t *testing.T) {
	// f has a shallow incumbent at m=1, a plateau high enough to trip the
	// value test immediately, and the true valley at m=60. Without slack
	// the rule fires at m=4 (4×1) and misses the valley; a slack of 64
	// postpones the stop until the scan has passed it.
	f := func(m int) float64 {
		switch {
		case m == 1:
			return 1
		case m == 60:
			return 0.5
		default:
			return 3
		}
	}
	res, ok := IntArgmin(f, 10000, 4, 3)
	if !ok || res.Arg != 1 {
		t.Fatalf("no-slack scan: got %+v ok=%v, want early stop at incumbent 1", res, ok)
	}
	res, ok = IntArgminSlack(f, 10000, 4, 64, 3)
	if !ok {
		t.Fatal("slack scan: stopping rule did not fire")
	}
	if res.Arg != 60 || res.Value != 0.5 {
		t.Fatalf("slack scan: got %+v, want argmin 60 value 0.5", res)
	}
}

func TestIntArgminIsZeroSlack(t *testing.T) {
	// IntArgmin must behave exactly as IntArgminSlack with slack 0.
	f := func(m int) float64 { d := float64(m - 23); return d*d + 1 }
	a, aok := IntArgmin(f, 10000, 4, 3)
	b, bok := IntArgminSlack(f, 10000, 4, 0, 3)
	if a != b || aok != bok {
		t.Fatalf("IntArgmin %+v ok=%v differs from zero-slack %+v ok=%v", a, aok, b, bok)
	}
}
