// Package solver provides the small numerical kernels the rest of the
// repository builds on: dense linear solves, scalar root finding, scalar
// minimisation, and integer argmin scans.
//
// Everything here is deliberately simple and dependency-free. The systems
// solved in this project are tiny (DAR(p) Yule-Walker fits with p ≤ 16,
// one-dimensional parameter inversions), so clarity and robustness are
// preferred over asymptotic performance.
package solver

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/diag"
)

// Numerical-health probes: every kernel screens the values it produces or
// scans so a NaN/Inf escaping a model's ACF or an underflowing objective
// is counted (diag_health_total in telemetry) instead of silently steering
// an optimizer. The all-finite fast path costs only comparisons.
var (
	probeSolve  = diag.NewProbe("solver.Solve")
	probeBisect = diag.NewProbe("solver.Bisect")
	probeArgmin = diag.NewProbe("solver.IntArgmin")
)

// ErrSingular is returned by Solve when the coefficient matrix is singular
// to working precision.
var ErrSingular = errors.New("solver: singular matrix")

// ErrNoBracket is returned by Bisect when the supplied interval does not
// bracket a sign change.
var ErrNoBracket = errors.New("solver: interval does not bracket a root")

// ErrMaxIter is returned when an iterative method fails to converge within
// its iteration budget.
var ErrMaxIter = errors.New("solver: maximum iterations exceeded")

// Solve solves the dense linear system a·x = b by Gaussian elimination with
// partial pivoting. The inputs are not modified. The matrix a is given in
// row-major order as a slice of rows; every row must have length len(b).
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n {
		return nil, fmt.Errorf("solver: matrix has %d rows, want %d", len(a), n)
	}
	// Work on a copy so callers keep their inputs.
	m := make([][]float64, n)
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("solver: row %d has %d columns, want %d", i, len(row), n)
		}
		m[i] = append([]float64(nil), row...)
		m[i] = append(m[i], b[i])
	}

	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = 0
			for c := col + 1; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}

	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for c := i + 1; c < n; c++ {
			sum -= m[i][c] * x[c]
		}
		x[i] = sum / m[i][i]
	}
	for i, v := range x {
		if !probeSolve.Check(v) {
			return nil, fmt.Errorf("solver: non-finite solution component %d", i)
		}
	}
	return x, nil
}

// Bisect finds a root of f in [lo, hi] by bisection. f(lo) and f(hi) must
// have opposite signs (a zero at either endpoint is accepted). The result is
// accurate to within tol in the argument.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	flo, fhi := f(lo), f(hi)
	probeBisect.Check(flo)
	probeBisect.Check(fhi)
	switch {
	case flo == 0:
		return lo, nil
	case fhi == 0:
		return hi, nil
	case flo*fhi > 0:
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		if hi-lo <= tol {
			return mid, nil
		}
		fm := f(mid)
		probeBisect.Check(fm)
		if fm == 0 {
			return mid, nil
		}
		if flo*fm < 0 {
			hi = mid
		} else {
			lo, flo = mid, fm
		}
	}
	return lo + (hi-lo)/2, ErrMaxIter
}

// GoldenMin minimises a unimodal function on [lo, hi] by golden-section
// search, returning the argmin to within tol.
func GoldenMin(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	if lo > hi {
		lo, hi = hi, lo
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return a + (b-a)/2
}

// ArgminResult reports the outcome of an integer argmin scan.
type ArgminResult struct {
	Arg   int     // minimising integer argument
	Value float64 // objective value at Arg
}

// IntArgmin scans f over m = 1, 2, ... and returns the argmin. The objective
// need not be unimodal; the scan stops once both of the following hold:
// the current m is at least growFactor times the best argmin seen so far,
// and the current value exceeds stopFactor times the best value. maxM caps
// the scan; if the stopping rule has not fired by maxM the best value seen
// is returned along with ok=false.
//
// This stopping rule is sound for the CTS objective f(m) = [b+m(c-μ)]²/2V(m):
// V(m) grows strictly slower than m², so the objective tends to +∞ and, once
// it has risen well above the incumbent and we are well past it, no later m
// can undercut the incumbent (the numerator grows like m² while V(m) ≤ σ²m²
// bounds the denominator's help).
func IntArgmin(f func(int) float64, maxM int, growFactor, stopFactor float64) (ArgminResult, bool) {
	return IntArgminSlack(f, maxM, growFactor, 0, stopFactor)
}

// IntArgminSlack is IntArgmin with an additive slack on the argument part
// of the stopping rule: the scan stops once m ≥ growFactor·best.Arg + slack
// and f(m) ≥ stopFactor·best.Value. The slack keeps the rule from firing
// on the shallow early ripples of objectives whose argmin is small but
// whose surface is locally rough (e.g. CTS objectives of near-periodic
// ACFs, where an early incumbent at m = 1–3 would otherwise end the scan
// before the true valley).
func IntArgminSlack(f func(int) float64, maxM int, growFactor, slack, stopFactor float64) (ArgminResult, bool) {
	if maxM < 1 {
		return ArgminResult{}, false
	}
	best := ArgminResult{Arg: 1, Value: f(1)}
	probeArgmin.Check(best.Value)
	for m := 2; m <= maxM; m++ {
		v := f(m)
		probeArgmin.Check(v)
		if v < best.Value {
			best = ArgminResult{Arg: m, Value: v}
			continue
		}
		if float64(m) >= growFactor*float64(best.Arg)+slack && v >= stopFactor*best.Value {
			return best, true
		}
	}
	return best, false
}
