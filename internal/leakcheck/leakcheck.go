// Package leakcheck is a dependency-free goroutine-leak gate for test
// binaries, in the style of go.uber.org/goleak: after the tests of a
// package finish, any goroutine that is not part of the test harness or
// the runtime is a leak — typically a worker that survived a cancelled
// sweep, or a progress logger whose stop function was never called.
// Leaks like these are exactly how a parallel orchestration engine
// starts interleaving telemetry between experiments, so the runner and
// mux packages wire this into TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Goroutines are given a grace period to wind down (finished workers
// may still be parked in exit paths when Run returns); only goroutines
// that persist beyond it are reported.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// graceTotal bounds how long Main waits for straggling goroutines to
// exit before declaring them leaked.
const graceTotal = 5 * time.Second

// Main runs the package's tests and exits the process, failing a
// passing run if goroutines leaked. Use from TestMain.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := WaitClean(graceTotal); len(leaked) > 0 {
			// The test framework is already torn down here, and the
			// telemetry logger may point at a buffer some finished test
			// owned; stderr is the only sink guaranteed to still work.
			//lint:printguard TestMain exit path: report leaks after the harness is gone
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by this package's tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// WaitClean polls with backoff until no goroutines look leaked or the
// timeout elapses, returning the stacks that remain. Polling absorbs
// the normal wind-down of worker pools and tickers that were stopped in
// test cleanup but had not yet been scheduled away.
func WaitClean(timeout time.Duration) []string {
	// Elapsed time is accumulated from the sleeps rather than read off
	// the wall clock, keeping this package clean under the walltime
	// analyzer; the deadline only bounds patience, it needs no
	// precision.
	delay := time.Millisecond
	for elapsed := time.Duration(0); ; elapsed += delay {
		leaked := Leaked()
		if len(leaked) == 0 {
			return nil
		}
		if elapsed >= timeout {
			return leaked
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// Leaked snapshots all goroutine stacks and returns those not accounted
// for by the harness filters — the current goroutine, the testing
// framework, and runtime/system service goroutines.
func Leaked() []string {
	var leaked []string
	for _, g := range stacks() {
		if !benign(g) {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// benignMarkers identify goroutines that belong to the harness or
// runtime rather than code under test (the same set goleak ignores by
// default, minus the ones that cannot occur in a pure-Go test binary).
var benignMarkers = []string{
	// The goroutine running this check: stacks() only ever appears on
	// the snapshotting goroutine's own stack. (Deliberately not the
	// whole package path — goroutines spawned by this package's tests
	// must still be reportable.)
	"repro/internal/leakcheck.stacks(",
	"testing.Main(",
	"testing.(*M).",
	"runtime.MHeap_Scavenger",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
	"goroutine in C code",
}

func benign(stack string) bool {
	for _, m := range benignMarkers {
		if strings.Contains(stack, m) {
			return true
		}
	}
	return false
}

// stacks captures every goroutine's stack and splits the dump into one
// string per goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var gs []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.HasPrefix(g, "goroutine ") {
			gs = append(gs, strings.TrimSpace(g))
		}
	}
	return gs
}
