package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestLeakedFindsBlockedGoroutine pins both directions: a goroutine
// parked on a channel is reported, and releasing it clears the report.
func TestLeakedFindsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()

	// The goroutine may not have parked yet; give it a moment.
	var leaked []string
	for i := 0; i < 100; i++ {
		if leaked = Leaked(); len(leaked) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(leaked) == 0 {
		t.Fatal("blocked goroutine not reported as leaked")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "TestLeakedFindsBlockedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Errorf("leak report does not name the leaking test:\n%s", strings.Join(leaked, "\n\n"))
	}

	close(release)
	<-done
	if remaining := WaitClean(graceTotal); len(remaining) != 0 {
		t.Errorf("goroutines still reported after release:\n%s", strings.Join(remaining, "\n\n"))
	}
}

// TestBenignFilters pins the harness filters so a refactor cannot
// silently start reporting the test framework itself.
func TestBenignFilters(t *testing.T) {
	cases := []struct {
		stack string
		want  bool
	}{
		{"goroutine 1 [running]:\nrepro/internal/leakcheck.stacks(...)", true},
		{"goroutine 2 [select]:\ntesting.(*M).Run(...)", true},
		{"goroutine 7 [chan receive]:\nrepro/internal/mux.(*Sweep).worker(...)", false},
	}
	for _, c := range cases {
		if got := benign(c.stack); got != c.want {
			t.Errorf("benign(%q) = %v, want %v", c.stack, got, c.want)
		}
	}
}

// The package applies its own gate.
func TestMain(m *testing.M) { Main(m) }
