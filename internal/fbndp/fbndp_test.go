package fbndp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/traffic"
)

// zParams are the FBNDP component parameters of the paper's Z^a model
// (Table 1): α = 0.8, λ = 6250 cells/s, T0 = 2.57 ms, M = 15, Ts = 40 ms.
func zParams() Params {
	return Params{Alpha: 0.8, Lambda: 6250, T0: 2.57e-3, M: 15, Ts: 0.04}
}

func TestValidate(t *testing.T) {
	good := zParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Alpha: 0, Lambda: 1, T0: 1, M: 1, Ts: 1},
		{Alpha: 1, Lambda: 1, T0: 1, M: 1, Ts: 1},
		{Alpha: 0.5, Lambda: 0, T0: 1, M: 1, Ts: 1},
		{Alpha: 0.5, Lambda: 1, T0: 0, M: 1, Ts: 1},
		{Alpha: 0.5, Lambda: 1, T0: 1, M: 0, Ts: 1},
		{Alpha: 0.5, Lambda: 1, T0: 1, M: 1, Ts: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := NewModel(bad[0]); err == nil {
		t.Error("NewModel should reject invalid params")
	}
}

func TestHurst(t *testing.T) {
	if got := zParams().Hurst(); got != 0.9 {
		t.Fatalf("H = %v, want 0.9", got)
	}
}

func TestMeanVarianceMatchTable1(t *testing.T) {
	p := zParams()
	if got := p.Mean(); math.Abs(got-250) > 1e-9 {
		t.Fatalf("mean = %v, want 250 cells/frame", got)
	}
	// With T0 = 2.57 ms the variance should be ≈ 2500 (paper: the FBNDP
	// component of Z^a carries half the total variance of 5000).
	if got := p.Variance(); math.Abs(got-2500) > 20 {
		t.Fatalf("variance = %v, want ≈2500", got)
	}
}

func TestSolveT0ReproducesTable1(t *testing.T) {
	cases := []struct {
		name                string
		mean, vari, alpha   float64
		wantMS, toleranceMS float64
	}{
		// Z^a component: T0 = 2.57 ms.
		{"Z", 250, 2500, 0.8, 2.57, 0.01},
		// V^v component at v = 1: T0 = 3.48 ms.
		{"V", 250, 2500, 0.9, 3.48, 0.01},
		// L: paper lists 1.83 ms; our self-consistent derivation from
		// (μ, σ², α) = (500, 5000, 0.72) gives 1.89 ms — the paper's value
		// implies σ² ≈ 5108, a rounding of their workflow. Shape-preserving.
		{"L", 500, 5000, 0.72, 1.89, 0.01},
	}
	for _, c := range cases {
		t0, err := SolveT0(c.mean, c.vari, c.alpha, 0.04)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(t0*1000-c.wantMS) > c.toleranceMS {
			t.Errorf("%s: T0 = %.4f ms, want ≈%.2f ms", c.name, t0*1000, c.wantMS)
		}
	}
}

func TestSolveT0Errors(t *testing.T) {
	if _, err := SolveT0(100, 50, 0.8, 0.04); err == nil {
		t.Error("under-dispersed input should error")
	}
	if _, err := SolveT0(100, 200, 1.5, 0.04); err == nil {
		t.Error("alpha out of range should error")
	}
}

func TestSolveT0RoundTrip(t *testing.T) {
	// Params built from SolveT0 must reproduce the requested variance.
	t0, err := SolveT0(250, 2500, 0.8, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Alpha: 0.8, Lambda: 250 / 0.04, T0: t0, M: 15, Ts: 0.04}
	if got := p.Variance(); math.Abs(got-2500) > 1e-6 {
		t.Fatalf("round-trip variance = %v, want 2500", got)
	}
}

func TestCutoffAConsistentWithT0(t *testing.T) {
	// Recomputing T0 from A and R via the paper's relation must return the
	// original T0: T0^α = K(α)·R^{−1}·A^{α−1}.
	p := zParams()
	a := p.CutoffA()
	if a <= 0 {
		t.Fatalf("A = %v", a)
	}
	t0alpha := kAlpha(p.Alpha) / p.OnRate() * math.Pow(a, p.Alpha-1)
	t0 := math.Pow(t0alpha, 1/p.Alpha)
	if math.Abs(t0-p.T0)/p.T0 > 1e-9 {
		t.Fatalf("round-trip T0 = %v, want %v", t0, p.T0)
	}
}

func TestACFBasicShape(t *testing.T) {
	p := zParams()
	if p.ACF(0) != 1 {
		t.Fatal("ACF(0) must be 1")
	}
	if got, want := p.ACF(-5), p.ACF(5); got != want {
		t.Fatal("ACF must be symmetric in lag")
	}
	// r(1) = [1/(1+(T0/Ts)^α)]·½(2^{α+1}−2) ≈ 0.9 × 0.741 ≈ 0.667.
	if got := p.ACF(1); math.Abs(got-0.667) > 0.005 {
		t.Fatalf("ACF(1) = %v, want ≈0.667", got)
	}
	// Monotone decreasing, positive.
	prev := 1.0
	for k := 1; k <= 2000; k *= 2 {
		r := p.ACF(k)
		if r <= 0 || r >= prev {
			t.Fatalf("ACF not positive-decreasing at lag %d: %v (prev %v)", k, r, prev)
		}
		prev = r
	}
}

func TestACFPowerLawTail(t *testing.T) {
	// For large k, r(k) ≈ c·k^{α−1}·α(α+1)/2-ish; the ratio
	// r(2k)/r(k) → 2^{α−1}.
	p := zParams()
	want := math.Pow(2, p.Alpha-1)
	for _, k := range []int{200, 1000, 5000} {
		ratio := p.ACF(2*k) / p.ACF(k)
		if math.Abs(ratio-want) > 0.01 {
			t.Fatalf("r(2k)/r(k) at k=%d: %v, want ≈%v", k, ratio, want)
		}
	}
}

func TestDurationsDensityContinuity(t *testing.T) {
	// CDF-based check: F(A) should equal 1−e^{−γ}, and sample fractions
	// below A should match.
	d := newDurations(0.8, 1.0)
	rng := rand.New(rand.NewSource(9))
	n, below := 200000, 0
	for i := 0; i < n; i++ {
		if d.sample(rng) <= d.a {
			below++
		}
	}
	frac := float64(below) / float64(n)
	want := 1 - math.Exp(-d.gamma)
	if math.Abs(frac-want) > 0.005 {
		t.Fatalf("P(T ≤ A) = %v, want %v", frac, want)
	}
}

func TestDurationsMean(t *testing.T) {
	// Use a milder tail (γ = 1.8) where the sample mean converges well.
	d := newDurations(0.2, 1.0)
	rng := rand.New(rand.NewSource(4))
	var sum float64
	n := 2_000_000
	for i := 0; i < n; i++ {
		sum += d.sample(rng)
	}
	got := sum / float64(n)
	if math.Abs(got-d.mean)/d.mean > 0.05 {
		t.Fatalf("sample mean %v, analytic %v", got, d.mean)
	}
}

func TestDurationsResidualSurvival(t *testing.T) {
	// The equilibrium residual distribution has survival
	// P(Te > t) = (E[T] − G(t))/E[T]; verify empirically at several t.
	d := newDurations(0.5, 1.0)
	rng := rand.New(rand.NewSource(12))
	n := 400000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.sampleResidual(rng)
	}
	gOf := func(t float64) float64 {
		g := d.gamma
		if t <= d.a {
			return d.a / g * (1 - math.Exp(-g*t/d.a))
		}
		return d.intBody + math.Exp(-g)*math.Pow(d.a, g)*
			(math.Pow(d.a, 1-g)-math.Pow(t, 1-g))/(g-1)
	}
	for _, tv := range []float64{0.2, 0.5, 1.0, 3.0, 10.0} {
		want := (d.mean - gOf(tv)) / d.mean
		var count int
		for _, s := range samples {
			if s > tv {
				count++
			}
		}
		got := float64(count) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("P(Te > %v) = %v, want %v", tv, got, want)
		}
	}
}

func TestDurationsSamplesPositive(t *testing.T) {
	d := newDurations(0.8, 2.0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		if s := d.sample(rng); s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("bad duration sample %v", s)
		}
		if s := d.sampleResidual(rng); s <= 0 || math.IsNaN(s) {
			t.Fatalf("bad residual sample %v", s)
		}
	}
}

func TestGeneratorMeanAndVariance(t *testing.T) {
	// Long-range dependence makes single-path moment estimators converge
	// at rate n^{H−1} (stable-law fluctuations from the heavy-tailed
	// phases), so average over independent replications as the paper's own
	// simulations do.
	m, err := NewModel(zParams())
	if err != nil {
		t.Fatal(err)
	}
	var meanSum, varSum float64
	const reps = 6
	for seed := int64(1); seed <= reps; seed++ {
		xs := traffic.Generate(m.NewGenerator(seed), 100000)
		meanSum += stats.Mean(xs)
		varSum += stats.Variance(xs)
	}
	gotMean := meanSum / reps
	if math.Abs(gotMean-250)/250 > 0.05 {
		t.Fatalf("replication mean %v, want ≈250", gotMean)
	}
	gotVar := varSum / reps
	// The windowed variance estimator under-measures LRD variance by the
	// unseen low-frequency power (≈15% at this H and window).
	if gotVar < 1500 || gotVar > 3500 {
		t.Fatalf("replication variance %v, want within [1500, 3500] of ≈2500", gotVar)
	}
}

func TestGeneratorShortTermACF(t *testing.T) {
	m, err := NewModel(zParams())
	if err != nil {
		t.Fatal(err)
	}
	xs := traffic.Generate(m.NewGenerator(31), 200000)
	acf := stats.ACF(xs, 5)
	for k := 1; k <= 5; k++ {
		if math.Abs(acf[k]-m.ACF(k)) > 0.12 {
			t.Fatalf("ACF(%d) = %v, analytic %v", k, acf[k], m.ACF(k))
		}
	}
}

func TestGeneratorLongMemoryPresent(t *testing.T) {
	// Average ACF over lags 50..100 should be clearly positive (an SRD
	// process of matched lag-1 correlation would be ≈0 there).
	m, err := NewModel(zParams())
	if err != nil {
		t.Fatal(err)
	}
	xs := traffic.Generate(m.NewGenerator(77), 300000)
	acf := stats.ACF(xs, 100)
	var sum float64
	for k := 50; k <= 100; k++ {
		sum += acf[k]
	}
	avg := sum / 51
	if avg < 0.05 {
		t.Fatalf("mean ACF over lags 50..100 = %v; long memory missing", avg)
	}
}

func TestGeneratorReproducible(t *testing.T) {
	m, err := NewModel(zParams())
	if err != nil {
		t.Fatal(err)
	}
	a := traffic.Generate(m.NewGenerator(5), 200)
	b := traffic.Generate(m.NewGenerator(5), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d", i)
		}
	}
}

func TestGeneratorNonNegativeCounts(t *testing.T) {
	m, err := NewModel(zParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range traffic.Generate(m.NewGenerator(1), 5000) {
		if x < 0 || x != math.Trunc(x) {
			t.Fatalf("frame count %v not a non-negative integer", x)
		}
	}
}

func TestModelName(t *testing.T) {
	m, _ := NewModel(zParams())
	if m.Name() == "" {
		t.Fatal("empty name")
	}
	m.SetName("L")
	if m.Name() != "L" {
		t.Fatal("SetName failed")
	}
}

func BenchmarkGeneratorFrame(b *testing.B) {
	m, err := NewModel(zParams())
	if err != nil {
		b.Fatal(err)
	}
	g := m.NewGenerator(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextFrame()
	}
}
