// Package fbndp implements the Fractal-Binomial-Noise-Driven Poisson
// process of Ryu and Lowen (paper §3.2, [19, 20]): M independent fractal
// ON/OFF processes with i.i.d. heavy-tailed ON and OFF durations are summed
// into a fractal binomial rate process, which drives a doubly stochastic
// Poisson point process. Counting arrivals per video frame yields an exact
// long-range-dependent frame-size process.
//
// Duration density (paper §3.2), with γ = 2−α and 1 < γ < 2:
//
//	p(t) = (γ/A)·exp(−γt/A)          for t ≤ A   (exponential body)
//	p(t) = γ·e^{−γ}·A^γ·t^{−(γ+1)}    for t > A   (Pareto tail)
//
// The density is continuous at A and its tail index γ < 2 gives the phase
// process infinite variance, which is the source of long-range dependence.
// The four model parameters are α, A, M and R (Poisson rate while ON); the
// derived statistics are
//
//	H  = (α+1)/2
//	λ  = R·M/2
//	T0 = { α(α+1)(2−α)^{−1}·[(1−α)e^{2−α}+1] · R^{−1}·A^{α−1} }^{1/α}
//
// and for the frame-count process L_n = N(nTs) − N((n−1)Ts):
//
//	E[L]   = λTs
//	Var[L] = [1 + (Ts/T0)^α]·λTs
//	r(k)   = Ts^α/(Ts^α+T0^α) · ½∇²(k^{α+1})
package fbndp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/randx"
	"repro/internal/traffic"
)

// Params is the engineering-level parameterisation of an FBNDP frame-size
// source: the statistics a traffic modeller specifies directly.
type Params struct {
	Alpha  float64 // fractal exponent, 0 < α < 1; Hurst H = (α+1)/2
	Lambda float64 // mean arrival rate in cells/sec
	T0     float64 // fractal onset time in seconds
	M      int     // number of superposed ON/OFF processes
	Ts     float64 // frame duration in seconds
}

// Validate checks that the parameters define a proper FBNDP.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("fbndp: alpha %v outside (0, 1)", p.Alpha)
	}
	if p.Lambda <= 0 {
		return fmt.Errorf("fbndp: lambda %v must be positive", p.Lambda)
	}
	if p.T0 <= 0 {
		return fmt.Errorf("fbndp: T0 %v must be positive", p.T0)
	}
	if p.M < 1 {
		return fmt.Errorf("fbndp: M %d must be at least 1", p.M)
	}
	if p.Ts <= 0 {
		return fmt.Errorf("fbndp: Ts %v must be positive", p.Ts)
	}
	return nil
}

// Hurst returns H = (α+1)/2.
func (p Params) Hurst() float64 { return (p.Alpha + 1) / 2 }

// kAlpha returns the constant α(α+1)(2−α)^{−1}[(1−α)e^{2−α}+1] appearing in
// the fractal onset time relation.
func kAlpha(alpha float64) float64 {
	return alpha * (alpha + 1) / (2 - alpha) * ((1-alpha)*math.Exp(2-alpha) + 1)
}

// OnRate returns R, the Poisson rate of one ON/OFF process while ON,
// determined by λ = RM/2 (each process is ON half the time in equilibrium).
func (p Params) OnRate() float64 { return 2 * p.Lambda / float64(p.M) }

// CutoffA inverts the fractal onset time relation for A, the crossover
// duration between the exponential body and the Pareto tail:
//
//	T0^α = K(α)·R^{−1}·A^{α−1}  ⇒  A = (T0^α·R/K(α))^{1/(α−1)}.
func (p Params) CutoffA() float64 {
	r := p.OnRate()
	base := math.Pow(p.T0, p.Alpha) * r / kAlpha(p.Alpha)
	return math.Pow(base, 1/(p.Alpha-1))
}

// Mean returns E[L] = λTs in cells/frame.
func (p Params) Mean() float64 { return p.Lambda * p.Ts }

// Variance returns Var[L] = [1 + (Ts/T0)^α]·λTs.
func (p Params) Variance() float64 {
	return (1 + math.Pow(p.Ts/p.T0, p.Alpha)) * p.Lambda * p.Ts
}

// ACF returns the frame-count autocorrelation at lag k ≥ 0:
// r(k) = Ts^α/(Ts^α+T0^α) · ½∇²(k^{α+1}), with r(0) = 1.
func (p Params) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	frac := 1 / (1 + math.Pow(p.T0/p.Ts, p.Alpha))
	return frac * halfSecondDiff(float64(k), p.Alpha+1)
}

// halfSecondDiff evaluates ½∇²(k^e) = ½[(k+1)^e − 2k^e + (k−1)^e].
func halfSecondDiff(k, e float64) float64 {
	return 0.5 * (math.Pow(k+1, e) - 2*math.Pow(k, e) + math.Pow(k-1, e))
}

// SolveT0 returns the fractal onset time that produces the requested
// frame-count variance for the given mean and α:
// variance/mean = 1 + (Ts/T0)^α ⇒ T0 = Ts/(variance/mean − 1)^{1/α}.
// This is how the paper "determines T0 from the given mean, variance and α
// of each model" (§5.1 item 8).
func SolveT0(meanFrame, varFrame, alpha, ts float64) (float64, error) {
	if meanFrame <= 0 || varFrame <= meanFrame {
		return 0, fmt.Errorf("fbndp: need variance %v > mean %v > 0 (over-dispersion)", varFrame, meanFrame)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("fbndp: alpha %v outside (0, 1)", alpha)
	}
	ratio := varFrame/meanFrame - 1
	return ts / math.Pow(ratio, 1/alpha), nil
}

// Model is an FBNDP frame-size source implementing traffic.Model.
type Model struct {
	P    Params
	name string
}

// NewModel validates p and wraps it as a traffic.Model.
func NewModel(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{P: p, name: fmt.Sprintf("FBNDP(α=%.3g)", p.Alpha)}, nil
}

// Name implements traffic.Model.
func (m *Model) Name() string { return m.name }

// SetName overrides the display name.
func (m *Model) SetName(name string) { m.name = name }

// Mean implements traffic.Model.
func (m *Model) Mean() float64 { return m.P.Mean() }

// Variance implements traffic.Model.
func (m *Model) Variance() float64 { return m.P.Variance() }

// ACF implements traffic.Model.
func (m *Model) ACF(k int) float64 { return m.P.ACF(k) }

// durations handles sampling of the heavy-tailed ON/OFF duration
// distribution and its equilibrium residual distribution.
type durations struct {
	gamma float64 // 2−α
	a     float64 // crossover A
	mean  float64 // E[T]
	// precomputed pieces
	bodyMass float64 // F(A) = 1 − e^{−γ}
	intBody  float64 // ∫_0^A (1−F) = A(1−e^{−γ})/γ
}

func newDurations(alpha, a float64) durations {
	g := 2 - alpha
	eg := math.Exp(-g)
	mean := a * ((1-(1+g)*eg)/g + g*eg/(g-1))
	return durations{
		gamma:    g,
		a:        a,
		mean:     mean,
		bodyMass: 1 - eg,
		intBody:  a * (1 - eg) / g,
	}
}

// sample draws a fresh ON or OFF duration. The density is an exponential
// with rate γ/A on [0, A] and a Pareto(γ) tail beyond, continuous at A with
// tail mass e^{−γ}. Sampling composes exactly: draw from the untruncated
// exponential (which exceeds A with probability exactly e^{−γ}, the tail
// mass); on exceedance, redraw from the tail's conditional law
// P(T > t | T > A) = (A/t)^γ, i.e. t = A·U^{−1/γ}. The common body case
// costs one ziggurat exponential, keeping the V^v simulations (whose phase
// changes outnumber frames 100:1) affordable.
func (d durations) sample(r *rand.Rand) float64 {
	t := r.ExpFloat64() * d.a / d.gamma
	if t <= d.a {
		return t
	}
	// 1−Float64() lies in (0, 1], avoiding a zero base (infinite duration).
	return d.a * math.Pow(1-r.Float64(), -1/d.gamma)
}

// sampleResidual draws from the equilibrium residual-life distribution with
// density (1−F(t))/E[T], used to start each phase in steady state. Without
// this, sample paths begin with a long transient that suppresses the
// long-range dependence the model exists to produce.
//
// The integrated survival function is piecewise closed-form:
//
//	G(t) = ∫_0^t (1−F) = A(1−e^{−γt/A})/γ                         t ≤ A
//	G(t) = A(1−e^{−γ})/γ + e^{−γ}A^γ·(A^{1−γ}−t^{1−γ})/(γ−1)      t > A
//
// and G(∞) = E[T], so we solve G(t) = u·E[T] exactly in each branch.
func (d durations) sampleResidual(r *rand.Rand) float64 {
	y := r.Float64() * d.mean
	if y <= d.intBody {
		// A(1−e^{−γt/A})/γ = y ⇒ t = −(A/γ)·ln(1 − γy/A).
		return -d.a / d.gamma * math.Log(1-d.gamma*y/d.a)
	}
	y2 := y - d.intBody
	g := d.gamma
	// e^{−γ}A^γ(A^{1−γ}−t^{1−γ})/(γ−1) = y2
	// ⇒ t^{1−γ} = A^{1−γ} − y2(γ−1)e^{γ}A^{−γ}.
	t1g := math.Pow(d.a, 1-g) - y2*(g-1)*math.Exp(g)*math.Pow(d.a, -g)
	if t1g <= 0 {
		// Rounding at u → 1; return a very long residual consistent with
		// the heavy tail rather than NaN.
		return d.a * 1e12
	}
	return math.Pow(t1g, 1/(1-g))
}

// phase is the state of one ON/OFF process.
type phase struct {
	on        bool
	remaining float64 // seconds until the next toggle
}

// generator produces frame counts from an FBNDP sample path.
type generator struct {
	p      Params
	dur    durations
	r      float64 // ON rate in cells/sec
	rng    *rand.Rand
	phases []phase
}

// NewGenerator implements traffic.Model. Every ON/OFF process starts in
// equilibrium: ON with probability 1/2 and a residual-life duration.
func (m *Model) NewGenerator(seed int64) traffic.Generator {
	rng := randx.NewRand(seed)
	g := &generator{
		p:      m.P,
		dur:    newDurations(m.P.Alpha, m.P.CutoffA()),
		r:      m.P.OnRate(),
		rng:    rng,
		phases: make([]phase, m.P.M),
	}
	for i := range g.phases {
		g.phases[i] = phase{
			on:        rng.Float64() < 0.5,
			remaining: g.dur.sampleResidual(rng),
		}
	}
	return g
}

// NextFrame advances every ON/OFF process by one frame duration,
// accumulates the total ON time, and draws the frame's cell count from a
// Poisson distribution with mean R × (total ON seconds).
func (g *generator) NextFrame() float64 { return g.frame() }

// Fill implements traffic.BlockGenerator: the M-fold superposition loop
// and the Poisson draws run over a whole chunk per virtual call, in the
// same draw order as the scalar protocol (bit-identical paths).
func (g *generator) Fill(dst []float64) {
	for i := range dst {
		dst[i] = g.frame()
	}
}

// frame advances the sample path one frame.
func (g *generator) frame() float64 {
	var onTime float64
	for i := range g.phases {
		ph := &g.phases[i]
		left := g.p.Ts
		for ph.remaining < left {
			if ph.on {
				onTime += ph.remaining
			}
			left -= ph.remaining
			ph.on = !ph.on
			ph.remaining = g.dur.sample(g.rng)
		}
		if ph.on {
			onTime += left
		}
		ph.remaining -= left
	}
	return float64(randx.Poisson(g.rng, g.r*onTime))
}

// ErrInfeasible reports a parameter derivation with no valid solution.
var ErrInfeasible = errors.New("fbndp: infeasible parameter derivation")
