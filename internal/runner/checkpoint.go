package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint is an append-only JSON-lines store of completed replication
// results, keyed by (job fingerprint hash, replication index). Each line
// is {"k":"<key>","v":<result>}; appends are flushed per entry, so a
// killed run loses at most the line being written — a truncated final
// line is ignored on reload. One Checkpoint may serve many jobs and many
// workers concurrently.
type Checkpoint struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	entries map[string]json.RawMessage
}

type checkpointLine struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// OpenCheckpoint opens (creating if necessary) the checkpoint file at
// path and loads every complete entry already in it.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open checkpoint: %w", err)
	}
	c := &Checkpoint{path: path, f: f, entries: make(map[string]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var valid int64
	for sc.Scan() {
		line := sc.Bytes()
		var e checkpointLine
		if err := json.Unmarshal(line, &e); err != nil || e.K == "" {
			// A torn final line from an interrupted run; everything
			// after it is unreachable, so stop and truncate to the
			// last valid entry.
			break
		}
		c.entries[e.K] = e.V
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		f.Close()
		return nil, fmt.Errorf("runner: read checkpoint: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: trim checkpoint: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: seek checkpoint: %w", err)
	}
	c.w = bufio.NewWriter(f)
	return c, nil
}

// Len reports the number of stored replication results.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Path reports the backing file.
func (c *Checkpoint) Path() string { return c.path }

// Close flushes and closes the backing file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	ferr := c.w.Flush()
	cerr := c.f.Close()
	c.f, c.w = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// lookup decodes the stored result for key into out, reporting whether an
// entry existed.
func (c *Checkpoint) lookup(key string, out any) (bool, error) {
	c.mu.Lock()
	raw, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, err
	}
	return true, nil
}

// put stores a result and appends it durably to the backing file.
func (c *Checkpoint) put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line, err := json.Marshal(checkpointLine{K: key, V: raw})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("runner: checkpoint %s is closed", c.path)
	}
	c.entries[key] = raw
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}
