package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoJob records the seed it was handed; comparing runs at different
// worker counts proves seeds (and hence any simulation built on them)
// are independent of scheduling.
func echoJob(ctx context.Context, r Rep) (int64, error) {
	r.AddUnits(1)
	return r.Seed, nil
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := Spec{ID: "det", Reps: 64, MasterSeed: 1996}
	serial, err := Run(context.Background(), New(1), spec, echoJob)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU(), 64} {
		parallel, err := Run(context.Background(), New(workers), spec, echoJob)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
	// Seeds must be distinct across replications.
	seen := map[int64]bool{}
	for _, s := range serial {
		if seen[s] {
			t.Fatalf("duplicate replication seed %d", s)
		}
		seen[s] = true
	}
}

func TestRunSeedsIndependentOfJobID(t *testing.T) {
	a, err := Run(context.Background(), New(2), Spec{ID: "job-a", Reps: 8, MasterSeed: 5}, echoJob)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), New(2), Spec{ID: "job-b", Reps: 8, MasterSeed: 5}, echoJob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] == b[i] {
			t.Fatalf("rep %d: jobs with different IDs drew the same seed", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run[int](context.Background(), nil, Spec{ID: "x", Reps: 1},
		func(context.Context, Rep) (int, error) { return 0, nil }); err == nil {
		t.Error("nil engine should error")
	}
	e := New(2)
	if _, err := Run[int](context.Background(), e, Spec{ID: "x", Reps: 0},
		func(context.Context, Rep) (int, error) { return 0, nil }); err == nil {
		t.Error("reps = 0 should error")
	}
	if _, err := Run[int](context.Background(), e, Spec{ID: "x", Reps: 1}, nil); err == nil {
		t.Error("nil fn should error")
	}
}

func TestRunCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once atomic.Bool
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(ctx, New(4), Spec{ID: "cancel", Reps: 100, MasterSeed: 1},
		func(ctx context.Context, r Rep) (int, error) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(30 * time.Second):
				return 0, errors.New("cancellation never arrived")
			}
		})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunFailFast(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Run(context.Background(), New(2), Spec{ID: "fail", Reps: 1000, MasterSeed: 1},
		func(ctx context.Context, r Rep) (int, error) {
			calls.Add(1)
			if r.Index == 3 {
				return 0, boom
			}
			return r.Index, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("fail-fast did not stop the run early (%d calls)", n)
	}
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	type res struct {
		Rep  int
		Seed int64
		CLR  float64
	}
	job := func(ctx context.Context, r Rep) (res, error) {
		return res{Rep: r.Index, Seed: r.Seed, CLR: float64(r.Seed%1000) / 1000}, nil
	}
	spec := Spec{ID: "ckpt", Reps: 20, MasterSeed: 7, Fingerprint: "model=Z^0.9|frames=100"}

	c1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(4)
	e1.SetCheckpoint(c1)
	first, err := Run(context.Background(), e1, spec, job)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second run must restore every replication without calling the job.
	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != spec.Reps {
		t.Fatalf("reloaded %d entries, want %d", c2.Len(), spec.Reps)
	}
	e2 := New(4)
	e2.SetCheckpoint(c2)
	var reran atomic.Int64
	second, err := Run(context.Background(), e2, spec,
		func(ctx context.Context, r Rep) (res, error) {
			reran.Add(1)
			return job(ctx, r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := reran.Load(); n != 0 {
		t.Fatalf("resume re-ran %d replications, want 0", n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("resumed results differ from original run")
	}
	st := e2.Stats()
	if st.RepsResumed != int64(spec.Reps) || st.RepsDone != int64(spec.Reps) {
		t.Fatalf("stats %+v: want all %d reps resumed", st, spec.Reps)
	}

	// A different fingerprint must not match the stored entries.
	other := spec
	other.Fingerprint = "model=Z^0.9|frames=200"
	e3 := New(4)
	e3.SetCheckpoint(c2)
	if _, err := Run(context.Background(), e3, other, job); err != nil {
		t.Fatal(err)
	}
	if e3.Stats().RepsResumed != 0 {
		t.Fatal("changed fingerprint replayed stale checkpoint entries")
	}
}

func TestCheckpointPartialAndTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	job := func(ctx context.Context, r Rep) (int64, error) { return r.Seed, nil }
	spec := Spec{ID: "partial", Reps: 10, MasterSeed: 3, Fingerprint: "torn-test"}

	// Complete only the first 4 replications, then simulate a crash by
	// appending a torn half-written line.
	c1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(1)
	e1.SetCheckpoint(c1)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, runErr := Run(ctx, e1, spec, func(ctx context.Context, r Rep) (int64, error) {
		if calls.Add(1) == 4 {
			cancel() // interrupt after the 4th result is produced
		}
		return job(ctx, r)
	})
	cancel()
	if runErr == nil {
		t.Fatal("interrupted run returned nil error")
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	done := c2.Len()
	if done < 1 || done > 5 {
		t.Fatalf("recovered %d entries, want the ~4 completed before interrupt", done)
	}
	e2 := New(4)
	e2.SetCheckpoint(c2)
	var reran atomic.Int64
	results, err := Run(context.Background(), e2, spec,
		func(ctx context.Context, r Rep) (int64, error) {
			reran.Add(1)
			return job(ctx, r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != spec.Reps {
		t.Fatalf("got %d results, want %d", len(results), spec.Reps)
	}
	if got, want := int(reran.Load()), spec.Reps-done; got != want {
		t.Fatalf("resume re-ran %d reps, want %d", got, want)
	}
	if int(e2.Stats().RepsResumed) != done {
		t.Fatalf("stats resumed %d, want %d", e2.Stats().RepsResumed, done)
	}
	// Every result must equal the documented derivation regardless of
	// whether it came from the checkpoint or a fresh run.
	fresh, err := Run(context.Background(), New(1), spec, job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results, fresh) {
		t.Fatal("mixed resumed/fresh results differ from a clean run")
	}
}

func TestStatsCountersAndETA(t *testing.T) {
	e := New(2)
	if _, err := Run(context.Background(), e, Spec{ID: "stats", Reps: 6, MasterSeed: 2},
		func(ctx context.Context, r Rep) (int, error) {
			r.AddUnits(100)
			time.Sleep(time.Millisecond)
			return r.Index, nil
		}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Jobs != 1 || st.JobsDone != 1 {
		t.Fatalf("jobs %d/%d, want 1/1", st.JobsDone, st.Jobs)
	}
	if st.RepsTotal != 6 || st.RepsDone != 6 {
		t.Fatalf("reps %d/%d, want 6/6", st.RepsDone, st.RepsTotal)
	}
	if st.Units != 600 {
		t.Fatalf("units %d, want 600", st.Units)
	}
	if st.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	if st.ETA != 0 {
		t.Fatalf("finished run has ETA %v, want 0", st.ETA)
	}
	if !strings.Contains(st.String(), "6/6 reps") {
		t.Fatalf("stats string %q missing progress", st.String())
	}
}

func TestLogProgressWritesAndStops(t *testing.T) {
	e := New(1)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	stop := e.LogProgress(5*time.Millisecond, w)
	time.Sleep(40 * time.Millisecond)
	stop()
	stop() // idempotent
	w.Close()
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	if n == 0 {
		t.Fatal("progress logger wrote nothing")
	}
	if !strings.Contains(string(buf[:n]), "runner:") {
		t.Fatalf("log output %q missing stats line", buf[:n])
	}
}

func TestRunSequentialJobsShareEngine(t *testing.T) {
	// Figures run many models against one engine; counters must aggregate.
	e := New(4)
	for j := 0; j < 3; j++ {
		if _, err := Run(context.Background(), e,
			Spec{ID: fmt.Sprintf("job-%d", j), Reps: 5, MasterSeed: 9}, echoJob); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Jobs != 3 || st.JobsDone != 3 || st.RepsDone != 15 || st.Units != 15 {
		t.Fatalf("aggregate stats wrong: %+v", st)
	}
}
