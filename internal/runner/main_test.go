package runner

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package on goroutine leaks: a cancelled sweep or a
// progress logger whose stop function is lost must not leave workers
// behind, or concurrently-running engines start sharing fate.
func TestMain(m *testing.M) { leakcheck.Main(m) }
