package runner

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// Stopping the progress logger must flush one final Stats line, so runs
// shorter than the log interval still report their totals.
func TestLogProgressFinalFlush(t *testing.T) {
	e := New(2)
	_, err := Run(context.Background(), e, Spec{ID: "flush", Reps: 3, MasterSeed: 1},
		func(ctx context.Context, r Rep) (int, error) {
			r.AddUnits(10)
			return r.Index, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// An hour-long interval guarantees the ticker never fires; any output
	// must come from the stop flush.
	stop := e.LogProgress(time.Hour, &buf)
	stop()
	out := buf.String()
	if !strings.Contains(out, "3/3 reps") {
		t.Errorf("stop did not flush a final stats line; got %q", out)
	}
	if !strings.Contains(out, "eta done") {
		t.Errorf("final line should read \"eta done\"; got %q", out)
	}
	// Idempotent: a second stop must not write again.
	n := buf.Len()
	stop()
	if buf.Len() != n {
		t.Error("second stop() wrote another line")
	}
}

// An engine that never ran anything must stay silent on stop — no noise
// from engines constructed but unused.
func TestLogProgressSilentWhenIdle(t *testing.T) {
	e := New(1)
	var buf bytes.Buffer
	stop := e.LogProgress(time.Hour, &buf)
	stop()
	if buf.Len() != 0 {
		t.Errorf("idle engine flushed %q on stop", buf.String())
	}
}

func TestStatsStringETA(t *testing.T) {
	done := Stats{RepsTotal: 60, RepsDone: 60, Elapsed: time.Minute}
	if s := done.String(); !strings.Contains(s, "eta done") {
		t.Errorf("completed stats = %q, want eta done", s)
	}
	running := Stats{RepsTotal: 60, RepsDone: 30, Elapsed: time.Minute, ETA: time.Minute}
	if s := running.String(); !strings.Contains(s, "eta 1m0s") {
		t.Errorf("in-flight stats = %q, want eta 1m0s", s)
	}
	fresh := Stats{RepsTotal: 60}
	if s := fresh.String(); !strings.Contains(s, "eta ?") {
		t.Errorf("fresh stats = %q, want eta ?", s)
	}
}

// The Stats view must read through to the registry-backed counters: an
// engine sharing a caller-supplied registry surfaces the same numbers on
// both APIs.
func TestStatsIsRegistryView(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := NewWithRegistry(2, reg)
	if e.Registry() != reg {
		t.Fatal("Registry() does not return the supplied registry")
	}
	_, err := Run(context.Background(), e, Spec{ID: "view", Reps: 5, MasterSeed: 9},
		func(ctx context.Context, r Rep) (int, error) {
			r.AddUnits(7)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.RepsDone != 5 || st.Units != 35 || st.JobsDone != 1 {
		t.Fatalf("stats = %+v, want 5 reps, 35 units, 1 job", st)
	}
	byName := map[string]int64{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = int64(s.Value)
	}
	if byName["runner_reps_done_total"] != st.RepsDone ||
		byName["runner_units_total"] != st.Units ||
		byName["runner_jobs_done_total"] != st.JobsDone {
		t.Errorf("registry snapshot %v disagrees with stats %+v", byName, st)
	}
}

// Two engines must not share counters unless they share a registry.
func TestEnginesIsolatedByDefault(t *testing.T) {
	a, b := New(1), New(1)
	_, err := Run(context.Background(), a, Spec{ID: "a", Reps: 2, MasterSeed: 1},
		func(ctx context.Context, r Rep) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.RepsDone != 0 || st.Jobs != 0 {
		t.Errorf("engine b saw engine a's work: %+v", st)
	}
}
