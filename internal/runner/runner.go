// Package runner is the experiment-orchestration engine: it fans the
// replications of a simulation job out over a bounded worker pool while
// guaranteeing that the results are bit-identical to a serial run.
//
// Three properties make parallel replications safe for the paper's
// statistics:
//
//  1. Deterministic seeding. The seed of replication i of a job is a
//     splitmix64 hash of (master seed, job ID, i) — a pure function, so
//     results do not depend on worker count or scheduling order.
//  2. Cancellation and fail-fast. Run observes its context and aborts all
//     in-flight replications as soon as one fails or the caller cancels.
//  3. Checkpointing. With a Checkpoint attached, every finished
//     replication is persisted keyed by (job fingerprint, rep index); an
//     interrupted full-scale run resumes instead of restarting.
//
// The engine's progress counters (jobs, replications done, work units such
// as simulated frames) are registry-backed telemetry metrics; Stats remains
// the snapshot view over them, and an optional periodic logger renders it.
// New engines record into a private registry so concurrently-running
// engines (e.g. in tests) stay independent; CLIs pass telemetry.Default via
// NewWithRegistry so the counters surface on the -telemetry endpoint and in
// run manifests.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/seed"
	"repro/internal/telemetry"
	"repro/internal/telemetry/prof"
	"repro/internal/trace"
)

// Spec identifies one job: a batch of independent replications of the same
// experiment configuration.
type Spec struct {
	// ID names the job and enters the per-replication seed derivation —
	// two jobs with different IDs draw disjoint randomness from the same
	// master seed. It should be stable but need not encode every
	// parameter.
	ID string
	// Reps is the number of replications (the paper runs 60).
	Reps int
	// MasterSeed is the experiment's master seed. Replication i runs with
	// seed.DeriveString(MasterSeed, ID, i).
	MasterSeed int64
	// Fingerprint keys checkpoint entries. It must change whenever any
	// parameter that affects results changes (model, frames, N, c,
	// buffers, seed, ...); stale entries would otherwise be replayed into
	// a different experiment. Empty means "ID + MasterSeed + Reps".
	Fingerprint string
}

func (s Spec) fingerprint() string {
	fp := s.Fingerprint
	if fp == "" {
		fp = s.ID
	}
	return fmt.Sprintf("%s|seed=%d|reps=%d", fp, s.MasterSeed, s.Reps)
}

// Rep hands one replication its identity and a progress hook.
type Rep struct {
	// Index is the replication number in [0, Spec.Reps).
	Index int
	// Seed is the deterministically derived replication seed.
	Seed int64
	eng  *Engine
}

// AddUnits reports completed work units (e.g. simulated frames) to the
// engine's progress counters. Safe to call from any goroutine; a nil
// engine (zero Rep) is a no-op so job functions can be tested directly.
func (r Rep) AddUnits(n int64) {
	if r.eng != nil {
		r.eng.units.Add(n)
	}
}

// Engine owns the worker pool, progress counters and optional checkpoint
// shared by a sequence of jobs. The zero value is not usable; call New.
type Engine struct {
	workers    int
	checkpoint *Checkpoint

	start     time.Time
	startOnce sync.Once

	// Progress counters are registry-backed telemetry metrics (atomic
	// adds on the hot path, exposable over HTTP); Stats() is a view over
	// them.
	reg                 *telemetry.Registry
	jobs, jobsDone      *telemetry.Counter
	repsTotal, repsDone *telemetry.Counter
	repsResumed         *telemetry.Counter
	units               *telemetry.Counter

	logMu   sync.Mutex
	logStop chan struct{}
}

// New builds an engine with the given parallelism, recording progress into
// a fresh private telemetry registry. workers ≤ 0 selects
// runtime.NumCPU(); workers = 1 is the serial path.
func New(workers int) *Engine {
	return NewWithRegistry(workers, nil)
}

// NewWithRegistry builds an engine that records its progress counters in
// reg — pass telemetry.Default to surface them on a process's exposition
// endpoint and manifests. A nil reg gets a private registry. Two engines
// sharing one registry share (sum into) the same counters.
func NewWithRegistry(workers int, reg *telemetry.Registry) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Engine{
		workers:     workers,
		reg:         reg,
		jobs:        reg.Counter("runner_jobs_total"),
		jobsDone:    reg.Counter("runner_jobs_done_total"),
		repsTotal:   reg.Counter("runner_reps_total"),
		repsDone:    reg.Counter("runner_reps_done_total"),
		repsResumed: reg.Counter("runner_reps_resumed_total"),
		units:       reg.Counter("runner_units_total"),
	}
}

// Workers reports the engine's parallelism.
func (e *Engine) Workers() int { return e.workers }

// Registry returns the telemetry registry the engine records into.
func (e *Engine) Registry() *telemetry.Registry { return e.reg }

// SetCheckpoint attaches a checkpoint store; completed replications are
// persisted to it and replayed on the next run. Call before Run.
func (e *Engine) SetCheckpoint(c *Checkpoint) { e.checkpoint = c }

// Stats is a consistent-enough snapshot of the engine's progress counters
// (each counter is read atomically; the set is not fenced, which is fine
// for observability).
type Stats struct {
	Workers     int
	Jobs        int64         // jobs submitted
	JobsDone    int64         // jobs fully completed
	RepsTotal   int64         // replications submitted across all jobs
	RepsDone    int64         // replications finished (incl. resumed)
	RepsResumed int64         // replications satisfied from the checkpoint
	Units       int64         // work units reported via Rep.AddUnits
	Elapsed     time.Duration // since the first Run call
	ETA         time.Duration // Elapsed-scaled estimate; 0 until RepsDone>RepsResumed
}

func (s Stats) String() string {
	// A finished batch reads "done" — never "?" or a stale extrapolation.
	eta := "?"
	switch {
	case s.RepsTotal > 0 && s.RepsDone >= s.RepsTotal:
		eta = "done"
	case s.ETA > 0:
		eta = s.ETA.Round(time.Second).String()
	}
	return fmt.Sprintf("runner: %d/%d reps (%d resumed), %d jobs done, %d units, elapsed %s, eta %s",
		s.RepsDone, s.RepsTotal, s.RepsResumed, s.JobsDone, s.Units,
		s.Elapsed.Round(time.Second), eta)
}

// Stats returns a snapshot of the progress counters (a view over the
// engine's registry-backed telemetry metrics).
func (e *Engine) Stats() Stats {
	st := Stats{
		Workers:     e.workers,
		Jobs:        e.jobs.Value(),
		JobsDone:    e.jobsDone.Value(),
		RepsTotal:   e.repsTotal.Value(),
		RepsDone:    e.repsDone.Value(),
		RepsResumed: e.repsResumed.Value(),
		Units:       e.units.Value(),
	}
	if !e.start.IsZero() {
		st.Elapsed = time.Since(e.start)
	}
	// ETA from fresh (non-resumed) replications only: resumed reps are
	// free, so scaling elapsed time by them would be wildly optimistic.
	fresh := st.RepsDone - st.RepsResumed
	remaining := st.RepsTotal - st.RepsDone
	if fresh > 0 && remaining > 0 && st.Elapsed > 0 {
		st.ETA = time.Duration(float64(st.Elapsed) / float64(fresh) * float64(remaining))
	}
	return st
}

// LogProgress starts a goroutine that writes a Stats line to w every
// interval until the returned stop function is called. A nil w logs
// through telemetry.Log at info level, so progress obeys the CLIs'
// -quiet/-v flags like every other human-readable line. Stopping flushes
// one final Stats line (when any work ran) so runs shorter than the
// interval still report their totals instead of finishing silently.
func (e *Engine) LogProgress(interval time.Duration, w io.Writer) (stop func()) {
	if w == nil {
		w = telemetry.Log.Writer(telemetry.LevelInfo)
	}
	e.logMu.Lock()
	defer e.logMu.Unlock()
	if e.logStop != nil {
		return func() {} // already logging
	}
	done := make(chan struct{})
	e.logStop = done
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, e.Stats().String())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			e.logMu.Lock()
			e.logStop = nil
			e.logMu.Unlock()
			if st := e.Stats(); st.RepsTotal > 0 {
				fmt.Fprintln(w, st.String())
			}
		})
	}
}

// Run executes spec.Reps replications of fn on the engine's worker pool
// and returns their results ordered by replication index. fn must be a
// pure function of (ctx, rep) — in particular all randomness must come
// from rep.Seed — which makes the output independent of worker count.
//
// The first error cancels every other replication and is returned; a
// cancelled context returns context.Cause(ctx). With a checkpoint
// attached, results of type T must round-trip through encoding/json;
// previously completed replications are restored without re-running fn.
func Run[T any](ctx context.Context, e *Engine, spec Spec, fn func(ctx context.Context, r Rep) (T, error)) ([]T, error) {
	if e == nil {
		return nil, fmt.Errorf("runner: nil engine")
	}
	if spec.Reps < 1 {
		return nil, fmt.Errorf("runner: job %q reps = %d must be ≥ 1", spec.ID, spec.Reps)
	}
	if fn == nil {
		return nil, fmt.Errorf("runner: job %q has nil function", spec.ID)
	}
	e.startOnce.Do(func() { e.start = time.Now() })
	e.jobs.Add(1)
	e.repsTotal.Add(int64(spec.Reps))

	results := make([]T, spec.Reps)
	fp := spec.fingerprint()

	// Restore checkpointed replications and collect the rest.
	pending := make([]int, 0, spec.Reps)
	for i := 0; i < spec.Reps; i++ {
		if e.checkpoint != nil {
			ok, err := e.checkpoint.lookup(repKey(fp, i), &results[i])
			if err != nil {
				return nil, fmt.Errorf("runner: job %q rep %d: corrupt checkpoint entry: %w", spec.ID, i, err)
			}
			if ok {
				e.repsResumed.Add(1)
				e.repsDone.Add(1)
				continue
			}
		}
		pending = append(pending, i)
	}

	if len(pending) > 0 {
		ctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)

		workers := e.workers
		if workers > len(pending) {
			workers = len(pending)
		}
		idxCh := make(chan int)
		var wg sync.WaitGroup
		var firstErr atomic.Pointer[error]
		fail := func(err error) {
			if firstErr.CompareAndSwap(nil, &err) {
				cancel(err)
			}
		}
		// Each replication runs under a child span of whatever span the
		// caller carried in ctx, placed on the worker's own trace lane so
		// concurrent replications render side by side. Spans are
		// observational — seeds are derived exactly as before.
		parentSpan := trace.FromContext(ctx)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				// Per-lane progress surfaces worker balance on the flight
				// recorder: a lane whose counter stalls while siblings
				// advance is a starved or wedged worker. The handle is
				// fetched once per worker, not per replication.
				laneStr := strconv.Itoa(lane)
				laneDone := e.reg.Counter("runner_lane_reps_done_total",
					telemetry.L("lane", laneStr))
				// The same lane string labels the worker's CPU samples:
				// every replication runs under prof.Do, so profiles
				// attribute hot paths to the coordinates stacked on ctx by
				// the drivers (figure, model, sweep point) plus this lane.
				laneLabels := prof.Labels{Lane: laneStr}
				for i := range idxCh {
					if ctx.Err() != nil {
						return
					}
					rep := Rep{
						Index: i,
						Seed:  seed.DeriveString(spec.MasterSeed, spec.ID, uint64(i)),
						eng:   e,
					}
					sp := parentSpan.Child("replication",
						trace.Int("rep", i), trace.Int64("seed", rep.Seed)).OnLane(lane)
					var res T
					var err error
					prof.Do(trace.ContextWith(ctx, sp), laneLabels, func(repCtx context.Context) {
						res, err = fn(repCtx, rep)
					})
					sp.End()
					if err != nil {
						fail(fmt.Errorf("runner: job %q rep %d: %w", spec.ID, i, err))
						return
					}
					results[i] = res
					e.repsDone.Add(1)
					laneDone.Add(1)
					if e.checkpoint != nil {
						if err := e.checkpoint.put(repKey(fp, i), res); err != nil {
							fail(fmt.Errorf("runner: job %q rep %d: checkpoint: %w", spec.ID, i, err))
							return
						}
					}
				}
			}(w + 1)
		}
	feed:
		for _, i := range pending {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idxCh)
		wg.Wait()

		if errp := firstErr.Load(); errp != nil {
			return nil, *errp
		}
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
	}

	e.jobsDone.Add(1)
	return results, nil
}

func repKey(fingerprint string, rep int) string {
	// The fingerprint is hashed so checkpoint keys stay short and opaque
	// regardless of how much configuration the caller encodes in it.
	return fmt.Sprintf("%016x:%d", hashString(fingerprint), rep)
}

func hashString(s string) uint64 {
	// FNV-1a, finalized through the splitmix64 mixer for avalanche.
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return seed.Mix(h)
}
