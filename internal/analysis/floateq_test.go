package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.FloatEq,
		"fix/floateq", // flags exact comparison, accepts zero sentinels and waiver
	)
}
