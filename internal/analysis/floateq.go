package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. After any
// arithmetic, exact float equality encodes an accident of rounding; the
// solver and statistics layers must compare against tolerances (or
// math.Abs(a-b) <= eps). Two escapes are deliberate: comparison against
// a literal zero (a well-defined sentinel this codebase uses for "unset"
// or "mass absent"), and an explicit //lint:floateq waiver with a
// justification, e.g. for exactness proofs on dyadic values.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on float operands unless one side is a literal zero " +
		"or the line carries a //lint:floateq waiver",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.TypesInfo.Types[bin.X]
			yt, yok := pass.TypesInfo.Types[bin.Y]
			if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			if isZeroConst(xt) || isZeroConst(yt) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"float %s comparison; compare against a tolerance (or waive with //lint:floateq <why> if exactness is guaranteed)",
				bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether the operand is a compile-time constant
// equal to zero (0, 0.0, -0.0, a zero-valued named constant, …).
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}
