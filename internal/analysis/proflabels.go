package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// profOwner is the only package tree allowed to touch runtime/pprof's
// goroutine-label API directly. Everyone else attaches labels through
// its typed wrapper (prof.Do / prof.WithLabels take a Labels struct), so
// the set of label keys that can ever reach a profile is closed at
// compile time.
const profOwner = "internal/telemetry/prof"

// profLabelKeys is the fixed label key set, mirroring prof.Keys in
// internal/telemetry/prof. Profiles aggregate across runs and tools;
// an ad-hoc key would fragment attribution (cmd/profdiff's labelled-CPU
// floor counts only these keys), so a literal key outside this set is a
// finding even inside the owner package.
var profLabelKeys = map[string]bool{
	"figure":      true,
	"sweep_point": true,
	"model":       true,
	"path":        true,
	"lane":        true,
}

// profLabelFuncs is the runtime/pprof goroutine-label surface the owner
// wraps: constructors, appliers and readers alike, so no package can
// even observe labels without going through internal/telemetry/prof.
var profLabelFuncs = map[string]bool{
	"Do":                 true,
	"WithLabels":         true,
	"Labels":             true,
	"Label":              true,
	"ForLabels":          true,
	"SetGoroutineLabels": true,
}

// ProfLabels enforces the two halves of the label-attribution contract:
// runtime/pprof's label API is called only inside internal/telemetry/prof,
// and every constant label key passed to pprof.Labels is one of the five
// fixed keys (figure, sweep_point, model, path, lane).
var ProfLabels = &Analyzer{
	Name: "proflabels",
	Doc: "flags runtime/pprof label-API calls outside internal/telemetry/prof and " +
		"pprof.Labels keys outside the fixed set figure/sweep_point/model/path/lane — " +
		"ad-hoc labels fragment profile attribution",
	Run: runProfLabels,
}

func runProfLabels(pass *Pass) error {
	owner := pathAllowed(pass.RelPath, profOwner)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(pass.TypesInfo, call)
			if pkg != "runtime/pprof" || !profLabelFuncs[name] {
				return true
			}
			if !owner {
				pass.Reportf(call.Pos(),
					"pprof.%s called outside %s; attach labels through the prof wrapper so keys stay in the fixed set",
					name, profOwner)
			}
			if name == "Labels" {
				checkProfLabelKeys(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkProfLabelKeys validates the key positions (even indices) of a
// pprof.Labels(k, v, ...) call. Only compile-time-constant keys are
// checkable; the owner's pprof.Labels(pairs...) spread builds its pairs
// from the named Key* constants, which the typed Labels struct already
// confines to the fixed set.
func checkProfLabelKeys(pass *Pass, call *ast.CallExpr) {
	for i := 0; i < len(call.Args); i += 2 {
		tv, ok := pass.TypesInfo.Types[call.Args[i]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		key := constant.StringVal(tv.Value)
		if !profLabelKeys[key] {
			pass.Reportf(call.Args[i].Pos(),
				"pprof label key %q is not in the fixed key set (%s); extend prof.Keys deliberately instead of inventing keys inline",
				key, strings.Join([]string{"figure", "sweep_point", "model", "path", "lane"}, ", "))
		}
	}
}
