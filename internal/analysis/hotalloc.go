package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// HotAlloc is the escape/allocation budget gate. For every package in
// the module's declared hot-path set it diffs the compiler's current
// heap-escape sites (via `go build -gcflags=-m=2`, cache-replayed by the
// go build cache) against the committed budget in
// results/golden/escape_budget.json. A new escape message in a hot
// function — or more instances of a budgeted one — is a finding carrying
// the compiler's own flow explanation, so an allocation regression in
// the mux/fgn/fbndp inner loops fails lint BEFORE anyone runs a
// benchmark. Escapes that disappear are silently fine: the budget is an
// upper bound, and shrinking it is a follow-up `repolint
// -write-escape-budget`, not a blocker.
//
// Modules without a committed budget (fixture modules that don't opt in,
// fresh checkouts mid-bootstrap) skip the gate entirely.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "diffs heap-escape sites in the declared hot-path packages against the committed " +
		"results/golden/escape_budget.json; a new escape in a hot function is a finding " +
		"with the compiler's -m=2 explanation inline",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	if pass.ModuleDir == "" {
		return nil // standalone pass outside a module walk
	}
	budget, err := LoadEscapeBudget(pass.ModuleDir)
	if err != nil {
		return err
	}
	if budget == nil {
		return nil
	}
	hot := false
	for _, p := range budget.HotPaths {
		if pass.RelPath == p {
			hot = true
			break
		}
	}
	if !hot {
		return nil
	}
	escapes, err := HotPathEscapes(pass.ModuleDir, budget.HotPaths)
	if err != nil {
		return err
	}

	allowed := budget.Budgets[pass.RelPath]
	// Count current sites per (function, message) before reporting, so
	// the Nth instance of a budgeted message is flagged, not the first.
	type bucket struct{ fn, msg string }
	counts := make(map[bucket]int)
	type attributed struct {
		site EscapeSite
		fn   string
	}
	var sites []attributed
	for _, s := range escapes[pass.RelPath] {
		fn := enclosingFuncIn(pass.Fset, pass.Files, s)
		sites = append(sites, attributed{s, fn})
		counts[bucket{fn, s.Message}]++
	}
	for _, a := range sites {
		b := bucket{a.fn, a.site.Message}
		if counts[b] <= allowed[a.fn][a.site.Message] {
			continue
		}
		detail := ""
		if n := len(a.site.Detail); n > 0 {
			if n > 3 {
				detail = " [" + strings.Join(a.site.Detail[:3], "; ") + "; …]"
			} else {
				detail = " [" + strings.Join(a.site.Detail, "; ") + "]"
			}
		}
		over := counts[b] - allowed[a.fn][a.site.Message]
		// Report under the fileset's absolute filename so //lint:hotalloc
		// waivers (keyed by parsed-file positions) apply.
		pass.ReportPosf(token.Position{Filename: absSiteFile(pass, a.site), Line: a.site.Line, Column: a.site.Col},
			"hot-path escape not in budget: %s in %s (%d over budget)%s — eliminate the allocation or re-baseline with repolint -write-escape-budget",
			a.site.Message, a.fn, over, detail)
		// Report each offending bucket once; further instances add noise.
		counts[b] = allowed[a.fn][a.site.Message]
	}
	return nil
}

// absSiteFile maps a compiler-reported module-relative path back to the
// matching parsed file's name, so diagnostics and waivers share one
// coordinate system.
func absSiteFile(pass *Pass, s EscapeSite) string {
	for _, f := range pass.Files {
		if tf := pass.Fset.File(f.Pos()); tf != nil && strings.HasSuffix(slashPath(tf.Name()), slashPath(s.File)) {
			return tf.Name()
		}
	}
	return s.File
}

// enclosingFuncIn names the top-level function declaration covering the
// escape site's line in the given files, or "(package scope)" for
// package-level initializers. Closure escapes attribute to the function
// that lexically contains the closure — the budget is per declared
// function, which is the unit a reviewer reasons about.
func enclosingFuncIn(fset *token.FileSet, files []*ast.File, s EscapeSite) string {
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil || !strings.HasSuffix(slashPath(tf.Name()), slashPath(s.File)) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			start := fset.Position(fd.Pos()).Line
			end := fset.Position(fd.End()).Line
			if s.Line >= start && s.Line <= end {
				return funcDisplayName(fd)
			}
		}
	}
	return "(package scope)"
}

// slashPath normalizes separators for suffix comparison between
// compiler-reported (module-relative) and fileset (absolute) paths.
func slashPath(p string) string {
	return strings.ReplaceAll(p, "\\", "/")
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	writeRecvType(&b, recv)
	return fmt.Sprintf("(%s).%s", b.String(), fd.Name.Name)
}

func writeRecvType(b *strings.Builder, e ast.Expr) {
	switch t := e.(type) {
	case *ast.StarExpr:
		b.WriteByte('*')
		writeRecvType(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr: // generic receiver
		writeRecvType(b, t.X)
	case *ast.IndexListExpr:
		writeRecvType(b, t.X)
	default:
		b.WriteString("?")
	}
}
