package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.HotAlloc,
		"fix/hot",      // new escape flagged, budgeted and waived ones silent
		"fix/seedhelp", // not a hot path: no budget applies, stays silent
	)
}

func TestParseEscapes(t *testing.T) {
	const out = `# brk/hot
hot/hot.go:8:6: can inline Grow with cost 18 as: func(int) []int64 { buf := make([]int64, n); for loop; return buf }
hot/hot.go:9:13: make([]int64, n) escapes to heap:
hot/hot.go:9:13:   flow: {heap} = &{storage for make([]int64, n)}:
hot/hot.go:9:13:     from make([]int64, n) (non-constant size) at hot/hot.go:9:13
hot/hot.go:9:13: make([]int64, n) escapes to heap
hot/hot.go:14:7: b does not escape
hot/hot.go:20:6: moved to heap: buf
hot/hot.go:3:6: leaking param: p to result ~r0 level=0
`
	sites := analysis.ParseEscapes(out, "/mod")
	if len(sites) != 2 {
		t.Fatalf("ParseEscapes found %d sites, want 2: %+v", len(sites), sites)
	}
	esc := sites[0]
	if esc.File != "hot/hot.go" || esc.Line != 9 || esc.Col != 13 {
		t.Errorf("site position = %s:%d:%d, want hot/hot.go:9:13", esc.File, esc.Line, esc.Col)
	}
	if esc.Message != "make([]int64, n) escapes to heap" {
		t.Errorf("message = %q (trailing colon must be stripped, duplicate deduped)", esc.Message)
	}
	if len(esc.Detail) != 2 || !strings.HasPrefix(esc.Detail[0], "flow:") || !strings.HasPrefix(esc.Detail[1], "from ") {
		t.Errorf("detail = %q, want the two -m=2 flow lines", esc.Detail)
	}
	if moved := sites[1]; moved.Message != "moved to heap: buf" || moved.Line != 20 {
		t.Errorf("moved-to-heap site = %+v", moved)
	}
}

func TestBuildEscapeBudgetFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("go build invocation skipped in -short")
	}
	budget, err := analysis.BuildEscapeBudget(fixtureModule(t), []string{"hot"})
	if err != nil {
		t.Fatal(err)
	}
	fns := budget.Budgets["hot"]
	if len(fns) == 0 {
		t.Fatal("no escape sites attributed in fixture hot package")
	}
	for _, fn := range []string{"Budgeted", "Unbudgeted", "Waived"} {
		if len(fns[fn]) == 0 {
			t.Errorf("no escapes attributed to %s: %+v", fn, fns)
		}
	}
}
