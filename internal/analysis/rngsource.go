package analysis

import (
	"go/ast"
)

// randxPath is the only package allowed to construct RNGs or call the
// global rand functions; every stochastic path derives a child seed with
// internal/seed and hands it to randx.NewRand.
const randxPath = "internal/randx"

// RNGSource enforces the single-construction-point rule for randomness.
// Calling any function of math/rand (or math/rand/v2) — rand.New,
// rand.NewSource, and especially the global-state draws like rand.Intn —
// outside internal/randx bypasses the splitmix64 seeding discipline and
// makes replications depend on process-global state. Methods on a
// *rand.Rand value are fine: the value itself was necessarily built by
// randx.NewRand from a derived seed.
var RNGSource = &Analyzer{
	Name: "rngsource",
	Doc: "flags math/rand package-level calls (construction and global draws) " +
		"outside internal/randx, the single RNG construction point",
	Run: runRNGSource,
}

func runRNGSource(pass *Pass) error {
	if pathAllowed(pass.RelPath, randxPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(pass.TypesInfo, call)
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			switch name {
			case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
				pass.Reportf(call.Pos(),
					"rand.%s constructs an RNG outside %s; derive a seed with internal/seed and call randx.NewRand",
					name, randxPath)
			default:
				pass.Reportf(call.Pos(),
					"rand.%s draws from the global RNG; replications must draw only from a *rand.Rand built by randx.NewRand",
					name)
			}
			return true
		})
	}
	return nil
}
