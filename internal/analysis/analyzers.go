package analysis

import "sort"

// registry is the single registration point for the analyzer suite, in
// the order cmd/repolint runs it. Adding an analyzer here is the ONLY
// step needed for it to be enforced everywhere: the cmd/repolint
// multichecker, the CI lint job, the TestRepositoryIsClean gate, waiver
// name validation and the -list output all consume this slice.
var registry = []*Analyzer{
	RNGSource,
	WallTime,
	MapOrder,
	PrintGuard,
	FloatEq,
	PprofImport,
	ProfLabels,
	SeedFlow,
	HotAlloc,
}

// All returns the full analyzer suite in registration order.
func All() []*Analyzer {
	return append([]*Analyzer(nil), registry...)
}

// ByName resolves registered analyzers from a list of names (as given to
// repolint -run), or reports the first unknown name.
func ByName(names ...string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(registry))
	for _, a := range registry {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, &UnknownAnalyzerError{Name: n}
		}
		out = append(out, a)
	}
	return out, nil
}

// UnknownAnalyzerError reports a name that resolves to no registered
// analyzer.
type UnknownAnalyzerError struct{ Name string }

func (e *UnknownAnalyzerError) Error() string {
	return "unknown analyzer " + e.Name + "; run repolint -list for the registered suite"
}

// Names returns the set of registered analyzer names, the vocabulary
// //lint: waivers may reference.
func Names() map[string]bool {
	names := make(map[string]bool, len(registry))
	for _, a := range registry {
		names[a.Name] = true
	}
	return names
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
