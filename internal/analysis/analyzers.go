package analysis

// All returns the full analyzer suite in the order cmd/repolint runs it.
// Adding an analyzer here is all that is needed for it to be enforced by
// the multichecker, the CI lint job and the repolint registration test.
func All() []*Analyzer {
	return []*Analyzer{
		RNGSource,
		WallTime,
		MapOrder,
		PrintGuard,
		FloatEq,
		PprofImport,
		ProfLabels,
	}
}
