package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestRNGSource(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.RNGSource,
		"fix/rng",            // construction and global draws flagged
		"fix/internal/randx", // the construction point itself is exempt
	)
}
