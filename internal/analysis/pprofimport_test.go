package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestPprofImport(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.PprofImport,
		"fix/pprof",                   // stray imports flagged
		"fix/internal/telemetry",      // the exposition package is exempt
		"fix/internal/telemetry/prof", // the collector may link runtime/pprof
	)
}
