package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.MapOrder,
		"fix/maporder", // flags append/print/RNG bodies, accepts sort idiom and waiver
	)
}
