package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestPrintGuard(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.PrintGuard,
		"fix/print",              // library prints flagged, injected writer accepted
		"fix/internal/telemetry", // the logger package is exempt
		"fix/cmd/tool",           // CLIs own their streams
	)
}
