package analysis

import (
	"strconv"
)

// restrictedImports maps each profiling import to the single package
// tree allowed to link it, with the hazard the restriction prevents.
//
//   - net/http/pprof: its import side effect registers handlers on
//     http.DefaultServeMux; profiling endpoints are exposed exclusively
//     through telemetry's opt-in listener.
//   - runtime/pprof: the continuous-profiling collector in
//     internal/telemetry/prof owns the process-wide CPU profiler
//     (StartCPUProfile fails if a second caller starts it) and the
//     goroutine-label discipline (see the proflabels analyzer); ad-hoc
//     profile captures elsewhere would race the collector's windows.
var restrictedImports = []struct {
	path  string
	owner string
	why   string
}{
	{"net/http/pprof", "internal/telemetry", "profiling is exposed only via the telemetry listener"},
	{"runtime/pprof", "internal/telemetry/prof", "the prof collector owns the process-wide profiler and the label key set"},
}

// PprofImport is the analyzer form of the boundary previously enforced
// by internal/telemetry/lint_test.go's go/parser walk (and a CI grep):
// importing net/http/pprof anywhere else would silently mount profiling
// endpoints on any default-mux server the process starts, and importing
// runtime/pprof anywhere else would let ad-hoc captures fight the
// continuous collector over the single CPU profiler.
var PprofImport = &Analyzer{
	Name: "pprofimport",
	Doc: "flags net/http/pprof imports outside internal/telemetry and runtime/pprof " +
		"imports outside internal/telemetry/prof — profiling is linked only through its owning package",
	Run: runPprofImport,
}

func runPprofImport(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, r := range restrictedImports {
				if path == r.path && !pathAllowed(pass.RelPath, r.owner) {
					pass.Reportf(imp.Pos(), "%s imported outside %s; %s", r.path, r.owner, r.why)
				}
			}
		}
	}
	return nil
}
