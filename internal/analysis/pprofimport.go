package analysis

import (
	"strconv"
)

// pprofOwner is the only package allowed to link net/http/pprof, whose
// import side effect registers handlers on http.DefaultServeMux.
// Profiling is exposed exclusively through telemetry's opt-in listener.
const pprofOwner = "internal/telemetry"

// PprofImport is the analyzer form of the boundary previously enforced
// by internal/telemetry/lint_test.go's go/parser walk (and a CI grep):
// importing net/http/pprof anywhere else would silently mount profiling
// endpoints on any default-mux server the process starts.
var PprofImport = &Analyzer{
	Name: "pprofimport",
	Doc:  "flags net/http/pprof imports outside internal/telemetry (import side effect mounts handlers on http.DefaultServeMux)",
	Run:  runPprofImport,
}

func runPprofImport(pass *Pass) error {
	if pathAllowed(pass.RelPath, pprofOwner) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "net/http/pprof" {
				pass.Reportf(imp.Pos(), "net/http/pprof imported outside %s; profiling is exposed only via the telemetry listener", pprofOwner)
			}
		}
	}
	return nil
}
