package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// seedPkgSuffix identifies the seed-derivation package in both the real
// module ("repro/internal/seed") and fixture modules ("fix/internal/seed").
const seedPkgSuffix = "internal/seed"

// randxPkgSuffix identifies the RNG construction point; randx.NewRand is
// both a seedflow sink (its argument must be seed-derived) and a taint
// propagator (a *rand.Rand built from a derived seed yields derived
// draws, so Composite's child seeds via rng.Int63() stay tracked).
const randxPkgSuffix = "internal/randx"

// SeedFlow is the seed-provenance taint analyzer: an intra-procedural
// dataflow analysis over the typed AST proving that every seed handed to
// randx.NewRand or a generator constructor (any 1-argument NewGenerator
// method taking an int64) is data-flow-reachable from a sanctioned
// entropy root. Sanctioned roots are:
//
//   - a call into internal/seed (seed.Derive / DeriveString / Children),
//   - a parameter of the enclosing function (the caller owns the seed's
//     provenance; since every function is checked, the obligation chains
//     up to a derivation or a flag),
//   - a struct field whose name ends in "Seed" (Config.Seed,
//     Spec.MasterSeed — the documented master-seed carriers),
//   - a flag-package read (the CLI master seed enters the program there),
//   - values reached FROM such roots through assignments, arithmetic,
//     conversions, indexing, ranging, field access, method calls on
//     seed-derived receivers (rng.Int63()), and same- or cross-package
//     helpers whose bodies the analyzer can see (mux.ChildSeeds).
//
// Anything else — above all an integer constant, the classic "quick
// test" seed — is an untracked entropy source: it silently decouples a
// generator from the splitmix64 derivation tree, so two replications can
// share a stream (correlated results) or a refactor can freeze a path
// that looks randomized. The diagnostic reports the offending flow path
// step by step so the break in the chain is visible without re-deriving
// it by hand. Constant seeds remain legal in examples/ (pedagogical
// determinism) and _test.go files (which the loader never lints).
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: "flags randx.NewRand/NewGenerator seed arguments that are not data-flow-reachable " +
		"from internal/seed, a caller-supplied parameter, a *Seed field or a flag — " +
		"untracked entropy sources break the replay-determinism contract",
	Run: runSeedFlow,
}

func runSeedFlow(pass *Pass) error {
	// Examples trade derivation discipline for pedagogy: fixed literal
	// seeds keep their output stable and copy-pasteable.
	if pathAllowed(pass.RelPath, "examples") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSeedFlowFunc(pass, fd)
		}
	}
	return nil
}

// prov is the provenance verdict for one expression: either derived
// (reachable from a sanctioned seed root) or not, with the flow path
// that led to the verdict, sink-outward.
type prov struct {
	derived bool
	steps   []string
}

func derivedProv(step string) prov  { return prov{derived: true, steps: []string{step}} }
func unrootedProv(step string) prov { return prov{steps: []string{step}} }

// push prepends a hop to the flow path, bounding its length so
// diagnostics stay one readable line.
func (p prov) push(step string) prov {
	const maxSteps = 8
	steps := append([]string{step}, p.steps...)
	if len(steps) > maxSteps {
		steps = append(steps[:maxSteps], "…")
	}
	return prov{derived: p.derived, steps: steps}
}

func (p prov) path() string { return strings.Join(p.steps, " ← ") }

// seedAssign is one reaching definition of a local variable.
type seedAssign struct {
	rhs  ast.Expr // nil for zero-value declarations
	idx  int      // result index for tuple assignments, -1 for direct
	pos  token.Pos
	elem bool // rhs is ranged over; the variable holds an element
	key  bool // range key/counter: an index, never a seed
}

// seedTracer evaluates seed provenance inside one function of one
// package. Cross-function hops build a fresh tracer for the callee with
// the caller's argument provenances bound to its parameters.
type seedTracer struct {
	pkg     *tracePkg
	bind    map[types.Object]prov // parameters (and inter-proc bindings)
	assigns map[types.Object][]seedAssign
	visit   map[types.Object]bool // cycle guard over variables
	calls   map[string]bool       // cycle guard over function hops
	depth   int
}

// tracePkg is the per-package view a tracer reads: the syntax, type info
// and lazily-built package-level initializer index.
type tracePkg struct {
	fset     *token.FileSet
	files    []*ast.File
	info     *types.Info
	path     string
	resolver Resolver
	varInits map[types.Object]ast.Expr
}

func newTracePkg(fset *token.FileSet, files []*ast.File, info *types.Info, path string, r Resolver) *tracePkg {
	return &tracePkg{fset: fset, files: files, info: info, path: path, resolver: r}
}

// varInit returns the package-level initializer expression for obj, so a
// CLI's `var seedFlag = flag.Int64(...)` traces through to the flag read.
func (tp *tracePkg) varInit(obj types.Object) ast.Expr {
	if tp.varInits == nil {
		tp.varInits = make(map[types.Object]ast.Expr)
		for _, f := range tp.files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						if o := tp.info.Defs[name]; o != nil {
							tp.varInits[o] = vs.Values[i]
						}
					}
				}
			}
		}
	}
	return tp.varInits[obj]
}

func (tp *tracePkg) posStr(pos token.Pos) string {
	p := tp.fset.Position(pos)
	return fmt.Sprintf("%s:%d", trimPathToBase(p.Filename), p.Line)
}

func trimPathToBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// shortExpr renders an expression for flow-path steps, truncated so one
// pathological composite literal cannot swallow the diagnostic.
func shortExpr(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}

// checkSeedFlowFunc scans one function (closures included) for seed
// sinks and traces each sink argument.
func checkSeedFlowFunc(pass *Pass, fd *ast.FuncDecl) {
	tp := newTracePkg(pass.Fset, pass.Files, pass.TypesInfo, pass.Pkg.Path(), pass.Resolver)
	t := newSeedTracer(tp, fd, nil)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink, arg := seedSink(pass.TypesInfo, call)
		if sink == "" {
			return true
		}
		if p := t.trace(arg); !p.derived {
			pass.Reportf(arg.Pos(),
				"seed argument to %s is not data-flow-reachable from %s: %s — derive it with seed.Derive*/a Seed parameter or field (constants are allowed only in _test.go and examples/)",
				sink, seedPkgSuffix, p.path())
		}
		return true
	})
}

// seedSink classifies a call as a seed consumer: randx.NewRand, or any
// single-int64-argument method or function named NewGenerator (the
// traffic.Model constructor contract).
func seedSink(info *types.Info, call *ast.CallExpr) (label string, arg ast.Expr) {
	if len(call.Args) != 1 {
		return "", nil
	}
	if pkg, name := pkgFunc(info, call); name == "NewRand" && strings.HasSuffix(pkg, randxPkgSuffix) {
		return "randx.NewRand", call.Args[0]
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewGenerator" {
		return "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return "", nil
	}
	if b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Int64 {
		return "", nil
	}
	return shortExpr(sel.X) + ".NewGenerator", call.Args[0]
}

// newSeedTracer builds a tracer for fn with its parameters (receiver
// included) bound. A nil bind means top-level analysis: parameters are
// trusted roots. Inter-procedural hops pass explicit bindings instead.
func newSeedTracer(tp *tracePkg, fn *ast.FuncDecl, bind map[types.Object]prov) *seedTracer {
	t := &seedTracer{
		pkg:     tp,
		bind:    make(map[types.Object]prov),
		assigns: make(map[types.Object][]seedAssign),
		visit:   make(map[types.Object]bool),
		calls:   make(map[string]bool),
	}
	bindParams := func(fl *ast.FieldList, provFor func(name string) (prov, bool)) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := tp.info.Defs[name]
				if obj == nil {
					continue
				}
				if p, ok := provFor(name.Name); ok {
					t.bind[obj] = p
				}
			}
		}
	}
	trusted := func(name string) (prov, bool) {
		return derivedProv(fmt.Sprintf("parameter %s (caller-supplied)", name)), true
	}
	if bind == nil {
		bindParams(fn.Recv, trusted)
		bindParams(fn.Type.Params, trusted)
	} else {
		for obj, p := range bind {
			t.bind[obj] = p
		}
	}
	// Closure parameters are trusted like any other parameter.
	collectClosureParams(tp, fn.Body, t.bind)
	collectSeedAssigns(tp, fn.Body, t.assigns)
	return t
}

func collectClosureParams(tp *tracePkg, body ast.Node, bind map[types.Object]prov) {
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok || fl.Type.Params == nil {
			return true
		}
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				if obj := tp.info.Defs[name]; obj != nil {
					bind[obj] = derivedProv(fmt.Sprintf("closure parameter %s", name.Name))
				}
			}
		}
		return true
	})
}

// collectSeedAssigns indexes every reaching definition of every local
// variable in body: plain and tuple assignments, var declarations
// (including zero-value ones) and range bindings.
func collectSeedAssigns(tp *tracePkg, body ast.Node, assigns map[types.Object][]seedAssign) {
	record := func(ident *ast.Ident, a seedAssign) {
		if ident == nil || ident.Name == "_" {
			return
		}
		obj := tp.info.Defs[ident]
		if obj == nil {
			obj = tp.info.Uses[ident]
		}
		if obj == nil {
			return
		}
		assigns[obj] = append(assigns[obj], a)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == len(s.Lhs) {
				for i, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, seedAssign{rhs: s.Rhs[i], idx: -1, pos: s.Pos()})
					}
				}
			} else if len(s.Rhs) == 1 {
				for i, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, seedAssign{rhs: s.Rhs[0], idx: i, pos: s.Pos()})
					}
				}
			}
		case *ast.ValueSpec:
			switch {
			case len(s.Values) == len(s.Names):
				for i, name := range s.Names {
					record(name, seedAssign{rhs: s.Values[i], idx: -1, pos: s.Pos()})
				}
			case len(s.Values) == 1:
				for i, name := range s.Names {
					record(name, seedAssign{rhs: s.Values[0], idx: i, pos: s.Pos()})
				}
			case len(s.Values) == 0:
				for _, name := range s.Names {
					record(name, seedAssign{rhs: nil, idx: -1, pos: s.Pos()})
				}
			}
		case *ast.RangeStmt:
			if id, ok := s.Key.(*ast.Ident); ok {
				record(id, seedAssign{rhs: s.X, idx: -1, pos: s.Pos(), key: true})
			}
			if id, ok := s.Value.(*ast.Ident); ok {
				record(id, seedAssign{rhs: s.X, idx: -1, pos: s.Pos(), elem: true})
			}
		}
		return true
	})
}

// trace computes the provenance of one expression.
func (t *seedTracer) trace(e ast.Expr) prov {
	// Compile-time constants (literals, named constants, folded
	// arithmetic) are the canonical untracked source.
	if tv, ok := t.pkg.info.Types[e]; ok && tv.Value != nil {
		return unrootedProv(fmt.Sprintf("constant %s", tv.Value))
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return t.trace(x.X)
	case *ast.Ident:
		return t.traceIdent(x)
	case *ast.CallExpr:
		return t.traceCall(x, 0)
	case *ast.SelectorExpr:
		return t.traceSelector(x)
	case *ast.IndexExpr:
		return t.trace(x.X).push(fmt.Sprintf("element %s", shortExpr(e)))
	case *ast.SliceExpr:
		return t.trace(x.X).push(fmt.Sprintf("slice %s", shortExpr(e)))
	case *ast.StarExpr:
		return t.trace(x.X).push(fmt.Sprintf("deref %s", shortExpr(e)))
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return unrootedProv(fmt.Sprintf("channel receive %s (provenance not trackable across channels)", shortExpr(e)))
		}
		return t.trace(x.X)
	case *ast.BinaryExpr:
		l, r := t.trace(x.X), t.trace(x.Y)
		if l.derived {
			return l.push(fmt.Sprintf("expression %s", shortExpr(e)))
		}
		if r.derived {
			return r.push(fmt.Sprintf("expression %s", shortExpr(e)))
		}
		// Report the non-constant side's chain if there is one.
		if len(r.steps) > 0 && strings.HasPrefix(l.steps[0], "constant") {
			return r.push(fmt.Sprintf("expression %s", shortExpr(e)))
		}
		return l.push(fmt.Sprintf("expression %s", shortExpr(e)))
	default:
		return unrootedProv(fmt.Sprintf("%s (not a trackable seed expression)", shortExpr(e)))
	}
}

// traceIdent resolves a name: bound parameter, local variable (join over
// its reaching definitions), or package-level variable (initializer).
func (t *seedTracer) traceIdent(id *ast.Ident) prov {
	obj := t.pkg.info.Uses[id]
	if obj == nil {
		obj = t.pkg.info.Defs[id]
	}
	if obj == nil {
		return unrootedProv(fmt.Sprintf("%s (unresolved)", id.Name))
	}
	return t.traceObj(obj, id.Name)
}

func (t *seedTracer) traceObj(obj types.Object, name string) prov {
	if p, ok := t.bind[obj]; ok {
		return p
	}
	if _, ok := obj.(*types.Var); !ok {
		return unrootedProv(fmt.Sprintf("%s (not a variable)", name))
	}
	if t.visit[obj] {
		return unrootedProv(fmt.Sprintf("%s (cyclic definition)", name))
	}
	t.visit[obj] = true
	defer delete(t.visit, obj)

	as := t.assigns[obj]
	if len(as) == 0 {
		if init := t.pkg.varInit(obj); init != nil {
			return t.trace(init).push(fmt.Sprintf("package variable %s", name))
		}
		return unrootedProv(fmt.Sprintf("%s (no visible definition)", name))
	}
	var fallback *prov
	for i := range as {
		p := t.traceAssign(&as[i], name)
		if p.derived {
			return p
		}
		if fallback == nil {
			fallback = &p
		}
	}
	return *fallback
}

func (t *seedTracer) traceAssign(a *seedAssign, name string) prov {
	hop := fmt.Sprintf("%s (%s)", name, t.pkg.posStr(a.pos))
	switch {
	case a.rhs == nil:
		return unrootedProv("zero value").push(hop)
	case a.key:
		// A range key is an index or counter: 0,1,2,… regardless of what
		// is ranged over. Using it as a seed is the additive-seeding bug
		// the derivation discipline exists to prevent.
		return unrootedProv(fmt.Sprintf("range index over %s", shortExpr(a.rhs))).push(hop)
	case a.elem:
		return t.trace(a.rhs).push(fmt.Sprintf("range element of %s", shortExpr(a.rhs))).push(hop)
	case a.idx >= 0:
		if call, ok := ast.Unparen(a.rhs).(*ast.CallExpr); ok {
			return t.traceCall(call, a.idx).push(hop)
		}
		return unrootedProv(fmt.Sprintf("tuple element %d of %s", a.idx, shortExpr(a.rhs))).push(hop)
	default:
		return t.trace(a.rhs).push(hop)
	}
}

// traceSelector handles qualified identifiers (pkg.Var) and field reads.
func (t *seedTracer) traceSelector(sel *ast.SelectorExpr) prov {
	// Qualified identifier: a variable or constant in another package.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := t.pkg.info.Uses[id].(*types.PkgName); isPkg {
			return unrootedProv(fmt.Sprintf("package-level %s (cross-package state is not a seed root)", shortExpr(sel)))
		}
	}
	name := sel.Sel.Name
	if strings.HasSuffix(name, "Seed") {
		return derivedProv(fmt.Sprintf("seed field %s", shortExpr(sel)))
	}
	base := t.trace(sel.X)
	return base.push(fmt.Sprintf("field %s", shortExpr(sel)))
}

// traceCall classifies a call's idx'th result.
func (t *seedTracer) traceCall(call *ast.CallExpr, idx int) prov {
	info := t.pkg.info
	// Type conversion: provenance passes through unchanged.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return t.trace(call.Args[0])
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return unrootedProv(fmt.Sprintf("builtin %s(...)", id.Name))
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		pkgPath := fn.Pkg().Path()
		switch {
		case strings.HasSuffix(pkgPath, seedPkgSuffix):
			return derivedProv(fmt.Sprintf("seed.%s(...)", fn.Name()))
		case pkgPath == "flag":
			return derivedProv(fmt.Sprintf("flag.%s (user-supplied master seed)", fn.Name()))
		case strings.HasSuffix(pkgPath, randxPkgSuffix) && fn.Name() == "NewRand" && len(call.Args) == 1:
			return t.trace(call.Args[0]).push("randx.NewRand(...)")
		}
	}
	// A method whose receiver is seed-derived yields seed-derived values:
	// rng.Int63() on a randx-built generator, cfg.ChildSeed() on a
	// caller-supplied config. This is the same trust boundary as
	// parameters — provenance, not cryptographic lineage.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && fn != nil && fn.Type().(*types.Signature).Recv() != nil {
		if recv := t.trace(sel.X); recv.derived {
			return recv.push(fmt.Sprintf("%s(...)", shortExpr(call.Fun)))
		}
		if recvPkg := fnRecvPkg(fn); recvPkg == "flag" {
			return derivedProv(fmt.Sprintf("%s (user-supplied master seed)", shortExpr(call.Fun)))
		}
	}
	// Last resort: follow the callee's body if it lives in this module.
	if p, ok := t.traceThroughBody(fn, call, idx); ok {
		return p
	}
	label := shortExpr(call.Fun)
	if fn != nil && fn.Pkg() != nil {
		label = fn.Pkg().Name() + "." + fn.Name()
	}
	return unrootedProv(fmt.Sprintf("result of %s (no seed derivation found)", label))
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func fnRecvPkg(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	tn := namedTypeName(sig.Recv().Type())
	if tn == nil || tn.Pkg() == nil {
		return ""
	}
	return tn.Pkg().Path()
}

func namedTypeName(t types.Type) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj()
		default:
			return nil
		}
	}
}

// traceThroughBody resolves a helper's declaration — in this package or,
// through the loader, any other package of the module — and evaluates
// its return expressions with the caller's argument provenances bound to
// its parameters. Depth- and cycle-guarded; returns ok=false when the
// body is out of reach (stdlib, interface method, func-valued variable).
func (t *seedTracer) traceThroughBody(fn *types.Func, call *ast.CallExpr, idx int) (prov, bool) {
	const maxDepth = 6
	if fn == nil || fn.Pkg() == nil || t.depth >= maxDepth {
		return prov{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return prov{}, false
	}
	recvName := ""
	if sig.Recv() != nil {
		tn := namedTypeName(sig.Recv().Type())
		if tn == nil {
			return prov{}, false
		}
		recvName = tn.Name()
	}
	key := fn.Pkg().Path() + "." + recvName + "." + fn.Name()
	if t.calls[key] {
		return unrootedProv(fmt.Sprintf("recursive call to %s", fn.Name())), true
	}

	calleePkg := t.pkg
	if fn.Pkg().Path() != t.pkg.path {
		if t.pkg.resolver == nil {
			return prov{}, false
		}
		loaded, err := t.pkg.resolver.Load(fn.Pkg().Path())
		if err != nil || loaded == nil {
			return prov{}, false
		}
		calleePkg = newTracePkg(t.pkg.fset, loaded.Files, loaded.Info, loaded.Path, t.pkg.resolver)
	}
	fd := findFuncDecl(calleePkg, fn.Name(), recvName)
	if fd == nil || fd.Body == nil {
		return prov{}, false
	}

	// Bind callee parameters to the provenance of the matching caller
	// arguments, evaluated in the CALLER's context.
	bind := make(map[types.Object]prov)
	if fd.Recv != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			bindFieldList(calleePkg, fd.Recv, func(int) prov { return t.trace(sel.X) }, bind)
		}
	}
	argProv := func(i int) prov {
		if i < len(call.Args) {
			return t.trace(call.Args[i])
		}
		return unrootedProv("missing argument")
	}
	bindFieldList(calleePkg, fd.Type.Params, argProv, bind)

	callee := newSeedTracer(calleePkg, fd, bind)
	callee.depth = t.depth + 1
	callee.calls = t.calls
	t.calls[key] = true
	defer delete(t.calls, key)

	p := callee.traceReturns(fd, idx)
	return p.push(fmt.Sprintf("via %s (%s)", fn.Name(), calleePkg.posStr(fd.Pos()))), true
}

// findFuncDecl locates a function declaration by name and receiver type
// name in a package's files. Matching is syntactic on purpose: a
// *types.Func reached through export data is a different object than the
// one the source-checked package defines, so object identity cannot be
// used across the boundary.
func findFuncDecl(tp *tracePkg, name, recvName string) *ast.FuncDecl {
	for _, f := range tp.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name {
				continue
			}
			if recvDeclName(fd) == recvName {
				return fd
			}
		}
	}
	return nil
}

// recvDeclName extracts the receiver's base type name ("" for plain
// functions).
func recvDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	e := fd.Recv.List[0].Type
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// bindFieldList assigns provenance to each named field of a parameter
// list, positionally across the flattened names.
func bindFieldList(tp *tracePkg, fl *ast.FieldList, provAt func(int) prov, bind map[types.Object]prov) {
	if fl == nil {
		return
	}
	i := 0
	for _, field := range fl.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := tp.info.Defs[name]; obj != nil {
				bind[obj] = provAt(i)
			}
			i++
		}
	}
}

// traceReturns joins the provenance of the idx'th result over every
// return statement of fd (excluding nested function literals); derived
// wins, matching the assignment join.
func (t *seedTracer) traceReturns(fd *ast.FuncDecl, idx int) prov {
	var fallback *prov
	returns := ownReturns(fd.Body)
	for _, rs := range returns {
		var p prov
		switch {
		case idx < len(rs.Results):
			p = t.trace(rs.Results[idx])
		case len(rs.Results) == 0 && fd.Type.Results != nil:
			// Bare return with named results: trace the named result var.
			p = t.traceNamedResult(fd, idx)
		default:
			continue
		}
		if p.derived {
			return p
		}
		if fallback == nil {
			fallback = &p
		}
	}
	if fallback == nil {
		return unrootedProv("no traceable return value")
	}
	return *fallback
}

func (t *seedTracer) traceNamedResult(fd *ast.FuncDecl, idx int) prov {
	i := 0
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if i == idx {
				if obj := t.pkg.info.Defs[name]; obj != nil {
					return t.traceObj(obj, name.Name)
				}
				return unrootedProv("unresolved named result")
			}
			i++
		}
	}
	return unrootedProv("unresolved named result")
}

// ownReturns collects the return statements belonging to body's function
// itself, skipping nested function literals (their returns return from
// the closure, not from the function under analysis).
func ownReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, s)
		}
		return true
	})
	return out
}
