package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// This file is the escape-analysis side of the hotalloc gate: it runs
// the compiler's escape analysis (`go build -gcflags=-m=2`) over the
// declared hot-path packages of a module, parses the diagnostics into a
// typed model, and loads/saves the committed escape budget the analyzer
// diffs against.
//
// The runner leans on the go build cache for its own caching: the go
// command replays a cached package's compiler diagnostics verbatim on
// rebuild, so repeat invocations cost a cache probe, not a compile. On
// top of that a process-level memo keyed by module root ensures the
// build runs at most once per lint process no matter how many packages'
// passes consult it.

// An EscapeSite is one heap allocation the compiler could not prove
// stack-safe, attributed to a position in a hot-path package.
type EscapeSite struct {
	// File is the module-relative source path.
	File string
	// Line, Col locate the allocating expression.
	Line, Col int
	// Message is the compiler's normalized diagnostic, e.g.
	// "&Mux{...} escapes to heap" or "moved to heap: buf".
	Message string
	// Detail holds the -m=2 flow explanation lines ("flow: ...",
	// "from ... at ..."), indentation-stripped.
	Detail []string
}

// escapeKey dedupes compiler output: -m=2 frequently emits the same
// site once with flow detail and once without.
type escapeKey struct {
	file      string
	line, col int
	msg       string
}

// EscapeBudget is the committed allocation baseline for a module's hot
// paths (results/golden/escape_budget.json).
type EscapeBudget struct {
	// Schema versions the file format.
	Schema int `json:"schema"`
	// Go records the toolchain the budget was generated with. Escape
	// analysis results shift between compiler releases; the field is
	// informational so a version-skew diff is explainable at a glance.
	Go string `json:"go"`
	// HotPaths lists the module-relative package paths under budget.
	HotPaths []string `json:"hot_paths"`
	// Budgets maps package -> function -> normalized message -> count.
	Budgets map[string]map[string]map[string]int `json:"budgets"`
}

// escapeBudgetPath is where a module commits its budget, relative to the
// module root. Absence of the file disables hotalloc for that module.
const escapeBudgetPath = "results/golden/escape_budget.json"

// DefaultHotPaths is the hot-path set for this repository: the packages
// the figure pipelines spend their inner loops in. Fixture modules and
// regenerated budgets declare their own set in the budget file.
var DefaultHotPaths = []string{"internal/mux", "internal/fgn", "internal/fbndp", "internal/telemetry"}

// LoadEscapeBudget reads a module's committed budget. A missing file
// returns (nil, nil): hot-path budgeting is opt-in per module.
func LoadEscapeBudget(moduleDir string) (*EscapeBudget, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, escapeBudgetPath))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var b EscapeBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", escapeBudgetPath, err)
	}
	return &b, nil
}

// WriteEscapeBudget commits a budget, stably formatted for reviewable
// diffs.
func WriteEscapeBudget(moduleDir string, b *EscapeBudget) error {
	path := filepath.Join(moduleDir, escapeBudgetPath)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// escapeRuns memoizes ParseEscapes per module root for the process
// lifetime (the underlying go build is itself cache-replayed, so this
// only saves the exec round-trips).
var escapeRuns = struct {
	sync.Mutex
	m map[string]*escapeRun
}{m: make(map[string]*escapeRun)}

type escapeRun struct {
	sites map[string][]EscapeSite // module-relative package path -> sites
	err   error
}

// HotPathEscapes returns the escape sites of the given hot-path packages
// of the module rooted at moduleDir, grouped by module-relative package
// path. Results are cached per (module, hot-path set) for the process.
func HotPathEscapes(moduleDir string, hotPaths []string) (map[string][]EscapeSite, error) {
	key := moduleDir + "\x00" + strings.Join(hotPaths, "\x00")
	escapeRuns.Lock()
	run, ok := escapeRuns.m[key]
	escapeRuns.Unlock()
	if ok {
		return run.sites, run.err
	}
	sites, err := runEscapeAnalysis(moduleDir, hotPaths)
	escapeRuns.Lock()
	escapeRuns.m[key] = &escapeRun{sites: sites, err: err}
	escapeRuns.Unlock()
	return sites, err
}

func runEscapeAnalysis(moduleDir string, hotPaths []string) (map[string][]EscapeSite, error) {
	if len(hotPaths) == 0 {
		return map[string][]EscapeSite{}, nil
	}
	args := []string{"build", "-gcflags=-m=2"}
	for _, p := range hotPaths {
		args = append(args, "./"+filepath.ToSlash(p))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s in %s: %v\n%s", strings.Join(args, " "), moduleDir, err, stderr.String())
	}
	sites := ParseEscapes(stderr.String(), moduleDir)
	grouped := make(map[string][]EscapeSite, len(hotPaths))
	for _, p := range hotPaths {
		grouped[filepath.ToSlash(p)] = nil
	}
	for _, s := range sites {
		pkg := filepath.ToSlash(filepath.Dir(s.File))
		if _, ok := grouped[pkg]; ok {
			grouped[pkg] = append(grouped[pkg], s)
		}
	}
	return grouped, nil
}

// GoVersion reports the toolchain version string ("go1.24.0") for budget
// stamping.
func GoVersion() string {
	return runtime.Version()
}

// BuildEscapeBudget computes a fresh budget for the module's hot paths:
// the current escape sites, attributed to their enclosing functions and
// counted per (package, function, message). This is what
// `repolint -write-escape-budget` commits.
func BuildEscapeBudget(moduleDir string, hotPaths []string) (*EscapeBudget, error) {
	escapes, err := HotPathEscapes(moduleDir, hotPaths)
	if err != nil {
		return nil, err
	}
	l, err := SharedLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	budget := &EscapeBudget{
		Schema:   1,
		Go:       GoVersion(),
		HotPaths: append([]string(nil), hotPaths...),
		Budgets:  make(map[string]map[string]map[string]int),
	}
	for _, rel := range hotPaths {
		rel = filepath.ToSlash(rel)
		path := l.Module
		if rel != "" {
			path = l.Module + "/" + rel
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		fns := make(map[string]map[string]int)
		for _, s := range escapes[rel] {
			fn := enclosingFuncIn(l.Fset, pkg.Files, s)
			if fns[fn] == nil {
				fns[fn] = make(map[string]int)
			}
			fns[fn][s.Message]++
		}
		budget.Budgets[rel] = fns
	}
	return budget, nil
}

// ParseEscapes extracts heap-escape sites from `go build -gcflags=-m=2`
// stderr. Lines look like:
//
//	hot/hot.go:9:13: make([]int64, n) escapes to heap:
//	hot/hot.go:9:13:   flow: {heap} = &{storage for make([]int64, n)}:
//	hot/hot.go:9:13:     from make([]int64, n) (non-constant size) at hot/hot.go:9:13
//	hot/hot.go:9:13: make([]int64, n) escapes to heap
//
// The flow explanation repeats the site's position with extra
// indentation after the colon, and the site itself is emitted twice
// (once opening the flow block, once plain) — detail lines attach to the
// current site and duplicates dedupe by position+message. Inlining
// notes, "does not escape" and "leaking param" lines are ignored: the
// budget tracks what actually lands on the heap. Positions may be
// absolute or moduleDir-relative depending on how the build was invoked;
// both normalize to module-relative slash paths.
func ParseEscapes(out, moduleDir string) []EscapeSite {
	var sites []EscapeSite
	seen := make(map[escapeKey]int) // -> index into sites
	var cur *EscapeSite
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		file, lineNo, col, msg, ok := splitDiag(line)
		if !ok {
			cur = nil
			continue
		}
		rel := relToModule(file, moduleDir)
		if msg != "" && (msg[0] == ' ' || msg[0] == '\t') {
			// Indented continuation: the -m=2 flow explanation for the
			// site opened on a previous line at the same position.
			if cur != nil && cur.File == rel && cur.Line == lineNo && cur.Col == col {
				cur.Detail = append(cur.Detail, strings.TrimSpace(msg))
			}
			continue
		}
		cur = nil
		if !isHeapEscape(msg) {
			continue
		}
		msg = strings.TrimSuffix(msg, ":")
		k := escapeKey{rel, lineNo, col, msg}
		if i, dup := seen[k]; dup {
			cur = &sites[i]
			continue
		}
		sites = append(sites, EscapeSite{File: rel, Line: lineNo, Col: col, Message: msg})
		seen[k] = len(sites) - 1
		cur = &sites[len(sites)-1]
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return sites
}

// isHeapEscape keeps only diagnostics that put bytes on the heap.
func isHeapEscape(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}

// splitDiag parses "file.go:LINE:COL: message", preserving the
// message's leading indentation (it distinguishes -m=2 flow-detail
// continuations from fresh diagnostics).
func splitDiag(line string) (file string, lineNo, col int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	lineNo, rest, ok = cutInt(rest, ':')
	if !ok {
		return "", 0, 0, "", false
	}
	if col, msg, ok = cutInt(rest, ':'); !ok {
		col, msg = 0, rest // column-less form "file.go:12: msg"
	}
	// One space separates position from message; anything beyond it is
	// the compiler's own indentation and stays in msg.
	msg = strings.TrimPrefix(msg, " ")
	return file, lineNo, col, msg, true
}

// cutInt splits "123<sep>rest", failing unless s starts with digits
// immediately followed by sep.
func cutInt(s string, sep byte) (n int, rest string, ok bool) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int(s[i]-'0')
		i++
	}
	if i == 0 || i >= len(s) || s[i] != sep {
		return 0, s, false
	}
	return n, s[i+1:], true
}

func relToModule(file, moduleDir string) string {
	if filepath.IsAbs(file) {
		if rel, err := filepath.Rel(moduleDir, file); err == nil {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
