package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.SeedFlow,
		"fix/seedflow",      // taint through fields, helpers, ranges; constants flagged
		"fix/seedhelp",      // helper package itself: parameters are trusted, clean
		"fix/examples/demo", // examples are exempt: constant seed, no finding
	)
}
