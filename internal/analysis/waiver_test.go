package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const waiverSrc = `package w

func f(a, b float64) bool {
	//lint:floateq dyadic operands, comparison is exact
	x := a == b
	y := a != b //lint:maporder
	return x == y
}
`

func TestCollectWaivers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", waiverSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	waivers := collectWaivers(fset, []*ast.File{f}, func(d Diagnostic) { diags = append(diags, d) })

	if got := waivers[waiverKey{"w.go", 4}]; len(got) != 1 || got[0] != "floateq" {
		t.Errorf("line 4 waivers = %v, want [floateq]", got)
	}
	if got := waivers[waiverKey{"w.go", 6}]; len(got) != 0 {
		t.Errorf("line 6 waivers = %v, want none (bare waiver must not register)", got)
	}
	if len(diags) != 1 || diags[0].Analyzer != "waiver" {
		t.Fatalf("diags = %v, want exactly one bare-waiver report", diags)
	}
}

func TestPathAllowed(t *testing.T) {
	cases := []struct {
		rel   string
		roots []string
		want  bool
	}{
		{"internal/randx", []string{"internal/randx"}, true},
		{"internal/randx/sub", []string{"internal/randx"}, true},
		{"internal/randxtra", []string{"internal/randx"}, false},
		{"cmd/repro", []string{"cmd"}, true},
		{"", []string{"cmd"}, false},
		{"examples/quickstart", []string{"cmd", "examples"}, true},
	}
	for _, c := range cases {
		if got := pathAllowed(c.rel, c.roots...); got != c.want {
			t.Errorf("pathAllowed(%q, %v) = %v, want %v", c.rel, c.roots, got, c.want)
		}
	}
}
