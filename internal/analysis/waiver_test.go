package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
	"time"
)

func parseWaiverFile(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func waiverNamesAt(ws *waiverSet, file string, line int) []string {
	var names []string
	for _, rec := range ws.byLine[waiverKey{file, line}] {
		names = append(names, rec.name)
	}
	return names
}

func TestCollectWaivers(t *testing.T) {
	const src = `package w

func f(a, b float64) bool {
	//lint:floateq dyadic operands, comparison is exact
	x := a == b
	y := a != b //lint:maporder
	return x == y
}
`
	fset, files := parseWaiverFile(t, src)
	var diags []Diagnostic
	ws := collectWaivers(fset, files, RunOptions{}, func(d Diagnostic) { diags = append(diags, d) })

	if got := waiverNamesAt(ws, "w.go", 4); len(got) != 1 || got[0] != "floateq" {
		t.Errorf("line 4 waivers = %v, want [floateq]", got)
	}
	if got := waiverNamesAt(ws, "w.go", 6); len(got) != 0 {
		t.Errorf("line 6 waivers = %v, want none (bare waiver must not register)", got)
	}
	if len(diags) != 1 || diags[0].Analyzer != "waiver" {
		t.Fatalf("diags = %v, want exactly one bare-waiver report", diags)
	}
}

func TestCollectWaiversUnknownAnalyzer(t *testing.T) {
	const src = `package w

//lint:floateqq typo'd analyzer name
var x = 1
`
	fset, files := parseWaiverFile(t, src)
	var diags []Diagnostic
	ws := collectWaivers(fset, files, RunOptions{}, func(d Diagnostic) { diags = append(diags, d) })
	if got := waiverNamesAt(ws, "w.go", 3); len(got) != 0 {
		t.Errorf("unknown-analyzer waiver registered: %v", got)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown analyzer") {
		t.Fatalf("diags = %v, want one unknown-analyzer report", diags)
	}
}

func TestCollectWaiversExpiry(t *testing.T) {
	const src = `package w

//lint:floateq expires=2026-01-01 short-lived exception
var a = 1

//lint:floateq expires=2099-12-31 long-lived exception
var b = 2

//lint:floateq expires=someday malformed
var c = 3
`
	fset, files := parseWaiverFile(t, src)
	now := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	var diags []Diagnostic
	ws := collectWaivers(fset, files, RunOptions{Now: now}, func(d Diagnostic) { diags = append(diags, d) })

	if got := waiverNamesAt(ws, "w.go", 3); len(got) != 0 {
		t.Errorf("expired waiver registered: %v", got)
	}
	if got := waiverNamesAt(ws, "w.go", 6); len(got) != 1 {
		t.Errorf("unexpired waiver not registered: %v", got)
	}
	if got := waiverNamesAt(ws, "w.go", 9); len(got) != 0 {
		t.Errorf("malformed-expiry waiver registered: %v", got)
	}
	var expired, malformed int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "expired"):
			expired++
		case strings.Contains(d.Message, "malformed expiry"):
			malformed++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if expired != 1 || malformed != 1 {
		t.Fatalf("got %d expired + %d malformed reports, want 1 + 1 (diags: %v)", expired, malformed, diags)
	}
}

func TestCollectWaiversExpiryDisabledWithoutClock(t *testing.T) {
	const src = `package w

//lint:floateq expires=2000-01-01 ancient but clockless
var a = 1
`
	fset, files := parseWaiverFile(t, src)
	var diags []Diagnostic
	ws := collectWaivers(fset, files, RunOptions{}, func(d Diagnostic) { diags = append(diags, d) })
	if got := waiverNamesAt(ws, "w.go", 3); len(got) != 1 {
		t.Errorf("zero-Now run must still register dated waivers, got %v", got)
	}
	if len(diags) != 0 {
		t.Errorf("zero-Now run reported %v, want none", diags)
	}
}

func TestUnusedWaiverReported(t *testing.T) {
	const src = `package w

//lint:floateq suppresses nothing here
var a = 1
`
	fset, files := parseWaiverFile(t, src)
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	ws := collectWaivers(fset, files, RunOptions{}, report)

	// floateq did not run: the waiver must NOT be flagged (its analyzer
	// never had the chance to use it).
	ws.reportUnused(map[string]bool{"maporder": true}, report)
	if len(diags) != 0 {
		t.Fatalf("waiver for non-run analyzer flagged: %v", diags)
	}
	// floateq ran and suppressed nothing: dead waiver.
	ws.reportUnused(map[string]bool{"floateq": true}, report)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "suppresses nothing") {
		t.Fatalf("diags = %v, want one dead-waiver report", diags)
	}
}

func TestPathAllowed(t *testing.T) {
	cases := []struct {
		rel   string
		roots []string
		want  bool
	}{
		{"internal/randx", []string{"internal/randx"}, true},
		{"internal/randx/sub", []string{"internal/randx"}, true},
		{"internal/randxtra", []string{"internal/randx"}, false},
		{"cmd/repro", []string{"cmd"}, true},
		{"", []string{"cmd"}, false},
		{"examples/quickstart", []string{"cmd", "examples"}, true},
	}
	for _, c := range cases {
		if got := pathAllowed(c.rel, c.roots...); got != c.want {
			t.Errorf("pathAllowed(%q, %v) = %v, want %v", c.rel, c.roots, got, c.want)
		}
	}
}
