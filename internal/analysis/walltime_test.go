package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWallTime(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.WallTime,
		"fix/wall",           // clock reads in model code flagged
		"fix/internal/trace", // tracing is allowlisted
		"fix/cmd/tool",       // CLIs are allowlisted
	)
}
