package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestProfLabels(t *testing.T) {
	analysistest.Run(t, fixtureModule(t), analysis.ProfLabels,
		"fix/proflabels",                     // label API outside the owner flagged
		"fix/internal/telemetry/prof",        // owner call sites are exempt
		"fix/internal/telemetry/prof/badkey", // ...but the fixed key set still binds
	)
}
