// Package analysistest runs one analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// x/tools/go/analysis/analysistest on top of the stdlib-only framework
// in internal/analysis.
//
// Fixture layout: a self-contained module (its own go.mod) under a
// testdata directory, so neither the real build nor repolint ever sees
// the deliberately-violating code. Expectations are trailing comments:
//
//	v := rand.Intn(10) // want "rand.Intn draws from the global RNG"
//
// Each quoted string must be a substring of a diagnostic reported on
// that line, every diagnostic must be claimed by a want, and a file with
// no want comments asserts the analyzer stays silent there.
package analysistest

import (
	"go/ast"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// loaderFor resolves the fixture module through the process-wide shared
// loader cache, so the `go list -export` walk and each package's
// type-check run once per module per test binary, not once per analyzer.
func loaderFor(t *testing.T, dir string) *analysis.Loader {
	t.Helper()
	l, err := analysis.SharedLoader(dir)
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", dir, err)
	}
	return l
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run applies the analyzer to each listed package of the fixture module
// at moduleDir and diffs diagnostics against the // want comments.
func Run(t *testing.T, moduleDir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := loaderFor(t, moduleDir)
	for _, path := range pkgPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		// No expiry clock: fixture waiver expiry is covered by unit tests
		// with pinned dates so fixtures never rot as the calendar advances.
		opts := analysis.RunOptions{Resolver: l, ModuleDir: l.Dir}
		diags, err := analysis.RunAnalyzers(pkg, l.Fset, []*analysis.Analyzer{a}, opts)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, l, pkg, diags)
	}
}

type lineKey struct {
	file string
	line int
}

// check matches diagnostics against expectations line by line.
func check(t *testing.T, l *analysis.Loader, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]string)
	for _, f := range pkg.Files {
		collectWants(t, l, f, wants)
	}
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		idx := -1
		for i, w := range wants[k] {
			if w != "" && strings.Contains(d.Message, w) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.Path, d)
			continue
		}
		wants[k][idx] = "" // consumed
	}
	// Report unmatched wants in a stable order (map iteration would
	// shuffle the failure output between runs — the exact nondeterminism
	// this suite polices).
	keys := make([]lineKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if w != "" {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", pkg.Path, k.file, k.line, w)
			}
		}
	}
}

func collectWants(t *testing.T, l *analysis.Loader, f *ast.File, wants map[lineKey][]string) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := l.Fset.Position(c.Pos())
			quoted := quotedRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				continue
			}
			k := lineKey{pos.Filename, pos.Line}
			for _, q := range quoted {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					continue
				}
				wants[k] = append(wants[k], s)
			}
		}
	}
}
