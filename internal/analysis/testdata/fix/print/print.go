// Package print exercises the printguard analyzer: implicit-stdout fmt
// calls, the print builtins and os.Std* references are violations in
// library code; writing to an injected io.Writer is not.
package print

import (
	"fmt"
	"io"
	"os"
)

func Hello() {
	fmt.Println("hi") // want "fmt.Println writes to stdout"
	print("x")        // want "builtin print writes to stderr"
	println("y")      // want "builtin println writes to stderr"
}

func Fallback(w io.Writer) io.Writer {
	if w == nil {
		w = os.Stderr // want "os.Stderr referenced in library code"
	}
	return w
}

// Report writes to a caller-chosen sink: the sanctioned pattern.
func Report(w io.Writer, msg string) {
	fmt.Fprintln(w, msg)
}
