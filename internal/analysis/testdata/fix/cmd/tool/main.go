// Command tool stands in for the real CLIs: cmd/* may read the clock
// and own stdout/stderr, so walltime and printguard stay silent here.
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	t0 := time.Now()
	fmt.Println("started", t0)
	fmt.Fprintln(os.Stderr, "elapsed", time.Since(t0))
}
