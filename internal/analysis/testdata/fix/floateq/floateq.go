// Package floateq exercises the floateq analyzer: exact float
// comparison is a violation unless one side is a literal (or constant)
// zero or the line carries a justified waiver.
package floateq

func Eq(a, b float64) bool {
	return a == b // want "float == comparison"
}

func Ne(a, b float32) bool {
	return a != b // want "float != comparison"
}

// Zero sentinels are exact by construction.
func Unset(a float64) bool {
	return a == 0
}

const zero = 0.0

func UnsetConst(a float64) bool {
	return zero != a
}

// Integer comparison must not be confused for a float one.
func Count(n, m int) bool {
	return n == m
}

// Dyadic literals assigned verbatim compare exactly; the waiver records
// that argument.
func Half(a float64) bool {
	return a == 0.5 //lint:floateq 0.5 is dyadic and assigned verbatim upstream, comparison is exact
}
