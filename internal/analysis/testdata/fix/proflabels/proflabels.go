// Package proflabels exercises the proflabels analyzer: the
// runtime/pprof goroutine-label API belongs to internal/telemetry/prof,
// and literal label keys must come from the fixed attribution set.
package proflabels

import (
	"context"
	"runtime/pprof"
)

func Attach(ctx context.Context, f func(context.Context)) {
	lbl := pprof.Labels("figure", "fig8") // want "pprof.Labels called outside internal/telemetry/prof"
	pprof.Do(ctx, lbl, f)                 // want "pprof.Do called outside internal/telemetry/prof"
}

func Stack(ctx context.Context) context.Context {
	// A key outside the fixed set is a second, independent finding.
	return pprof.WithLabels(ctx, // want "pprof.WithLabels called outside internal/telemetry/prof"
		pprof.Labels("experiment", "x")) // want "pprof.Labels called outside internal/telemetry/prof" "pprof label key \"experiment\" is not in the fixed key set"
}

func Apply(ctx context.Context) {
	pprof.SetGoroutineLabels(ctx) // want "pprof.SetGoroutineLabels called outside internal/telemetry/prof"
}

func Read(ctx context.Context) (string, bool) {
	return pprof.Label(ctx, "model") // want "pprof.Label called outside internal/telemetry/prof"
}
