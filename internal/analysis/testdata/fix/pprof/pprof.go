// Package pprof exercises the pprofimport analyzer: linking
// net/http/pprof outside internal/telemetry mounts profiling handlers
// on http.DefaultServeMux as an import side effect, and linking
// runtime/pprof outside internal/telemetry/prof lets ad-hoc captures
// race the continuous collector over the single CPU profiler.
package pprof

import (
	"net/http"

	_ "net/http/pprof" // want "net/http/pprof imported outside internal/telemetry"
	_ "runtime/pprof"  // want "runtime/pprof imported outside internal/telemetry/prof"
)

func Serve(addr string) error {
	return http.ListenAndServe(addr, nil)
}
