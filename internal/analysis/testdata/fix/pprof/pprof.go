// Package pprof exercises the pprofimport analyzer: linking
// net/http/pprof outside internal/telemetry mounts profiling handlers
// on http.DefaultServeMux as an import side effect.
package pprof

import (
	"net/http"

	_ "net/http/pprof" // want "net/http/pprof imported outside internal/telemetry"
)

func Serve(addr string) error {
	return http.ListenAndServe(addr, nil)
}
