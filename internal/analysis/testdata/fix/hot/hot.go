// Package hot exercises the escape-budget gate: one escape the
// committed fixture budget allows, one it does not, and one carrying a
// justified waiver.
package hot

// Budgeted allocates, but the committed budget allows exactly this
// (function, message) pair: no finding.
func Budgeted(n int) []float64 {
	out := make([]float64, n)
	return out
}

// Unbudgeted allocates outside the budget: a finding with the
// compiler's flow explanation inline.
func Unbudgeted(n int) []int64 {
	buf := make([]int64, n) // want "hot-path escape not in budget"
	for i := range buf {
		buf[i] = int64(i)
	}
	return buf
}

// Waived allocates outside the budget under a justified waiver.
func Waived(n int) []byte {
	//lint:hotalloc scratch buffer measured at <1% of frame cost, retained for clarity
	b := make([]byte, n)
	return b
}
