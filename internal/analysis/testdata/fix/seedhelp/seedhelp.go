// Package seedhelp is the cross-package helper for the seedflow
// fixtures: the analyzer must chase these bodies through the loader to
// prove (or refute) derivation.
package seedhelp

import "fix/internal/seed"

// Spawn derives child seeds properly; callers threading its results into
// generators are clean.
func Spawn(parent int64, n int) []int64 {
	return seed.Children(parent, n)
}

// Stuck ignores its argument and returns a constant: callers seeding
// from it must be flagged even though the constant hides one package
// over.
func Stuck(parent int64) int64 {
	_ = parent
	return 1996
}
