// Package seedflow exercises the seed-provenance taint analyzer: seeds
// that flow from the sanctioned roots are clean, constants and other
// untracked sources are findings with the flow path in the message.
package seedflow

import (
	"fix/internal/randx"
	"fix/internal/seed"
	"fix/seedhelp"
)

// Config carries the master seed the way the real module's experiment
// configs do.
type Config struct {
	Seed int64
	N    int
}

// Model mimics the traffic.Model constructor contract: any one-int64
// NewGenerator method is a seedflow sink.
type Model struct{}

func (Model) NewGenerator(seed int64) int64 { return seed }

// FromParam is clean: the seed is a caller-supplied parameter.
func FromParam(s int64) {
	randx.NewRand(s)
}

// FromField is clean: tainted through a struct field named Seed.
func FromField(cfg Config) {
	r := randx.NewRand(cfg.Seed)
	var m Model
	// Draws from a seed-derived RNG stay derived (the Composite pattern).
	m.NewGenerator(r.Int63())
}

// FromDerive is clean: direct derivation call.
func FromDerive(cfg Config) {
	randx.NewRand(seed.Derive(cfg.Seed, 3))
}

// FromChildren is clean: ranging over derived child seeds.
func FromChildren(cfg Config) {
	for _, s := range seed.Children(cfg.Seed, cfg.N) {
		randx.NewRand(s)
	}
}

// ThroughHelperOK is clean: the derivation hides inside a cross-package
// helper whose body the analyzer resolves through the loader.
func ThroughHelperOK(cfg Config) {
	seeds := seedhelp.Spawn(cfg.Seed, cfg.N)
	randx.NewRand(seeds[0])
}

// localSplit is the same-package helper case.
func localSplit(parent int64) int64 {
	return seed.Derive(parent, 7)
}

// ThroughLocalHelperOK is clean: derivation through a same-package call.
func ThroughLocalHelperOK(cfg Config) {
	randx.NewRand(localSplit(cfg.Seed))
}

// Hardcoded is the canonical violation: a constant seed.
func Hardcoded() {
	randx.NewRand(1996) // want "constant 1996"
}

// HardcodedVar launders the constant through a local variable; the flow
// path must surface both hops.
func HardcodedVar() {
	s := int64(4242)
	randx.NewRand(s) // want "constant 4242"
}

// ThroughHelperBad seeds from a helper that bottoms out in a constant
// one package over.
func ThroughHelperBad(cfg Config) {
	randx.NewRand(seedhelp.Stuck(cfg.Seed)) // want "constant 1996"
}

// RangeIndex uses the loop index as a seed: additive seeding, the exact
// correlated-streams bug the derivation tree exists to prevent.
func RangeIndex(cfg Config) {
	for i := range seed.Children(cfg.Seed, cfg.N) {
		var m Model
		m.NewGenerator(int64(i)) // want "range index"
	}
}

// ConstructorConstant feeds a generator constructor directly.
func ConstructorConstant() {
	var m Model
	m.NewGenerator(7) // want "constant 7"
}
