// Constant seeds are legal in _test.go files: the loader lints shipping
// code only, so nothing here may ever produce a finding.
package seedflow

import (
	"fix/internal/randx"
	"testing"
)

func TestConstantSeedAllowed(t *testing.T) {
	r := randx.NewRand(42)
	var m Model
	m.NewGenerator(1)
	_ = r
}
