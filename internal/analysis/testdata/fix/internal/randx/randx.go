// Package randx stands in for the real internal/randx: the one place
// RNG construction is legal, so rngsource must stay silent here.
package randx

import "math/rand"

func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
