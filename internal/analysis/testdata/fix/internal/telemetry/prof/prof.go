// Package prof stands in for the real internal/telemetry/prof: the one
// package allowed to import runtime/pprof and call its label API, so
// pprofimport and proflabels stay silent on the calls themselves. The
// fixed-key rule still applies under this tree — the badkey subpackage
// shows a constant key outside the set being caught even in the owner.
package prof

import (
	"context"
	"runtime/pprof"
)

const KeyFigure = "figure"

// Do mirrors the real wrapper: named Key* constants resolve to fixed
// keys through the type checker, so no finding.
func Do(ctx context.Context, figure string, f func(context.Context)) {
	pprof.Do(ctx, pprof.Labels(KeyFigure, figure), f)
}

// WithPairs mirrors the spread form the real package uses: keys are not
// compile-time constants, so the analyzer trusts the typed Labels API
// that built them.
func WithPairs(ctx context.Context, pairs []string) context.Context {
	return pprof.WithLabels(ctx, pprof.Labels(pairs...))
}
