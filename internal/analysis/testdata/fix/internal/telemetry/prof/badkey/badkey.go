// Package badkey sits inside the owner tree, so proflabels accepts its
// call sites — but the fixed-key rule has no exemption: an invented
// constant key is a finding even here.
package badkey

import (
	"context"
	"runtime/pprof"
)

func InventKey(ctx context.Context) context.Context {
	return pprof.WithLabels(ctx,
		pprof.Labels("experiment", "x")) // want "pprof label key \"experiment\" is not in the fixed key set"
}
