// Package telemetry stands in for the real internal/telemetry: it owns
// the leveled logger's stderr default and the opt-in pprof exposition,
// so printguard and pprofimport stay silent here.
package telemetry

import (
	"fmt"
	"os"

	_ "net/http/pprof"
)

func Logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format, args...)
}
