// Package trace stands in for the real internal/trace, which is on the
// walltime allowlist: span timestamps are wall-clock by design.
package trace

import "time"

func Start() time.Time {
	return time.Now()
}
