// Package seed stands in for the real internal/seed: the splitmix64
// derivation root seedflow treats as the sanctioned entropy source.
package seed

// Derive mixes a parent seed with a stream index.
func Derive(parent int64, idx int) int64 {
	return parent*0x9E3779B9 + int64(idx)
}

// Children derives n child seeds from one parent.
func Children(parent int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = Derive(parent, i)
	}
	return out
}
