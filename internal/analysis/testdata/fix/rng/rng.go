// Package rng exercises the rngsource analyzer: RNG construction and
// global draws outside internal/randx are violations; methods on an
// already-built *rand.Rand are not.
package rng

import "math/rand"

func Build(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "rand.New constructs an RNG" "rand.NewSource constructs an RNG"
}

func Global() int {
	return rand.Intn(10) // want "rand.Intn draws from the global RNG"
}

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the global RNG"
}

// Methods on a handed-in generator are the sanctioned pattern.
func Draw(r *rand.Rand) float64 {
	return r.Float64()
}
