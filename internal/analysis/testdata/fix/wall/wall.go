// Package wall exercises the walltime analyzer: wall-clock reads in a
// deterministic package are violations; other time-package uses
// (durations, tickers handed in from outside) are not.
package wall

import "time"

func Stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

// Pure duration arithmetic is fine.
func Double(d time.Duration) time.Duration {
	return 2 * d
}
