// Package maporder exercises the maporder analyzer: order-sensitive map
// iteration is a violation, the collect-then-sort idiom and pure
// commutative accumulation are not, and a justified waiver suppresses.
package maporder

import (
	"fmt"
	"math/rand"
	"sort"
)

// Keys appends in iteration order and never sorts: flagged.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration appends to keys in iteration order and it is never sorted"
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the blessed idiom: append-only body, sorted before use.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dump writes output in iteration order: flagged.
func Dump(m map[string]int) {
	for k, v := range m { // want "map iteration writes output"
		fmt.Println(k, v)
	}
}

// Draw consumes RNG variates in iteration order: flagged.
func Draw(m map[string]int, r *rand.Rand) int {
	s := 0
	for k := range m { // want "map iteration feeds an RNG"
		s += r.Intn(10) + len(k)
	}
	return s
}

// Sum accumulates commutatively: order cannot matter, not flagged.
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Waived carries a justification, so the finding is suppressed.
func Waived(m map[string]int) []string {
	var keys []string
	//lint:maporder keys feed a histogram whose rendering is order-insensitive
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
