// Package demo lives under examples/, where pedagogical constant seeds
// are deliberate: seedflow must stay silent here.
package demo

import "fix/internal/randx"

// Demo seeds with a literal so readers can reproduce its output by eye.
func Demo() int64 {
	return randx.NewRand(1).Int63()
}
