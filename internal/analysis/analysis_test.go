package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// fixtureModule returns the absolute path of the fixture module shared
// by the per-analyzer tests.
func fixtureModule(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// moduleRoot walks up from the working directory to the repository's
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// TestSuiteRegistersSevenAnalyzers pins the suite's contents: DESIGN.md
// §11 documents exactly these seven invariants.
func TestSuiteRegistersSevenAnalyzers(t *testing.T) {
	want := []string{"rngsource", "walltime", "maporder", "printguard", "floateq", "pprofimport", "proflabels"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}

// TestRepositoryIsClean runs the whole suite over the real module: the
// invariants hold on the shipping tree, with any exceptions carried by
// justified //lint: waivers. This is the same gate CI applies via
// cmd/repolint, enforced from `go test ./...` as well.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint skipped in -short")
	}
	diags, err := analysis.LintModule(moduleRoot(t), analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
