package analysis_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analysis"
)

// fixtureModule returns the absolute path of the fixture module shared
// by the per-analyzer tests.
func fixtureModule(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// moduleRoot walks up from the working directory to the repository's
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// TestSuiteRegistersNineAnalyzers pins the suite's contents: DESIGN.md
// §11 documents exactly these nine invariants. This list is the single
// source of truth for the suite contract; cmd/repolint's tests derive
// their expectations from analysis.All() rather than repeating it.
func TestSuiteRegistersNineAnalyzers(t *testing.T) {
	want := []string{"rngsource", "walltime", "maporder", "printguard", "floateq", "pprofimport", "proflabels", "seedflow", "hotalloc"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}

// TestRepositoryIsClean runs the whole suite over the real module: the
// invariants hold on the shipping tree, with any exceptions carried by
// justified //lint: waivers. This is the same gate CI applies via
// cmd/repolint, enforced from `go test ./...` as well.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint skipped in -short")
	}
	diags, err := analysis.LintModuleWith(moduleRoot(t), analysis.All(),
		analysis.RunOptions{Now: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestByName pins the -run subset resolution including its error shape.
func TestByName(t *testing.T) {
	got, err := analysis.ByName("seedflow", "hotalloc")
	if err != nil || len(got) != 2 || got[0].Name != "seedflow" || got[1].Name != "hotalloc" {
		t.Fatalf("ByName(seedflow, hotalloc) = %v, %v", got, err)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded, want error")
	}
}
