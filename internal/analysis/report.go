package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is repolint's machine-readable reporting surface: a stable
// Finding model with content fingerprints, a JSON report, a SARIF 2.1.0
// writer (the format CI code-scanning UIs ingest), and a baseline file
// that suppresses known findings by fingerprint so a new analyzer can
// land blocking against existing debt.

// A Finding is one diagnostic in reporting form: module-relative path,
// position, message and a content fingerprint that survives unrelated
// edits elsewhere in the file.
type Finding struct {
	Analyzer    string `json:"analyzer"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Message     string `json:"message"`
	Fingerprint string `json:"fingerprint"`
}

// fingerprintLineWindow buckets lines so a finding's fingerprint is
// stable under small drifts (edits above it move it by a few lines, not
// out of its bucket most of the time) while still distinguishing repeats
// of the same message across a large file.
const fingerprintLineWindow = 32

// NewFinding converts a Diagnostic into reporting form. file must
// already be module-relative (the CLI relativizes before reporting).
func NewFinding(d Diagnostic, file string) Finding {
	f := Finding{
		Analyzer: d.Analyzer,
		File:     filepath.ToSlash(file),
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
	}
	f.Fingerprint = fingerprint(f)
	return f
}

// fingerprint hashes analyzer + file + line window + message content.
// Line numbers are windowed rather than exact so the baseline does not
// churn every time an import block grows; the message hash keeps two
// different findings in one window distinct.
func fingerprint(f Finding) string {
	mh := fnv.New64a()
	io.WriteString(mh, f.Message)
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%x", f.Analyzer, f.File, f.Line/fingerprintLineWindow, mh.Sum64())
	return fmt.Sprintf("%016x", h.Sum64())
}

// A Report is the top-level JSON document repolint -json emits.
type Report struct {
	Schema    int       `json:"schema"`
	Module    string    `json:"module"`
	Analyzers []string  `json:"analyzers"`
	Findings  []Finding `json:"findings"`
	// Suppressed counts findings hidden by the active baseline.
	Suppressed int `json:"suppressed"`
}

// WriteJSON emits the report, indented for human diffing.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// A Baseline is a set of accepted finding fingerprints, committed so new
// analyzers can land blocking while existing debt is paid down
// incrementally. Entries record position and message for reviewability;
// only the fingerprint participates in matching.
type Baseline struct {
	Schema   int       `json:"schema"`
	Findings []Finding `json:"findings"`
}

// LoadBaseline reads a baseline file. Missing path (empty string) means
// no suppression.
func LoadBaseline(path string) (*Baseline, error) {
	if path == "" {
		return &Baseline{}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

// WriteBaseline commits the given findings as the new baseline.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Schema: 1, Findings: findings}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply splits findings into surviving and suppressed sets and reports
// stale baseline entries (fingerprints that matched nothing — debt that
// has been paid and should leave the file). Matching consumes baseline
// entries count-for-count, so two identical findings need two entries.
func (b *Baseline) Apply(findings []Finding) (kept []Finding, suppressed int, stale []Finding) {
	avail := make(map[string]int, len(b.Findings))
	for _, f := range b.Findings {
		avail[f.Fingerprint]++
	}
	for _, f := range findings {
		if avail[f.Fingerprint] > 0 {
			avail[f.Fingerprint]--
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	for _, f := range b.Findings {
		if avail[f.Fingerprint] > 0 {
			avail[f.Fingerprint]--
			stale = append(stale, f)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].File != stale[j].File {
			return stale[i].File < stale[j].File
		}
		return stale[i].Line < stale[j].Line
	})
	return kept, suppressed, stale
}

// WriteSARIF emits the report as SARIF 2.1.0, the interchange format CI
// code-scanning surfaces consume. One run, one rule per registered
// analyzer (plus the synthetic "waiver" hygiene rule), one result per
// finding, fingerprint carried in partialFingerprints.
func (r *Report) WriteSARIF(w io.Writer, analyzers []*Analyzer) error {
	type sarifRule struct {
		ID   string `json:"id"`
		Desc struct {
			Text string `json:"text"`
		} `json:"shortDescription"`
	}
	rules := make([]sarifRule, 0, len(analyzers)+1)
	addRule := func(id, doc string) {
		var sr sarifRule
		sr.ID = id
		sr.Desc.Text = doc
		rules = append(rules, sr)
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule("waiver", "waiver hygiene: bare, unknown-analyzer, expired or unused //lint: waivers")

	type sarifResult struct {
		RuleID  string `json:"ruleId"`
		Level   string `json:"level"`
		Message struct {
			Text string `json:"text"`
		} `json:"message"`
		Locations []map[string]any  `json:"locations"`
		Partial   map[string]string `json:"partialFingerprints"`
	}
	results := make([]sarifResult, 0, len(r.Findings))
	for _, f := range r.Findings {
		var res sarifResult
		res.RuleID = f.Analyzer
		res.Level = "error"
		res.Message.Text = f.Message
		res.Locations = []map[string]any{{
			"physicalLocation": map[string]any{
				"artifactLocation": map[string]any{"uri": f.File},
				"region":           map[string]any{"startLine": max(f.Line, 1), "startColumn": max(f.Col, 1)},
			},
		}}
		res.Partial = map[string]string{"repolint/v1": f.Fingerprint}
		results = append(results, res)
	}

	doc := map[string]any{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "repolint",
					"informationUri": "https://example.invalid/repro/cmd/repolint",
					"rules":          rules,
				},
			},
			"results": results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Findings converts a diagnostic slice to reporting form, relativizing
// filenames against the module root.
func Findings(diags []Diagnostic, moduleDir string) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if moduleDir != "" && filepath.IsAbs(file) {
			if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, NewFinding(d, file))
	}
	return out
}
