// Package analysis is the repository's static-analysis framework: a
// deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API (Analyzer, Pass, Diagnostic) plus
// the seven analyzers that encode this codebase's determinism and
// observability invariants. The toolchain image carries no module cache,
// so rather than vendoring x/tools (~10k files) the framework is built
// directly on the standard library's go/ast, go/parser and go/types; the
// analyzer surface is kept API-shaped like x/tools so the analyzers port
// verbatim if the dependency ever becomes available.
//
// Invariants enforced (one analyzer each; see DESIGN.md §11):
//
//   - rngsource:   RNG construction and the global rand functions live
//     only in internal/randx, the single seeding point.
//   - walltime:    wall-clock reads (time.Now/Since) only in telemetry,
//     trace, runner and the CLIs — never in model or solver code.
//   - maporder:    no map iteration whose body appends, writes output or
//     draws randomness (iteration-order nondeterminism).
//   - printguard:  no direct stdout/stderr writes outside cmd/, examples/
//     and internal/telemetry — output goes through the leveled logger.
//   - floateq:     no ==/!= on floating-point operands except against a
//     literal zero or under an explicit waiver.
//   - pprofimport: net/http/pprof linked only via internal/telemetry;
//     runtime/pprof linked only via internal/telemetry/prof.
//   - proflabels:  runtime/pprof's goroutine-label API called only in
//     internal/telemetry/prof, and literal label keys drawn only from
//     the fixed set figure/sweep_point/model/path/lane.
//
// Waivers: a line comment of the form
//
//	//lint:<analyzer> <justification>
//
// on (or immediately above) the offending line suppresses that analyzer
// there. A waiver without a justification is itself reported, so every
// exception in the tree carries its reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. The shape matches
// x/tools/go/analysis so the Run functions are portable.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint: waivers.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run applies the analyzer to a single type-checked package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed with comments, non-test files only
	Pkg       *types.Package
	TypesInfo *types.Info

	// RelPath is the package's import path relative to the module root:
	// "" for the root package, "internal/mux", "cmd/repro", … Policy
	// decisions (allowlists) are made against this, never the absolute
	// import path, so fixture modules exercise the same rules.
	RelPath string

	report  func(Diagnostic)
	waivers map[waiverKey][]string // (file,line) -> analyzer names waived
}

type waiverKey struct {
	file string
	line int
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos unless a //lint:<name> waiver
// covers the position's line (or the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.waivedAt(position) {
		return
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) waivedAt(pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range p.waivers[waiverKey{pos.Filename, line}] {
			if name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// waiverPrefix introduces a suppression comment: //lint:<analyzer> <why>.
const waiverPrefix = "//lint:"

// collectWaivers indexes every //lint: comment by (file, line) and
// reports bare waivers that carry no justification — an exception the
// author couldn't explain is not an exception.
func collectWaivers(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) map[waiverKey][]string {
	waivers := make(map[waiverKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				name, why, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(why) == "" {
					report(Diagnostic{
						Analyzer: "waiver",
						Pos:      pos,
						Message:  fmt.Sprintf("%s%s waiver needs a justification: //lint:%s <why>", waiverPrefix, name, name),
					})
					continue
				}
				k := waiverKey{pos.Filename, pos.Line}
				waivers[k] = append(waivers[k], name)
			}
		}
	}
	return waivers
}

// pathAllowed reports whether the module-relative package path rel falls
// under any of the allowed roots. A root matches its own directory and
// everything below it: "internal/telemetry" matches internal/telemetry
// and internal/telemetry/x; "cmd" matches every cmd/* package.
func pathAllowed(rel string, roots ...string) bool {
	for _, root := range roots {
		if rel == root || strings.HasPrefix(rel, root+"/") {
			return true
		}
	}
	return false
}

// pkgFunc resolves a call expression to (package path, function name) if
// its function is a selector on an imported package (e.g. time.Now), or
// ("", "") otherwise.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// isBuiltin reports whether the call invokes the named language builtin
// (append, print, println, …), resolved through the type checker so that
// shadowing declarations do not fool it.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	b, ok := info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == name
}
