// Package analysis is the repository's static-analysis framework: a
// deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API (Analyzer, Pass, Diagnostic) plus
// the nine analyzers that encode this codebase's determinism and
// observability invariants. The toolchain image carries no module cache,
// so rather than vendoring x/tools (~10k files) the framework is built
// directly on the standard library's go/ast, go/parser and go/types; the
// analyzer surface is kept API-shaped like x/tools so the analyzers port
// verbatim if the dependency ever becomes available.
//
// Invariants enforced (one analyzer each; see DESIGN.md §11):
//
//   - rngsource:   RNG construction and the global rand functions live
//     only in internal/randx, the single seeding point.
//   - walltime:    wall-clock reads (time.Now/Since) only in telemetry,
//     trace, runner and the CLIs — never in model or solver code.
//   - maporder:    no map iteration whose body appends, writes output or
//     draws randomness (iteration-order nondeterminism).
//   - printguard:  no direct stdout/stderr writes outside cmd/, examples/
//     and internal/telemetry — output goes through the leveled logger.
//   - floateq:     no ==/!= on floating-point operands except against a
//     literal zero or under an explicit waiver.
//   - pprofimport: net/http/pprof linked only via internal/telemetry;
//     runtime/pprof linked only via internal/telemetry/prof.
//   - proflabels:  runtime/pprof's goroutine-label API called only in
//     internal/telemetry/prof, and literal label keys drawn only from
//     the fixed set figure/sweep_point/model/path/lane.
//   - seedflow:    every seed handed to randx.NewRand or a generator
//     constructor is data-flow-reachable from internal/seed, a
//     caller-supplied parameter, a Seed config field or a flag — an
//     untracked entropy source silently breaks replay determinism.
//   - hotalloc:    heap-escape sites in the declared hot-path packages
//     stay within the committed escape budget
//     (results/golden/escape_budget.json) — a stray allocation in the
//     mux/fgn/fbndp inner loops costs more than any micro-optimisation
//     recovers.
//
// Waivers: a line comment of the form
//
//	//lint:<analyzer> <justification>
//
// on (or immediately above) the offending line suppresses that analyzer
// there. A waiver without a justification is itself reported, so every
// exception in the tree carries its reason. A waiver may carry an
// optional expiry as its first token — //lint:<analyzer>
// expires=2026-12-31 <justification> — after which it stops suppressing
// and is itself a finding, so temporary exceptions cannot fossilize.
// A waiver that names an unknown analyzer, or that suppresses nothing
// when its analyzer runs, is also a finding (waiver hygiene).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"time"
)

// An Analyzer describes one invariant check. The shape matches
// x/tools/go/analysis so the Run functions are portable.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint: waivers.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run applies the analyzer to a single type-checked package.
	Run func(*Pass) error
}

// A Resolver gives flow-sensitive analyzers on-demand access to the
// parsed, type-checked syntax of other packages in the same module, so
// an intra-procedural analysis can still follow a seed through a helper
// defined one package over. The Loader implements it; passes run outside
// a module walk carry a nil Resolver and analyzers degrade gracefully.
type Resolver interface {
	Load(path string) (*Package, error)
}

// RunOptions carries cross-cutting configuration for an analyzer run.
type RunOptions struct {
	// Now is the reference time for waiver expiry (//lint:x
	// expires=YYYY-MM-DD ...). The caller injects it — cmd/repolint and
	// the test gate pass the wall clock, fixtures pass a pinned date —
	// so the framework itself stays a pure function of its inputs. A
	// zero Now disables expiry checking.
	Now time.Time
	// Known is the set of analyzer names waivers may legally reference.
	// Nil means the registered suite (Names()).
	Known map[string]bool
	// Resolver provides cross-package syntax for flow analyses.
	Resolver Resolver
	// ModuleDir is the module root, used by analyzers that consult
	// per-module artifacts (the hotalloc escape budget).
	ModuleDir string
}

// A Pass provides one analyzer with one type-checked package and a sink
// for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed with comments, non-test files only
	Pkg       *types.Package
	TypesInfo *types.Info

	// RelPath is the package's import path relative to the module root:
	// "" for the root package, "internal/mux", "cmd/repro", … Policy
	// decisions (allowlists) are made against this, never the absolute
	// import path, so fixture modules exercise the same rules.
	RelPath string

	// Resolver and ModuleDir mirror RunOptions for analyzers that need
	// them; either may be zero when a pass runs standalone.
	Resolver  Resolver
	ModuleDir string

	report  func(Diagnostic)
	waivers *waiverSet
}

type waiverKey struct {
	file string
	line int
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos unless a //lint:<name> waiver
// covers the position's line (or the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportPosf(p.Fset.Position(pos), format, args...)
}

// ReportPosf is Reportf for analyzers whose findings originate outside
// the fileset — hotalloc's positions come from compiler diagnostics, not
// AST nodes. Waivers apply identically.
func (p *Pass) ReportPosf(position token.Position, format string, args ...any) {
	if p.waivers.waivedAt(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// waiverRecord is one registered (justified, unexpired) waiver comment.
type waiverRecord struct {
	name string
	pos  token.Position
	used bool
}

// waiverSet indexes a package's waivers and tracks which ones actually
// suppressed a diagnostic, so RunAnalyzers can flag dead ones.
type waiverSet struct {
	byLine map[waiverKey][]*waiverRecord
	all    []*waiverRecord
}

// waivedAt reports (and records) whether a waiver for analyzer name
// covers the position's line or the line above it.
func (ws *waiverSet) waivedAt(name string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, rec := range ws.byLine[waiverKey{pos.Filename, line}] {
			if rec.name == name {
				rec.used = true
				return true
			}
		}
	}
	return false
}

// waiverPrefix introduces a suppression comment: //lint:<analyzer> <why>.
const waiverPrefix = "//lint:"

// waiverExpiresPrefix introduces the optional expiry token.
const waiverExpiresPrefix = "expires="

// collectWaivers indexes every //lint: comment by (file, line) and
// reports the hygiene violations visible at parse time: bare waivers
// with no justification (an exception the author couldn't explain is not
// an exception), waivers naming an analyzer that doesn't exist (a typo'd
// waiver suppresses nothing and hides the author's intent), malformed
// expiry dates, and expired waivers. An expired waiver is not
// registered, so the finding it used to suppress resurfaces next to the
// expiry report — the suppression has to be re-justified or the code
// fixed.
func collectWaivers(fset *token.FileSet, files []*ast.File, opts RunOptions, report func(Diagnostic)) *waiverSet {
	known := opts.Known
	if known == nil {
		known = Names()
	}
	ws := &waiverSet{byLine: make(map[waiverKey][]*waiverRecord)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				name, why, _ := strings.Cut(rest, " ")
				why = strings.TrimSpace(why)
				pos := fset.Position(c.Pos())
				if tok, tail, _ := strings.Cut(why, " "); strings.HasPrefix(tok, waiverExpiresPrefix) {
					date := strings.TrimPrefix(tok, waiverExpiresPrefix)
					why = strings.TrimSpace(tail)
					exp, err := time.Parse("2006-01-02", date)
					if err != nil {
						report(Diagnostic{
							Analyzer: "waiver",
							Pos:      pos,
							Message:  fmt.Sprintf("//lint:%s waiver has malformed expiry %q: want expires=YYYY-MM-DD", name, date),
						})
						continue
					}
					if !opts.Now.IsZero() && exp.Before(opts.Now.Truncate(24*time.Hour)) {
						report(Diagnostic{
							Analyzer: "waiver",
							Pos:      pos,
							Message: fmt.Sprintf("//lint:%s waiver expired %s; re-justify it with a new expiry or fix the finding it suppressed",
								name, date),
						})
						continue
					}
				}
				if name == "" || why == "" {
					report(Diagnostic{
						Analyzer: "waiver",
						Pos:      pos,
						Message:  fmt.Sprintf("%s%s waiver needs a justification: //lint:%s <why>", waiverPrefix, name, name),
					})
					continue
				}
				if !known[name] {
					report(Diagnostic{
						Analyzer: "waiver",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:%s waiver names an unknown analyzer; registered: %s", name, strings.Join(sortedNames(known), ", ")),
					})
					continue
				}
				rec := &waiverRecord{name: name, pos: pos}
				k := waiverKey{pos.Filename, pos.Line}
				ws.byLine[k] = append(ws.byLine[k], rec)
				ws.all = append(ws.all, rec)
			}
		}
	}
	return ws
}

// reportUnused flags registered waivers for analyzers that ran but never
// suppressed anything — a dead waiver either outlived the code it
// excused or never matched it, and both hide drift.
func (ws *waiverSet) reportUnused(ran map[string]bool, report func(Diagnostic)) {
	for _, rec := range ws.all {
		if !rec.used && ran[rec.name] {
			report(Diagnostic{
				Analyzer: "waiver",
				Pos:      rec.pos,
				Message:  fmt.Sprintf("//lint:%s waiver suppresses nothing; remove it (or move it onto the offending line)", rec.name),
			})
		}
	}
}

// pathAllowed reports whether the module-relative package path rel falls
// under any of the allowed roots. A root matches its own directory and
// everything below it: "internal/telemetry" matches internal/telemetry
// and internal/telemetry/x; "cmd" matches every cmd/* package.
func pathAllowed(rel string, roots ...string) bool {
	for _, root := range roots {
		if rel == root || strings.HasPrefix(rel, root+"/") {
			return true
		}
	}
	return false
}

// pkgFunc resolves a call expression to (package path, function name) if
// its function is a selector on an imported package (e.g. time.Now), or
// ("", "") otherwise.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// isBuiltin reports whether the call invokes the named language builtin
// (append, print, println, …), resolved through the type checker so that
// shadowing declarations do not fool it.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	b, ok := info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == name
}
