package analysis

import (
	"go/ast"
	"go/types"
)

// printAllowed lists the trees that own the process's standard streams:
// the CLIs and examples (whose whole job is printing) and telemetry
// (which hosts the leveled logger and so necessarily holds the one
// os.Stderr default).
var printAllowed = []string{"cmd", "examples", "internal/telemetry"}

// PrintGuard flags direct standard-stream output in library code:
// fmt.Print/Printf/Println (implicit stdout), the print/println
// builtins, and any mention of os.Stdout or os.Stderr. Library packages
// report through the telemetry logger (or an injected io.Writer), so
// -quiet/-v behave uniformly and no diagnostic output can interleave
// with CLI results on stdout.
var PrintGuard = &Analyzer{
	Name: "printguard",
	Doc: "flags fmt.Print*, print/println builtins and os.Stdout/os.Stderr references " +
		"outside cmd/*, examples/* and internal/telemetry — library output goes through the leveled logger",
	Run: runPrintGuard,
}

func runPrintGuard(pass *Pass) error {
	if pathAllowed(pass.RelPath, printAllowed...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isBuiltin(pass.TypesInfo, n, "print") || isBuiltin(pass.TypesInfo, n, "println") {
					pass.Reportf(n.Pos(), "builtin %s writes to stderr; use telemetry.Log", n.Fun.(*ast.Ident).Name)
					return true
				}
				pkg, name := pkgFunc(pass.TypesInfo, n)
				if pkg == "fmt" && (name == "Print" || name == "Printf" || name == "Println") {
					pass.Reportf(n.Pos(), "fmt.%s writes to stdout from library code; use telemetry.Log or take an io.Writer", name)
				}
			case *ast.SelectorExpr:
				if n.Sel.Name != "Stdout" && n.Sel.Name != "Stderr" {
					return true
				}
				ident, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				if pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok && pn.Imported().Path() == "os" {
					pass.Reportf(n.Pos(), "os.%s referenced in library code; take an io.Writer or use telemetry.Log", n.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
