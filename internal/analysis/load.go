package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Loader type-checks the packages of one module from source, resolving
// imports through compiler export data obtained from a single
// `go list -deps -export` invocation. This is the offline substitute for
// x/tools/go/packages: the go command compiles (or reuses from the build
// cache) every dependency and hands back the object files, which the
// standard library's gc importer reads directly. No network, no module
// cache, no generated files on disk.
type Loader struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Module is the module path declared in go.mod.
	Module string
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet

	pkgs map[string]*listedPackage // import path -> metadata

	mu     sync.Mutex
	types  map[string]*types.Package // import cache for the gc importer
	loaded map[string]*loadResult    // Load memo: analyzers resolve cross-package syntax on demand
	imp    types.ImporterFrom
}

type loadResult struct {
	pkg *Package
	err error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// A Package is one fully parsed and type-checked module package, ready
// for analyzers.
type Package struct {
	Path    string // full import path
	RelPath string // module-relative path ("" for the root package)
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// NewLoader lists and prepares the module rooted at dir. The go command
// must be on PATH (it always is in this repository's CI and dev images).
func NewLoader(dir string) (*Loader, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard", "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list in %s: %v\n%s", dir, err, stderr.String())
	}
	l := &Loader{
		Dir:    dir,
		Module: module,
		Fset:   token.NewFileSet(),
		pkgs:   make(map[string]*listedPackage),
		types:  make(map[string]*types.Package),
		loaded: make(map[string]*loadResult),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		cp := p
		l.pkgs[p.ImportPath] = &cp
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup).(types.ImporterFrom)
	return l, nil
}

// modulePath reads the module declaration out of dir's go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module declaration in %s/go.mod", dir)
}

// ModulePackages returns the import paths of every package in the
// module, sorted, excluding anything under a testdata directory (fixture
// code deliberately violates the invariants).
func (l *Loader) ModulePackages() []string {
	var paths []string
	for path, p := range l.pkgs {
		if p.Standard || !inModule(path, l.Module) {
			continue
		}
		// Skip fixture code under the module's own testdata directories
		// (relative to the module root, so a module that itself lives
		// under some testdata dir — like this package's fixtures — still
		// lints fully).
		if rel, err := filepath.Rel(l.Dir, p.Dir); err == nil {
			if slashed := filepath.ToSlash(rel); slashed == "testdata" ||
				strings.HasPrefix(slashed, "testdata/") || strings.Contains(slashed, "/testdata/") {
				continue
			}
		}
		paths = append(paths, path)
	}
	sort.Strings(paths)
	return paths
}

func inModule(path, module string) bool {
	return path == module || strings.HasPrefix(path, module+"/")
}

// lookup feeds the gc importer the export data the go command produced.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	p, ok := l.pkgs[path]
	if !ok || p.Export == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(p.Export)
}

// Import implements types.Importer over the shared cache so analyzers'
// helper code (and the type-checker itself) resolve dependencies
// consistently.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p, ok := l.types[path]; ok {
		return p, nil
	}
	p, err := l.imp.ImportFrom(path, l.Dir, 0)
	if err != nil {
		return nil, err
	}
	l.types[path] = p
	return p, nil
}

// Load parses and type-checks one module package (non-test files only —
// the invariants govern shipping code; tests may use rand, clocks and
// prints freely). Results are memoised: the seedflow analyzer resolves
// helper bodies across package boundaries through this path, and every
// package is parsed and checked at most once per loader regardless of
// how many analyzers or passes ask for it.
func (l *Loader) Load(path string) (*Package, error) {
	l.mu.Lock()
	if r, ok := l.loaded[path]; ok {
		l.mu.Unlock()
		return r.pkg, r.err
	}
	l.mu.Unlock()
	pkg, err := l.load(path)
	l.mu.Lock()
	l.loaded[path] = &loadResult{pkg: pkg, err: err}
	l.mu.Unlock()
	return pkg, err
}

func (l *Loader) load(path string) (*Package, error) {
	p, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("package %q not in module listing", path)
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return &Package{
		Path:    path,
		RelPath: rel,
		Dir:     p.Dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// RunAnalyzers applies every analyzer to the package and returns the
// surviving (non-waived) diagnostics in file/line order, plus waiver
// hygiene findings: after the analyzers run, any registered waiver for
// an analyzer that DID run but suppressed nothing is reported as dead.
func RunAnalyzers(pkg *Package, fset *token.FileSet, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	waivers := collectWaivers(fset, pkg.Files, opts, report)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			RelPath:   pkg.RelPath,
			Resolver:  opts.Resolver,
			ModuleDir: opts.ModuleDir,
			report:    report,
			waivers:   waivers,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		ran[a.Name] = true
	}
	waivers.reportUnused(ran, report)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// sharedLoaders caches one Loader per module root for the life of the
// process, so the `go list -deps -export` walk and every package's parse
// and type-check run once no matter how many LintModule calls, analyzer
// fixture tests or flow-fact resolutions ask for the same module.
var sharedLoaders = struct {
	sync.Mutex
	m map[string]*Loader
}{m: make(map[string]*Loader)}

// SharedLoader returns the process-wide cached Loader for the module
// rooted at dir, creating it on first use.
func SharedLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	sharedLoaders.Lock()
	defer sharedLoaders.Unlock()
	if l, ok := sharedLoaders.m[abs]; ok {
		return l, nil
	}
	l, err := NewLoader(abs)
	if err != nil {
		return nil, err
	}
	sharedLoaders.m[abs] = l
	return l, nil
}

// LintModule loads every package of the module rooted at dir and runs
// the given analyzers over each, returning all diagnostics. Options
// default to zero values (no expiry clock, registered-suite waiver
// vocabulary).
func LintModule(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return LintModuleWith(dir, analyzers, RunOptions{})
}

// LintModuleWith is LintModule with explicit RunOptions. The loader is
// shared per module and wired into each pass as the Resolver, so flow
// analyzers can chase helpers across package boundaries without a second
// load.
func LintModuleWith(dir string, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	l, err := SharedLoader(dir)
	if err != nil {
		return nil, err
	}
	opts.Resolver = l
	opts.ModuleDir = l.Dir
	var all []Diagnostic
	for _, path := range l.ModulePackages() {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		diags, err := RunAnalyzers(pkg, l.Fset, analyzers, opts)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
