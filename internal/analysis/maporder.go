package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` statements over maps whose body performs an
// order-sensitive action: appending to a slice, writing output, or
// drawing from an RNG. Go randomises map iteration order per run, so any
// such loop produces run-dependent results — the exact class of bug the
// golden-manifest gate exists to catch, found here at compile time
// instead.
//
// The one blessed idiom is collect-then-sort: a body that only appends
// the keys (or values) to a slice which a later statement in the same
// block passes to the sort or slices package. That loop is recognised
// and allowed; anything else needs a //lint:maporder waiver with a
// justification.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration whose body appends, writes output or feeds an RNG " +
		"(iteration-order nondeterminism); collect-then-sort loops are allowed",
	Run: runMapOrder,
}

// writeMethods are method names treated as output sinks when called
// inside a map-range body: the io.Writer surface plus the repo's leveled
// logger verbs.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Errorf": true, "Warnf": true, "Infof": true, "Debugf": true,
}

func runMapOrder(pass *Pass) error {
	if pathAllowed(pass.RelPath, "cmd", "examples") {
		return nil // CLIs may render maps; simulation results never flow through map order there
	}
	for _, f := range pass.Files {
		// Walk with enough context to see the statements after each
		// range loop, so the collect-then-sort idiom can be recognised.
		ast.Inspect(f, func(n ast.Node) bool {
			body, ok := blockOf(n)
			if !ok {
				return true
			}
			for i, stmt := range body {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass.TypesInfo, rs) {
					continue
				}
				targets, sink := scanMapBody(pass.TypesInfo, rs.Body)
				if sink != "" {
					pass.Reportf(rs.Pos(), "%s", sink)
					continue
				}
				for _, target := range targets {
					if !sortedLater(pass.TypesInfo, body[i+1:], target) {
						pass.Reportf(rs.Pos(),
							"map iteration appends to %s in iteration order and it is never sorted; collect, sort, then use",
							target.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// blockOf returns the statement list of a block-bearing node.
func blockOf(n ast.Node) ([]ast.Stmt, bool) {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List, true
	case *ast.CaseClause:
		return n.Body, true
	case *ast.CommClause:
		return n.Body, true
	}
	return nil, false
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// scanMapBody classifies every order-sensitive action in a map-range
// body. Appends of the form `s = append(s, …)` (or `:=`) are the
// collect half of the collect-then-sort idiom: their targets are
// returned for the caller to check against a later sort. Any other
// sink — output, RNG draws, an append whose result goes anywhere but a
// local slice — is returned as a ready-made diagnostic message (first
// one wins; one finding per loop keeps output readable).
func scanMapBody(info *types.Info, body *ast.BlockStmt) (targets []types.Object, sink string) {
	// First pass: sanction appends that are the sole RHS of a
	// single-variable assignment, recording their collection targets.
	sanctioned := make(map[*ast.CallExpr]bool)
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") {
			return true
		}
		obj := info.Uses[lhs]
		if obj == nil {
			obj = info.Defs[lhs]
		}
		if obj == nil {
			return true
		}
		sanctioned[call] = true
		if !seen[obj] {
			seen[obj] = true
			targets = append(targets, obj)
		}
		return true
	})

	// Second pass: hunt sinks. Sanctioned append calls themselves are
	// fine, but their arguments are still walked (an RNG draw inside an
	// append argument is order-sensitive all the same).
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltin(info, call, "append"):
			if !sanctioned[call] {
				sink = "map iteration appends to a slice in iteration order; collect keys, sort, then iterate the sorted keys"
			}
			return true
		case isBuiltin(info, call, "print"), isBuiltin(info, call, "println"):
			sink = "map iteration writes output in iteration order"
			return false
		}
		switch pkg, _ := pkgFunc(info, call); pkg {
		case "fmt":
			sink = "map iteration writes output in iteration order"
			return false
		case "math/rand", "math/rand/v2":
			sink = "map iteration feeds an RNG in iteration order; the draw sequence becomes run-dependent"
			return false
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if selection := info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
				if writeMethods[sel.Sel.Name] {
					sink = "map iteration writes output in iteration order via " + sel.Sel.Name
					return false
				}
				if recvIsRand(selection.Recv()) {
					sink = "map iteration feeds an RNG in iteration order; the draw sequence becomes run-dependent"
					return false
				}
			}
		}
		return true
	})
	return targets, sink
}

// sortedLater reports whether a statement after the loop calls into the
// sort or slices package with the collected variable among its
// arguments.
func sortedLater(info *types.Info, rest []ast.Stmt, target types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, _ := pkgFunc(info, call)
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && info.Uses[id] == target {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// recvIsRand reports whether a method receiver type is (a pointer to)
// math/rand's Rand.
func recvIsRand(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return (path == "math/rand" || path == "math/rand/v2") && named.Obj().Name() == "Rand"
}
