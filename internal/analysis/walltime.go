package analysis

import (
	"go/ast"
)

// walltimeAllowed lists the package trees that may read the wall clock:
// telemetry (timers, manifests; the internal/telemetry root also covers
// internal/telemetry/prof, whose collector paces CPU windows with a
// ticker and stamps store index lines — pure observation, never inputs
// to a model), trace (span timestamps), runner (progress/ETA), the
// admission service (request/decision latency is the quantity it serves
// and reports — a server cannot be a pure function of its seed; see
// DESIGN.md §11) and the CLIs. Everything else — models, multiplexers,
// solvers — must be a pure function of its inputs and seed, or replays
// stop being bit-identical.
var walltimeAllowed = []string{
	"internal/telemetry",
	"internal/trace",
	"internal/runner",
	"internal/admitd",
	"cmd",
}

// WallTime flags time.Now and time.Since calls outside the observability
// packages and CLIs.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "flags time.Now/time.Since outside internal/telemetry, internal/trace, " +
		"internal/runner, internal/admitd and cmd/* — wall-clock reads in model code break replay determinism",
	Run: runWallTime,
}

func runWallTime(pass *Pass) error {
	if pathAllowed(pass.RelPath, walltimeAllowed...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(pass.TypesInfo, call)
			if pkg != "time" || (name != "Now" && name != "Since") {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a deterministic package; inject a clock or move the timing into telemetry/trace/runner",
				name)
			return true
		})
	}
	return nil
}
