package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// AAL5 segmentation and reassembly (I.363.5). A frame (CPCS-PDU) is padded
// so that payload + 8-byte trailer fills a whole number of cells; the
// trailer carries UU/CPI octets, the 16-bit length and a CRC-32 over the
// entire padded PDU. The last cell of a frame is marked by the
// AAL-indicate bit in the cell header's PT field.

// AAL5TrailerSize is the CPCS-PDU trailer length in bytes.
const AAL5TrailerSize = 8

// MaxAAL5Payload is the largest CPCS-PDU payload (16-bit length field).
const MaxAAL5Payload = 65535

// AAL5CellCount returns how many cells carry a frame of n payload bytes.
func AAL5CellCount(n int) int {
	return (n + AAL5TrailerSize + PayloadSize - 1) / PayloadSize
}

// SegmentAAL5 splits data into ATM cells on the given VPI/VCI, appending
// the padded AAL5 trailer and setting the end-of-frame payload type on the
// final cell.
func SegmentAAL5(h Header, data []byte) ([][]byte, error) {
	if len(data) > MaxAAL5Payload {
		return nil, fmt.Errorf("atm: AAL5 payload %d exceeds %d bytes", len(data), MaxAAL5Payload)
	}
	ncells := AAL5CellCount(len(data))
	pdu := make([]byte, ncells*PayloadSize)
	copy(pdu, data)
	// Trailer: UU(1) CPI(1) Length(2) CRC32(4), big-endian, at the very end.
	tr := pdu[len(pdu)-AAL5TrailerSize:]
	binary.BigEndian.PutUint16(tr[2:], uint16(len(data)))
	crc := crc32.ChecksumIEEE(pdu[:len(pdu)-4])
	binary.BigEndian.PutUint32(tr[4:], crc)

	cells := make([][]byte, ncells)
	for i := 0; i < ncells; i++ {
		ch := h
		if i == ncells-1 {
			ch.PT = h.PT | 0x1 // AAL-indicate: end of CPCS-PDU
		} else {
			ch.PT = h.PT &^ 0x1
		}
		cell, err := Marshal(ch, pdu[i*PayloadSize:(i+1)*PayloadSize])
		if err != nil {
			return nil, err
		}
		cells[i] = cell
	}
	return cells, nil
}

// Reassembly errors.
var (
	ErrAAL5CRC      = errors.New("atm: AAL5 CRC-32 mismatch")
	ErrAAL5Length   = errors.New("atm: AAL5 length field inconsistent")
	ErrAAL5NoFrame  = errors.New("atm: cell sequence holds no complete frame")
	ErrAAL5TooShort = errors.New("atm: AAL5 PDU shorter than its trailer")
)

// Reassembler collects cells of one virtual channel back into AAL5 frames.
// The zero value is ready to use. It is not safe for concurrent use.
type Reassembler struct {
	buf    []byte
	Frames [][]byte // completed frames, appended in order
	// Dropped counts PDUs discarded for CRC or length errors.
	Dropped int
}

// Push adds one cell's header and payload. When the cell completes a
// frame, the frame is verified and appended to r.Frames; corrupt frames
// increment r.Dropped. The error reports verification failures (the
// reassembler has already recovered by discarding).
func (r *Reassembler) Push(h Header, payload []byte) error {
	if len(payload) != PayloadSize {
		return fmt.Errorf("atm: AAL5 cell payload %d bytes, want %d", len(payload), PayloadSize)
	}
	r.buf = append(r.buf, payload...)
	if h.PT&0x1 == 0 {
		return nil // more cells to come
	}
	pdu := r.buf
	r.buf = nil
	if len(pdu) < AAL5TrailerSize {
		r.Dropped++
		return ErrAAL5TooShort
	}
	tr := pdu[len(pdu)-AAL5TrailerSize:]
	want := binary.BigEndian.Uint32(tr[4:])
	if crc32.ChecksumIEEE(pdu[:len(pdu)-4]) != want {
		r.Dropped++
		return ErrAAL5CRC
	}
	n := int(binary.BigEndian.Uint16(tr[2:]))
	if n > len(pdu)-AAL5TrailerSize || len(pdu)-AAL5TrailerSize-n >= PayloadSize {
		r.Dropped++
		return ErrAAL5Length
	}
	r.Frames = append(r.Frames, pdu[:n])
	return nil
}

// ReassembleAAL5 is a convenience wrapper: feed a whole cell sequence (raw
// 53-byte cells of a single VC, in order) and get the first complete
// verified frame.
func ReassembleAAL5(cells [][]byte, nni bool) ([]byte, error) {
	var r Reassembler
	for _, c := range cells {
		h, payload, err := Unmarshal(c, nni)
		if err != nil {
			return nil, err
		}
		if err := r.Push(h, payload); err != nil {
			return nil, err
		}
	}
	if len(r.Frames) == 0 {
		return nil, ErrAAL5NoFrame
	}
	return r.Frames[0], nil
}
