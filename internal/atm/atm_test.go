package atm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeaderValidate(t *testing.T) {
	good := []Header{
		{GFC: 15, VPI: 255, VCI: 65535, PT: 7, CLP: true},
		{NNI: true, VPI: 4095, VCI: 1},
	}
	for i, h := range good {
		if err := h.Validate(); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
	bad := []Header{
		{GFC: 16},
		{VPI: 256},
		{NNI: true, GFC: 1},
		{NNI: true, VPI: 4096},
		{PT: 8},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad case %d: expected error", i)
		}
	}
}

func TestHECKnownVector(t *testing.T) {
	// All-zero header: CRC-8(0,0,0,0) = 0, coset gives 0x55.
	if got := HEC([]byte{0, 0, 0, 0}); got != 0x55 {
		t.Fatalf("HEC(0000) = %#x, want 0x55", got)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	h := Header{GFC: 2, VPI: 42, VCI: 1234, PT: PTUser0End, CLP: true}
	payload := bytes.Repeat([]byte{0xAB}, PayloadSize)
	cell, err := Marshal(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell) != CellSize {
		t.Fatalf("cell %d bytes", len(cell))
	}
	got, pl, err := Unmarshal(cell, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header %+v, want %+v", got, h)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestMarshalNNIRoundTrip(t *testing.T) {
	h := Header{NNI: true, VPI: 3000, VCI: 77, PT: PTResourceMgmt}
	cell, err := Marshal(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Unmarshal(cell, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header %+v, want %+v", got, h)
	}
}

func TestMarshalRejects(t *testing.T) {
	if _, err := Marshal(Header{GFC: 99}, nil); err == nil {
		t.Error("invalid header should error")
	}
	if _, err := Marshal(Header{}, make([]byte, PayloadSize+1)); err == nil {
		t.Error("oversize payload should error")
	}
}

func TestUnmarshalDetectsCorruption(t *testing.T) {
	cell, err := Marshal(Header{VPI: 1, VCI: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cell[1] ^= 0x40
	if _, _, err := Unmarshal(cell, false); err != ErrBadHEC {
		t.Fatalf("got %v, want ErrBadHEC", err)
	}
	if _, _, err := Unmarshal(cell[:10], false); err != ErrShortCell {
		t.Fatalf("got %v, want ErrShortCell", err)
	}
}

// Property: round trip holds for arbitrary valid headers and payloads.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(gfc, pt uint8, vpi, vci uint16, clp bool, seed int64) bool {
		h := Header{
			GFC: gfc % 16, VPI: vpi % 256, VCI: vci,
			PT: pt % 8, CLP: clp,
		}
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, PayloadSize)
		rng.Read(payload)
		cell, err := Marshal(h, payload)
		if err != nil {
			return false
		}
		got, pl, err := Unmarshal(cell, false)
		return err == nil && got == h && bytes.Equal(pl, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every single-bit header corruption is detected by the HEC and
// corrected by CorrectHEC.
func TestCorrectHECSingleBitProperty(t *testing.T) {
	f := func(vpi, vci uint16, bit uint8) bool {
		cell, err := Marshal(Header{VPI: vpi % 256, VCI: vci}, nil)
		if err != nil {
			return false
		}
		b := int(bit) % (HeaderSize * 8)
		cell[b/8] ^= 1 << (7 - uint(b%8))
		orig := append([]byte(nil), cell...)
		fixed := CorrectHEC(cell)
		if fixed != b {
			return false
		}
		// After correction the header verifies.
		_, _, err = Unmarshal(cell, false)
		_ = orig
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectHECCleanAndMultibit(t *testing.T) {
	cell, _ := Marshal(Header{VPI: 5, VCI: 6}, nil)
	if got := CorrectHEC(cell); got != -1 {
		t.Fatalf("clean header 'corrected' at bit %d", got)
	}
	cell[0] ^= 0xFF // many bit errors
	if got := CorrectHEC(cell); got != -1 {
		t.Fatalf("multibit error 'corrected' at bit %d", got)
	}
	if CorrectHEC(nil) != -1 {
		t.Fatal("nil input should return -1")
	}
}

func TestAAL5CellCount(t *testing.T) {
	cases := map[int]int{
		0:   1, // trailer alone
		1:   1, // 1 + 8 ≤ 48
		40:  1, // exactly fills with trailer
		41:  2, // spills
		48:  2,
		100: 3, // 108 bytes → 3 cells
	}
	for n, want := range cases {
		if got := AAL5CellCount(n); got != want {
			t.Errorf("AAL5CellCount(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAAL5RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := Header{VPI: 7, VCI: 99}
	for _, n := range []int{0, 1, 40, 41, 48, 1000, 65535} {
		data := make([]byte, n)
		rng.Read(data)
		cells, err := SegmentAAL5(h, data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(cells) != AAL5CellCount(n) {
			t.Fatalf("n=%d: %d cells, want %d", n, len(cells), AAL5CellCount(n))
		}
		got, err := ReassembleAAL5(cells, false)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: frame corrupted", n)
		}
	}
}

func TestAAL5RejectsOversize(t *testing.T) {
	if _, err := SegmentAAL5(Header{}, make([]byte, MaxAAL5Payload+1)); err == nil {
		t.Fatal("oversize frame should error")
	}
}

func TestAAL5DetectsPayloadCorruption(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 100)
	cells, err := SegmentAAL5(Header{VCI: 1}, data)
	if err != nil {
		t.Fatal(err)
	}
	cells[0][HeaderSize] ^= 0x01 // flip a payload bit (HEC still fine)
	if _, err := ReassembleAAL5(cells, false); err != ErrAAL5CRC {
		t.Fatalf("got %v, want ErrAAL5CRC", err)
	}
}

func TestAAL5MultipleFramesOneVC(t *testing.T) {
	var r Reassembler
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 10+i*50)
		cells, err := SegmentAAL5(Header{VCI: 5}, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			h, pl, err := Unmarshal(c, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Push(h, pl); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(r.Frames) != 3 || r.Dropped != 0 {
		t.Fatalf("%d frames, %d dropped", len(r.Frames), r.Dropped)
	}
	for i, f := range r.Frames {
		if len(f) != 10+i*50 || f[0] != byte(i+1) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
}

func TestReassemblerDropAccounting(t *testing.T) {
	var r Reassembler
	// An end-of-frame cell with random payload: CRC cannot hold.
	cell, _ := Marshal(Header{PT: PTUser0End}, bytes.Repeat([]byte{9}, PayloadSize))
	h, pl, _ := Unmarshal(cell, false)
	if err := r.Push(h, pl); err == nil {
		t.Fatal("expected CRC failure")
	}
	if r.Dropped != 1 || len(r.Frames) != 0 {
		t.Fatalf("dropped %d frames %d", r.Dropped, len(r.Frames))
	}
	// The reassembler has reset and accepts a good frame afterwards.
	cells, _ := SegmentAAL5(Header{}, []byte("hello"))
	for _, c := range cells {
		h, pl, _ := Unmarshal(c, false)
		if err := r.Push(h, pl); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Frames) != 1 || string(r.Frames[0]) != "hello" {
		t.Fatal("recovery after drop failed")
	}
	if err := r.Push(Header{}, []byte("short")); err == nil {
		t.Fatal("wrong payload size should error")
	}
}

func BenchmarkMarshal(b *testing.B) {
	h := Header{VPI: 1, VCI: 2, PT: PTUser0}
	payload := make([]byte, PayloadSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(h, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentAAL5(b *testing.B) {
	data := make([]byte, 20000) // ~a video frame's worth of bytes
	h := Header{VCI: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SegmentAAL5(h, data); err != nil {
			b.Fatal(err)
		}
	}
}
