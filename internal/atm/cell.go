// Package atm implements the ATM cell layer the paper's multiplexers
// carry: the 53-byte UNI/NNI cell format with header error control (HEC),
// and AAL5 segmentation and reassembly for carrying video frames as cell
// bursts. The queueing analysis elsewhere in this repository treats cells
// as fluid volumes; this package provides the concrete wire format so the
// cell-level simulator (package cellsim) and the examples can move real
// cells, and so buffer sizes in cells translate to bytes.
//
// Cell layout (UNI):
//
//	bits  | field
//	------+----------------------------
//	 4    | GFC (generic flow control)
//	 8    | VPI (virtual path id)
//	16    | VCI (virtual channel id)
//	 3    | PT  (payload type)
//	 1    | CLP (cell loss priority)
//	 8    | HEC (CRC-8 over the first four header bytes, coset 0x55)
//	48 B  | payload
//
// NNI cells widen VPI to 12 bits by absorbing the GFC field.
package atm

import (
	"errors"
	"fmt"
)

// Dimension constants of the ATM cell.
const (
	CellSize    = 53 // bytes on the wire
	HeaderSize  = 5
	PayloadSize = 48
	BitsPerCell = CellSize * 8
)

// Payload type indicator values (3 bits). Bit 2 distinguishes OAM cells,
// bit 1 carries explicit congestion indication for user cells, and bit 0
// is the AAL-indicate bit AAL5 uses to mark the last cell of a frame.
const (
	PTUser0          = 0b000 // user data, no congestion, not end of AAL5 frame
	PTUser0End       = 0b001 // user data, no congestion, AAL5 frame end
	PTUserCongested  = 0b010
	PTUserCongEnd    = 0b011
	PTSegmentOAM     = 0b100
	PTEndToEndOAM    = 0b101
	PTResourceMgmt   = 0b110
	PTReservedFuture = 0b111
)

// Header is a decoded ATM cell header.
type Header struct {
	GFC uint8  // 4 bits (UNI only; must be 0 for NNI)
	VPI uint16 // 8 bits UNI, 12 bits NNI
	VCI uint16 // 16 bits
	PT  uint8  // 3 bits
	CLP bool   // cell loss priority: true = discard-eligible
	NNI bool   // network-network format (wide VPI, no GFC)
}

// Validate checks field widths.
func (h Header) Validate() error {
	if h.NNI {
		if h.GFC != 0 {
			return errors.New("atm: NNI cells have no GFC field")
		}
		if h.VPI > 0xFFF {
			return fmt.Errorf("atm: NNI VPI %d exceeds 12 bits", h.VPI)
		}
	} else {
		if h.GFC > 0xF {
			return fmt.Errorf("atm: GFC %d exceeds 4 bits", h.GFC)
		}
		if h.VPI > 0xFF {
			return fmt.Errorf("atm: UNI VPI %d exceeds 8 bits", h.VPI)
		}
	}
	if h.PT > 0x7 {
		return fmt.Errorf("atm: PT %d exceeds 3 bits", h.PT)
	}
	return nil
}

// hecTable is the CRC-8 table for the HEC polynomial
// x⁸ + x² + x + 1 (0x07).
var hecTable = func() [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		crc := byte(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

// hecCoset is XORed into the CRC per I.432 to improve delineation
// robustness against bit slips.
const hecCoset = 0x55

// HEC computes the header error control byte over the first four header
// bytes.
func HEC(first4 []byte) byte {
	var crc byte
	for _, b := range first4[:4] {
		crc = hecTable[crc^b]
	}
	return crc ^ hecCoset
}

// Marshal encodes the header and payload into a fresh 53-byte cell.
// payload must be at most PayloadSize bytes; shorter payloads are
// zero-padded (AAL5 handles padding semantics explicitly).
func Marshal(h Header, payload []byte) ([]byte, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(payload) > PayloadSize {
		return nil, fmt.Errorf("atm: payload %d bytes exceeds %d", len(payload), PayloadSize)
	}
	cell := make([]byte, CellSize)
	if h.NNI {
		cell[0] = byte(h.VPI >> 4)
		cell[1] = byte(h.VPI&0xF)<<4 | byte(h.VCI>>12)
	} else {
		cell[0] = h.GFC<<4 | byte(h.VPI>>4)
		cell[1] = byte(h.VPI&0xF)<<4 | byte(h.VCI>>12)
	}
	cell[2] = byte(h.VCI >> 4)
	cell[3] = byte(h.VCI&0xF)<<4 | h.PT<<1
	if h.CLP {
		cell[3] |= 1
	}
	cell[4] = HEC(cell[:4])
	copy(cell[HeaderSize:], payload)
	return cell, nil
}

// ErrBadHEC reports a header whose HEC check failed.
var ErrBadHEC = errors.New("atm: header error control mismatch")

// ErrShortCell reports input shorter than one cell.
var ErrShortCell = errors.New("atm: short cell")

// Unmarshal decodes a 53-byte cell, verifying the HEC. Set nni to decode
// the network-network header layout. The returned payload aliases the
// input.
func Unmarshal(cell []byte, nni bool) (Header, []byte, error) {
	if len(cell) < CellSize {
		return Header{}, nil, ErrShortCell
	}
	if HEC(cell[:4]) != cell[4] {
		return Header{}, nil, ErrBadHEC
	}
	var h Header
	h.NNI = nni
	if nni {
		h.VPI = uint16(cell[0])<<4 | uint16(cell[1])>>4
	} else {
		h.GFC = cell[0] >> 4
		h.VPI = uint16(cell[0]&0xF)<<4 | uint16(cell[1])>>4
	}
	h.VCI = uint16(cell[1]&0xF)<<12 | uint16(cell[2])<<4 | uint16(cell[3])>>4
	h.PT = (cell[3] >> 1) & 0x7
	h.CLP = cell[3]&1 != 0
	return h, cell[HeaderSize:CellSize], nil
}

// CorrectHEC attempts single-bit correction of a header whose HEC failed,
// per the I.432 correction mode: if exactly one bit flip (in the 40 header
// bits) restores consistency, it is applied in place and the corrected bit
// index returned. Returns -1 if no single-bit correction exists (multi-bit
// error: the cell must be discarded).
func CorrectHEC(cell []byte) int {
	if len(cell) < HeaderSize {
		return -1
	}
	if HEC(cell[:4]) == cell[4] {
		return -1 // nothing to correct
	}
	for bit := 0; bit < HeaderSize*8; bit++ {
		idx, mask := bit/8, byte(1)<<(7-uint(bit%8))
		cell[idx] ^= mask
		if HEC(cell[:4]) == cell[4] {
			return bit
		}
		cell[idx] ^= mask
	}
	return -1
}
