// Package fft provides an iterative radix-2 fast Fourier transform over
// complex128 slices. It exists to support the Davies-Harte exact synthesis
// of fractional Gaussian noise (package fgn); the transform sizes there are
// always powers of two, so a radix-2 kernel is all that is needed.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place forward DFT
// X[k] = Σ_j x[j]·e^{−2πi jk/n}. len(x) must be a power of two.
func Forward(x []complex128) error { return transform(x, -1) }

// Inverse computes the in-place inverse DFT, including the 1/n scaling, so
// Inverse(Forward(x)) == x. len(x) must be a power of two.
func Inverse(x []complex128) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	inv := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= inv
	}
	return nil
}

// transform runs the iterative Cooley-Tukey butterfly with twiddle sign s.
func transform(x []complex128, s float64) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := s * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// RealForward transforms a real sequence, returning a freshly allocated
// complex spectrum of the same (power-of-two) length.
func RealForward(x []float64) ([]complex128, error) {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if err := Forward(c); err != nil {
		return nil, err
	}
	return c, nil
}
