package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for length 3")
	}
	if err := Inverse(make([]complex128, 0)); err == nil {
		t.Fatal("expected error for length 0")
	}
}

func TestForwardImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestForwardConstant(t *testing.T) {
	// DFT of a constant is an impulse of height n at bin 0.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = 2
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-complex(float64(2*n), 0)) > 1e-9 {
		t.Fatalf("X[0] = %v, want %d", x[0], 2*n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[k]) > 1e-9 {
			t.Fatalf("X[%d] = %v, want 0", k, x[k])
		}
	}
}

func TestForwardSingleTone(t *testing.T) {
	// x[j] = e^{2πi·3j/n} concentrates all energy in bin 3.
	n := 32
	x := make([]complex128, n)
	for j := range x {
		x[j] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(j)/float64(n)))
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for k := range x {
		want := 0.0
		if k == 3 {
			want = float64(n)
		}
		if cmplx.Abs(x[k]-complex(want, 0)) > 1e-9 {
			t.Fatalf("X[%d] = %v, want %v", k, x[k], want)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		want[k] = s
	}
	got := append([]complex128(nil), x...)
	if err := Forward(got); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("bin %d: fft %v, naive %v", k, got[k], want[k])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 8, 256, 4096} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), x...)
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d: round trip diverged at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

// Property: Parseval's identity Σ|x|² = (1/n)Σ|X|².
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(8))
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := Forward(x); err != nil {
			return false
		}
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-8*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity F(ax + by) = aF(x) + bF(y).
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		b := complex(rng.NormFloat64(), rng.NormFloat64())
		x := make([]complex128, n)
		y := make([]complex128, n)
		combo := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			combo[i] = a*x[i] + b*y[i]
		}
		if Forward(x) != nil || Forward(y) != nil || Forward(combo) != nil {
			return false
		}
		for i := range combo {
			if cmplx.Abs(combo[i]-(a*x[i]+b*y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRealForward(t *testing.T) {
	c, err := RealForward([]float64{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range c {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
	if _, err := RealForward(make([]float64, 5)); err == nil {
		t.Fatal("expected error for non-power-of-two input")
	}
}

func TestRealSpectrumConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c, err := RealForward(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(c[k]-cmplx.Conj(c[n-k])) > 1e-9 {
			t.Fatalf("conjugate symmetry broken at bin %d", k)
		}
	}
}

func BenchmarkForward4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}
