package mmpp

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/traffic"
)

func fitStd(t testing.TB, a float64) *Model {
	t.Helper()
	m, err := Fit(500, 5000, a, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{R1: -1, R2: 0, Theta: 1, Ts: 1},
		{R1: 0, R2: 0, Theta: 1, Ts: 1},
		{R1: 1, R2: 2, Theta: 1, Ts: 1}, // R1 < R2
		{R1: 2, R2: 1, Theta: 0, Ts: 1},
		{R1: 2, R2: 1, Theta: 1, Ts: 0},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFitHitsTargets(t *testing.T) {
	for _, a := range []float64{0.5, 0.9, 0.99} {
		m := fitStd(t, a)
		if got := m.Mean(); math.Abs(got-500) > 1e-9 {
			t.Fatalf("a=%v: mean %v", a, got)
		}
		if got := m.Variance(); math.Abs(got-5000)/5000 > 1e-9 {
			t.Fatalf("a=%v: variance %v", a, got)
		}
		if got := m.ACF(2) / m.ACF(1); math.Abs(got-a) > 1e-9 {
			t.Fatalf("a=%v: decay ratio %v", a, got)
		}
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(500, 400, 0.9, 0.04); err == nil {
		t.Error("under-dispersion should error")
	}
	if _, err := Fit(500, 5000, 0, 0.04); err == nil {
		t.Error("a=0 should error")
	}
	if _, err := Fit(500, 5000, 1, 0.04); err == nil {
		t.Error("a=1 should error")
	}
	// Huge variance at weak correlation drives the low rate negative.
	if _, err := Fit(10, 1e9, 0.01, 0.04); err == nil {
		t.Error("infeasible target should error")
	}
}

func TestACFGeometricBeyondLag1(t *testing.T) {
	m := fitStd(t, 0.9)
	for k := 1; k <= 30; k++ {
		want := m.ACF(1) * math.Pow(0.9, float64(k-1))
		if got := m.ACF(k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("ACF(%d) = %v, want %v", k, got, want)
		}
	}
	if m.ACF(0) != 1 || m.ACF(-2) != m.ACF(2) {
		t.Fatal("basic ACF properties violated")
	}
}

func TestLag1BelowDecayRatio(t *testing.T) {
	// The Poisson noise floor makes r(1) < a (unlike DAR(1) where r(1)=a):
	// lag-0 includes the Poisson variance that lags share none of.
	m := fitStd(t, 0.9)
	if m.ACF(1) >= 0.9 {
		t.Fatalf("r(1) = %v should sit below the decay ratio", m.ACF(1))
	}
	if m.ACF(1) <= 0 {
		t.Fatal("r(1) must be positive")
	}
}

func TestGeneratorMoments(t *testing.T) {
	m := fitStd(t, 0.9)
	var meanSum, varSum float64
	const reps = 4
	for seed := int64(1); seed <= reps; seed++ {
		xs := traffic.Generate(m.NewGenerator(seed), 100000)
		meanSum += stats.Mean(xs)
		varSum += stats.Variance(xs)
	}
	if got := meanSum / reps; math.Abs(got-500)/500 > 0.03 {
		t.Fatalf("mean %v, want ≈500", got)
	}
	if got := varSum / reps; math.Abs(got-5000)/5000 > 0.1 {
		t.Fatalf("variance %v, want ≈5000", got)
	}
}

func TestGeneratorACF(t *testing.T) {
	m := fitStd(t, 0.9)
	xs := traffic.Generate(m.NewGenerator(11), 300000)
	acf := stats.ACF(xs, 5)
	for k := 1; k <= 5; k++ {
		if math.Abs(acf[k]-m.ACF(k)) > 0.03 {
			t.Fatalf("ACF(%d) = %v, analytic %v", k, acf[k], m.ACF(k))
		}
	}
}

func TestGeneratorSRD(t *testing.T) {
	// Long-lag correlations must vanish — this is the Markov control.
	m := fitStd(t, 0.9)
	xs := traffic.Generate(m.NewGenerator(5), 300000)
	acf := stats.ACF(xs, 200)
	var tail float64
	for k := 100; k <= 200; k++ {
		tail += acf[k]
	}
	if avg := tail / 101; math.Abs(avg) > 0.02 {
		t.Fatalf("long-lag mean ACF %v; should be ≈0 for SRD", avg)
	}
}

func TestGeneratorReproducible(t *testing.T) {
	m := fitStd(t, 0.5)
	a := traffic.Generate(m.NewGenerator(3), 200)
	b := traffic.Generate(m.NewGenerator(3), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed paths diverged")
		}
	}
}

func TestName(t *testing.T) {
	m := fitStd(t, 0.9)
	if m.Name() != "MMPP2(a=0.9)" {
		t.Fatalf("name %q", m.Name())
	}
	m.SetName("x")
	if m.Name() != "x" {
		t.Fatal("SetName failed")
	}
}

func BenchmarkGeneratorFrame(b *testing.B) {
	m, err := Fit(500, 5000, 0.9, 0.04)
	if err != nil {
		b.Fatal(err)
	}
	g := m.NewGenerator(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextFrame()
	}
}
