// Package mmpp implements the two-state Markov-modulated Poisson process,
// the classical short-range-dependent video source model of the
// pre-LRD literature (the "traditional Markovian models" the paper's §6
// contrasts with). A continuous-time Markov chain switches the arrival
// rate between r1 and r2; counting arrivals per frame gives a frame-size
// process whose autocorrelation decays geometrically, like DAR(1), but
// whose within-frame structure is a genuine point process.
//
// For the symmetric chain used here (equal sojourn rates θ/2, stationary
// probabilities ½/½) with rate gap Δ = r1 − r2 and frame duration Ts:
//
//	E[X]    = λTs,                λ = (r1+r2)/2
//	Var[X]  = λTs + (Δ²/2)·[Ts/θ − (1−e^{−θTs})/θ²]
//	Cov(k)  = (Δ²/4)·e^{−θ(k−1)Ts}·[(1−e^{−θTs})/θ]²,  k ≥ 1
//
// so r(k+1)/r(k) = e^{−θTs} exactly for k ≥ 1: geometric decay, with the
// lag-0 → lag-1 drop set by the Poisson noise floor.
package mmpp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/randx"
	"repro/internal/traffic"
)

// Params parameterises the symmetric 2-state MMPP.
type Params struct {
	R1    float64 // arrival rate in the high state, cells/sec
	R2    float64 // arrival rate in the low state, cells/sec
	Theta float64 // θ = sum of the two switching rates (1/mean cycle·2), 1/sec
	Ts    float64 // frame duration, seconds
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.R1 < 0 || p.R2 < 0 || p.R1+p.R2 == 0 {
		return fmt.Errorf("mmpp: rates (%v, %v) must be non-negative and not both zero", p.R1, p.R2)
	}
	if p.R1 < p.R2 {
		return fmt.Errorf("mmpp: want R1 ≥ R2, got %v < %v", p.R1, p.R2)
	}
	if p.Theta <= 0 {
		return fmt.Errorf("mmpp: theta %v must be positive", p.Theta)
	}
	if p.Ts <= 0 {
		return fmt.Errorf("mmpp: frame duration %v must be positive", p.Ts)
	}
	return nil
}

// Model is a 2-state MMPP frame-size source implementing traffic.Model.
type Model struct {
	P    Params
	name string
}

// New validates p and wraps it as a Model.
func New(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{P: p, name: "MMPP2"}, nil
}

// Fit constructs the symmetric MMPP matching a target frame-size mean,
// variance and geometric ACF ratio a = r(2)/r(1) ∈ (0, 1) at frame
// duration ts — the continuous-time analogue of fitting a DAR(1).
// Feasibility requires the implied low rate to stay non-negative
// (sufficient over-dispersion for the chosen a).
func Fit(mean, variance, a, ts float64) (*Model, error) {
	if mean <= 0 || variance <= mean {
		return nil, fmt.Errorf("mmpp: need variance %v > mean %v > 0", variance, mean)
	}
	if a <= 0 || a >= 1 {
		return nil, fmt.Errorf("mmpp: decay ratio %v outside (0, 1)", a)
	}
	theta := -math.Log(a) / ts
	lambda := mean / ts
	// Var = mean + (Δ²/2)·[ts/θ − (1−a)/θ²]  (e^{−θts} = a).
	bracket := ts/theta - (1-a)/(theta*theta)
	if bracket <= 0 {
		return nil, fmt.Errorf("mmpp: degenerate variance bracket for a=%v", a)
	}
	delta2 := 2 * (variance - mean) / bracket
	delta := math.Sqrt(delta2)
	r1 := lambda + delta/2
	r2 := lambda - delta/2
	if r2 < 0 {
		return nil, fmt.Errorf("mmpp: target (mean=%v, var=%v, a=%v) infeasible: low rate %v < 0",
			mean, variance, a, r2)
	}
	m, err := New(Params{R1: r1, R2: r2, Theta: theta, Ts: ts})
	if err != nil {
		return nil, err
	}
	m.name = fmt.Sprintf("MMPP2(a=%g)", a)
	return m, nil
}

// Name implements traffic.Model.
func (m *Model) Name() string { return m.name }

// SetName overrides the display name.
func (m *Model) SetName(name string) { m.name = name }

// lambda returns the mean arrival rate (r1+r2)/2.
func (m *Model) lambda() float64 { return (m.P.R1 + m.P.R2) / 2 }

// Mean implements traffic.Model.
func (m *Model) Mean() float64 { return m.lambda() * m.P.Ts }

// delta2 returns (r1−r2)².
func (m *Model) delta2() float64 {
	d := m.P.R1 - m.P.R2
	return d * d
}

// Variance implements traffic.Model.
func (m *Model) Variance() float64 {
	th, ts := m.P.Theta, m.P.Ts
	return m.Mean() + m.delta2()/2*(ts/th-(1-math.Exp(-th*ts))/(th*th))
}

// ACF implements traffic.Model.
func (m *Model) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	th, ts := m.P.Theta, m.P.Ts
	g := (1 - math.Exp(-th*ts)) / th
	cov := m.delta2() / 4 * math.Exp(-th*ts*float64(k-1)) * g * g
	return cov / m.Variance()
}

// generator simulates the CTMC phase and draws Poisson counts from the
// integrated rate over each frame.
type generator struct {
	p     Params
	rng   *rand.Rand
	high  bool
	until float64 // time of next phase switch
	now   float64
}

// NewGenerator implements traffic.Model, starting the chain in its
// stationary distribution (each state probability ½, exponential residual
// by memorylessness).
func (m *Model) NewGenerator(seed int64) traffic.Generator {
	rng := randx.NewRand(seed)
	g := &generator{p: m.P, rng: rng, high: rng.Float64() < 0.5}
	g.until = g.rng.ExpFloat64() * 2 / m.P.Theta // sojourn rate θ/2
	return g
}

// NextFrame integrates the rate over one frame and draws the count.
func (g *generator) NextFrame() float64 { return g.frame() }

// Fill implements traffic.BlockGenerator in the scalar draw order
// (bit-identical paths).
func (g *generator) Fill(dst []float64) {
	for i := range dst {
		dst[i] = g.frame()
	}
}

// frame integrates the rate over one frame and draws the count.
func (g *generator) frame() float64 {
	end := g.now + g.p.Ts
	var exposure float64 // ∫ rate dt over the frame
	for g.until < end {
		exposure += g.rate() * (g.until - g.now)
		g.now = g.until
		g.high = !g.high
		g.until = g.now + g.rng.ExpFloat64()*2/g.p.Theta
	}
	exposure += g.rate() * (end - g.now)
	g.now = end
	return float64(randx.Poisson(g.rng, exposure))
}

func (g *generator) rate() float64 {
	if g.high {
		return g.p.R1
	}
	return g.p.R2
}
