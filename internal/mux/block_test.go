package mux

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/traffic"
)

// goldenModels builds the paper's four source families for the
// block/scalar equivalence tests: V^1 (intra-frame), Z^0.975 (composite
// LRD), S = DAR(2) fit of Z, and L (long-term only).
func goldenModels(t *testing.T) []traffic.Model {
	t.Helper()
	v, err := models.NewV(1)
	if err != nil {
		t.Fatal(err)
	}
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	s, err := models.FitS(z, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := models.NewL()
	if err != nil {
		t.Fatal(err)
	}
	return []traffic.Model{v, z, s, l}
}

// TestRunBlockScalarGolden drives the same seed through the native block
// path and through traffic.ScalarModel (which hides every Fill and forces
// the per-frame fallback) and demands the full Result structs be equal —
// CLR, loss accounting, workload statistics, everything. The horizon
// spans several 4096-frame chunks plus a ragged tail so chunk boundaries
// are exercised.
func TestRunBlockScalarGolden(t *testing.T) {
	for _, m := range goldenModels(t) {
		cfg := Config{Model: m, N: 10, C: 538, B: 30, Frames: 9000, Warmup: 300, Seed: 42}
		native, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s native: %v", m.Name(), err)
		}
		cfg.Model = traffic.ScalarModel(m)
		scalar, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s scalar: %v", m.Name(), err)
		}
		if native != scalar {
			t.Fatalf("%s: block result %+v != scalar result %+v", m.Name(), native, scalar)
		}
		if native.ArrivedCells == 0 {
			t.Fatalf("%s: degenerate run, no arrivals", m.Name())
		}
	}
}

// TestRunSweepBlockScalarGolden repeats the equivalence check through the
// coupled buffer sweep.
func TestRunSweepBlockScalarGolden(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	buffers := []float64{0, 27, 134}
	cfg := Config{Model: z, N: 10, C: 538, Frames: 9000, Warmup: 300, Seed: 7}
	native, err := RunSweep(cfg, buffers)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Model = traffic.ScalarModel(z)
	scalar, err := RunSweep(cfg, buffers)
	if err != nil {
		t.Fatal(err)
	}
	for j := range native {
		if native[j] != scalar[j] {
			t.Fatalf("buffer %v: block %+v != scalar %+v", buffers[j], native[j], scalar[j])
		}
	}
}

// TestRunBOPBlockScalarGolden repeats the equivalence check through the
// infinite-buffer overflow estimator.
func TestRunBOPBlockScalarGolden(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BOPConfig{
		Model: z, N: 10, C: 538, Frames: 9000, Warmup: 300, Seed: 3,
		Thresholds: []float64{0, 100, 1000},
	}
	native, err := RunBOP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Model = traffic.ScalarModel(z)
	scalar, err := RunBOP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if native.MaxW != scalar.MaxW {
		t.Fatalf("MaxW %v != %v", native.MaxW, scalar.MaxW)
	}
	for i := range native.Prob {
		if native.Prob[i] != scalar.Prob[i] {
			t.Fatalf("P(W > %v): block %v != scalar %v",
				native.Thresholds[i], native.Prob[i], scalar.Prob[i])
		}
	}
}

// nilGenModel simulates a broken model whose NewGenerator returns nil.
type nilGenModel struct{ constModel }

func (nilGenModel) Name() string                              { return "nilgen" }
func (nilGenModel) NewGenerator(seed int64) traffic.Generator { return nil }

// TestNilGeneratorIsError asserts the satellite fix: a nil generator is a
// reported error from every entry point, not a panic frames later.
func TestNilGeneratorIsError(t *testing.T) {
	m := nilGenModel{constModel{1}}
	if _, err := Run(Config{Model: m, N: 2, C: 2, B: 1, Frames: 10}); err == nil ||
		!strings.Contains(err.Error(), "nil generator") {
		t.Fatalf("Run: want nil-generator error, got %v", err)
	}
	if _, err := RunSweep(Config{Model: m, N: 2, C: 2, Frames: 10}, []float64{0, 1}); err == nil {
		t.Fatal("RunSweep: want nil-generator error")
	}
	if _, err := RunBOP(BOPConfig{Model: m, N: 2, C: 2, Frames: 10, Thresholds: []float64{0}}); err == nil {
		t.Fatal("RunBOP: want nil-generator error")
	}
	if _, err := RunMix(MixConfig{
		Mix:    core.Mix{{Model: m, Count: 2}},
		TotalC: 2, Frames: 10,
	}); err == nil || !strings.Contains(err.Error(), "nil generator") {
		t.Fatalf("RunMix: want nil-generator error, got %v", err)
	}
}

// TestReplayBlockScalarGolden covers the trace-replay model (the
// benchmark workload) through the same equivalence gate.
func TestReplayBlockScalarGolden(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	trace := traffic.Generate(z.NewGenerator(11), 5000)
	rep, err := traffic.NewReplay("trace", trace)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: rep, N: 10, C: 538, B: 30, Frames: 9000, Warmup: 300, Seed: 5}
	native, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Model = traffic.ScalarModel(rep)
	scalar, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if native != scalar {
		t.Fatalf("replay: block result %+v != scalar result %+v", native, scalar)
	}
}
