package mux

import (
	"math"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Feedback-path telemetry. metFeedbackSteps counts per-frame feedback
// deliveries (one per served frame of a closed-loop run, regardless of how
// many sources listen); it is flushed once per run from the engine's local
// accumulator, never bumped per frame.
var metFeedbackSteps = telemetry.Default.Counter("mux_feedback_steps_total")

// lindleyStep is the one shared Lindley kernel of this package: it
// advances the fluid finite-buffer recursion one frame,
//
//	net  = w + a − c
//	loss = (net − b)^+
//	w'   = min(net^+, b)
//
// returning the cells lost during the frame and the workload after it.
// With b = +Inf it degenerates to the infinite-buffer workload recursion
// w' = net^+ with zero loss, so the finite-buffer (CLR) and
// infinite-buffer (BOP) paths — chunked and stepped alike — share this
// single implementation of the clip/overflow arithmetic.
func lindleyStep(w, a, c, b float64) (loss, next float64) {
	net := w + a - c
	if net <= 0 {
		return 0, 0
	}
	if net > b {
		return net - b, b
	}
	return 0, net
}

// Step describes one frame advanced by the stepped engine.
type Step struct {
	Arrived float64 // aggregate arrivals during the frame, cells
	Loss    float64 // cells lost during the frame
	W       float64 // workload after the frame, cells
	Service float64 // cells actually served: min(W_prev + Arrived, C)
}

// Engine is the stepped multiplexer simulation core: it holds the source
// streams and the Lindley state and advances them one frame at a time
// through Step, feeding the post-frame queue state back to every source
// that opts in via traffic.FeedbackGenerator.
//
// Open-loop sources keep the chunked fast path: they are pooled into one
// blockAggregator whose 4096-frame fills amortise the per-frame dispatch,
// and a run with no closed-loop source never constructs per-frame Step
// values at all — Run/RunBOP/RunMix detect that case and drain whole
// chunks through the same lindleyStep kernel, so open-loop results are
// bit-identical to the pre-engine block pipeline at its speed. Only when
// at least one source is closed-loop does the run drop to per-frame
// stepping (the block contract guarantees the open-loop sub-aggregate is
// bit-identical either way, since sample paths are invariant under Fill
// partitioning).
//
// Aggregation order: the aggregate arrival of a frame is the open-loop
// sources' sum (in source order) plus the closed-loop sources' frames (in
// source order). For a pure open-loop run this is exactly the historical
// source-order summation.
type Engine struct {
	totalC float64
	totalB float64 // +Inf for infinite-buffer runs
	w      float64
	frame  int // served frames, warm-up included

	open   *blockAggregator // nil when every source is closed-loop
	closed []traffic.FeedbackGenerator

	chunk []float64 // current open-loop aggregate chunk (stepped mode)
	idx   int

	fbSteps int64 // local accumulator for metFeedbackSteps
}

// newEngine partitions gens into the open-loop pool and the closed-loop
// tap list. totalB may be math.Inf(1) for infinite-buffer dynamics.
func newEngine(gens []traffic.Generator, totalC, totalB float64, span trace.Span) *Engine {
	e := &Engine{totalC: totalC, totalB: totalB}
	var open []traffic.Generator
	for _, g := range gens {
		if fg, ok := g.(traffic.FeedbackGenerator); ok {
			e.closed = append(e.closed, fg)
		} else {
			open = append(open, g)
		}
	}
	if len(open) > 0 {
		e.open = newBlockAggregator(open)
		e.open.span = span
	}
	return e
}

// closedLoop reports whether any source taps the feedback loop; if not,
// callers should prefer draining whole chunks via nextChunk.
func (e *Engine) closedLoop() bool { return len(e.closed) > 0 }

// W returns the current workload (cells).
func (e *Engine) W() float64 { return e.w }

// nextChunk returns the aggregate arrivals of the next n ≤ chunkFrames
// frames. It is the open-loop fast path and must not be mixed with Step:
// it bypasses the Lindley state entirely (the caller runs the kernel over
// the chunk) and panics if a closed-loop source is present.
func (e *Engine) nextChunk(n int) []float64 {
	if e.closedLoop() {
		panic("mux: nextChunk on a closed-loop engine")
	}
	return e.open.next(n)
}

// Step advances the simulation one frame: draws one frame from every
// source, applies the Lindley kernel, and delivers the post-frame
// feedback to every closed-loop source.
func (e *Engine) Step() Step {
	var a float64
	if e.open != nil {
		if e.idx == len(e.chunk) {
			e.chunk = e.open.next(chunkFrames)
			e.idx = 0
		}
		a = e.chunk[e.idx]
		e.idx++
	}
	for _, g := range e.closed {
		a += g.NextFrame()
	}
	loss, next := lindleyStep(e.w, a, e.totalC, e.totalB)
	// served = min(w + a, C), derived without re-branching: everything
	// that arrived or was queued either remains queued, was lost, or left.
	served := e.w + a - loss - next
	e.w = next
	e.frame++
	if len(e.closed) > 0 {
		fb := traffic.Feedback{
			Frame:       e.frame,
			W:           next,
			Buffer:      e.totalB,
			Capacity:    e.totalC,
			Loss:        loss,
			Utilization: served / e.totalC,
		}
		for _, g := range e.closed {
			g.Observe(fb)
		}
		e.fbSteps++
	}
	return Step{Arrived: a, Loss: loss, W: next, Service: served}
}

// release returns pooled buffers and flushes the engine's telemetry
// accumulators. The engine must not be used afterwards. Every newEngine
// must be paired with a deferred release, exactly as with
// newBlockAggregator.
func (e *Engine) release() {
	if e.open != nil {
		e.open.release()
		e.open = nil
	}
	if e.fbSteps > 0 {
		metFeedbackSteps.Add(e.fbSteps)
		metFrames.Add(e.fbSteps * int64(len(e.closed)))
		e.fbSteps = 0
	}
}

// runStepped executes the finite-buffer measurement through the per-frame
// stepped loop — the closed-loop counterpart of the chunked drain in Run
// and RunMix. Spans batch per stepSpanFrames frames so tracing stays
// per-chunk-granular, never per-frame.
func runStepped(e *Engine, frames, warmup int, span trace.Span) Result {
	for i := 0; i < warmup; i++ {
		e.Step()
	}
	res := Result{Frames: frames, InitialW: e.w}
	var sumW float64
	for rem := frames; rem > 0; {
		n := min(rem, chunkFrames)
		sp := span.Child("mux step", trace.Int("frames", n))
		stopDrain := metDrainTime.Start()
		for i := 0; i < n; i++ {
			st := e.Step()
			res.ArrivedCells += st.Arrived
			if st.Loss > 0 {
				res.LostCells += st.Loss
				res.LossFrames++
			}
			sumW += st.W
			if st.W > res.MaxWorkload {
				res.MaxWorkload = st.W
			}
		}
		stopDrain()
		sp.End()
		metOccupancy.Observe(e.w)
		rem -= n
	}
	res.FinalW = e.w
	res.MeanWorkload = sumW / float64(frames)
	if res.ArrivedCells > 0 {
		res.CLR = res.LostCells / res.ArrivedCells
	}
	metRuns.Inc()
	metPathStepped.Inc()
	metCellsArrived.Add(res.ArrivedCells)
	metCellsLost.Add(res.LostCells)
	return res
}

// newRunEngine builds the engine for a finite-buffer Config.
func newRunEngine(cfg Config) (*Engine, error) {
	gens, err := sourceGenerators(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return newEngine(gens, float64(cfg.N)*cfg.C, float64(cfg.N)*cfg.B, cfg.Span), nil
}

// newBOPEngine builds the engine for an infinite-buffer BOPConfig.
func newBOPEngine(cfg BOPConfig, span trace.Span) (*Engine, error) {
	gens, err := sourceGenerators(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return newEngine(gens, float64(cfg.N)*cfg.C, math.Inf(1), span), nil
}
