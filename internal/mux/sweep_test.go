package mux

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

func TestRunSweepMatchesIndividualRuns(t *testing.T) {
	// A sweep must reproduce exactly what independent Run calls produce for
	// the same seed, since the arrival stream is a pure function of seed.
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 5, C: 515, Frames: 8000, Seed: 21}
	buffers := []float64{0, 10, 50}
	sweep, err := RunSweep(cfg, buffers)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buffers {
		single := cfg
		single.B = b
		res, err := Run(single)
		if err != nil {
			t.Fatal(err)
		}
		if res != sweep[i] {
			t.Fatalf("buffer %v: sweep %+v != single %+v", b, sweep[i], res)
		}
	}
}

func TestRunSweepSortsBuffers(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 3, C: 520, Frames: 2000, Seed: 5}
	res, err := RunSweep(cfg, []float64{50, 0, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Ascending buffers ⇒ non-increasing loss.
	for i := 1; i < len(res); i++ {
		if res[i].LostCells > res[i-1].LostCells {
			t.Fatalf("loss not monotone across sweep: %v then %v",
				res[i-1].LostCells, res[i].LostCells)
		}
	}
}

func TestRunSweepValidation(t *testing.T) {
	z, _ := models.NewZ(0.9)
	cfg := Config{Model: z, N: 3, C: 520, Frames: 100, Seed: 5}
	if _, err := RunSweep(cfg, nil); err == nil {
		t.Error("empty sweep should error")
	}
	if _, err := RunSweep(cfg, []float64{-1}); err == nil {
		t.Error("negative buffer should error")
	}
	bad := cfg
	bad.N = 0
	if _, err := RunSweep(bad, []float64{1}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestSweepReplicationsShape(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 3, C: 515, Frames: 3000, Seed: 9}
	buffers := []float64{0, 20}
	out, err := SweepReplications(cfg, buffers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 3 {
		t.Fatalf("shape [%d][%d], want [2][3]", len(out), len(out[0]))
	}
	// Replications must differ.
	if out[0][0].CLR == out[0][1].CLR && out[0][1].CLR == out[0][2].CLR && out[0][0].CLR != 0 {
		t.Fatal("replications identical")
	}
	if _, err := SweepReplications(cfg, buffers, 0); err == nil {
		t.Error("reps = 0 should error")
	}
}

func TestSweepCLRConsistent(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 10, C: 510, Frames: 10000, Seed: 4}
	res, err := RunSweep(cfg, []float64{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ArrivedCells <= 0 {
			t.Fatal("no arrivals recorded")
		}
		if math.Abs(r.CLR-r.LostCells/r.ArrivedCells) > 1e-15 {
			t.Fatal("CLR inconsistent with counts")
		}
	}
}

func TestRunMixHomogeneousMatchesRun(t *testing.T) {
	// A homogeneous mix must reproduce Run exactly for the same seed.
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 8, C: 515, B: 30, Frames: 6000, Seed: 13}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := RunMix(MixConfig{
		Mix:    core.Mix{{Model: z, Count: 8}},
		TotalC: 515 * 8, TotalB: 30 * 8,
		Frames: 6000, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain != mixed {
		t.Fatalf("mix %+v != plain %+v", mixed, plain)
	}
}

func TestRunMixHeterogeneous(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	d, err := models.FitS(z, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMix(MixConfig{
		Mix:    core.Mix{{Model: z, Count: 5}, {Model: d, Count: 5}},
		TotalC: 515 * 10, TotalB: 100,
		Frames: 20000, Warmup: 500, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrivedCells <= 0 {
		t.Fatal("no arrivals")
	}
	if res.MaxWorkload > 100+1e-9 {
		t.Fatal("workload exceeded buffer")
	}
	if res.CLR < 0 || res.CLR > 1 {
		t.Fatalf("CLR %v out of range", res.CLR)
	}
}

func TestRunMixValidation(t *testing.T) {
	z, _ := models.NewZ(0.9)
	good := MixConfig{
		Mix: core.Mix{{Model: z, Count: 1}}, TotalC: 600, TotalB: 10, Frames: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MixConfig{
		{Mix: core.Mix{}, TotalC: 600, TotalB: 10, Frames: 10},
		{Mix: core.Mix{{Model: z, Count: 1}}, TotalC: 0, TotalB: 10, Frames: 10},
		{Mix: core.Mix{{Model: z, Count: 1}}, TotalC: 600, TotalB: -1, Frames: 10},
		{Mix: core.Mix{{Model: z, Count: 1}}, TotalC: 600, TotalB: 10, Frames: 0},
	}
	for i, c := range bad {
		if _, err := RunMix(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
