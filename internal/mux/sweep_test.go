package mux

import (
	"context"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/runner"
)

func TestRunSweepMatchesIndividualRuns(t *testing.T) {
	// A sweep must reproduce exactly what independent Run calls produce for
	// the same seed, since the arrival stream is a pure function of seed.
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 5, C: 515, Frames: 8000, Seed: 21}
	buffers := []float64{0, 10, 50}
	sweep, err := RunSweep(cfg, buffers)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buffers {
		single := cfg
		single.B = b
		res, err := Run(single)
		if err != nil {
			t.Fatal(err)
		}
		if res != sweep[i] {
			t.Fatalf("buffer %v: sweep %+v != single %+v", b, sweep[i], res)
		}
	}
}

func TestRunSweepSortsBuffers(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 3, C: 520, Frames: 2000, Seed: 5}
	res, err := RunSweep(cfg, []float64{50, 0, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Ascending buffers ⇒ non-increasing loss.
	for i := 1; i < len(res); i++ {
		if res[i].LostCells > res[i-1].LostCells {
			t.Fatalf("loss not monotone across sweep: %v then %v",
				res[i-1].LostCells, res[i].LostCells)
		}
	}
}

func TestRunSweepValidation(t *testing.T) {
	z, _ := models.NewZ(0.9)
	cfg := Config{Model: z, N: 3, C: 520, Frames: 100, Seed: 5}
	if _, err := RunSweep(cfg, nil); err == nil {
		t.Error("empty sweep should error")
	}
	if _, err := RunSweep(cfg, []float64{-1}); err == nil {
		t.Error("negative buffer should error")
	}
	bad := cfg
	bad.N = 0
	if _, err := RunSweep(bad, []float64{1}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestSweepReplicationsShape(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 3, C: 515, Frames: 3000, Seed: 9}
	buffers := []float64{0, 20}
	out, err := SweepReplications(cfg, buffers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 3 {
		t.Fatalf("shape [%d][%d], want [2][3]", len(out), len(out[0]))
	}
	// Replications must differ.
	if out[0][0].CLR == out[0][1].CLR && out[0][1].CLR == out[0][2].CLR && out[0][0].CLR != 0 {
		t.Fatal("replications identical")
	}
	if _, err := SweepReplications(cfg, buffers, 0); err == nil {
		t.Error("reps = 0 should error")
	}
}

// TestSweepReplicationsEngineDeterministic is the acceptance check for the
// orchestration engine: the CLR estimates from a serial run (-workers=1)
// and a fully parallel run (-workers=NumCPU) must be bit-identical for the
// same master seed, because per-replication seeds are pure functions of
// (seed, job, rep index).
func TestSweepReplicationsEngineDeterministic(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 5, C: 515, Frames: 4000, Seed: 1996}
	buffers := []float64{0, 10, 40}
	const reps = 8

	serial, err := SweepReplications(cfg, buffers, reps)
	if err != nil {
		t.Fatal(err)
	}
	// Cover NumCPU plus forced multi-worker pools so a single-core CI
	// machine still exercises concurrent scheduling.
	for _, workers := range []int{runtime.NumCPU(), 2, reps} {
		parallel, err := SweepReplicationsEngine(context.Background(),
			runner.New(workers), cfg, buffers, reps)
		if err != nil {
			t.Fatal(err)
		}
		for j := range serial {
			for r := range serial[j] {
				if serial[j][r] != parallel[j][r] {
					t.Fatalf("workers=%d buffer %d rep %d: serial %+v != parallel %+v",
						workers, j, r, serial[j][r], parallel[j][r])
				}
			}
		}
		cs, cp := CLREstimate(serial[1], 0.95), CLREstimate(parallel[1], 0.95)
		if cs != cp {
			t.Fatalf("workers=%d: CLR estimate differs: serial %+v, parallel %+v",
				workers, cs, cp)
		}
	}
}

func TestSweepReplicationsEngineCancellation(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Model: z, N: 5, C: 515, Frames: 4000, Seed: 3}
	if _, err := SweepReplicationsEngine(ctx, runner.New(2), cfg, []float64{0}, 50); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}

func TestSweepCLRConsistent(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 10, C: 510, Frames: 10000, Seed: 4}
	res, err := RunSweep(cfg, []float64{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ArrivedCells <= 0 {
			t.Fatal("no arrivals recorded")
		}
		if math.Abs(r.CLR-r.LostCells/r.ArrivedCells) > 1e-15 {
			t.Fatal("CLR inconsistent with counts")
		}
	}
}

func TestRunMixHomogeneousMatchesRun(t *testing.T) {
	// A homogeneous mix must reproduce Run exactly for the same seed.
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 8, C: 515, B: 30, Frames: 6000, Seed: 13}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := RunMix(MixConfig{
		Mix:    core.Mix{{Model: z, Count: 8}},
		TotalC: 515 * 8, TotalB: 30 * 8,
		Frames: 6000, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain != mixed {
		t.Fatalf("mix %+v != plain %+v", mixed, plain)
	}
}

func TestRunMixHeterogeneous(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	d, err := models.FitS(z, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMix(MixConfig{
		Mix:    core.Mix{{Model: z, Count: 5}, {Model: d, Count: 5}},
		TotalC: 515 * 10, TotalB: 100,
		Frames: 20000, Warmup: 500, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrivedCells <= 0 {
		t.Fatal("no arrivals")
	}
	if res.MaxWorkload > 100+1e-9 {
		t.Fatal("workload exceeded buffer")
	}
	if res.CLR < 0 || res.CLR > 1 {
		t.Fatalf("CLR %v out of range", res.CLR)
	}
}

func TestRunMixValidation(t *testing.T) {
	z, _ := models.NewZ(0.9)
	good := MixConfig{
		Mix: core.Mix{{Model: z, Count: 1}}, TotalC: 600, TotalB: 10, Frames: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MixConfig{
		{Mix: core.Mix{}, TotalC: 600, TotalB: 10, Frames: 10},
		{Mix: core.Mix{{Model: z, Count: 1}}, TotalC: 0, TotalB: 10, Frames: 10},
		{Mix: core.Mix{{Model: z, Count: 1}}, TotalC: 600, TotalB: -1, Frames: 10},
		{Mix: core.Mix{{Model: z, Count: 1}}, TotalC: 600, TotalB: 10, Frames: 0},
	}
	for i, c := range bad {
		if _, err := RunMix(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
