package mux

import (
	"context"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func TestLindleyStep(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name       string
		w, a, c, b float64
		loss, next float64
	}{
		{"empty stays empty", 0, 0, 10, 5, 0, 0},
		{"underload drains", 3, 2, 10, 5, 0, 0},
		{"net exactly zero", 4, 6, 10, 5, 0, 0},
		{"queues below buffer", 1, 12, 10, 5, 0, 3},
		{"fills buffer exactly", 0, 15, 10, 5, 0, 5},
		{"overflow clips to buffer", 2, 20, 10, 5, 7, 5},
		{"zero buffer loses all backlog", 0, 14, 10, 0, 4, 0},
		{"infinite buffer never loses", 100, 1000, 10, inf, 0, 1090},
		{"infinite buffer drains", 5, 2, 10, inf, 0, 0},
	}
	for _, tc := range cases {
		loss, next := lindleyStep(tc.w, tc.a, tc.c, tc.b)
		if loss != tc.loss || next != tc.next {
			t.Errorf("%s: lindleyStep(%g,%g,%g,%g) = (%g,%g), want (%g,%g)",
				tc.name, tc.w, tc.a, tc.c, tc.b, loss, next, tc.loss, tc.next)
		}
	}
}

// aimdModel wraps a Z model with the default AIMD controller for the
// closed-loop tests below.
func aimdModel(t testing.TB, a float64) traffic.Model {
	t.Helper()
	z, err := models.NewZ(a)
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.NewAIMD(z, models.AIMDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForceStepMatchesChunkedRun(t *testing.T) {
	// The stepped engine must reproduce the chunked fast path exactly:
	// the block contract makes open-loop sample paths invariant under
	// Fill partitioning, and both paths share lindleyStep. Frames spans
	// several chunk boundaries (chunkFrames = 4096).
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 10, C: 520, B: 30, Frames: 9000, Warmup: 500, Seed: 42}
	chunked, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ForceStep = true
	stepped, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if chunked != stepped {
		t.Fatalf("stepped engine drifted from chunked path:\nchunked %+v\nstepped %+v",
			chunked, stepped)
	}
}

func TestForceStepMatchesChunkedBOP(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BOPConfig{Model: z, N: 5, C: 510, Frames: 9000, Warmup: 300,
		Seed: 7, Thresholds: []float64{0, 50, 200, 1000}}
	chunked, err := RunBOP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ForceStep = true
	stepped, err := RunBOP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunked.Prob) != len(stepped.Prob) {
		t.Fatalf("threshold count mismatch: %d vs %d", len(chunked.Prob), len(stepped.Prob))
	}
	for i := range chunked.Prob {
		if chunked.Prob[i] != stepped.Prob[i] {
			t.Fatalf("threshold %g: chunked %v != stepped %v",
				chunked.Thresholds[i], chunked.Prob[i], stepped.Prob[i])
		}
	}
	if chunked.MaxW != stepped.MaxW {
		t.Fatalf("max workload: chunked %v != stepped %v", chunked.MaxW, stepped.MaxW)
	}
}

func TestForceStepMatchesChunkedSampleWorkload(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BOPConfig{Model: z, N: 5, C: 510, Frames: 9000, Seed: 11}
	chunked, err := SampleWorkload(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ForceStep = true
	stepped, err := SampleWorkload(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunked) != len(stepped) {
		t.Fatalf("sample count mismatch: %d vs %d", len(chunked), len(stepped))
	}
	for i := range chunked {
		if chunked[i] != stepped[i] {
			t.Fatalf("sample %d: chunked %v != stepped %v", i, chunked[i], stepped[i])
		}
	}
}

func TestClosedLoopRunDeterministic(t *testing.T) {
	// Closed-loop sources are deterministic functions of (seed, feedback
	// sequence) and the engine's feedback sequence is itself
	// deterministic, so repeated same-seed runs must be bit-identical.
	cfg := Config{Model: aimdModel(t, 0.975), N: 8, C: 510, B: 25,
		Frames: 6000, Warmup: 300, Seed: 1996}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first != again {
			t.Fatalf("repeat %d drifted:\nfirst %+v\nagain %+v", i, first, again)
		}
	}
	if first.ArrivedCells <= 0 {
		t.Fatal("closed-loop run produced no arrivals")
	}
}

func TestClosedLoopConservation(t *testing.T) {
	// arrived = lost + served + ΔW must hold exactly in the stepped
	// engine as it does in the chunked path; served ≤ C per frame bounds
	// the serve volume.
	cfg := Config{Model: aimdModel(t, 0.9), N: 5, C: 505, B: 20,
		Frames: 4000, Seed: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	served := res.ArrivedCells - res.LostCells - (res.FinalW - res.InitialW)
	if served < 0 || served > cfg.C*float64(cfg.N)*float64(cfg.Frames) {
		t.Fatalf("served volume %v outside [0, C·N·frames]", served)
	}
	if res.MaxWorkload > cfg.B*float64(cfg.N)+1e-9 {
		t.Fatalf("workload %v exceeded total buffer %v", res.MaxWorkload, cfg.B*float64(cfg.N))
	}
}

func TestClosedLoopReplicationsEngineWorkers(t *testing.T) {
	// Replication fan-out must be bit-identical for every worker count:
	// each replication derives its own seed and the stepped engine is
	// single-threaded within a replication.
	cfg := Config{Model: aimdModel(t, 0.975), N: 6, C: 505, B: 15,
		Frames: 3000, Warmup: 200, Seed: 1996}
	const reps = 6
	serial, err := RunReplicationsEngine(context.Background(), runner.New(1), cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != reps {
		t.Fatalf("got %d results, want %d", len(serial), reps)
	}
	for _, workers := range []int{runtime.NumCPU(), 2, reps} {
		parallel, err := RunReplicationsEngine(context.Background(), runner.New(workers), cfg, reps)
		if err != nil {
			t.Fatal(err)
		}
		for r := range serial {
			if serial[r] != parallel[r] {
				t.Fatalf("workers=%d rep %d: serial %+v != parallel %+v",
					workers, r, serial[r], parallel[r])
			}
		}
	}
}

func TestRunSweepRejectsClosedLoop(t *testing.T) {
	cfg := Config{Model: aimdModel(t, 0.9), N: 4, C: 510, Frames: 1000, Seed: 1}
	if _, err := RunSweep(cfg, []float64{0, 10}); err == nil {
		t.Fatal("RunSweep accepted a closed-loop model; feedback couples arrivals to the buffer")
	}
	if _, err := SweepReplications(cfg, []float64{0, 10}, 2); err == nil {
		t.Fatal("SweepReplications accepted a closed-loop model")
	}
}

func TestRunMixClosedLoop(t *testing.T) {
	// A mix of open- and closed-loop sources drives the stepped path;
	// repeated runs must agree exactly, and a pure-open-loop mix must be
	// unaffected by ForceStep.
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	mix := MixConfig{
		Mix: core.Mix{
			{Model: z, Count: 4},
			{Model: aimdModel(t, 0.9), Count: 4},
		},
		TotalC: 4080, TotalB: 160, Frames: 4000, Warmup: 200, Seed: 5,
	}
	first, err := RunMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("closed-loop mix drifted:\nfirst %+v\nagain %+v", first, again)
	}

	open := MixConfig{
		Mix:    core.Mix{{Model: z, Count: 4}, {Model: z, Count: 4}},
		TotalC: 4080, TotalB: 160, Frames: 4000, Warmup: 200, Seed: 5,
	}
	chunked, err := RunMix(open)
	if err != nil {
		t.Fatal(err)
	}
	open.ForceStep = true
	stepped, err := RunMix(open)
	if err != nil {
		t.Fatal(err)
	}
	if chunked != stepped {
		t.Fatalf("open-loop mix: stepped %+v != chunked %+v", stepped, chunked)
	}
}

func TestCLREstimateEmpty(t *testing.T) {
	got := CLREstimate(nil, 0.95)
	want := stats.CI{Level: 0.95}
	if got != want {
		t.Fatalf("CLREstimate(nil) = %+v, want zero-value CI %+v", got, want)
	}
	got = CLREstimate([]Result{}, 0.9)
	want = stats.CI{Level: 0.9}
	if got != want {
		t.Fatalf("CLREstimate(empty) = %+v, want %+v", got, want)
	}
}

func TestSampleWorkloadEveryValidation(t *testing.T) {
	m := iidGaussian(t, 500, 5000)
	cfg := BOPConfig{Model: m, N: 5, C: 510, Frames: 100, Seed: 1}
	for _, every := range []int{0, -1, -100} {
		if _, err := SampleWorkload(cfg, every); err == nil {
			t.Fatalf("every=%d should error", every)
		}
	}
}
