package mux

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seed"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// MixConfig describes a heterogeneous finite-buffer simulation: several
// traffic classes sharing one link (total capacity and total buffer given
// directly in cells).
type MixConfig struct {
	Mix    core.Mix
	TotalC float64 // link capacity, cells/frame
	TotalB float64 // buffer, cells
	Frames int
	Warmup int
	Seed   int64
	// Span parents the run's trace spans; observational only.
	Span trace.Span
	// ForceStep forces the per-frame stepped engine for open-loop mixes;
	// see Config.ForceStep.
	ForceStep bool
}

// Validate checks the configuration.
func (c MixConfig) Validate() error {
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.TotalC <= 0 {
		return fmt.Errorf("mux: capacity %v must be positive", c.TotalC)
	}
	if c.TotalB < 0 {
		return fmt.Errorf("mux: buffer %v must be non-negative", c.TotalB)
	}
	if c.Frames < 1 || c.Warmup < 0 {
		return fmt.Errorf("mux: invalid horizon frames=%d warmup=%d", c.Frames, c.Warmup)
	}
	return nil
}

// RunMix executes one heterogeneous replication with the same fluid
// Lindley dynamics as Run. A mix may combine open- and closed-loop
// classes: when any component's generators tap the feedback loop the run
// steps frame-by-frame (open-loop components keep their chunked block
// fills inside the engine), otherwise the whole mix drains through the
// chunked fast path bit-identically to the historical block pipeline.
func RunMix(cfg MixConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	// Source k (counted across the whole mix) gets seed.Derive(Seed, k) —
	// the same derivation as ChildSeeds, so a homogeneous mix reproduces
	// Run exactly and each class sees the same seeds regardless of how
	// the mix is partitioned into components.
	var gens []traffic.Generator
	var k uint64
	for _, comp := range cfg.Mix {
		for i := 0; i < comp.Count; i++ {
			g := comp.Model.NewGenerator(seed.Derive(cfg.Seed, k))
			if g == nil {
				return Result{}, fmt.Errorf("mux: model %q returned nil generator for mix source %d",
					comp.Model.Name(), k)
			}
			gens = append(gens, g)
			k++
		}
	}
	eng := newEngine(gens, cfg.TotalC, cfg.TotalB, cfg.Span)
	defer eng.release()
	if eng.closedLoop() || cfg.ForceStep {
		return runStepped(eng, cfg.Frames, cfg.Warmup, cfg.Span), nil
	}

	var w float64
	for rem := cfg.Warmup; rem > 0; {
		n := min(rem, chunkFrames)
		for _, a := range eng.nextChunk(n) {
			_, w = lindleyStep(w, a, cfg.TotalC, cfg.TotalB)
		}
		rem -= n
	}
	res := Result{Frames: cfg.Frames, InitialW: w}
	var sumW float64
	for rem := cfg.Frames; rem > 0; {
		n := min(rem, chunkFrames)
		chunk := eng.nextChunk(n)
		stopDrain := metDrainTime.Start()
		for _, a := range chunk {
			res.ArrivedCells += a
			loss, next := lindleyStep(w, a, cfg.TotalC, cfg.TotalB)
			if loss > 0 {
				res.LostCells += loss
				res.LossFrames++
			}
			w = next
			sumW += w
			if w > res.MaxWorkload {
				res.MaxWorkload = w
			}
		}
		stopDrain()
		metOccupancy.Observe(w)
		rem -= n
	}
	res.FinalW = w
	res.MeanWorkload = sumW / float64(cfg.Frames)
	if res.ArrivedCells > 0 {
		res.CLR = res.LostCells / res.ArrivedCells
	}
	metRuns.Inc()
	metPathChunked.Inc()
	metCellsArrived.Add(res.ArrivedCells)
	metCellsLost.Add(res.LostCells)
	return res, nil
}
