package mux

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package on goroutine leaks: block-streaming
// generation fans out producers per source, and a consumer that stops
// early (error, cancelled sweep) must reap them all.
func TestMain(m *testing.M) { leakcheck.Main(m) }
