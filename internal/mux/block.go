package mux

import (
	"sync"

	"repro/internal/traffic"
)

// chunkFrames is the streaming block length used by every simulation loop
// in this package: each source fills 4096 frames (32 KiB of float64) at a
// time, so the per-chunk working set — one aggregate buffer plus one
// scratch buffer — stays L2-resident while amortising the per-frame
// interface dispatch of the scalar traffic.Generator protocol over whole
// blocks. Generators with a native Fill (fgn/farima block synthesis,
// trace replay) additionally amortise or eliminate their own per-frame
// overhead.
const chunkFrames = 4096

// chunkPool recycles chunk buffers across runs so sweeps allocate a
// constant number of buffers regardless of horizon. The pool stores
// *[]float64 (not []float64) so Put does not allocate a fresh interface
// box for the slice header on every cycle.
var chunkPool = sync.Pool{
	New: func() interface{} {
		b := make([]float64, chunkFrames)
		return &b
	},
}

// blockAggregator streams the aggregate arrival process of a set of
// sources in chunks. The aggregate for frame i is accumulated in source
// order — the same float64 summation order as the old per-frame
// aggregate() loop — so block-streamed sample paths are bit-identical to
// the scalar protocol's.
type blockAggregator struct {
	gens []traffic.BlockGenerator
	agg  *[]float64
	tmp  *[]float64
}

// newBlockAggregator wraps gens for block streaming, using each
// generator's native Fill where it has one.
func newBlockAggregator(gens []traffic.Generator) *blockAggregator {
	bs := make([]traffic.BlockGenerator, len(gens))
	for i, g := range gens {
		bs[i] = traffic.Blocks(g)
	}
	return &blockAggregator{
		gens: bs,
		agg:  chunkPool.Get().(*[]float64),
		tmp:  chunkPool.Get().(*[]float64),
	}
}

// next returns the aggregate frame volumes for the next n frames
// (n ≤ chunkFrames). The returned slice is owned by the aggregator and
// valid until the next call to next or release.
func (b *blockAggregator) next(n int) []float64 {
	agg := (*b.agg)[:n]
	tmp := (*b.tmp)[:n]
	for i := range agg {
		agg[i] = 0
	}
	for _, g := range b.gens {
		g.Fill(tmp)
		for i, v := range tmp {
			agg[i] += v
		}
	}
	return agg
}

// release returns the chunk buffers to the pool. The aggregator must not
// be used afterwards.
func (b *blockAggregator) release() {
	if b.agg != nil {
		chunkPool.Put(b.agg)
		chunkPool.Put(b.tmp)
		b.agg, b.tmp = nil, nil
	}
}
