package mux

import (
	"sync"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Package-level telemetry, recorded into telemetry.Default so every
// simulation in the process aggregates into one place (exposed by the
// CLIs' -telemetry endpoint and run manifests). All metrics are
// observational: they never touch the random streams, so fixed-seed
// results are bit-identical whether or not anything reads them.
//
// Granularity: counters are bumped once per chunk (≤ 4096 frames) or once
// per run, never per frame, and the fill/drain timers cost two time.Now
// calls per chunk — noise against the ~10⁵ frame steps a chunk performs.
var (
	metFrames       = telemetry.Default.Counter("mux_frames_total")
	metCellsArrived = telemetry.Default.FloatCounter("mux_cells_arrived_total")
	metCellsLost    = telemetry.Default.FloatCounter("mux_cells_lost_total")
	metRuns         = telemetry.Default.Counter("mux_runs_total")
	metOccupancy    = telemetry.Default.Histogram("mux_buffer_occupancy_cells")
	metFillTime     = telemetry.Default.Timer("mux_chunk_fill_seconds")
	metDrainTime    = telemetry.Default.Timer("mux_chunk_drain_seconds")
	metPoolGets     = telemetry.Default.Counter("mux_chunk_pool_gets_total")
	metPoolMisses   = telemetry.Default.Counter("mux_chunk_pool_misses_total")
	// Path split: which simulation engine served each run — the chunked
	// open-loop block path or the per-frame stepped engine (closed-loop
	// feedback). The flight recorder's per-frame view of these makes a
	// mid-run path change (e.g. an adaptive model joining) visible.
	metPathChunked = telemetry.Default.Counter("mux_path_runs_total", telemetry.L("path", "chunked"))
	metPathStepped = telemetry.Default.Counter("mux_path_runs_total", telemetry.L("path", "stepped"))
)

// chunkFrames is the streaming block length used by every simulation loop
// in this package: each source fills 4096 frames (32 KiB of float64) at a
// time, so the per-chunk working set — one aggregate buffer plus one
// scratch buffer — stays L2-resident while amortising the per-frame
// interface dispatch of the scalar traffic.Generator protocol over whole
// blocks. Generators with a native Fill (fgn/farima block synthesis,
// trace replay) additionally amortise or eliminate their own per-frame
// overhead.
const chunkFrames = 4096

// chunkPool recycles chunk buffers across runs so sweeps allocate a
// constant number of buffers regardless of horizon. The pool stores
// *[]float64 (not []float64) so Put does not allocate a fresh interface
// box for the slice header on every cycle. The gets/misses counter pair
// measures reuse: hits = gets − misses, and a healthy steady state shows
// misses plateauing while gets keep growing (asserted by TestChunkPoolReuse).
var chunkPool = sync.Pool{
	New: func() interface{} {
		metPoolMisses.Inc()
		b := make([]float64, chunkFrames)
		return &b
	},
}

// getChunk draws a pooled chunk buffer, counting the request.
func getChunk() *[]float64 {
	metPoolGets.Inc()
	return chunkPool.Get().(*[]float64)
}

// blockAggregator streams the aggregate arrival process of a set of
// sources in chunks. The aggregate for frame i is accumulated in source
// order — the same float64 summation order as the old per-frame
// aggregate() loop — so block-streamed sample paths are bit-identical to
// the scalar protocol's.
type blockAggregator struct {
	gens []traffic.BlockGenerator
	agg  *[]float64
	tmp  *[]float64
	span trace.Span // parent for per-chunk "mux fill" spans; zero = off
}

// newBlockAggregator wraps gens for block streaming, using each
// generator's native Fill where it has one. Callers must pair every
// construction with a deferred release so the pooled buffers are returned
// even when the enclosing simulation exits early (error or panic mid-run).
func newBlockAggregator(gens []traffic.Generator) *blockAggregator {
	bs := make([]traffic.BlockGenerator, len(gens))
	for i, g := range gens {
		bs[i] = traffic.Blocks(g)
	}
	return &blockAggregator{
		gens: bs,
		agg:  getChunk(),
		tmp:  getChunk(),
	}
}

// next returns the aggregate frame volumes for the next n frames
// (n ≤ chunkFrames). The returned slice is owned by the aggregator and
// valid until the next call to next or release.
func (b *blockAggregator) next(n int) []float64 {
	defer b.span.Child("mux fill", trace.Int("frames", n)).End()
	defer metFillTime.Start()()
	agg := (*b.agg)[:n]
	tmp := (*b.tmp)[:n]
	for i := range agg {
		agg[i] = 0
	}
	for _, g := range b.gens {
		g.Fill(tmp)
		for i, v := range tmp {
			agg[i] += v
		}
	}
	metFrames.Add(int64(n))
	return agg
}

// release returns the chunk buffers to the pool. The aggregator must not
// be used afterwards.
func (b *blockAggregator) release() {
	if b.agg != nil {
		chunkPool.Put(b.agg)
		chunkPool.Put(b.tmp)
		b.agg, b.tmp = nil, nil
	}
}
