// Package mux simulates the paper's ATM multiplexer (§5.5): N homogeneous
// VBR video sources, frame-synchronised, with cells equispaced over each
// frame duration (deterministic smoothing) feeding a FIFO buffer drained at
// constant rate.
//
// Because arrivals and service are both fluid and uniform within a frame,
// the cell-level queue is captured exactly by a frame-level Lindley
// recursion with clipping:
//
//	loss_n = (W_n + A_n − C − B)^+
//	W_{n+1} = min((W_n + A_n − C)^+, B)
//
// where A_n is the aggregate frame volume (cells), C = N·c the service
// volume per frame, and B = N·b the total buffer. The finite-buffer run
// measures the cell loss rate CLR = Σ loss / Σ A; the infinite-buffer run
// measures the buffer overflow probability P(W > x) that the paper's
// large-deviations asymptotics estimate.
package mux

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/seed"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Config describes one finite-buffer simulation replication.
type Config struct {
	Model  traffic.Model
	N      int     // number of multiplexed sources
	C      float64 // bandwidth per source c, cells/frame
	B      float64 // buffer per source b, cells (total buffer N·b)
	Frames int     // simulated frames after warm-up
	Warmup int     // frames discarded before measurement
	Seed   int64
	// Span, when active, parents per-chunk "mux fill"/"mux drain" trace
	// spans. Purely observational (never part of seeds or fingerprints);
	// the zero Span disables chunk tracing at the cost of one branch.
	Span trace.Span
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("mux: nil model")
	}
	if c.N < 1 {
		return fmt.Errorf("mux: N = %d must be ≥ 1", c.N)
	}
	if c.C <= 0 {
		return fmt.Errorf("mux: bandwidth c = %v must be positive", c.C)
	}
	if c.B < 0 {
		return fmt.Errorf("mux: buffer b = %v must be non-negative", c.B)
	}
	if c.Frames < 1 {
		return fmt.Errorf("mux: frames = %d must be ≥ 1", c.Frames)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("mux: warmup = %d must be non-negative", c.Warmup)
	}
	return nil
}

// Result summarises one finite-buffer replication.
type Result struct {
	Frames       int
	ArrivedCells float64
	LostCells    float64
	CLR          float64 // LostCells / ArrivedCells
	LossFrames   int     // frames during which any loss occurred
	MeanWorkload float64 // time-average workload, cells
	MaxWorkload  float64 // peak workload, cells
	FinalW       float64 // workload at measurement end (conservation checks)
	InitialW     float64 // workload at measurement start
}

// Run executes one finite-buffer replication. Source i uses a child seed
// derived from cfg.Seed, so replications are reproducible and sources
// mutually independent. Arrivals are pulled in chunkFrames-sized blocks
// and the Lindley recursion runs over the contiguous aggregate slice;
// the sample path is bit-identical to the per-frame scalar protocol.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	gens, err := sourceGenerators(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	ba := newBlockAggregator(gens)
	ba.span = cfg.Span
	defer ba.release()
	totalC := float64(cfg.N) * cfg.C
	totalB := float64(cfg.N) * cfg.B

	var w float64
	for rem := cfg.Warmup; rem > 0; {
		n := min(rem, chunkFrames)
		for _, a := range ba.next(n) {
			w = clip(w+a-totalC, totalB)
		}
		rem -= n
	}
	res := Result{Frames: cfg.Frames, InitialW: w}
	var sumW float64
	for rem := cfg.Frames; rem > 0; {
		n := min(rem, chunkFrames)
		chunk := ba.next(n)
		spDrain := cfg.Span.Child("mux drain", trace.Int("frames", n))
		stopDrain := metDrainTime.Start()
		for _, a := range chunk {
			res.ArrivedCells += a
			net := w + a - totalC
			if loss := net - totalB; loss > 0 {
				res.LostCells += loss
				res.LossFrames++
			}
			w = clip(net, totalB)
			sumW += w
			if w > res.MaxWorkload {
				res.MaxWorkload = w
			}
		}
		stopDrain()
		spDrain.End()
		metOccupancy.Observe(w)
		rem -= n
	}
	res.FinalW = w
	res.MeanWorkload = sumW / float64(cfg.Frames)
	if res.ArrivedCells > 0 {
		res.CLR = res.LostCells / res.ArrivedCells
	}
	metRuns.Inc()
	metCellsArrived.Add(res.ArrivedCells)
	metCellsLost.Add(res.LostCells)
	return res, nil
}

// clip applies the finite-buffer boundary: max(0, min(x, b)).
func clip(x, b float64) float64 {
	if x < 0 {
		return 0
	}
	if x > b {
		return b
	}
	return x
}

// ChildSeeds derives n per-source seeds from a master seed via the
// splitmix64 hash of (master, source index). The derivation is shared with
// package cellsim so fluid and cell-level simulations of the same
// configuration see statistically identical arrival processes, and it is
// index-addressed rather than stream-drawn so any subset of sources can be
// re-derived independently.
func ChildSeeds(masterSeed int64, n int) []int64 {
	return seed.Children(masterSeed, n)
}

// sourceGenerators builds N independent generators with seeds derived from
// a master seed. A model returning a nil generator (e.g. an unfitted or
// partially-constructed wrapper) is reported as an error rather than left
// to panic frames later inside the simulation loop.
func sourceGenerators(m traffic.Model, n int, sd int64) ([]traffic.Generator, error) {
	seeds := ChildSeeds(sd, n)
	gens := make([]traffic.Generator, n)
	for i := range gens {
		g := m.NewGenerator(seeds[i])
		if g == nil {
			return nil, fmt.Errorf("mux: model %q returned nil generator for source %d (seed %d)",
				m.Name(), i, seeds[i])
		}
		gens[i] = g
	}
	return gens, nil
}

// RunReplications executes reps independent replications (the paper runs
// 60), deriving the seed of replication i as the splitmix64 hash of
// (cfg.Seed, "mux/reps", i) so any replication can be reproduced in
// isolation.
func RunReplications(cfg Config, reps int) ([]Result, error) {
	if reps < 1 {
		return nil, fmt.Errorf("mux: reps = %d must be ≥ 1", reps)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]Result, reps)
	for i := range out {
		c := cfg
		c.Seed = seed.DeriveString(cfg.Seed, "mux/reps", uint64(i))
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// CLREstimate pools replication results into a ratio estimate of the cell
// loss rate with a replication confidence interval.
func CLREstimate(results []Result, level float64) stats.CI {
	clrs := make([]float64, len(results))
	for i, r := range results {
		clrs[i] = r.CLR
	}
	return stats.ReplicationCI(clrs, level)
}

// BOPConfig describes an infinite-buffer overflow probability measurement.
type BOPConfig struct {
	Model      traffic.Model
	N          int
	C          float64 // bandwidth per source, cells/frame
	Frames     int     // measured frames
	Warmup     int     // discarded frames
	Seed       int64
	Thresholds []float64 // workload levels x (total cells) for P(W > x)
	Span       trace.Span
}

// Validate checks the configuration.
func (c BOPConfig) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("mux: nil model")
	}
	if c.N < 1 || c.C <= 0 || c.Frames < 1 || c.Warmup < 0 {
		return fmt.Errorf("mux: invalid BOP config N=%d c=%v frames=%d warmup=%d",
			c.N, c.C, c.Frames, c.Warmup)
	}
	if len(c.Thresholds) == 0 {
		return fmt.Errorf("mux: no thresholds")
	}
	for _, x := range c.Thresholds {
		if x < 0 {
			return fmt.Errorf("mux: negative threshold %v", x)
		}
	}
	return nil
}

// BOPResult reports tail probabilities of the stationary workload.
type BOPResult struct {
	Thresholds []float64
	Prob       []float64 // P(W > threshold), fraction of measured frames
	MaxW       float64
}

// RunBOP simulates the infinite-buffer workload recursion and estimates
// P(W > x) at each threshold as the fraction of frame boundaries whose
// workload exceeds x.
func RunBOP(cfg BOPConfig) (BOPResult, error) {
	if err := cfg.Validate(); err != nil {
		return BOPResult{}, err
	}
	thr := append([]float64(nil), cfg.Thresholds...)
	sort.Float64s(thr)
	gens, err := sourceGenerators(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return BOPResult{}, err
	}
	ba := newBlockAggregator(gens)
	ba.span = cfg.Span
	defer ba.release()
	totalC := float64(cfg.N) * cfg.C

	var w float64
	for rem := cfg.Warmup; rem > 0; {
		n := min(rem, chunkFrames)
		for _, a := range ba.next(n) {
			w = math.Max(w+a-totalC, 0)
		}
		rem -= n
	}
	counts := make([]int, len(thr))
	res := BOPResult{Thresholds: thr}
	for rem := cfg.Frames; rem > 0; {
		n := min(rem, chunkFrames)
		chunk := ba.next(n)
		spDrain := cfg.Span.Child("mux drain", trace.Int("frames", n))
		stopDrain := metDrainTime.Start()
		for _, a := range chunk {
			w = math.Max(w+a-totalC, 0)
			if w > res.MaxW {
				res.MaxW = w
			}
			// Thresholds are sorted; count every one below w.
			for j := len(thr) - 1; j >= 0; j-- {
				if w > thr[j] {
					for k := 0; k <= j; k++ {
						counts[k]++
					}
					break
				}
			}
		}
		stopDrain()
		spDrain.End()
		metOccupancy.Observe(w)
		rem -= n
	}
	metRuns.Inc()
	res.Prob = make([]float64, len(thr))
	for i, c := range counts {
		res.Prob[i] = float64(c) / float64(cfg.Frames)
	}
	return res, nil
}

// SampleWorkload runs the infinite-buffer workload recursion and returns
// every `every`-th frame-boundary workload (total cells), for studying the
// shape of the stationary queue distribution — e.g. distinguishing the
// Weibull body of LRD input from the exponential body of Markov input on
// a log-survival plot.
func SampleWorkload(cfg BOPConfig, every int) ([]float64, error) {
	if every < 1 {
		return nil, fmt.Errorf("mux: sampling stride %d must be ≥ 1", every)
	}
	// Thresholds are irrelevant here but Validate demands one.
	c := cfg
	c.Thresholds = []float64{0}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	gens, err := sourceGenerators(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ba := newBlockAggregator(gens)
	defer ba.release()
	totalC := float64(cfg.N) * cfg.C
	var w float64
	for rem := cfg.Warmup; rem > 0; {
		n := min(rem, chunkFrames)
		for _, a := range ba.next(n) {
			w = math.Max(w+a-totalC, 0)
		}
		rem -= n
	}
	out := make([]float64, 0, cfg.Frames/every+1)
	frame := 0
	for rem := cfg.Frames; rem > 0; {
		n := min(rem, chunkFrames)
		for _, a := range ba.next(n) {
			w = math.Max(w+a-totalC, 0)
			if frame%every == 0 {
				out = append(out, w)
			}
			frame++
		}
		rem -= n
	}
	return out, nil
}
