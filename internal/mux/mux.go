// Package mux simulates the paper's ATM multiplexer (§5.5): N homogeneous
// VBR video sources, frame-synchronised, with cells equispaced over each
// frame duration (deterministic smoothing) feeding a FIFO buffer drained at
// constant rate.
//
// Because arrivals and service are both fluid and uniform within a frame,
// the cell-level queue is captured exactly by a frame-level Lindley
// recursion with clipping:
//
//	loss_n = (W_n + A_n − C − B)^+
//	W_{n+1} = min((W_n + A_n − C)^+, B)
//
// where A_n is the aggregate frame volume (cells), C = N·c the service
// volume per frame, and B = N·b the total buffer. The finite-buffer run
// measures the cell loss rate CLR = Σ loss / Σ A; the infinite-buffer run
// measures the buffer overflow probability P(W > x) that the paper's
// large-deviations asymptotics estimate.
//
// Both runs are built on one stepped simulation core (Engine) around a
// single shared Lindley kernel (lindleyStep). Open-loop sources are
// drained in 4096-frame chunks exactly as the historical block pipeline
// did; when any source is closed-loop (traffic.FeedbackGenerator) the run
// advances frame-by-frame so the post-frame queue state can feed back
// into generation.
package mux

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/runner"
	"repro/internal/seed"
	"repro/internal/stats"
	"repro/internal/telemetry/prof"
	"repro/internal/trace"
	"repro/internal/traffic"

	"context"
)

// Profiling labels for the two execution paths, mirroring the
// mux_runs_total{path=...} counters: CPU samples inside the chunked
// drain loops carry path=chunked, the per-frame engine path=stepped.
var (
	profChunked = prof.Labels{Path: "chunked"}
	profStepped = prof.Labels{Path: "stepped"}
)

// Config describes one finite-buffer simulation replication.
type Config struct {
	Model  traffic.Model
	N      int     // number of multiplexed sources
	C      float64 // bandwidth per source c, cells/frame
	B      float64 // buffer per source b, cells (total buffer N·b)
	Frames int     // simulated frames after warm-up
	Warmup int     // frames discarded before measurement
	Seed   int64
	// Span, when active, parents per-chunk "mux fill"/"mux drain" trace
	// spans. Purely observational (never part of seeds or fingerprints);
	// the zero Span disables chunk tracing at the cost of one branch.
	Span trace.Span
	// ForceStep drives the run through the per-frame stepped engine even
	// when every source is open-loop. Results are bit-identical to the
	// chunked fast path (the block contract makes sample paths invariant
	// under Fill partitioning); only the per-frame overhead differs. Used
	// by the equivalence tests and the engine benchmarks.
	ForceStep bool
	// Ctx, when non-nil, carries pprof profiling labels (figure, model,
	// sweep point, lane — see internal/telemetry/prof) that Run merges
	// with its own path label, so CPU samples taken inside the simulation
	// loops attribute to experiment coordinates. Purely observational,
	// like Span: never part of seeds, fingerprints or results.
	Ctx context.Context
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("mux: nil model")
	}
	if c.N < 1 {
		return fmt.Errorf("mux: N = %d must be ≥ 1", c.N)
	}
	if c.C <= 0 {
		return fmt.Errorf("mux: bandwidth c = %v must be positive", c.C)
	}
	if c.B < 0 {
		return fmt.Errorf("mux: buffer b = %v must be non-negative", c.B)
	}
	if c.Frames < 1 {
		return fmt.Errorf("mux: frames = %d must be ≥ 1", c.Frames)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("mux: warmup = %d must be non-negative", c.Warmup)
	}
	return nil
}

// Result summarises one finite-buffer replication.
type Result struct {
	Frames       int
	ArrivedCells float64
	LostCells    float64
	CLR          float64 // LostCells / ArrivedCells
	LossFrames   int     // frames during which any loss occurred
	MeanWorkload float64 // time-average workload, cells
	MaxWorkload  float64 // peak workload, cells
	FinalW       float64 // workload at measurement end (conservation checks)
	InitialW     float64 // workload at measurement start
}

// Run executes one finite-buffer replication. Source i uses a child seed
// derived from cfg.Seed, so replications are reproducible and sources
// mutually independent.
//
// With only open-loop sources, arrivals are pulled in chunkFrames-sized
// blocks and the Lindley kernel runs over the contiguous aggregate slice;
// the sample path is bit-identical to the per-frame scalar protocol. With
// any closed-loop source the run steps frame-by-frame through the engine
// so queue state feeds back into generation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	eng, err := newRunEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	defer eng.release()
	if eng.closedLoop() || cfg.ForceStep {
		var res Result
		prof.Do(cfg.Ctx, profStepped, func(context.Context) {
			res = runStepped(eng, cfg.Frames, cfg.Warmup, cfg.Span)
		})
		return res, nil
	}

	var res Result
	prof.Do(cfg.Ctx, profChunked, func(context.Context) {
		totalC := float64(cfg.N) * cfg.C
		totalB := float64(cfg.N) * cfg.B
		var w float64
		for rem := cfg.Warmup; rem > 0; {
			n := min(rem, chunkFrames)
			for _, a := range eng.nextChunk(n) {
				_, w = lindleyStep(w, a, totalC, totalB)
			}
			rem -= n
		}
		res = Result{Frames: cfg.Frames, InitialW: w}
		var sumW float64
		for rem := cfg.Frames; rem > 0; {
			n := min(rem, chunkFrames)
			chunk := eng.nextChunk(n)
			spDrain := cfg.Span.Child("mux drain", trace.Int("frames", n))
			stopDrain := metDrainTime.Start()
			for _, a := range chunk {
				res.ArrivedCells += a
				loss, next := lindleyStep(w, a, totalC, totalB)
				if loss > 0 {
					res.LostCells += loss
					res.LossFrames++
				}
				w = next
				sumW += w
				if w > res.MaxWorkload {
					res.MaxWorkload = w
				}
			}
			stopDrain()
			spDrain.End()
			metOccupancy.Observe(w)
			rem -= n
		}
		res.FinalW = w
		res.MeanWorkload = sumW / float64(cfg.Frames)
		if res.ArrivedCells > 0 {
			res.CLR = res.LostCells / res.ArrivedCells
		}
	})
	metRuns.Inc()
	metPathChunked.Inc()
	metCellsArrived.Add(res.ArrivedCells)
	metCellsLost.Add(res.LostCells)
	return res, nil
}

// ChildSeeds derives n per-source seeds from a master seed via the
// splitmix64 hash of (master, source index). The derivation is shared with
// package cellsim so fluid and cell-level simulations of the same
// configuration see statistically identical arrival processes, and it is
// index-addressed rather than stream-drawn so any subset of sources can be
// re-derived independently.
func ChildSeeds(masterSeed int64, n int) []int64 {
	return seed.Children(masterSeed, n)
}

// sourceGenerators builds N independent generators with seeds derived from
// a master seed. A model returning a nil generator (e.g. an unfitted or
// partially-constructed wrapper) is reported as an error rather than left
// to panic frames later inside the simulation loop.
func sourceGenerators(m traffic.Model, n int, sd int64) ([]traffic.Generator, error) {
	seeds := ChildSeeds(sd, n)
	gens := make([]traffic.Generator, n)
	for i := range gens {
		g := m.NewGenerator(seeds[i])
		if g == nil {
			return nil, fmt.Errorf("mux: model %q returned nil generator for source %d (seed %d)",
				m.Name(), i, seeds[i])
		}
		gens[i] = g
	}
	return gens, nil
}

// RunReplications executes reps independent replications (the paper runs
// 60), deriving the seed of replication i as the splitmix64 hash of
// (cfg.Seed, "mux/reps", i) so any replication can be reproduced in
// isolation.
func RunReplications(cfg Config, reps int) ([]Result, error) {
	if reps < 1 {
		return nil, fmt.Errorf("mux: reps = %d must be ≥ 1", reps)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]Result, reps)
	for i := range out {
		c := cfg
		c.Seed = seed.DeriveString(cfg.Seed, "mux/reps", uint64(i))
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// RunReplicationsEngine executes reps independent replications of Run on
// the orchestration engine's worker pool. Replication i always runs with
// the splitmix64-derived seed of (cfg.Seed, job, i), so the output is
// bit-identical for every worker count — including for closed-loop
// configurations, whose feedback dynamics are confined to each
// replication's own serial step loop.
//
// This is the replication fan-out for configurations that cannot share a
// coupled buffer sweep (closed-loop sources, where the queue state feeds
// back into generation and therefore depends on the buffer size).
func RunReplicationsEngine(ctx context.Context, eng *runner.Engine, cfg Config, reps int) ([]Result, error) {
	if reps < 1 {
		return nil, fmt.Errorf("mux: reps = %d must be ≥ 1", reps)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := runner.Spec{
		ID:         "mux/clr/" + cfg.Model.Name(),
		Reps:       reps,
		MasterSeed: cfg.Seed,
		Fingerprint: fmt.Sprintf("mux/clr|model=%s|N=%d|c=%g|b=%g|frames=%d|warmup=%d",
			cfg.Model.Name(), cfg.N, cfg.C, cfg.B, cfg.Frames, cfg.Warmup),
	}
	return runner.Run(ctx, eng, spec, func(ctx context.Context, r runner.Rep) (Result, error) {
		c := cfg
		c.Seed = r.Seed
		c.Span = trace.FromContext(ctx)
		c.Ctx = ctx // carries the runner's lane label and the drivers' coordinates
		res, err := Run(c)
		if err != nil {
			return Result{}, err
		}
		r.AddUnits(int64(c.Frames))
		return res, nil
	})
}

// CLREstimate pools replication results into a ratio estimate of the cell
// loss rate with a replication confidence interval. An empty results slice
// yields the defined zero-value estimate (point 0, zero half-width,
// NumObs 0) rather than propagating NaNs into downstream figures.
func CLREstimate(results []Result, level float64) stats.CI {
	if len(results) == 0 {
		return stats.CI{Level: level}
	}
	clrs := make([]float64, len(results))
	for i, r := range results {
		clrs[i] = r.CLR
	}
	return stats.ReplicationCI(clrs, level)
}

// BOPConfig describes an infinite-buffer overflow probability measurement.
type BOPConfig struct {
	Model      traffic.Model
	N          int
	C          float64 // bandwidth per source, cells/frame
	Frames     int     // measured frames
	Warmup     int     // discarded frames
	Seed       int64
	Thresholds []float64 // workload levels x (total cells) for P(W > x)
	Span       trace.Span
	// ForceStep forces the per-frame stepped engine for open-loop sources;
	// see Config.ForceStep.
	ForceStep bool
	// Ctx carries pprof profiling labels; see Config.Ctx.
	Ctx context.Context
}

// Validate checks the configuration.
func (c BOPConfig) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("mux: nil model")
	}
	if c.N < 1 || c.C <= 0 || c.Frames < 1 || c.Warmup < 0 {
		return fmt.Errorf("mux: invalid BOP config N=%d c=%v frames=%d warmup=%d",
			c.N, c.C, c.Frames, c.Warmup)
	}
	if len(c.Thresholds) == 0 {
		return fmt.Errorf("mux: no thresholds")
	}
	for _, x := range c.Thresholds {
		if x < 0 {
			return fmt.Errorf("mux: negative threshold %v", x)
		}
	}
	return nil
}

// BOPResult reports tail probabilities of the stationary workload.
type BOPResult struct {
	Thresholds []float64
	Prob       []float64 // P(W > threshold), fraction of measured frames
	MaxW       float64
}

// countThresholds bumps counts[k] for every sorted threshold thr[k]
// exceeded by workload w — shared by the chunked and stepped BOP loops.
func countThresholds(w float64, thr []float64, counts []int) {
	for j := len(thr) - 1; j >= 0; j-- {
		if w > thr[j] {
			for k := 0; k <= j; k++ {
				counts[k]++
			}
			break
		}
	}
}

// RunBOP simulates the infinite-buffer workload recursion and estimates
// P(W > x) at each threshold as the fraction of frame boundaries whose
// workload exceeds x. Closed-loop sources drop the run to the per-frame
// stepped engine (feedback carries Buffer = +Inf and zero loss — the
// congestion signal is utilization alone).
func RunBOP(cfg BOPConfig) (BOPResult, error) {
	if err := cfg.Validate(); err != nil {
		return BOPResult{}, err
	}
	thr := append([]float64(nil), cfg.Thresholds...)
	sort.Float64s(thr)
	eng, err := newBOPEngine(cfg, cfg.Span)
	if err != nil {
		return BOPResult{}, err
	}
	defer eng.release()
	counts := make([]int, len(thr))
	res := BOPResult{Thresholds: thr}

	if eng.closedLoop() || cfg.ForceStep {
		prof.Do(cfg.Ctx, profStepped, func(context.Context) {
			for i := 0; i < cfg.Warmup; i++ {
				eng.Step()
			}
			for rem := cfg.Frames; rem > 0; {
				n := min(rem, chunkFrames)
				sp := cfg.Span.Child("mux step", trace.Int("frames", n))
				stopDrain := metDrainTime.Start()
				for i := 0; i < n; i++ {
					st := eng.Step()
					if st.W > res.MaxW {
						res.MaxW = st.W
					}
					countThresholds(st.W, thr, counts)
				}
				stopDrain()
				sp.End()
				metOccupancy.Observe(eng.W())
				rem -= n
			}
		})
	} else {
		prof.Do(cfg.Ctx, profChunked, func(context.Context) {
			totalC := float64(cfg.N) * cfg.C
			inf := math.Inf(1)
			var w float64
			for rem := cfg.Warmup; rem > 0; {
				n := min(rem, chunkFrames)
				for _, a := range eng.nextChunk(n) {
					_, w = lindleyStep(w, a, totalC, inf)
				}
				rem -= n
			}
			for rem := cfg.Frames; rem > 0; {
				n := min(rem, chunkFrames)
				chunk := eng.nextChunk(n)
				spDrain := cfg.Span.Child("mux drain", trace.Int("frames", n))
				stopDrain := metDrainTime.Start()
				for _, a := range chunk {
					_, w = lindleyStep(w, a, totalC, inf)
					if w > res.MaxW {
						res.MaxW = w
					}
					countThresholds(w, thr, counts)
				}
				stopDrain()
				spDrain.End()
				metOccupancy.Observe(w)
				rem -= n
			}
		})
	}
	metRuns.Inc()
	metPathChunked.Inc()
	res.Prob = make([]float64, len(thr))
	for i, c := range counts {
		res.Prob[i] = float64(c) / float64(cfg.Frames)
	}
	return res, nil
}

// SampleWorkload runs the infinite-buffer workload recursion and returns
// every `every`-th frame-boundary workload (total cells), for studying the
// shape of the stationary queue distribution — e.g. distinguishing the
// Weibull body of LRD input from the exponential body of Markov input on
// a log-survival plot. The sampling stride must be ≥ 1; every < 1 is an
// error, never a silent full-rate or empty sample.
func SampleWorkload(cfg BOPConfig, every int) ([]float64, error) {
	if every < 1 {
		return nil, fmt.Errorf("mux: sampling stride %d must be ≥ 1", every)
	}
	// Thresholds are irrelevant here but Validate demands one.
	c := cfg
	c.Thresholds = []float64{0}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	eng, err := newBOPEngine(cfg, cfg.Span)
	if err != nil {
		return nil, err
	}
	defer eng.release()
	out := make([]float64, 0, cfg.Frames/every+1)

	if eng.closedLoop() || cfg.ForceStep {
		prof.Do(cfg.Ctx, profStepped, func(context.Context) {
			for i := 0; i < cfg.Warmup; i++ {
				eng.Step()
			}
			for frame := 0; frame < cfg.Frames; frame++ {
				st := eng.Step()
				if frame%every == 0 {
					out = append(out, st.W)
				}
			}
		})
		return out, nil
	}

	prof.Do(cfg.Ctx, profChunked, func(context.Context) {
		totalC := float64(cfg.N) * cfg.C
		inf := math.Inf(1)
		var w float64
		for rem := cfg.Warmup; rem > 0; {
			n := min(rem, chunkFrames)
			for _, a := range eng.nextChunk(n) {
				_, w = lindleyStep(w, a, totalC, inf)
			}
			rem -= n
		}
		frame := 0
		for rem := cfg.Frames; rem > 0; {
			n := min(rem, chunkFrames)
			for _, a := range eng.nextChunk(n) {
				_, w = lindleyStep(w, a, totalC, inf)
				if frame%every == 0 {
					out = append(out, w)
				}
				frame++
			}
			rem -= n
		}
	})
	return out, nil
}
