package mux

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dar"
	"repro/internal/models"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// constModel emits a constant frame size; queue dynamics are then exact.
type constModel struct{ size float64 }

func (c constModel) Name() string      { return "const" }
func (c constModel) Mean() float64     { return c.size }
func (c constModel) Variance() float64 { return 0 }
func (c constModel) ACF(k int) float64 {
	if k == 0 {
		return 1
	}
	return 0
}
func (c constModel) NewGenerator(seed int64) traffic.Generator {
	return traffic.GeneratorFunc(func() float64 { return c.size })
}

// iidGaussian yields an uncorrelated Gaussian frame process via DAR(1) with
// ρ = 0.
func iidGaussian(t testing.TB, mean, variance float64) traffic.Model {
	t.Helper()
	p, err := dar.NewDAR1(0, dar.GaussianMarginal(mean, variance))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	m := constModel{1}
	good := Config{Model: m, N: 2, C: 2, B: 1, Frames: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Model: nil, N: 2, C: 2, B: 1, Frames: 10},
		{Model: m, N: 0, C: 2, B: 1, Frames: 10},
		{Model: m, N: 2, C: 0, B: 1, Frames: 10},
		{Model: m, N: 2, C: 2, B: -1, Frames: 10},
		{Model: m, N: 2, C: 2, B: 1, Frames: 0},
		{Model: m, N: 2, C: 2, B: 1, Frames: 10, Warmup: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunConstantUnderload(t *testing.T) {
	// Constant arrivals below capacity: no loss, empty queue.
	res, err := Run(Config{Model: constModel{10}, N: 5, C: 11, B: 100, Frames: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCells != 0 || res.CLR != 0 {
		t.Fatalf("unexpected loss %v", res.LostCells)
	}
	if res.MaxWorkload != 0 {
		t.Fatalf("queue should stay empty, max %v", res.MaxWorkload)
	}
	if res.ArrivedCells != 10*5*1000 {
		t.Fatalf("arrivals %v, want 50000", res.ArrivedCells)
	}
}

func TestRunConstantOverloadLosesExactly(t *testing.T) {
	// Arrivals exceed capacity by exactly 5 cells/frame with a 30-cell
	// total buffer: after the buffer fills (6 frames), every frame loses 5.
	res, err := Run(Config{Model: constModel{11}, N: 5, C: 10, B: 6, Frames: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Total surplus = 5 cells/frame × 100 = 500; buffer holds 30.
	want := 500.0 - 30.0
	if math.Abs(res.LostCells-want) > 1e-9 {
		t.Fatalf("lost %v, want %v", res.LostCells, want)
	}
	if math.Abs(res.MaxWorkload-30) > 1e-9 {
		t.Fatalf("max workload %v, want 30", res.MaxWorkload)
	}
}

func TestRunConservation(t *testing.T) {
	// Arrivals − losses − drained = ΔW, where drained ≤ C per frame. We
	// verify the weaker invariant that total loss never exceeds total
	// arrivals and the workload stays within [0, B].
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Model: z, N: 10, C: 520, B: 50, Frames: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCells < 0 || res.LostCells > res.ArrivedCells {
		t.Fatalf("loss %v outside [0, arrivals %v]", res.LostCells, res.ArrivedCells)
	}
	if res.MaxWorkload > 10*50+1e-9 {
		t.Fatalf("workload %v exceeded buffer", res.MaxWorkload)
	}
	if res.CLR != res.LostCells/res.ArrivedCells {
		t.Fatal("CLR inconsistent")
	}
}

func TestZeroBufferCLRMatchesGaussianLoss(t *testing.T) {
	// At B = 0 the fluid CLR is E[(A−C)^+]/E[A] exactly; with iid Gaussian
	// frames the numerator has the closed form σ_N·L((C−μ_N)/σ_N).
	m := iidGaussian(t, 500, 5000)
	n := 30
	c := 520.0
	cfg := Config{Model: m, N: n, C: c, B: 0, Frames: 400000, Seed: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	muN := 500.0 * float64(n)
	sigmaN := math.Sqrt(5000 * float64(n))
	z := (c*float64(n) - muN) / sigmaN
	want := sigmaN * stats.NormalLoss(z) / muN
	if math.Abs(res.CLR-want)/want > 0.15 {
		t.Fatalf("CLR = %v, Gaussian fluid value %v", res.CLR, want)
	}
}

func TestLossDecreasesWithBuffer(t *testing.T) {
	// Path-wise (same seed), a larger buffer never loses more cells.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Model: z, N: 10, C: 515, Frames: 30000, Seed: 11}
	prev := math.Inf(1)
	for _, b := range []float64{0, 10, 40, 160} {
		cfg := base
		cfg.B = b
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.LostCells > prev {
			t.Fatalf("loss increased with buffer at b=%v: %v > %v", b, res.LostCells, prev)
		}
		prev = res.LostCells
	}
}

func TestRunReproducible(t *testing.T) {
	z, err := models.NewZ(0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 5, C: 520, B: 20, Frames: 5000, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestWarmupDiscardsTransient(t *testing.T) {
	// With warmup, the initial workload at measurement start may be > 0.
	m := constModel{12}
	res, err := Run(Config{Model: m, N: 1, C: 10, B: 100, Frames: 10, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialW != 10 { // 5 warm-up frames × surplus 2
		t.Fatalf("initial workload %v, want 10", res.InitialW)
	}
}

func TestRunReplications(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 5, C: 515, B: 10, Frames: 4000, Seed: 1}
	results, err := RunReplications(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	distinct := false
	for i := 1; i < len(results); i++ {
		if results[i].CLR != results[0].CLR {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("replications are not independent")
	}
	ci := CLREstimate(results, 0.95)
	if ci.NumObs != 5 || ci.Point < 0 {
		t.Fatalf("bad CI %+v", ci)
	}
	if _, err := RunReplications(cfg, 0); err == nil {
		t.Fatal("reps = 0 should error")
	}
}

// Property: for any stable constant-rate configuration, the fluid queue
// workload after n frames equals min(n·surplus, B) when surplus > 0.
func TestConstantRateWorkloadProperty(t *testing.T) {
	f := func(rate uint8, cap8 uint8, buf8 uint8) bool {
		a := float64(rate%50) + 51 // 51..100
		c := float64(cap8%50) + 1  // 1..50 (always overloaded)
		b := float64(buf8 % 200)
		frames := 37
		res, err := Run(Config{Model: constModel{a}, N: 1, C: c, B: b, Frames: frames})
		if err != nil {
			return false
		}
		surplus := a - c
		wantLost := math.Max(float64(frames)*surplus-b, 0)
		return math.Abs(res.LostCells-wantLost) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBOPConfigValidate(t *testing.T) {
	m := constModel{1}
	good := BOPConfig{Model: m, N: 1, C: 2, Frames: 10, Thresholds: []float64{1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BOPConfig{
		{Model: nil, N: 1, C: 2, Frames: 10, Thresholds: []float64{1}},
		{Model: m, N: 0, C: 2, Frames: 10, Thresholds: []float64{1}},
		{Model: m, N: 1, C: 2, Frames: 10},
		{Model: m, N: 1, C: 2, Frames: 10, Thresholds: []float64{-1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunBOPMonotoneTail(t *testing.T) {
	m := iidGaussian(t, 500, 5000)
	res, err := RunBOP(BOPConfig{
		Model: m, N: 10, C: 510, Frames: 200000, Seed: 5,
		Thresholds: []float64{0, 100, 300, 600, 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Prob); i++ {
		if res.Prob[i] > res.Prob[i-1] {
			t.Fatalf("tail not monotone: %v", res.Prob)
		}
	}
	if res.Prob[0] <= 0 {
		t.Fatal("P(W > 0) should be positive at 98% utilisation")
	}
	if res.MaxW <= 0 {
		t.Fatal("max workload should be positive")
	}
}

func TestRunBOPUnsortedThresholdsHandled(t *testing.T) {
	m := iidGaussian(t, 500, 5000)
	res, err := RunBOP(BOPConfig{
		Model: m, N: 5, C: 510, Frames: 50000, Seed: 9,
		Thresholds: []float64{500, 0, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sortedAsc(res.Thresholds) {
		t.Fatalf("thresholds not sorted: %v", res.Thresholds)
	}
}

func sortedAsc(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

func TestRunBOPAgainstLindleyByHand(t *testing.T) {
	// Deterministic cross-check of the counting logic: a constant surplus
	// of 2 cells/frame walks the workload up 2, 4, 6, ... so after 100
	// frames P(W > 50) counted over frames = fraction of frames with
	// workload > 50 = (100 − 25)/100.
	res, err := RunBOP(BOPConfig{
		Model: constModel{12}, N: 1, C: 10, Frames: 100,
		Thresholds: []float64{50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Prob[0]-0.75) > 1e-12 {
		t.Fatalf("P(W > 50) = %v, want 0.75", res.Prob[0])
	}
}

func TestSourceGeneratorsIndependentSeeds(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	gens, err := sourceGenerators(z, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := traffic.Generate(gens[0], 50)
	b := traffic.Generate(gens[1], 50)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct sources produced identical paths")
	}
	_ = rand.New(rand.NewSource(1)) // keep math/rand imported meaningfully
}

func BenchmarkRunZ30Sources(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Model: z, N: 30, C: 538, B: 100, Frames: 2000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSampleWorkload(t *testing.T) {
	m := iidGaussian(t, 500, 5000)
	ws, err := SampleWorkload(BOPConfig{
		Model: m, N: 5, C: 510, Frames: 10000, Seed: 6,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1000 {
		t.Fatalf("got %d samples, want 1000", len(ws))
	}
	var positive int
	for _, w := range ws {
		if w < 0 {
			t.Fatal("negative workload")
		}
		if w > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("workload never positive at 98% utilisation")
	}
	if _, err := SampleWorkload(BOPConfig{Model: m, N: 5, C: 510, Frames: 10}, 0); err == nil {
		t.Fatal("stride 0 should error")
	}
	if _, err := SampleWorkload(BOPConfig{}, 1); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestSampleWorkloadMatchesBOP(t *testing.T) {
	// The empirical survival of sampled workloads must agree with RunBOP's
	// direct counting for the same seed and stride 1.
	m := iidGaussian(t, 500, 5000)
	cfg := BOPConfig{Model: m, N: 5, C: 510, Frames: 50000, Seed: 2,
		Thresholds: []float64{300}}
	bop, err := RunBOP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := SampleWorkload(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	for _, w := range ws {
		if w > 300 {
			count++
		}
	}
	got := float64(count) / float64(len(ws))
	if math.Abs(got-bop.Prob[0]) > 1e-12 {
		t.Fatalf("survival %v vs RunBOP %v", got, bop.Prob[0])
	}
}
