package mux

import (
	"runtime/debug"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/telemetry"
)

// TestChunkPoolReuse proves via the telemetry counter pair that chunk
// buffers actually cycle through the sync.Pool: back-to-back runs must be
// served from returned buffers (hits), not fresh allocations (misses).
// This is the regression guard for the deferred release invariant — a leak
// (release not reached on an early exit) shows up as misses growing with
// every run.
func TestChunkPoolReuse(t *testing.T) {
	// sync.Pool may be emptied by a GC cycle; disable GC for the duration
	// so observed misses are attributable to the code path, not the
	// collector.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 4, C: 538, B: 100, Frames: 2000, Seed: 1}

	// Warm the pool: the first run may miss on both buffers.
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	gets0 := metPoolGets.Value()
	misses0 := metPoolMisses.Value()
	const runs = 5
	for i := 0; i < runs; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	dGets := metPoolGets.Value() - gets0
	dMisses := metPoolMisses.Value() - misses0

	if dGets != 2*runs {
		t.Errorf("pool gets = %d across %d runs, want %d (agg + tmp per run)", dGets, runs, 2*runs)
	}
	if dMisses != 0 {
		t.Errorf("pool misses = %d after warm-up, want 0: chunk buffers are not being returned", dMisses)
	}
}

// TestRunMetricsAccumulate sanity-checks the per-run counters: frames,
// cells and run counts must advance by the simulated amounts.
func TestRunMetricsAccumulate(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 4, C: 538, B: 10, Frames: 5000, Warmup: 100, Seed: 3}

	frames0 := telemetry.Default.Counter("mux_frames_total").Value()
	runs0 := telemetry.Default.Counter("mux_runs_total").Value()
	arrived0 := telemetry.Default.FloatCounter("mux_cells_arrived_total").Value()
	occ0 := telemetry.Default.Histogram("mux_buffer_occupancy_cells").Count()

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if d := telemetry.Default.Counter("mux_frames_total").Value() - frames0; d != int64(cfg.Frames+cfg.Warmup) {
		t.Errorf("frames counter advanced %d, want %d", d, cfg.Frames+cfg.Warmup)
	}
	if d := telemetry.Default.Counter("mux_runs_total").Value() - runs0; d != 1 {
		t.Errorf("runs counter advanced %d, want 1", d)
	}
	// Delta of a float accumulator: compare within rounding tolerance of
	// the counter's absolute magnitude.
	d := telemetry.Default.FloatCounter("mux_cells_arrived_total").Value() - arrived0
	if tol := 1e-9 * (arrived0 + res.ArrivedCells); d < res.ArrivedCells-tol || d > res.ArrivedCells+tol {
		t.Errorf("cells-arrived counter advanced %v, want %v", d, res.ArrivedCells)
	}
	if d := telemetry.Default.Histogram("mux_buffer_occupancy_cells").Count() - occ0; d < 1 {
		t.Error("occupancy histogram recorded no samples")
	}
}

// Telemetry must be purely observational: two identical runs, one
// surrounded by heavy metric reads, must produce bit-identical results.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 8, C: 538, B: 50, Frames: 10000, Warmup: 500, Seed: 42}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave snapshot reads with a second identical run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			telemetry.Default.Snapshot()
		}
	}()
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if r1 != r2 {
		t.Errorf("telemetry perturbed results:\n r1 = %+v\n r2 = %+v", r1, r2)
	}
	// And the registry renders without error.
	var found bool
	for _, s := range telemetry.Default.Snapshot() {
		if strings.HasPrefix(s.Name, "mux_") {
			found = true
		}
	}
	if !found {
		t.Error("no mux_* metrics in the default registry snapshot")
	}
}
