package mux

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/runner"
	"repro/internal/telemetry/prof"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// RunSweep measures the finite-buffer CLR at several buffer sizes in a
// single pass: the same aggregate arrival sample path drives one Lindley
// recursion per buffer size. This is both much cheaper than independent
// runs (arrival generation dominates) and statistically sharper, since the
// buffer curves are positively coupled exactly as in the paper's plots.
//
// cfg.B is ignored; buffersCells lists per-source buffer allocations b
// (total buffer N·b each). Results are returned in ascending buffer order.
func RunSweep(cfg Config, buffersCells []float64) ([]Result, error) {
	cfg.B = 0
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(buffersCells) == 0 {
		return nil, fmt.Errorf("mux: empty buffer sweep")
	}
	bs := append([]float64(nil), buffersCells...)
	sort.Float64s(bs)
	for _, b := range bs {
		if b < 0 {
			return nil, fmt.Errorf("mux: negative buffer %v in sweep", b)
		}
	}

	gens, err := sourceGenerators(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// A coupled sweep shares one arrival sample path across every buffer
	// size — structurally impossible for closed-loop sources, whose
	// arrivals depend on the buffer through the feedback tap.
	for i, g := range gens {
		if traffic.IsClosedLoop(g) {
			return nil, fmt.Errorf("mux: model %q source %d is closed-loop; "+
				"feedback couples arrivals to the buffer size, so buffers cannot "+
				"share a sweep — run per-buffer replications (RunReplicationsEngine) instead",
				cfg.Model.Name(), i)
		}
	}
	ba := newBlockAggregator(gens)
	ba.span = cfg.Span
	defer ba.release()
	totalC := float64(cfg.N) * cfg.C
	totalB := make([]float64, len(bs))
	for i, b := range bs {
		totalB[i] = float64(cfg.N) * b
	}

	results := make([]Result, len(bs))
	// Coupled sweeps are chunked by construction (closed-loop sources were
	// rejected above), so the whole pass profiles as path=chunked.
	prof.Do(cfg.Ctx, profChunked, func(context.Context) {
		w := make([]float64, len(bs))
		for rem := cfg.Warmup; rem > 0; {
			n := min(rem, chunkFrames)
			for _, a := range ba.next(n) {
				for j := range w {
					_, w[j] = lindleyStep(w[j], a, totalC, totalB[j])
				}
			}
			rem -= n
		}
		for j := range results {
			results[j] = Result{Frames: cfg.Frames, InitialW: w[j]}
		}
		sumW := make([]float64, len(bs))
		for rem := cfg.Frames; rem > 0; {
			n := min(rem, chunkFrames)
			chunk := ba.next(n)
			spDrain := cfg.Span.Child("mux drain", trace.Int("frames", n))
			stopDrain := metDrainTime.Start()
			for _, a := range chunk {
				for j := range w {
					res := &results[j]
					res.ArrivedCells += a
					loss, next := lindleyStep(w[j], a, totalC, totalB[j])
					if loss > 0 {
						res.LostCells += loss
						res.LossFrames++
					}
					w[j] = next
					sumW[j] += w[j]
					if w[j] > res.MaxWorkload {
						res.MaxWorkload = w[j]
					}
				}
			}
			stopDrain()
			spDrain.End()
			// One occupancy sample per chunk, from the largest buffer in the
			// sweep — the recursion whose workload the asymptotics study.
			metOccupancy.Observe(w[len(w)-1])
			rem -= n
		}
		for j := range results {
			res := &results[j]
			res.FinalW = w[j]
			res.MeanWorkload = sumW[j] / float64(cfg.Frames)
			if res.ArrivedCells > 0 {
				res.CLR = res.LostCells / res.ArrivedCells
			}
		}
	})
	metRuns.Inc()
	metPathChunked.Inc()
	if len(results) > 0 {
		// Arrivals are shared across the coupled recursions; count them
		// once. Losses differ per buffer; count the largest buffer's.
		metCellsArrived.Add(results[0].ArrivedCells)
		metCellsLost.Add(results[len(results)-1].LostCells)
	}
	return results, nil
}

// SweepReplications runs reps independent RunSweep passes and returns
// results indexed [buffer][replication]. It is the serial path:
// equivalent to SweepReplicationsEngine on a 1-worker engine, and
// bit-identical to any parallel worker count since per-replication seeds
// are pure functions of (cfg.Seed, replication index).
func SweepReplications(cfg Config, buffersCells []float64, reps int) ([][]Result, error) {
	return SweepReplicationsEngine(context.Background(), runner.New(1), cfg, buffersCells, reps)
}

// sweepSpec describes the replication batch for the orchestration engine.
// The fingerprint covers every parameter that affects results so that
// checkpoint entries from a different configuration are never replayed.
func sweepSpec(cfg Config, buffersCells []float64, reps int) runner.Spec {
	return runner.Spec{
		ID:         "mux/sweep/" + cfg.Model.Name(),
		Reps:       reps,
		MasterSeed: cfg.Seed,
		Fingerprint: fmt.Sprintf("mux/sweep|model=%s|N=%d|c=%g|frames=%d|warmup=%d|buffers=%v",
			cfg.Model.Name(), cfg.N, cfg.C, cfg.Frames, cfg.Warmup, buffersCells),
	}
}

// SweepReplicationsEngine runs reps independent RunSweep passes on the
// engine's worker pool and returns results indexed [buffer][replication]
// (buffers in ascending order, as RunSweep reports them). Replication i
// always runs with the splitmix64-derived seed of (cfg.Seed, job, i), so
// the output is bit-identical for every worker count; the engine provides
// cancellation, progress counters and checkpoint/resume.
func SweepReplicationsEngine(ctx context.Context, eng *runner.Engine, cfg Config, buffersCells []float64, reps int) ([][]Result, error) {
	if reps < 1 {
		return nil, fmt.Errorf("mux: reps = %d must be ≥ 1", reps)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	byRep, err := runner.Run(ctx, eng, sweepSpec(cfg, buffersCells, reps),
		func(ctx context.Context, r runner.Rep) ([]Result, error) {
			c := cfg
			c.Seed = r.Seed
			c.Span = trace.FromContext(ctx)
			c.Ctx = ctx // carries the runner's lane label and the drivers' coordinates
			res, err := RunSweep(c, buffersCells)
			if err != nil {
				return nil, err
			}
			r.AddUnits(int64(c.Frames))
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(buffersCells))
	for j := range out {
		out[j] = make([]Result, reps)
		for rep, res := range byRep {
			out[j][rep] = res[j]
		}
	}
	return out, nil
}
