package mux

import (
	"fmt"
	"sort"
)

// RunSweep measures the finite-buffer CLR at several buffer sizes in a
// single pass: the same aggregate arrival sample path drives one Lindley
// recursion per buffer size. This is both much cheaper than independent
// runs (arrival generation dominates) and statistically sharper, since the
// buffer curves are positively coupled exactly as in the paper's plots.
//
// cfg.B is ignored; buffersCells lists per-source buffer allocations b
// (total buffer N·b each). Results are returned in ascending buffer order.
func RunSweep(cfg Config, buffersCells []float64) ([]Result, error) {
	cfg.B = 0
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(buffersCells) == 0 {
		return nil, fmt.Errorf("mux: empty buffer sweep")
	}
	bs := append([]float64(nil), buffersCells...)
	sort.Float64s(bs)
	for _, b := range bs {
		if b < 0 {
			return nil, fmt.Errorf("mux: negative buffer %v in sweep", b)
		}
	}

	gens := sourceGenerators(cfg.Model, cfg.N, cfg.Seed)
	totalC := float64(cfg.N) * cfg.C
	totalB := make([]float64, len(bs))
	for i, b := range bs {
		totalB[i] = float64(cfg.N) * b
	}

	w := make([]float64, len(bs))
	for i := 0; i < cfg.Warmup; i++ {
		a := aggregate(gens)
		for j := range w {
			w[j] = clip(w[j]+a-totalC, totalB[j])
		}
	}
	results := make([]Result, len(bs))
	for j := range results {
		results[j] = Result{Frames: cfg.Frames, InitialW: w[j]}
	}
	sumW := make([]float64, len(bs))
	for i := 0; i < cfg.Frames; i++ {
		a := aggregate(gens)
		for j := range w {
			res := &results[j]
			res.ArrivedCells += a
			net := w[j] + a - totalC
			if loss := net - totalB[j]; loss > 0 {
				res.LostCells += loss
				res.LossFrames++
			}
			w[j] = clip(net, totalB[j])
			sumW[j] += w[j]
			if w[j] > res.MaxWorkload {
				res.MaxWorkload = w[j]
			}
		}
	}
	for j := range results {
		res := &results[j]
		res.FinalW = w[j]
		res.MeanWorkload = sumW[j] / float64(cfg.Frames)
		if res.ArrivedCells > 0 {
			res.CLR = res.LostCells / res.ArrivedCells
		}
	}
	return results, nil
}

// SweepReplications runs reps independent RunSweep passes and returns
// results indexed [buffer][replication].
func SweepReplications(cfg Config, buffersCells []float64, reps int) ([][]Result, error) {
	if reps < 1 {
		return nil, fmt.Errorf("mux: reps = %d must be ≥ 1", reps)
	}
	out := make([][]Result, len(buffersCells))
	seedStream := cfg.Seed
	for rep := 0; rep < reps; rep++ {
		c := cfg
		c.Seed = seedStream + int64(rep)*1_000_003
		res, err := RunSweep(c, buffersCells)
		if err != nil {
			return nil, err
		}
		for j := range res {
			out[j] = append(out[j], res[j])
		}
	}
	return out, nil
}
