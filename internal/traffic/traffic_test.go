package traffic

import "testing"

type stubModel struct{}

func (stubModel) Name() string      { return "stub" }
func (stubModel) Mean() float64     { return 2 }
func (stubModel) Variance() float64 { return 1 }
func (stubModel) ACF(k int) float64 {
	if k == 0 {
		return 1
	}
	return 0.5
}
func (stubModel) NewGenerator(seed int64) Generator {
	n := float64(seed)
	return GeneratorFunc(func() float64 { n++; return n })
}

func TestGenerate(t *testing.T) {
	g := stubModel{}.NewGenerator(10)
	xs := Generate(g, 3)
	want := []float64{11, 12, 13}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("got %v, want %v", xs, want)
		}
	}
	if len(Generate(g, 0)) != 0 {
		t.Fatal("zero frames should yield empty slice")
	}
}

func TestACFSlice(t *testing.T) {
	acf := ACFSlice(stubModel{}, 3)
	if len(acf) != 4 || acf[0] != 1 || acf[3] != 0.5 {
		t.Fatalf("got %v", acf)
	}
}

func TestGeneratorFunc(t *testing.T) {
	calls := 0
	g := GeneratorFunc(func() float64 { calls++; return 7 })
	if g.NextFrame() != 7 || calls != 1 {
		t.Fatal("GeneratorFunc did not delegate")
	}
}
