package traffic

import "math"

// Feedback is the per-frame multiplexer state handed to closed-loop
// sources by the stepped simulation engine (mux.Engine). All quantities
// describe the frame that has just been served, after its Lindley update:
// the source observing the feedback may use it to shape the *next* frame
// it emits.
//
// The paper's sources are strictly open-loop; Feedback is the tap that
// lets rate-adaptive extensions (e.g. the AIMD controller in
// internal/models) close the loop while the open-loop models remain
// untouched.
type Feedback struct {
	// Frame counts served frames since the simulation (including warm-up)
	// began, starting at 1 for the first served frame.
	Frame int
	// W is the multiplexer workload (total cells queued) after the frame.
	W float64
	// Buffer is the total buffer B in cells; +Inf for an infinite-buffer
	// (BOP) run. Controllers must tolerate both B = 0 and B = +Inf.
	Buffer float64
	// Capacity is the service volume C in cells per frame.
	Capacity float64
	// Loss is the cell volume lost during the frame (0 on infinite
	// buffers).
	Loss float64
	// Utilization is the fraction of the service capacity actually used
	// during the frame: min(W_prev + arrivals, C)/C ∈ [0, 1].
	Utilization float64
}

// Occupancy returns the buffer occupancy signal a controller should react
// to: W/Buffer for a finite non-empty buffer, else the link utilization
// (the only congestion signal a zero or infinite buffer exposes besides
// loss).
func (f Feedback) Occupancy() float64 {
	if f.Buffer > 0 && !math.IsInf(f.Buffer, 1) {
		return f.W / f.Buffer
	}
	return f.Utilization
}

// FeedbackGenerator is a Generator whose emission adapts to multiplexer
// feedback — a closed-loop source. The stepped engine calls Observe
// exactly once per simulated frame (warm-up included), immediately after
// the frame's Lindley update and before the next NextFrame call, so the
// generator sees an uninterrupted queue-state sequence.
//
// Implementations must remain deterministic functions of (seed, feedback
// sequence): given the same seed and the same sequence of Observe calls,
// the emitted frames must be bit-identical. The engine guarantees the
// feedback sequence itself is deterministic, so closed-loop runs stay
// reproducible across repeats and worker counts.
//
// A FeedbackGenerator should NOT also implement BlockGenerator: frames
// must be drawn one at a time so each one can react to the latest
// feedback. The engine ignores a Fill method on closed-loop sources.
type FeedbackGenerator interface {
	Generator
	// Observe delivers the multiplexer state after one served frame.
	Observe(fb Feedback)
}

// IsClosedLoop reports whether g adapts to multiplexer feedback. The
// stepped engine uses this to decide between the chunked open-loop fast
// path and per-frame stepping.
func IsClosedLoop(g Generator) bool {
	_, ok := g.(FeedbackGenerator)
	return ok
}

// IsClosedLoopModel reports whether m manufactures closed-loop sources,
// by probing one throwaway generator. Callers that plan a coupled buffer
// sweep use this to fall back to per-buffer runs instead.
func IsClosedLoopModel(m Model) bool {
	if m == nil {
		return false
	}
	//lint:seedflow throwaway probe generator: only its dynamic type is inspected, it never emits a frame
	return IsClosedLoop(m.NewGenerator(0))
}
