package traffic

// BlockGenerator produces frames in bulk: one Fill call writes the next
// len(dst) frames of the sample path into a caller-supplied buffer. It is
// the streaming counterpart of Generator — the multiplexer pulls
// multi-thousand-frame chunks through this interface so the per-frame cost
// of a simulation is a couple of float operations instead of a virtual
// call per source per frame.
//
// Implementations must consume their random number stream in exactly the
// same order as repeated NextFrame calls, so a sample path is bit-identical
// whether it is drawn frame by frame or block by block. Every generator in
// this repository satisfies that contract natively; Blocks supplies a
// fallback for third-party generators.
type BlockGenerator interface {
	// Fill writes the next len(dst) frame sizes into dst. A zero-length
	// dst is a no-op.
	Fill(dst []float64)
}

// Blocks adapts g to the block-streaming interface. If g already
// implements BlockGenerator its native Fill is used; otherwise the adapter
// falls back to one NextFrame call per element, which preserves the exact
// draw order (and therefore the exact sample path) of the scalar protocol
// at the legacy per-frame cost.
func Blocks(g Generator) BlockGenerator {
	if b, ok := g.(BlockGenerator); ok {
		return b
	}
	return scalarBlocks{g}
}

// scalarBlocks is the per-frame fallback used for generators that predate
// the block protocol.
type scalarBlocks struct{ g Generator }

// Fill implements BlockGenerator one NextFrame call at a time.
func (s scalarBlocks) Fill(dst []float64) {
	for i := range dst {
		dst[i] = s.g.NextFrame()
	}
}

// scalarModel erases the block capability of a model's generators.
type scalarModel struct{ Model }

// ScalarModel wraps m so that its generators expose only the scalar
// NextFrame protocol, forcing Blocks onto the per-frame fallback. The
// sample paths are unchanged — only the pull mechanism differs — which is
// exactly what the block/scalar equivalence tests and the
// BenchmarkMuxRunScalar baseline need.
func ScalarModel(m Model) Model { return scalarModel{m} }

// NewGenerator implements Model, hiding the underlying generator's Fill.
func (s scalarModel) NewGenerator(seed int64) Generator {
	g := s.Model.NewGenerator(seed)
	if g == nil {
		return nil
	}
	return GeneratorFunc(g.NextFrame)
}

// FillFrames draws n frames from g through the block interface. It is the
// bulk counterpart of Generate and the two return identical slices for
// generators that honour the BlockGenerator draw-order contract.
func FillFrames(g BlockGenerator, n int) []float64 {
	out := make([]float64, n)
	g.Fill(out)
	return out
}
