package traffic

import (
	"math"
	"testing"
)

// geomModel is an AR(1)-like analytic model with r(k) = a^k, counting ACF
// evaluations so the memoisation can be asserted directly.
type geomModel struct {
	a     float64
	calls int
}

func (m *geomModel) Name() string      { return "geom" }
func (m *geomModel) Mean() float64     { return 500 }
func (m *geomModel) Variance() float64 { return 5000 }
func (m *geomModel) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	m.calls++
	return math.Pow(m.a, float64(k))
}
func (m *geomModel) NewGenerator(seed int64) Generator {
	return GeneratorFunc(func() float64 { return m.Mean() })
}

// fgnModel has the exact-LRD ACF r(k) = ½(|k+1|^2H − 2|k|^2H + |k−1|^2H),
// whose V(m) has the closed form σ²·m^{2H}.
type fgnModel struct{ h float64 }

func (m fgnModel) Name() string      { return "fgn" }
func (m fgnModel) Mean() float64     { return 500 }
func (m fgnModel) Variance() float64 { return 5000 }
func (m fgnModel) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	p := func(x float64) float64 { return math.Pow(x, 2*m.h) }
	fk := float64(k)
	return 0.5 * (p(fk+1) - 2*p(fk) + p(fk-1))
}
func (m fgnModel) NewGenerator(seed int64) Generator {
	return GeneratorFunc(func() float64 { return m.Mean() })
}

// directVarSum is the O(m) textbook evaluation
// V(m) = σ²[m + 2·Σ_{i=1..m−1} (m−i)·r(i)].
func directVarSum(m Model, n int) float64 {
	fm := float64(n)
	var s float64
	for i := 1; i < n; i++ {
		s += (fm - float64(i)) * m.ACF(i)
	}
	return m.Variance() * (fm + 2*s)
}

func TestMomentsVarSumMatchesDirectSum(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    Model
	}{
		{"geometric", &geomModel{a: 0.9}},
		{"fgn", fgnModel{h: 0.85}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mo := NewMoments(tc.m)
			for lag := 1; lag <= 1000; lag++ {
				got := mo.VarSum(lag)
				want := directVarSum(tc.m, lag)
				if math.Abs(got-want) > 1e-9*math.Abs(want) {
					t.Fatalf("V(%d) = %v, direct sum %v", lag, got, want)
				}
			}
		})
	}
}

func TestMomentsVarSumFGNClosedForm(t *testing.T) {
	h := 0.85
	m := fgnModel{h: h}
	mo := NewMoments(m)
	for _, lag := range []int{1, 2, 10, 100, 1000} {
		want := m.Variance() * math.Pow(float64(lag), 2*h)
		if got := mo.VarSum(lag); math.Abs(got-want) > 1e-8*want {
			t.Fatalf("V(%d) = %v, closed form σ²m^2H = %v", lag, got, want)
		}
	}
}

func TestMomentsMemoisesACF(t *testing.T) {
	m := &geomModel{a: 0.5}
	mo := NewMoments(m)
	mo.VarSum(1001) // extends through lag 1000
	calls := m.calls
	if calls > 1000 {
		t.Fatalf("extension cost %d ACF calls, want ≤ 1000", calls)
	}
	// Every further query in range must be a pure lookup.
	for lag := 1; lag <= 1001; lag++ {
		mo.VarSum(lag)
		mo.ACF(lag - 1)
		mo.SumACF(lag - 1)
	}
	if m.calls != calls {
		t.Fatalf("cached queries re-evaluated the ACF (%d → %d calls)", calls, m.calls)
	}
	if got := mo.CachedLags(); got < 1000 {
		t.Fatalf("CachedLags() = %d, want ≥ 1000", got)
	}
}

func TestMomentsModelDelegation(t *testing.T) {
	m := &geomModel{a: 0.9}
	mo := NewMoments(m)
	if mo.Name() != m.Name() || mo.Mean() != m.Mean() || mo.Variance() != m.Variance() {
		t.Fatal("Moments does not delegate Name/Mean/Variance")
	}
	if mo.Model() != Model(m) {
		t.Fatal("Model() lost the wrapped model")
	}
	if mo.NewGenerator(1).NextFrame() != m.Mean() {
		t.Fatal("NewGenerator does not delegate")
	}
	if NewMoments(mo) != mo {
		t.Fatal("NewMoments stacked a second cache on a *Moments")
	}
	if mo.ACF(-5) != mo.ACF(5) {
		t.Fatal("ACF not symmetric in lag")
	}
	if mo.VarSum(0) != 0 || mo.AggVariance(0) != 0 {
		t.Fatal("non-positive horizons should yield 0")
	}
	if got, want := mo.AggVariance(7), mo.VarSum(7)/49; got != want {
		t.Fatalf("AggVariance(7) = %v, want V(7)/49 = %v", got, want)
	}
}
