package traffic

import (
	"math"
	"sync"
	"testing"
)

// acfModel is a minimal deterministic Model for concurrency tests.
type acfModel struct{}

func (acfModel) Name() string                 { return "acf-test" }
func (acfModel) Mean() float64                { return 100 }
func (acfModel) Variance() float64            { return 25 }
func (acfModel) NewGenerator(int64) Generator { return nil }
func (acfModel) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	return math.Pow(float64(k), -0.4) // LRD-like decay keeps sums non-trivial
}

// TestMomentsConcurrentAccess hammers one Moments view from many
// goroutines querying overlapping lag ranges in both directions — the
// access pattern of a parallel CTS sweep sharing one moment cache. Run
// under -race this validates the locking; the value checks validate that
// concurrent extension never corrupts the prefix sums.
func TestMomentsConcurrentAccess(t *testing.T) {
	mo := NewMoments(acfModel{})
	const (
		workers = 8
		maxM    = 600
	)
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers sweep upward, half downward, so cache
			// extension races with reads of already-cached prefixes.
			for i := 1; i <= maxM; i++ {
				m := i
				if w%2 == 1 {
					m = maxM - i + 1
				}
				got := mo.VarSum(m)
				want := directVarSum(acfModel{}, m)
				if math.Abs(got-want) > 1e-9*math.Abs(want) {
					errs <- "VarSum mismatch"
					return
				}
				if r := mo.ACF(m); r != (acfModel{}).ACF(m) {
					errs <- "ACF mismatch"
					return
				}
				if av := mo.AggVariance(m); av < 0 {
					errs <- "negative AggVariance"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := mo.CachedLags(); got < maxM-1 {
		t.Errorf("cached lags = %d, want ≥ %d", got, maxM-1)
	}
}
