package traffic

import (
	"math"
	"testing"
)

func TestFeedbackOccupancy(t *testing.T) {
	cases := []struct {
		name string
		fb   Feedback
		want float64
	}{
		{"finite buffer", Feedback{W: 25, Buffer: 100, Utilization: 0.4}, 0.25},
		{"empty finite buffer", Feedback{W: 0, Buffer: 100, Utilization: 0.4}, 0},
		{"zero buffer falls back to utilization", Feedback{W: 0, Buffer: 0, Utilization: 0.8}, 0.8},
		{"infinite buffer falls back to utilization",
			Feedback{W: 1e6, Buffer: math.Inf(1), Utilization: 0.95}, 0.95},
	}
	for _, tc := range cases {
		if got := tc.fb.Occupancy(); got != tc.want {
			t.Errorf("%s: Occupancy() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// stubFeedbackGen is a minimal closed-loop generator.
type stubFeedbackGen struct{ observed int }

func (g *stubFeedbackGen) NextFrame() float64  { return 1 }
func (g *stubFeedbackGen) Observe(fb Feedback) { g.observed++ }

// fbStubModel manufactures gen on every NewGenerator call.
type fbStubModel struct{ gen Generator }

func (m fbStubModel) Name() string                 { return "stub" }
func (m fbStubModel) Mean() float64                { return 1 }
func (m fbStubModel) Variance() float64            { return 0 }
func (m fbStubModel) ACF(k int) float64            { return 0 }
func (m fbStubModel) NewGenerator(int64) Generator { return m.gen }

func TestIsClosedLoop(t *testing.T) {
	open := GeneratorFunc(func() float64 { return 1 })
	if IsClosedLoop(open) {
		t.Fatal("plain generator reported closed-loop")
	}
	if !IsClosedLoop(&stubFeedbackGen{}) {
		t.Fatal("feedback generator not reported closed-loop")
	}
}

func TestIsClosedLoopModel(t *testing.T) {
	if IsClosedLoopModel(nil) {
		t.Fatal("nil model reported closed-loop")
	}
	if IsClosedLoopModel(fbStubModel{gen: GeneratorFunc(func() float64 { return 1 })}) {
		t.Fatal("open-loop model reported closed-loop")
	}
	if !IsClosedLoopModel(fbStubModel{gen: &stubFeedbackGen{}}) {
		t.Fatal("closed-loop model not detected")
	}
}
