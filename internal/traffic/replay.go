package traffic

import (
	"fmt"
	"sync"

	"repro/internal/seed"
)

// Replay is a Model that plays back a recorded frame-size trace
// circularly. It makes captured sequences (VBR codec logs, or sample paths
// pre-synthesised by another model) first-class citizens of the
// multiplexer and analytics pipeline: Mean, Variance and ACF are the
// empirical circular statistics of the trace, and generators replay the
// trace from a seed-derived starting offset, so N "sources" are N rotated
// copies of the same path — the standard trace-driven-simulation device.
//
// Replay generators implement BlockGenerator natively: a Fill is just
// wrapped copies, which makes replay the cheapest source the block
// pipeline can drive and the reference workload for the
// BenchmarkMuxRunBlock/BenchmarkMuxRunScalar pair.
type Replay struct {
	name string
	data []float64
	mean float64
	vari float64

	mu  sync.Mutex
	acf []float64 // memoised circular autocorrelation, acf[0] = 1
}

// NewReplay copies trace (at least 2 frames, non-constant) into a replay
// model.
func NewReplay(name string, trace []float64) (*Replay, error) {
	if len(trace) < 2 {
		return nil, fmt.Errorf("traffic: replay trace has %d frames, want ≥ 2", len(trace))
	}
	data := append([]float64(nil), trace...)
	var sum float64
	for _, v := range data {
		sum += v
	}
	mean := sum / float64(len(data))
	var ss float64
	for _, v := range data {
		d := v - mean
		ss += d * d
	}
	vari := ss / float64(len(data))
	if vari == 0 {
		return nil, fmt.Errorf("traffic: replay trace is constant")
	}
	if name == "" {
		name = fmt.Sprintf("replay[%d]", len(data))
	}
	return &Replay{name: name, data: data, mean: mean, vari: vari, acf: []float64{1}}, nil
}

// Name implements Model.
func (r *Replay) Name() string { return r.name }

// Len returns the trace length in frames.
func (r *Replay) Len() int { return len(r.data) }

// Mean implements Model.
func (r *Replay) Mean() float64 { return r.mean }

// Variance implements Model.
func (r *Replay) Variance() float64 { return r.vari }

// ACF implements Model: the circular empirical autocorrelation
// (1/nσ²)·Σ_i (x_i−μ)(x_{(i+k) mod n}−μ), memoised per lag. Circular
// wrapping matches the generator's playback exactly, so the analytic and
// simulated second-order structure agree.
func (r *Replay) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	n := len(r.data)
	k %= n
	r.mu.Lock()
	defer r.mu.Unlock()
	for lag := len(r.acf); lag <= k; lag++ {
		var s float64
		for i, v := range r.data {
			j := i + lag
			if j >= n {
				j -= n
			}
			s += (v - r.mean) * (r.data[j] - r.mean)
		}
		r.acf = append(r.acf, s/(float64(n)*r.vari))
	}
	return r.acf[k]
}

// replayGen plays the shared trace from a fixed offset.
type replayGen struct {
	data []float64
	pos  int
}

// NewGenerator implements Model: playback from the seed-derived offset.
// Distinct seeds give distinct rotations of the trace.
func (r *Replay) NewGenerator(sd int64) Generator {
	off := int(uint64(seed.Derive(sd, 0)) % uint64(len(r.data)))
	return &replayGen{data: r.data, pos: off}
}

// NextFrame implements Generator.
func (g *replayGen) NextFrame() float64 {
	v := g.data[g.pos]
	g.pos++
	if g.pos == len(g.data) {
		g.pos = 0
	}
	return v
}

// Fill implements BlockGenerator by wrapped bulk copies.
func (g *replayGen) Fill(dst []float64) {
	for len(dst) > 0 {
		n := copy(dst, g.data[g.pos:])
		g.pos += n
		if g.pos == len(g.data) {
			g.pos = 0
		}
		dst = dst[n:]
	}
}
