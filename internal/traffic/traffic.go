// Package traffic defines the interfaces shared by every VBR frame-size
// process in this repository. A Model carries the analytic second-order
// description (mean, variance, autocorrelation function) that the
// large-deviations machinery consumes, and manufactures Generators that the
// multiplexer simulation consumes.
//
// Frame sizes are measured in cells per frame throughout, matching the
// paper's convention (frame duration Ts seconds, service in cells/frame).
package traffic

// Generator produces successive frame sizes (cells/frame) of one source.
// Implementations are deterministic functions of their seed so simulation
// experiments are reproducible.
type Generator interface {
	// NextFrame returns the size of the next frame in cells. Values may be
	// fractional: the multiplexer treats frame volumes as fluid.
	NextFrame() float64
}

// Model is an analytically characterised wide-sense-stationary frame-size
// process.
type Model interface {
	// Name identifies the model in tables and plots, e.g. "Z^0.975".
	Name() string
	// Mean returns the mean frame size μ in cells/frame.
	Mean() float64
	// Variance returns the frame-size variance σ² in (cells/frame)².
	Variance() float64
	// ACF returns the autocorrelation r(k) at integer lag k ≥ 0, with
	// ACF(0) = 1.
	ACF(k int) float64
	// NewGenerator returns a fresh sample-path generator for this model.
	// Distinct seeds give statistically independent paths.
	NewGenerator(seed int64) Generator
}

// Generate draws n successive frames from g.
func Generate(g Generator, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.NextFrame()
	}
	return out
}

// ACFSlice evaluates m's ACF at lags 0..maxLag.
func ACFSlice(m Model, maxLag int) []float64 {
	out := make([]float64, maxLag+1)
	for k := range out {
		out[k] = m.ACF(k)
	}
	return out
}

// GeneratorFunc adapts a plain function to the Generator interface.
type GeneratorFunc func() float64

// NextFrame implements Generator.
func (f GeneratorFunc) NextFrame() float64 { return f() }
