package traffic

import "sync"

// Moments is a cached second-order view of a Model: memoised
// autocorrelations together with their prefix sums, from which the
// variance-time function V(m) = Var(Σ_{i=1..m} Y_i) is available in O(1)
// per query after a one-time O(m) extension.
//
// The critical-time-scale search, the Bahadur-Rao and large-N asymptotics,
// admission control and every analytic sweep in this repository evaluate
// V(m) over the same lag range at many operating points; sharing one
// Moments per model turns those repeated ACF partial-sum scans into cheap
// array lookups. The accumulation order matches the incremental
// core.VarianceOfSum evaluator exactly, so cached and direct computations
// agree bit for bit.
//
// Moments itself implements Model (delegating Name and NewGenerator to the
// wrapped model), so it can be passed anywhere a Model is expected. It is
// safe for concurrent use; Mean and Variance are captured at construction,
// which assumes the wrapped model's moments are immutable — true for every
// model in this repository.
type Moments struct {
	model  Model
	mean   float64
	sigma2 float64

	mu sync.Mutex
	r  []float64 // r[k]: memoised ACF, r[0] = 1
	s1 []float64 // s1[k] = Σ_{i=1..k} r(i)
	s2 []float64 // s2[k] = Σ_{i=1..k} i·r(i)
}

// NewMoments wraps m in a fresh cached view. If m is itself a *Moments the
// same view is returned rather than stacking a second cache.
func NewMoments(m Model) *Moments {
	if mo, ok := m.(*Moments); ok {
		return mo
	}
	return &Moments{
		model:  m,
		mean:   m.Mean(),
		sigma2: m.Variance(),
		r:      []float64{1},
		s1:     []float64{0},
		s2:     []float64{0},
	}
}

// Model returns the wrapped model.
func (mo *Moments) Model() Model { return mo.model }

// Name implements Model.
func (mo *Moments) Name() string { return mo.model.Name() }

// Mean implements Model.
func (mo *Moments) Mean() float64 { return mo.mean }

// Variance implements Model.
func (mo *Moments) Variance() float64 { return mo.sigma2 }

// NewGenerator implements Model by delegating to the wrapped model.
func (mo *Moments) NewGenerator(seed int64) Generator {
	return mo.model.NewGenerator(seed)
}

// extend grows the memo through lag k. Callers must hold mo.mu.
func (mo *Moments) extend(k int) {
	for lag := len(mo.r); lag <= k; lag++ {
		rv := mo.model.ACF(lag)
		mo.r = append(mo.r, rv)
		mo.s1 = append(mo.s1, mo.s1[lag-1]+rv)
		mo.s2 = append(mo.s2, mo.s2[lag-1]+float64(lag)*rv)
	}
}

// ACF implements Model with memoisation.
func (mo *Moments) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	mo.mu.Lock()
	if k >= len(mo.r) {
		mo.extend(k)
	}
	v := mo.r[k]
	mo.mu.Unlock()
	return v
}

// SumACF returns Σ_{i=1..k} r(i), the ACF prefix sum (0 for k ≤ 0).
func (mo *Moments) SumACF(k int) float64 {
	if k <= 0 {
		return 0
	}
	mo.mu.Lock()
	if k >= len(mo.r) {
		mo.extend(k)
	}
	v := mo.s1[k]
	mo.mu.Unlock()
	return v
}

// VarSum returns the variance-time function
//
//	V(m) = σ²·[m + 2·Σ_{i=1..m−1} (m−i)·r(i)]
//	     = σ²·[m + 2·(m·s1(m−1) − s2(m−1))]
//
// in O(1) once lags through m−1 are cached (0 for m ≤ 0). This is the
// quantity the rate function I(c,b) = inf_m [b+m(c−μ)]²/2V(m) minimises
// over, evaluated thousands of times per CTS sweep.
func (mo *Moments) VarSum(m int) float64 {
	if m < 1 {
		return 0
	}
	mo.mu.Lock()
	if m-1 >= len(mo.r) {
		mo.extend(m - 1)
	}
	s1, s2 := mo.s1[m-1], mo.s2[m-1]
	mo.mu.Unlock()
	fm := float64(m)
	return mo.sigma2 * (fm + 2*(fm*s1-s2))
}

// AggVariance returns Var(X̄_m) = V(m)/m², the variance of the m-frame
// aggregated mean — the curve whose log-log slope 2H−2 defines long-range
// dependence on a variance-time plot.
func (mo *Moments) AggVariance(m int) float64 {
	if m < 1 {
		return 0
	}
	fm := float64(m)
	return mo.VarSum(m) / (fm * fm)
}

// CachedLags reports how many lags are currently memoised (diagnostics).
func (mo *Moments) CachedLags() int {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return len(mo.r) - 1
}
