package modelspec

import (
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := map[string]string{
		"z:0.975":          "Z^0.975",
		"v:1.5":            "V^1.5",
		"l":                "L",
		"dar:0.975:2":      "DAR(2)[Z^0.975]",
		"dar1:0.8":         "DAR(1)",
		"fgn:0.9":          "FGN(H=0.9)",
		"mginf:0.9":        "M/G/inf(γ=1.2)",
		"mpeg:0.9":         "MPEG[Z^0.9]",
		"farima:0.4":       "F-ARIMA(d=0.4)",
		"mmpp:0.9":         "MMPP2(a=0.9)",
		" Z:0.7 ":          "Z^0.7", // case and whitespace insensitive
		"aimd:z:0.975":     "AIMD[Z^0.975]",
		"aimd:dar:0.975:1": "AIMD[DAR(1)[Z^0.975]]", // nested specs keep their colons
	}
	for spec, wantName := range cases {
		m, err := Parse(spec)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		if m.Name() != wantName {
			t.Errorf("%q: name %q, want %q", spec, m.Name(), wantName)
		}
		if m.Mean() != 500 {
			t.Errorf("%q: mean %v, want 500", spec, m.Mean())
		}
	}
}

func TestParseInvalid(t *testing.T) {
	bad := []string{
		"", "q:1", "z", "z:abc", "z:2", "v:-1", "l:1",
		"dar", "dar:0.9", "dar:0.9:x", "dar:0.9:0",
		"dar1:1.5", "fgn:0", "fgn", "dar1",
		"mginf:0.5", "mginf", "mpeg:0", "mpeg", "farima:0.6", "farima", "mmpp:0", "mmpp",
		"aimd", "aimd:", "aimd:q:1", "aimd:z:2",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

func TestParseList(t *testing.T) {
	ms, err := ParseList("z:0.7, dar:0.7:1 ,l")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d models", len(ms))
	}
	if !strings.HasPrefix(ms[1].Name(), "DAR(1)") {
		t.Fatalf("second model %q", ms[1].Name())
	}
	if _, err := ParseList(" , "); err == nil {
		t.Fatal("empty list should error")
	}
	if _, err := ParseList("z:0.7,bogus"); err == nil {
		t.Fatal("bad entry should error")
	}
}
