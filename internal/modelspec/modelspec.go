// Package modelspec parses the compact command-line syntax the cmd/ tools
// use to name traffic models:
//
//	z:<a>        Z^a, e.g. z:0.975
//	v:<v>        V^v, e.g. v:1.5
//	l            the exact-LRD model L
//	dar:<a>:<p>  DAR(p) fit to Z^a, e.g. dar:0.975:2
//	dar1:<rho>   raw DAR(1) with lag-1 correlation rho and the standard
//	             Gaussian marginal (μ=500, σ²=5000)
//	fgn:<H>      fractional Gaussian noise with the standard marginal
//	mginf:<H>    M/G/∞ (Cox) source with the standard moments
//	mpeg:<a>     MPEG GOP-modulated Z^a with the typical I:P:B = 5:3:1
//	             pattern
//	farima:<d>   fractional ARIMA(0,d,0) with the standard marginal
//	mmpp:<a>     symmetric 2-state MMPP with the standard moments and
//	             geometric ACF decay ratio a
//	aimd:<spec>  closed-loop AIMD rate controller wrapped around any other
//	             spec, e.g. aimd:z:0.975 — sources adapt frame sizes to
//	             multiplexer feedback (default controller parameters)
package modelspec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dar"
	"repro/internal/farima"
	"repro/internal/fgn"
	"repro/internal/mginf"
	"repro/internal/mmpp"
	"repro/internal/models"
	"repro/internal/traffic"
)

// Parse resolves a model specification string to a traffic.Model.
func Parse(spec string) (traffic.Model, error) {
	parts := strings.Split(strings.TrimSpace(strings.ToLower(spec)), ":")
	switch parts[0] {
	case "aimd":
		if len(parts) < 2 {
			return nil, fmt.Errorf("modelspec: want aimd:<spec>, got %q", spec)
		}
		base, err := Parse(strings.Join(parts[1:], ":"))
		if err != nil {
			return nil, err
		}
		return models.NewAIMD(base, models.AIMDConfig{})
	case "z":
		a, err := oneArg(parts, "z:<a>")
		if err != nil {
			return nil, err
		}
		return models.NewZ(a)
	case "v":
		v, err := oneArg(parts, "v:<v>")
		if err != nil {
			return nil, err
		}
		return models.NewV(v)
	case "l":
		if len(parts) != 1 {
			return nil, fmt.Errorf("modelspec: l takes no arguments")
		}
		return models.NewL()
	case "dar":
		if len(parts) != 3 {
			return nil, fmt.Errorf("modelspec: want dar:<a>:<p>, got %q", spec)
		}
		a, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("modelspec: bad a in %q: %w", spec, err)
		}
		p, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("modelspec: bad order in %q: %w", spec, err)
		}
		z, err := models.NewZ(a)
		if err != nil {
			return nil, err
		}
		return models.FitS(z, p)
	case "dar1":
		rho, err := oneArg(parts, "dar1:<rho>")
		if err != nil {
			return nil, err
		}
		return dar.NewDAR1(rho, dar.GaussianMarginal(models.Mean, models.Variance))
	case "fgn":
		h, err := oneArg(parts, "fgn:<H>")
		if err != nil {
			return nil, err
		}
		return fgn.NewModel(h, models.Mean, models.Variance)
	case "farima":
		d, err := oneArg(parts, "farima:<d>")
		if err != nil {
			return nil, err
		}
		return farima.New(d, models.Mean, models.Variance)
	case "mmpp":
		a, err := oneArg(parts, "mmpp:<a>")
		if err != nil {
			return nil, err
		}
		return mmpp.Fit(models.Mean, models.Variance, a, models.Ts)
	case "mginf":
		h, err := oneArg(parts, "mginf:<H>")
		if err != nil {
			return nil, err
		}
		return mginf.NewFromMoments(models.Mean, models.Variance, h, models.Ts, models.Ts)
	case "mpeg":
		a, err := oneArg(parts, "mpeg:<a>")
		if err != nil {
			return nil, err
		}
		z, err := models.NewZ(a)
		if err != nil {
			return nil, err
		}
		w, err := models.GOPWeights(models.TypicalGOP, 5, 3, 1)
		if err != nil {
			return nil, err
		}
		return models.NewMPEG(z, w)
	default:
		return nil, fmt.Errorf("modelspec: unknown model %q (want z:, v:, l, dar:, dar1:, fgn:, aimd:, ...)", spec)
	}
}

// ParseList resolves a comma-separated list of specs.
func ParseList(specs string) ([]traffic.Model, error) {
	var out []traffic.Model
	for _, s := range strings.Split(specs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		m, err := Parse(s)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("modelspec: no models in %q", specs)
	}
	return out, nil
}

func oneArg(parts []string, usage string) (float64, error) {
	if len(parts) != 2 {
		return 0, fmt.Errorf("modelspec: want %s, got %q", usage, strings.Join(parts, ":"))
	}
	v, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return 0, fmt.Errorf("modelspec: bad number in %q: %w", strings.Join(parts, ":"), err)
	}
	return v, nil
}
