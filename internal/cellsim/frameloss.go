package cellsim

import (
	"fmt"
	"sort"

	"repro/internal/mux"
)

// FrameLossResult extends the cell-level accounting with video-frame-level
// quality: a source's frame is damaged if any of its cells was dropped.
// Because an AAL5 CPCS-PDU fails its CRC when any constituent cell is
// missing (see package atm), the frame damage ratio — not the raw cell
// loss ratio — is what a video decoder experiences, and it is amplified
// roughly by the number of cells per frame.
type FrameLossResult struct {
	Result
	SourceFrames  int64   // frames offered across all sources
	DamagedFrames int64   // frames that lost at least one cell
	FLR           float64 // DamagedFrames / SourceFrames
}

// RunFrameLoss runs the slotted simulation like Run, additionally
// attributing each dropped cell to its source so frame damage can be
// counted. Within an overflowing slot, drops hit the latest arrivals with
// the per-slot source order rotated by the slot index, so no source is
// systematically favoured. N is capped at 255 sources by the event
// encoding.
func RunFrameLoss(cfg Config) (FrameLossResult, error) {
	if err := cfg.Validate(); err != nil {
		return FrameLossResult{}, err
	}
	if cfg.N > 255 {
		return FrameLossResult{}, fmt.Errorf("cellsim: frame-loss tracking supports at most 255 sources, got %d", cfg.N)
	}
	srcs := make([]source, cfg.N)
	seeds := mux.ChildSeeds(cfg.Seed, cfg.N)
	for i := range srcs {
		srcs[i].gen = cfg.Model.NewGenerator(seeds[i])
	}

	var (
		res     FrameLossResult
		queue   int
		events  []uint32 // slot<<8 | source id
		damaged = make([]bool, cfg.N)
	)
	res.Frames = cfg.Frames
	total := cfg.Warmup + cfg.Frames
	for frame := 0; frame < total; frame++ {
		measuring := frame >= cfg.Warmup
		events = events[:0]
		for i := range srcs {
			f := srcs[i].cellsThisFrame()
			if f <= 0 {
				continue
			}
			if measuring {
				res.SourceFrames++
			}
			// k·S/f < S for every k < f, so this handles f > S naturally
			// (several cells share a slot).
			for k := 0; k < f; k++ {
				slot := k * cfg.SlotsPerFrame / f
				events = append(events, uint32(slot)<<8|uint32(i))
			}
			damaged[i] = false
		}
		// Rotate tie order per slot so drop attribution is fair, then sort.
		rot := uint32(frame % cfg.N)
		for j, e := range events {
			src := (e&0xFF + rot) % uint32(cfg.N)
			events[j] = e&^0xFF | src
		}
		sort.Slice(events, func(a, b int) bool { return events[a] < events[b] })

		prevSlot := -1
		slotStart := 0
		flush := func(end int) {
			if prevSlot < 0 {
				return
			}
			group := events[slotStart:end]
			a := len(group)
			if measuring {
				res.ArrivedCells += int64(a)
			}
			queue += a
			if queue > cfg.BufferCells {
				lost := queue - cfg.BufferCells
				queue = cfg.BufferCells
				if measuring {
					res.LostCells += int64(lost)
					// The last `lost` arrivals in the rotated order drop.
					for _, e := range group[len(group)-lost:] {
						src := (int(e&0xFF) + cfg.N - int(rot)) % cfg.N
						damaged[src] = true
					}
				}
			}
			if measuring && queue > res.MaxQueue {
				res.MaxQueue = queue
			}
		}
		for j, e := range events {
			slot := int(e >> 8)
			if slot != prevSlot {
				flush(j)
				// Serve the slots between arrivals: one departure each.
				gap := slot - prevSlot
				if queue < gap {
					queue = 0
				} else {
					queue -= gap
				}
				prevSlot = slot
				slotStart = j
			}
		}
		flush(len(events))
		// Drain the remainder of the frame's slots.
		if prevSlot >= 0 {
			gap := cfg.SlotsPerFrame - prevSlot - 1
			if queue < gap {
				queue = 0
			} else {
				queue -= gap
			}
		} else {
			if queue < cfg.SlotsPerFrame {
				queue = 0
			} else {
				queue -= cfg.SlotsPerFrame
			}
		}
		prevSlot = -1
		if measuring {
			for i := range damaged {
				if damaged[i] {
					res.DamagedFrames++
				}
			}
		}
	}
	res.FinalQueue = queue
	if res.ArrivedCells > 0 {
		res.CLR = float64(res.LostCells) / float64(res.ArrivedCells)
	}
	if res.SourceFrames > 0 {
		res.FLR = float64(res.DamagedFrames) / float64(res.SourceFrames)
	}
	return res, nil
}
