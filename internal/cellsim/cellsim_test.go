package cellsim

import (
	"math"
	"testing"

	"repro/internal/dar"
	"repro/internal/models"
	"repro/internal/mux"
	"repro/internal/traffic"
)

// constModel emits a constant frame size.
type constModel struct{ size float64 }

func (c constModel) Name() string      { return "const" }
func (c constModel) Mean() float64     { return c.size }
func (c constModel) Variance() float64 { return 0 }
func (c constModel) ACF(k int) float64 {
	if k == 0 {
		return 1
	}
	return 0
}
func (c constModel) NewGenerator(seed int64) traffic.Generator {
	return traffic.GeneratorFunc(func() float64 { return c.size })
}

func TestValidate(t *testing.T) {
	m := constModel{10}
	good := Config{Model: m, N: 1, SlotsPerFrame: 20, BufferCells: 5, Frames: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 1, SlotsPerFrame: 20, BufferCells: 5, Frames: 10},
		{Model: m, N: 0, SlotsPerFrame: 20, BufferCells: 5, Frames: 10},
		{Model: m, N: 1, SlotsPerFrame: 0, BufferCells: 5, Frames: 10},
		{Model: m, N: 1, SlotsPerFrame: 20, BufferCells: -1, Frames: 10},
		{Model: m, N: 1, SlotsPerFrame: 20, BufferCells: 5, Frames: 0},
		{Model: m, N: 1, SlotsPerFrame: 20, BufferCells: 5, Frames: 10, Warmup: -1},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestUnderloadNoLoss(t *testing.T) {
	// 5 sources × 10 cells/frame into 60 slots: even with aligned phases,
	// at most 5 cells arrive per slot and the queue drains between bursts;
	// a modest buffer suffices for zero loss.
	res, err := Run(Config{
		Model: constModel{10}, N: 5, SlotsPerFrame: 60,
		BufferCells: 10, Frames: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCells != 0 {
		t.Fatalf("lost %d cells in underload", res.LostCells)
	}
	if res.ArrivedCells != 5*10*500 {
		t.Fatalf("arrived %d, want 25000", res.ArrivedCells)
	}
}

func TestOverloadLossRate(t *testing.T) {
	// One source emitting 30 cells/frame into 20 slots: 10 lost per frame
	// once the (tiny) buffer saturates.
	res, err := Run(Config{
		Model: constModel{30}, N: 1, SlotsPerFrame: 20,
		BufferCells: 2, Frames: 1000, Warmup: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCLR := 10.0 / 30.0
	if math.Abs(res.CLR-wantCLR) > 0.01 {
		t.Fatalf("CLR %v, want ≈%v", res.CLR, wantCLR)
	}
}

func TestFractionalCellsPreserveMean(t *testing.T) {
	// 10.5 cells/frame must average to 10.5 via the carry, not truncate.
	res, err := Run(Config{
		Model: constModel{10.5}, N: 1, SlotsPerFrame: 40,
		BufferCells: 50, Frames: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.ArrivedCells) / 2000; math.Abs(got-10.5) > 0.01 {
		t.Fatalf("mean cells/frame %v, want 10.5", got)
	}
}

func TestSaturatingSourceHandled(t *testing.T) {
	// A single source exceeding the link's slots per frame must not panic
	// and must lose the sustained excess.
	res, err := Run(Config{
		Model: constModel{50}, N: 1, SlotsPerFrame: 20,
		BufferCells: 4, Frames: 200, Warmup: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.CLR, 30.0/50.0; math.Abs(got-want) > 0.02 {
		t.Fatalf("CLR %v, want ≈%v", got, want)
	}
}

func TestAgreesWithFluidModel(t *testing.T) {
	// The central cross-check: at the paper's operating point the
	// cell-granular CLR must match the fluid Lindley CLR within cell-
	// quantisation effects (same seeds, same arrival statistics).
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	const (
		n      = 10
		c      = 515.0
		bCells = 20.0 // per source
		frames = 40000
	)
	fluid, err := mux.Run(mux.Config{
		Model: z, N: n, C: c, B: bCells, Frames: frames, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell, err := Run(Config{
		Model: z, N: n, SlotsPerFrame: int(c) * n,
		BufferCells: int(bCells) * n, Frames: frames, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fluid.CLR <= 0 || cell.CLR <= 0 {
		t.Fatalf("expected observable loss: fluid %v cell %v", fluid.CLR, cell.CLR)
	}
	if ratio := cell.CLR / fluid.CLR; ratio < 0.5 || ratio > 2 {
		t.Fatalf("cell-level CLR %v vs fluid %v: ratio %v", cell.CLR, fluid.CLR, ratio)
	}
}

func TestIIDGaussianZeroBufferNearFluid(t *testing.T) {
	p, err := dar.NewDAR1(0, dar.GaussianMarginal(500, 5000))
	if err != nil {
		t.Fatal(err)
	}
	// Buffer of a handful of cells ~ zero buffer in fluid terms.
	res, err := Run(Config{
		Model: p, N: 30, SlotsPerFrame: 538 * 30,
		BufferCells: 30, Frames: 60000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CLR <= 0 || res.CLR > 1e-3 {
		t.Fatalf("CLR %v implausible for near-zero buffer at 93%% load", res.CLR)
	}
}

func TestReproducible(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 3, SlotsPerFrame: 1600, BufferCells: 40, Frames: 2000, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func BenchmarkCellLevelFrame(b *testing.B) {
	z, err := models.NewZ(0.975)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Model: z, N: 10, SlotsPerFrame: 5150, BufferCells: 200, Frames: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
