package cellsim

import (
	"math"
	"testing"

	"repro/internal/models"
)

func TestFrameLossValidation(t *testing.T) {
	if _, err := RunFrameLoss(Config{}); err == nil {
		t.Error("invalid config should error")
	}
	cfg := Config{
		Model: constModel{10}, N: 256, SlotsPerFrame: 10,
		BufferCells: 1, Frames: 1,
	}
	if _, err := RunFrameLoss(cfg); err == nil {
		t.Error("N > 255 should error")
	}
}

func TestFrameLossNoLossUnderload(t *testing.T) {
	res, err := RunFrameLoss(Config{
		Model: constModel{10}, N: 5, SlotsPerFrame: 60,
		BufferCells: 10, Frames: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCells != 0 || res.DamagedFrames != 0 || res.FLR != 0 {
		t.Fatalf("unexpected loss: %+v", res)
	}
	if res.SourceFrames != 5*400 {
		t.Fatalf("source frames %d, want 2000", res.SourceFrames)
	}
}

func TestFrameLossMatchesCellRunCounts(t *testing.T) {
	// Same configuration and seed: RunFrameLoss must reproduce Run's
	// cell-level accounting exactly (same arrival stream, same queue
	// discipline).
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model: z, N: 10, SlotsPerFrame: 5150,
		BufferCells: 200, Frames: 15000, Seed: 8,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := RunFrameLoss(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ArrivedCells != fl.ArrivedCells {
		t.Fatalf("arrivals differ: %d vs %d", plain.ArrivedCells, fl.ArrivedCells)
	}
	if plain.LostCells != fl.LostCells {
		t.Fatalf("losses differ: %d vs %d", plain.LostCells, fl.LostCells)
	}
}

func TestFrameLossAmplification(t *testing.T) {
	// The headline QOS fact: the frame damage ratio exceeds the cell loss
	// ratio by far, bounded by cells-per-frame.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFrameLoss(Config{
		Model: z, N: 10, SlotsPerFrame: 5150,
		BufferCells: 100, Frames: 30000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CLR <= 0 {
		t.Fatal("expected observable cell loss")
	}
	if res.FLR <= res.CLR {
		t.Fatalf("FLR %v should exceed CLR %v", res.FLR, res.CLR)
	}
	// Amplification cannot exceed the mean cells per frame (≈500) and for
	// clustered losses is typically far below it.
	if res.FLR > res.CLR*600 {
		t.Fatalf("amplification %v implausibly high", res.FLR/res.CLR)
	}
}

func TestFrameLossDropAttributionConserved(t *testing.T) {
	// Every damaged frame stems from ≥1 lost cell, and no more frames can
	// be damaged per video frame than there are sources.
	res, err := RunFrameLoss(Config{
		Model: constModel{30}, N: 2, SlotsPerFrame: 40,
		BufferCells: 2, Frames: 100, Warmup: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCells == 0 {
		t.Fatal("overload must lose cells")
	}
	if res.DamagedFrames > res.SourceFrames {
		t.Fatalf("damaged %d > offered %d", res.DamagedFrames, res.SourceFrames)
	}
	if res.DamagedFrames == 0 {
		t.Fatal("lost cells must damage frames")
	}
	if math.Abs(res.FLR-float64(res.DamagedFrames)/float64(res.SourceFrames)) > 1e-15 {
		t.Fatal("FLR inconsistent")
	}
}

func TestFrameLossReproducible(t *testing.T) {
	z, err := models.NewZ(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: z, N: 3, SlotsPerFrame: 1600, BufferCells: 30, Frames: 3000, Seed: 2}
	a, err := RunFrameLoss(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFrameLoss(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same-seed runs differ")
	}
}
