// Package cellsim simulates the ATM multiplexer at cell granularity: a
// slotted link serving exactly one 53-byte cell per slot, fed by N video
// sources whose frames are segmented into cells equispaced over the frame
// duration (the paper's deterministic smoothing, §5.5), with a finite
// buffer counted in whole cells.
//
// Package mux models the same system as fluid, which is exact in the limit
// of infinitesimal cells; this package keeps cell integrality and slot
// phasing, so comparing the two quantifies the fluid approximation error
// the analysis rests on. The queue convention per slot: one departure (if
// any cell is queued) at the slot boundary, then the slot's arrivals join;
// arrivals finding the buffer full are dropped.
package cellsim

import (
	"fmt"

	"repro/internal/mux"
	"repro/internal/traffic"
)

// Config describes one cell-level simulation run.
type Config struct {
	Model traffic.Model
	N     int // number of multiplexed sources
	// SlotsPerFrame is the link capacity in cells per frame duration
	// (total C = N·c of the fluid model, as an integer cell count).
	SlotsPerFrame int
	// BufferCells is the queue capacity in cells, including the cell in
	// service.
	BufferCells int
	Frames      int
	Warmup      int
	Seed        int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("cellsim: nil model")
	}
	if c.N < 1 {
		return fmt.Errorf("cellsim: N = %d must be ≥ 1", c.N)
	}
	if c.SlotsPerFrame < 1 {
		return fmt.Errorf("cellsim: slots/frame = %d must be ≥ 1", c.SlotsPerFrame)
	}
	if c.BufferCells < 0 {
		return fmt.Errorf("cellsim: buffer = %d must be non-negative", c.BufferCells)
	}
	if c.Frames < 1 {
		return fmt.Errorf("cellsim: frames = %d must be ≥ 1", c.Frames)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("cellsim: warmup = %d must be non-negative", c.Warmup)
	}
	return nil
}

// Result summarises a run.
type Result struct {
	Frames       int
	ArrivedCells int64
	LostCells    int64
	CLR          float64
	MaxQueue     int // peak queue length in cells
	FinalQueue   int
}

// source tracks one video source's cell emission state.
type source struct {
	gen   traffic.Generator
	carry float64 // fractional-cell residue, dithered across frames
}

// cellsThisFrame converts the generator's (possibly fractional) frame size
// to a whole cell count, carrying the fraction forward so the long-run
// mean is preserved exactly.
func (s *source) cellsThisFrame() int {
	f := s.gen.NextFrame()
	if f < 0 {
		f = 0
	}
	f += s.carry
	n := int(f)
	s.carry = f - float64(n)
	return n
}

// Run executes the slotted simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	srcs := make([]source, cfg.N)
	// Child seeds per source, derived as in package mux so cross-package
	// comparisons can share arrival statistics.
	seeds := mux.ChildSeeds(cfg.Seed, cfg.N)
	for i := range srcs {
		srcs[i].gen = cfg.Model.NewGenerator(seeds[i])
	}

	slots := make([]int32, cfg.SlotsPerFrame)
	var (
		res   Result
		queue int
	)
	res.Frames = cfg.Frames
	total := cfg.Warmup + cfg.Frames
	for frame := 0; frame < total; frame++ {
		measuring := frame >= cfg.Warmup
		for i := range slots {
			slots[i] = 0
		}
		// Equispaced segmentation: cell k of F lands in slot ⌊k·S/F⌋.
		for i := range srcs {
			f := srcs[i].cellsThisFrame()
			if f <= 0 {
				continue
			}
			if f >= cfg.SlotsPerFrame {
				// Source alone saturates the link: spread one per slot,
				// excess piles into the final slot.
				for s := 0; s < cfg.SlotsPerFrame; s++ {
					slots[s]++
				}
				slots[cfg.SlotsPerFrame-1] += int32(f - cfg.SlotsPerFrame)
				continue
			}
			for k := 0; k < f; k++ {
				slots[k*cfg.SlotsPerFrame/f]++
			}
		}
		for _, a := range slots {
			// Departure first, then arrivals.
			if queue > 0 {
				queue--
			}
			if a == 0 {
				continue
			}
			if measuring {
				res.ArrivedCells += int64(a)
			}
			queue += int(a)
			if queue > cfg.BufferCells {
				lost := queue - cfg.BufferCells
				queue = cfg.BufferCells
				if measuring {
					res.LostCells += int64(lost)
				}
			}
			if measuring && queue > res.MaxQueue {
				res.MaxQueue = queue
			}
		}
	}
	res.FinalQueue = queue
	if res.ArrivedCells > 0 {
		res.CLR = float64(res.LostCells) / float64(res.ArrivedCells)
	}
	return res, nil
}
