// Package seed derives statistically independent child seeds from a master
// seed with a splitmix64-style hash. Additive schemes such as
// seed+i*7919 or seed+rep*1_000_003 collide across (master, index) pairs —
// master 7919 at index 0 equals master 0 at index 1 — and feed strongly
// correlated states into small-state PRNGs. Hashing every component through
// the splitmix64 finalizer decorrelates nearby inputs completely: one-bit
// input changes flip every output bit with probability ~1/2.
//
// The derivation is a pure function of (master, components...), so child
// seeds are bit-identical regardless of which goroutine or worker derives
// them — the property the parallel experiment runner depends on.
package seed

// golden is the splitmix64 increment, ⌊2^64/φ⌋, an odd constant whose
// high-entropy bit pattern spreads consecutive indices across the state
// space.
const golden = 0x9E3779B97F4A7C15

// Mix is the splitmix64 output finalizer (Steele, Lea & Flood, "Fast
// splittable pseudorandom number generators", OOPSLA 2014): an invertible
// avalanche mix of the 64-bit state.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Derive hashes a master seed and any number of integer components (job
// index, replication index, source index, ...) into a non-negative child
// seed suitable for rand.NewSource. Each component is absorbed through one
// splitmix64 step, so Derive(m, a, b) and Derive(m, b, a) differ and
// Derive(m, a) never equals Derive(m', a') for nearby (m', a').
func Derive(master int64, components ...uint64) int64 {
	x := Mix(uint64(master) + golden)
	for _, c := range components {
		x = Mix(x + golden + c)
	}
	return int64(x >> 1) // 63 bits, always ≥ 0
}

// DeriveString derives a child seed from a master seed, a string label
// (e.g. a job identifier) and trailing integer components. The label is
// folded 8 bytes at a time through the same absorb step, with a final
// length mix so "ab","c" and "a","bc" differ.
func DeriveString(master int64, label string, components ...uint64) int64 {
	x := Mix(uint64(master) + golden)
	var word uint64
	var nbits uint
	for i := 0; i < len(label); i++ {
		word |= uint64(label[i]) << nbits
		nbits += 8
		if nbits == 64 {
			x = Mix(x + golden + word)
			word, nbits = 0, 0
		}
	}
	x = Mix(x + golden + word + uint64(len(label))<<56)
	for _, c := range components {
		x = Mix(x + golden + c)
	}
	return int64(x >> 1)
}

// Children derives n child seeds from a master seed, child i being
// Derive(master, i). It replaces drawing child seeds from a sequential
// rand stream: the result for child i no longer depends on how many
// earlier children were drawn, so callers can derive any subset
// independently (and in parallel) with identical results.
func Children(master int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = Derive(master, uint64(i))
	}
	return out
}
