package seed

import (
	"math/rand"
	"testing"
)

// The old additive scheme seed+i*7919 collides trivially across
// (master, index) pairs; the regression test pins the failure and proves
// the splitmix64 derivation is collision-free over a far larger grid.
func TestDeriveCollisionRegression(t *testing.T) {
	// Demonstrate the defect being replaced.
	oldScheme := func(master int64, i int) int64 { return master + int64(i)*7919 }
	if oldScheme(0, 1) != oldScheme(7919, 0) {
		t.Fatal("expected the legacy additive scheme to collide")
	}

	seen := make(map[int64][2]int, 256*256)
	for m := 0; m < 256; m++ {
		for i := 0; i < 256; i++ {
			s := Derive(int64(m), uint64(i))
			if prev, ok := seen[s]; ok {
				t.Fatalf("Derive collision: (%d,%d) and (%d,%d) → %d",
					prev[0], prev[1], m, i, s)
			}
			seen[s] = [2]int{m, i}
		}
	}
}

func TestDeriveDeterministicAndNonNegative(t *testing.T) {
	for _, master := range []int64{0, 1, -1, 7919, 1 << 62, -(1 << 62)} {
		a := Derive(master, 3, 5)
		b := Derive(master, 3, 5)
		if a != b {
			t.Fatalf("Derive not deterministic for master %d", master)
		}
		if a < 0 {
			t.Fatalf("Derive(%d, 3, 5) = %d is negative", master, a)
		}
		if Derive(master, 3, 5) == Derive(master, 5, 3) {
			t.Fatalf("Derive is order-insensitive for master %d", master)
		}
	}
}

func TestDeriveStringSeparatesLabelFromComponents(t *testing.T) {
	if DeriveString(1, "sweep", 2) == DeriveString(1, "sweep", 3) {
		t.Fatal("component change did not change the seed")
	}
	if DeriveString(1, "fig8a", 2) == DeriveString(1, "fig8b", 2) {
		t.Fatal("label change did not change the seed")
	}
	// Boundary shifts between label and components must matter.
	if DeriveString(1, "ab") == DeriveString(1, "a", uint64('b')) {
		t.Fatal("label/component boundary is ambiguous")
	}
	// Labels longer than one 8-byte word exercise the fold loop.
	long := "a-job-identifier-longer-than-eight-bytes"
	if DeriveString(1, long) == DeriveString(1, long[:len(long)-1]) {
		t.Fatal("long-label fold ignores the final byte")
	}
}

func TestChildrenMatchDerive(t *testing.T) {
	kids := Children(42, 100)
	for i, k := range kids {
		if k != Derive(42, uint64(i)) {
			t.Fatalf("child %d = %d, want Derive(42,%d) = %d",
				i, k, i, Derive(42, uint64(i)))
		}
	}
}

// Child seeds must be usable as independent rand sources: first draws
// across children should look uniform, not clustered the way additive
// seeding clusters small-state generators.
func TestChildrenDecorrelated(t *testing.T) {
	const n = 2000
	var below float64
	for _, s := range Children(7, n) {
		if rand.New(rand.NewSource(s)).Float64() < 0.5 {
			below++
		}
	}
	frac := below / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("first-draw fraction below 0.5 = %v, want ≈ 0.5", frac)
	}
}
