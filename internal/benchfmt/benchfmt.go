// Package benchfmt parses `go test -bench` output into structured records,
// serialises them as BENCH_<date>.json files, and diffs two such files
// with a configurable regression threshold. cmd/benchdiff is the CLI; CI
// runs it as a non-blocking report step so the benchmark trajectory of the
// repository (BENCH_*.json under bench/) stays populated and regressions
// in the hot paths — block-streamed multiplexing, FGN synthesis, CTS
// sweeps — are visible in every pull request.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped, so
	// files recorded on machines with different core counts still diff.
	Name string `json:"name"`
	// Iterations is the b.N the reported means were measured over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: "ns/op", "B/op", "allocs/op" and any
	// custom b.ReportMetric units such as "frames/sec".
	Metrics map[string]float64 `json:"metrics"`
}

// File is one recorded benchmark run, the schema of BENCH_<date>.json.
type File struct {
	Date        string      `json:"date"` // YYYY-MM-DD
	GoVersion   string      `json:"go_version,omitempty"`
	GitRevision string      `json:"git_revision,omitempty"`
	Host        string      `json:"host,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse extracts benchmark result lines from `go test -bench` output,
// tolerating the interleaved PASS/ok/log noise. Lines look like
//
//	BenchmarkMuxRunBlock-8  92  12860944 ns/op  1.27e+09 frames/sec  16 B/op  1 allocs/op
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q in line %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: read: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// WriteFile serialises f as indented JSON at path.
func WriteFile(path string, f File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: encode: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile decodes a BENCH_*.json file.
func ReadFile(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("benchfmt: %w", err)
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return File{}, fmt.Errorf("benchfmt: decode %s: %w", path, err)
	}
	return f, nil
}

// Latest returns the lexicographically newest BENCH_*.json path under dir
// ("" when none exist) — dates are zero-padded ISO, so lexicographic is
// chronological.
func Latest(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", nil
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// LowerIsBetter reports the comparison direction for a metric unit:
// time and allocation units regress upward, rate units (anything per
// second) regress downward.
func LowerIsBetter(unit string) bool {
	return !strings.HasSuffix(unit, "/sec") && !strings.HasSuffix(unit, "/s")
}

// Delta is one (benchmark, unit) comparison between two recorded runs.
type Delta struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	Ratio float64 `json:"ratio"` // New/Old
	// Regression is true when the change exceeds the threshold in the
	// unit's worse direction.
	Regression bool `json:"regression"`
}

// Change returns the signed fractional change in the "worse" direction:
// positive values mean worse, negative better, regardless of unit
// direction.
func (d Delta) Change() float64 {
	var ch float64
	switch {
	case d.Old == 0 && d.New == 0:
		return 0
	case d.Old == 0:
		// 0 → N has no finite ratio; treat it as an unbounded move so a
		// benchmark that starts allocating (0 → 1 allocs/op) always gates
		// rather than slipping under every threshold.
		ch = math.Inf(1)
	default:
		ch = d.New/d.Old - 1
	}
	if !LowerIsBetter(d.Unit) {
		ch = -ch
	}
	return ch
}

// Diff compares two recorded runs benchmark-by-benchmark. Only benchmarks
// and units present in both files are compared; threshold is the
// fractional worsening (e.g. 0.10 = 10%) beyond which a delta is flagged
// as a regression.
func Diff(old, new File, threshold float64) []Delta {
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	var out []Delta
	for _, nb := range new.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			continue
		}
		units := make([]string, 0, len(nb.Metrics))
		for u := range nb.Metrics {
			if _, ok := ob.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			d := Delta{Name: nb.Name, Unit: u, Old: ob.Metrics[u], New: nb.Metrics[u]}
			if d.Old != 0 {
				d.Ratio = d.New / d.Old
			}
			d.Regression = d.Change() > threshold
			out = append(out, d)
		}
	}
	return out
}

// Report renders deltas as an aligned table, regressions marked. With
// onlyInteresting, unchanged comparisons (|change| ≤ threshold/2) are
// suppressed to keep CI logs short; the summary line always appears.
func Report(w io.Writer, deltas []Delta, threshold float64, onlyInteresting bool) {
	nReg := 0
	fmt.Fprintf(w, "%-44s %-12s %14s %14s %8s\n", "benchmark", "unit", "old", "new", "change")
	for _, d := range deltas {
		ch := d.Change()
		if d.Regression {
			nReg++
		}
		if onlyInteresting && !d.Regression && ch > -threshold/2 && ch < threshold/2 {
			continue
		}
		mark := ""
		switch {
		case d.Regression:
			mark = "  REGRESSION"
		case ch < -threshold:
			mark = "  improved"
		}
		change := fmt.Sprintf("%+7.1f%%", 100*(d.New/maxNonZero(d.Old)-1))
		if d.Old == 0 && d.New != 0 {
			change = "  0→new" // no finite ratio to print
		}
		fmt.Fprintf(w, "%-44s %-12s %14.5g %14.5g %s%s\n",
			d.Name, d.Unit, d.Old, d.New, change, mark)
	}
	fmt.Fprintf(w, "%d comparisons, %d regressions (threshold %.0f%%)\n",
		len(deltas), nReg, 100*threshold)
}

func maxNonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// Regressions counts flagged deltas.
func Regressions(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Regression {
			n++
		}
	}
	return n
}
