package benchfmt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkMuxRunScalar-8   	       2	 505147561 ns/op	 197965000 frames/sec
BenchmarkMuxRunBlock-8    	      14	  78740215 ns/op	1.27e+09 frames/sec	      16 B/op	       1 allocs/op
BenchmarkGenZ-8           	31882730	        37.60 ns/op
some unrelated log line
PASS
ok  	repro	12.270s
`

func TestParse(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(bs))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if bs[0].Name != "BenchmarkGenZ" || bs[1].Name != "BenchmarkMuxRunBlock" {
		t.Errorf("unexpected order/names: %q, %q", bs[0].Name, bs[1].Name)
	}
	blk := bs[1]
	if blk.Iterations != 14 {
		t.Errorf("iterations = %d, want 14", blk.Iterations)
	}
	if blk.Metrics["ns/op"] != 78740215 || blk.Metrics["frames/sec"] != 1.27e9 ||
		blk.Metrics["B/op"] != 16 || blk.Metrics["allocs/op"] != 1 {
		t.Errorf("metrics = %v", blk.Metrics)
	}
	if bs[0].Metrics["ns/op"] != 37.60 {
		t.Errorf("fractional ns/op = %v, want 37.6", bs[0].Metrics["ns/op"])
	}
}

func TestFileRoundTrip(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	f := File{Date: "2026-08-06", GoVersion: "go1.24.0", GitRevision: "abc", Benchmarks: bs}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-08-06.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != f.Date || len(back.Benchmarks) != len(f.Benchmarks) {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Benchmarks[1].Metrics["frames/sec"] != 1.27e9 {
		t.Errorf("metrics lost: %v", back.Benchmarks[1].Metrics)
	}

	latest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != path {
		t.Errorf("Latest = %q, want %q", latest, path)
	}
	WriteFile(filepath.Join(dir, "BENCH_2026-09-01.json"), f)
	latest, _ = Latest(dir)
	if filepath.Base(latest) != "BENCH_2026-09-01.json" {
		t.Errorf("Latest = %q, want the newer file", latest)
	}
	// Empty dir → no baseline, no error.
	if l, err := Latest(t.TempDir()); err != nil || l != "" {
		t.Errorf("Latest on empty dir = %q, %v", l, err)
	}
}

func TestDiffDirections(t *testing.T) {
	old := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100, "frames/sec": 1000}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 1}},
	}}
	nw := File{Benchmarks: []Benchmark{
		// ns/op worse by 20%, frames/sec worse by 20%: both regress at 10%.
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 120, "frames/sec": 800}},
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 5}},
	}}
	deltas := Diff(old, nw, 0.10)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (only common benchmarks/units): %+v", len(deltas), deltas)
	}
	for _, d := range deltas {
		if !d.Regression {
			t.Errorf("%s %s: want regression, got %+v", d.Name, d.Unit, d)
		}
	}
	// Improvements must not flag: faster time, higher throughput.
	better := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 80, "frames/sec": 1500}},
	}}
	for _, d := range Diff(old, better, 0.10) {
		if d.Regression {
			t.Errorf("improvement flagged as regression: %+v", d)
		}
		if d.Change() >= 0 {
			t.Errorf("improvement should have negative change: %+v", d)
		}
	}
	// Within-threshold noise must not flag.
	noise := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 105, "frames/sec": 960}},
	}}
	for _, d := range Diff(old, noise, 0.10) {
		if d.Regression {
			t.Errorf("5%% noise flagged at 10%% threshold: %+v", d)
		}
	}
}

func TestZeroBaselineAllocationsGate(t *testing.T) {
	old := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"allocs/op": 0, "B/op": 0}},
	}}
	nw := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"allocs/op": 1, "B/op": 16}},
	}}
	deltas := Diff(old, nw, 0.20)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	for _, d := range deltas {
		if !d.Regression {
			t.Errorf("%s %s: 0 → %g must gate regardless of threshold: %+v", d.Name, d.Unit, d.New, d)
		}
	}
	var buf bytes.Buffer
	Report(&buf, deltas, 0.20, true)
	if !strings.Contains(buf.String(), "0→new") {
		t.Errorf("report should mark the ratio-less change:\n%s", buf.String())
	}
	// A benchmark that stays at zero allocations is not a regression.
	for _, d := range Diff(old, old, 0.20) {
		if d.Regression || d.Change() != 0 {
			t.Errorf("0 → 0 flagged: %+v", d)
		}
	}
	// 0 → N in a higher-is-better unit is an unbounded improvement.
	oldRate := File{Benchmarks: []Benchmark{{Name: "BenchmarkR", Metrics: map[string]float64{"frames/sec": 0}}}}
	newRate := File{Benchmarks: []Benchmark{{Name: "BenchmarkR", Metrics: map[string]float64{"frames/sec": 100}}}}
	for _, d := range Diff(oldRate, newRate, 0.20) {
		if d.Regression || d.Change() >= 0 {
			t.Errorf("rate appearing from zero flagged as regression: %+v", d)
		}
	}
}

func TestLowerIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": true, "B/op": true, "allocs/op": true,
		"frames/sec": false, "items/s": false,
	} {
		if got := LowerIsBetter(unit); got != want {
			t.Errorf("LowerIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestReport(t *testing.T) {
	old := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 100}},
	}}
	nw := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 150}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 101}},
	}}
	deltas := Diff(old, nw, 0.10)
	var buf bytes.Buffer
	Report(&buf, deltas, 0.10, true)
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "BenchmarkA") {
		t.Errorf("report missing regression:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkB") {
		t.Errorf("onlyInteresting report should hide the 1%% delta:\n%s", out)
	}
	if !strings.Contains(out, "2 comparisons, 1 regressions") {
		t.Errorf("report missing summary:\n%s", out)
	}
}
