package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/traffic"
)

// ctsSeries evaluates the critical time scale m*_b across the buffer grid
// (total buffer in msec) for one model, sharing one cached moment view
// across all grid points.
func ctsSeries(m traffic.Model, c float64, n int, grid []float64) (Series, error) {
	s := Series{Label: m.Name()}
	mo := core.Moments(m)
	for _, msec := range grid {
		op := core.Operating{C: c, B: MsecToPerSourceCells(msec, c), N: n}
		res, err := core.CTSMoments(mo, op, 0)
		if err != nil {
			return Series{}, fmt.Errorf("cts %s at %v msec: %w", m.Name(), msec, err)
		}
		s.X = append(s.X, msec)
		s.Y = append(s.Y, float64(res.M))
	}
	return s, nil
}

// Fig4 regenerates Figure 4: the CTS m*_b versus total buffer size for (a)
// the V^v family and (b) the Z^a family, with c = 526, μ = 500, N = 100.
func Fig4() ([]*Result, error) {
	defer stage("fig4")()
	a := &Result{
		ID: "fig4a", Title: "Critical time scale of V^v (c=526, N=100)",
		XLabel: "buffer msec", YLabel: "m*_b (frames)",
	}
	for _, v := range models.VValues {
		m, err := models.NewV(v)
		if err != nil {
			return nil, err
		}
		s, err := ctsSeries(m, Fig4C, Fig4N, BufferGridMsec)
		if err != nil {
			return nil, err
		}
		a.Series = append(a.Series, s)
	}
	b := &Result{
		ID: "fig4b", Title: "Critical time scale of Z^a (c=526, N=100)",
		XLabel: "buffer msec", YLabel: "m*_b (frames)",
	}
	for _, av := range models.ZValues {
		m, err := models.NewZ(av)
		if err != nil {
			return nil, err
		}
		s, err := ctsSeries(m, Fig4C, Fig4N, BufferGridMsec)
		if err != nil {
			return nil, err
		}
		b.Series = append(b.Series, s)
	}
	return []*Result{a, b}, nil
}

// bopSeries evaluates the Bahadur-Rao overflow estimate across the buffer
// grid for one model, sharing one cached moment view across all grid
// points.
func bopSeries(m traffic.Model, c float64, n int, grid []float64) (Series, error) {
	s := Series{Label: m.Name()}
	mo := core.Moments(m)
	for _, msec := range grid {
		op := core.Operating{C: c, B: MsecToPerSourceCells(msec, c), N: n}
		p, err := core.BahadurRaoMoments(mo, op, 0)
		if err != nil {
			return Series{}, fmt.Errorf("bop %s at %v msec: %w", m.Name(), msec, err)
		}
		s.X = append(s.X, msec)
		s.Y = append(s.Y, p)
	}
	return s, nil
}

// Fig5 regenerates Figure 5: Bahadur-Rao BOP versus buffer for (a) V^v and
// (b) Z^a with N = 30, c = 538.
func Fig5() ([]*Result, error) {
	defer stage("fig5")()
	a := &Result{
		ID: "fig5a", Title: "B-R BOP of V^v (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "P(W>B)",
	}
	for _, v := range models.VValues {
		m, err := models.NewV(v)
		if err != nil {
			return nil, err
		}
		s, err := bopSeries(m, BopC, BopN, BufferGridMsec)
		if err != nil {
			return nil, err
		}
		a.Series = append(a.Series, s)
	}
	b := &Result{
		ID: "fig5b", Title: "B-R BOP of Z^a (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "P(W>B)",
	}
	for _, av := range models.ZValues {
		m, err := models.NewZ(av)
		if err != nil {
			return nil, err
		}
		s, err := bopSeries(m, BopC, BopN, BufferGridMsec)
		if err != nil {
			return nil, err
		}
		b.Series = append(b.Series, s)
	}
	return []*Result{a, b}, nil
}

// fig6Panel builds one efficacy panel: Z^a against its DAR(p) fits, with L
// optionally included (the paper draws L on panel (a) only).
func fig6Panel(id string, targetA float64, includeL bool, grid []float64) (*Result, error) {
	z, err := models.NewZ(targetA)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     id,
		Title:  fmt.Sprintf("B-R BOP: %s vs matched DAR(p) (c=538, N=30)", z.Name()),
		XLabel: "buffer msec", YLabel: "P(W>B)",
	}
	s, err := bopSeries(z, BopC, BopN, grid)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, s)
	for _, order := range models.SOrders {
		d, err := models.FitS(z, order)
		if err != nil {
			return nil, err
		}
		s, err := bopSeries(d, BopC, BopN, grid)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	if includeL {
		l, err := models.NewL()
		if err != nil {
			return nil, err
		}
		s, err := bopSeries(l, BopC, BopN, grid)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig6 regenerates Figure 6: the efficacy of simple Markov models over the
// practical buffer range — (a) Z^0.975 vs DAR(1..3) vs L, (b) Z^0.7 vs
// DAR(1..3).
func Fig6() ([]*Result, error) {
	defer stage("fig6")()
	a, err := fig6Panel("fig6a", 0.975, true, BufferGridMsec)
	if err != nil {
		return nil, err
	}
	b, err := fig6Panel("fig6b", 0.7, false, BufferGridMsec)
	if err != nil {
		return nil, err
	}
	return []*Result{a, b}, nil
}

// Fig7 regenerates Figure 7: the same comparison over an unrealistically
// wide buffer range, exposing where L finally overtakes the Markov fits
// (the origin of the two myths). L appears in both panels here, as in the
// paper.
func Fig7() ([]*Result, error) {
	defer stage("fig7")()
	a, err := fig6Panel("fig7a", 0.975, true, WideBufferGridMsec)
	if err != nil {
		return nil, err
	}
	b, err := fig6Panel("fig7b", 0.7, true, WideBufferGridMsec)
	if err != nil {
		return nil, err
	}
	a.Title += " [wide range]"
	b.Title += " [wide range]"
	return []*Result{a, b}, nil
}
