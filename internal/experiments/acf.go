package experiments

import (
	"fmt"

	"repro/internal/models"
	seedpkg "repro/internal/seed"
	"repro/internal/traffic"
)

// lagGrid returns 1..n (inclusive) as float x values with the model ACF.
func acfSeries(m traffic.Model, maxLag int) Series {
	s := Series{Label: m.Name()}
	for k := 1; k <= maxLag; k++ {
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, m.ACF(k))
	}
	return s
}

// Table1 regenerates the paper's Table 1 (all derived model parameters).
func Table1() (*models.Table1, error) {
	defer stage("table1")()
	return models.DeriveTable1()
}

// Fig1 regenerates the conceptual Figure 1: how a and v deform the ACF of
// Z^a and V^v. Two panels: the V^v family and the Z^a family over short
// lags.
func Fig1() ([]*Result, error) {
	defer stage("fig1")()
	const maxLag = 60
	va := &Result{
		ID: "fig1a", Title: "Effect of v on the ACF of V^v (fixed short-term correlations)",
		XLabel: "lag", YLabel: "r(k)",
	}
	for _, v := range models.VValues {
		m, err := models.NewV(v)
		if err != nil {
			return nil, err
		}
		va.Series = append(va.Series, acfSeries(m, maxLag))
	}
	za := &Result{
		ID: "fig1b", Title: "Effect of a on the ACF of Z^a (fixed long-term correlations)",
		XLabel: "lag", YLabel: "r(k)",
	}
	for _, a := range models.ZValues {
		m, err := models.NewZ(a)
		if err != nil {
			return nil, err
		}
		za.Series = append(za.Series, acfSeries(m, maxLag))
	}
	return []*Result{va, za}, nil
}

// Fig2 regenerates Figure 2: aggregate sample paths of Z^0.7 and its
// matched DAR(1) for N = 10 multiplexed sources, exposing the
// burst-within-burst structure of the LRD model.
func Fig2(frames int, seed int64) (*Result, error) {
	defer stage("fig2")()
	if frames < 1 {
		return nil, fmt.Errorf("experiments: frames = %d must be ≥ 1", frames)
	}
	z, err := models.NewZ(0.7)
	if err != nil {
		return nil, err
	}
	s, err := models.FitS(z, 1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig2", Title: "Sample paths, N = 10 sources multiplexed",
		XLabel: "frame", YLabel: "aggregate cells/frame",
	}
	for _, m := range []traffic.Model{z, s} {
		gens := make([]traffic.Generator, 10)
		for i, s := range seedpkg.Children(seed, len(gens)) {
			gens[i] = m.NewGenerator(s)
		}
		sr := Series{Label: m.Name()}
		for f := 0; f < frames; f++ {
			var sum float64
			for _, g := range gens {
				sum += g.NextFrame()
			}
			sr.X = append(sr.X, float64(f))
			sr.Y = append(sr.Y, sum)
		}
		res.Series = append(res.Series, sr)
	}
	return res, nil
}

// Fig3 regenerates the four ACF panels of Figure 3:
//
//	(a) V^v for v = 0.67, 1, 1.5 — short lags nearly coincide.
//	(b) Z^a for the four a values plus L — long lags nearly coincide.
//	(c) DAR(p) matched to Z^0.7.
//	(d) DAR(p) matched to Z^0.975.
func Fig3() ([]*Result, error) {
	defer stage("fig3")()
	a := &Result{ID: "fig3a", Title: "ACF of V^v", XLabel: "lag", YLabel: "r(k)"}
	for _, v := range models.VValues {
		m, err := models.NewV(v)
		if err != nil {
			return nil, err
		}
		a.Series = append(a.Series, acfSeries(m, 100))
	}

	b := &Result{ID: "fig3b", Title: "ACF of Z^a and L", XLabel: "lag", YLabel: "r(k)"}
	for _, av := range models.ZValues {
		m, err := models.NewZ(av)
		if err != nil {
			return nil, err
		}
		b.Series = append(b.Series, acfSeries(m, 1000))
	}
	l, err := models.NewL()
	if err != nil {
		return nil, err
	}
	b.Series = append(b.Series, acfSeries(l, 1000))

	panels := []*Result{a, b}
	for i, target := range []float64{0.7, 0.975} {
		z, err := models.NewZ(target)
		if err != nil {
			return nil, err
		}
		p := &Result{
			ID:     fmt.Sprintf("fig3%c", 'c'+i),
			Title:  fmt.Sprintf("DAR(p) fits vs %s", z.Name()),
			XLabel: "lag", YLabel: "r(k)",
		}
		p.Series = append(p.Series, acfSeries(z, 50))
		for _, order := range models.SOrders {
			s, err := models.FitS(z, order)
			if err != nil {
				return nil, err
			}
			p.Series = append(p.Series, acfSeries(s, 50))
		}
		panels = append(panels, p)
	}
	return panels, nil
}
