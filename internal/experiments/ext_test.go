package experiments

import (
	"math"
	"testing"
)

func TestExtMPEG(t *testing.T) {
	rs, err := ExtMPEG()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	cts, bop := rs[0], rs[1]
	if len(cts.Series) != 2 || len(bop.Series) != 2 {
		t.Fatal("each panel needs base + MPEG series")
	}
	// The MPEG source has strictly more variance at matched mean, so its
	// overflow probability dominates the base's at every positive buffer.
	base, mpeg := bop.Series[0], bop.Series[1]
	for i := 1; i < len(base.Y); i++ {
		if mpeg.Y[i] <= base.Y[i] {
			t.Fatalf("MPEG BOP %v not above base %v at %v msec",
				mpeg.Y[i], base.Y[i], base.X[i])
		}
	}
	// CTS stays finite and m*_0 = 1 for both.
	for _, s := range cts.Series {
		if s.Y[0] != 1 {
			t.Fatalf("%s: m*_0 = %v", s.Label, s.Y[0])
		}
	}
}

func TestExtSubstrates(t *testing.T) {
	rs, err := ExtSubstrates()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	cts, bop := rs[0], rs[1]
	if len(cts.Series) != 4 || len(bop.Series) != 4 {
		t.Fatal("want 4 substrates per panel")
	}
	// All substrates share the marginal, so all BOP curves start at the
	// same zero-buffer value and decrease.
	for _, s := range bop.Series {
		if math.Abs(s.Y[0]-bop.Series[0].Y[0])/bop.Series[0].Y[0] > 1e-9 {
			t.Fatalf("%s: zero-buffer BOP differs despite matched marginal", s.Label)
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1] {
				t.Fatalf("%s: BOP not decreasing", s.Label)
			}
		}
	}
	// Despite equal H, the curves at 20 msec must NOT coincide — that
	// spread is the experiment's finding.
	idx := indexOf(BufferGridMsec, 20)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range bop.Series {
		lo, hi = math.Min(lo, s.Y[idx]), math.Max(hi, s.Y[idx])
	}
	if hi/lo < 3 {
		t.Fatalf("substrates too similar at 20 msec (ratio %v); expected spread", hi/lo)
	}
	// Every CTS is finite, small at zero buffer, non-decreasing.
	for _, s := range cts.Series {
		if s.Y[0] != 1 {
			t.Fatalf("%s: m*_0 = %v", s.Label, s.Y[0])
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s: CTS decreased", s.Label)
			}
		}
	}
}

func TestExtMarginals(t *testing.T) {
	r, err := ExtMarginals(SimConfig{Reps: 2, Frames: 8000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(r.Series))
	}
	// All marginals share mean/variance, so zero-buffer CLRs are within a
	// small factor of each other and of the Gaussian fluid value.
	want := ZeroBufferCheck(BopC, BopN)
	for _, s := range r.Series {
		if s.Y[0] <= 0 {
			t.Fatalf("%s: no loss at zero buffer", s.Label)
		}
		if ratio := s.Y[0] / want; ratio < 0.2 || ratio > 5 {
			t.Fatalf("%s: zero-buffer CLR %v vs %v", s.Label, s.Y[0], want)
		}
	}
	if _, err := ExtMarginals(SimConfig{}); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestExtWeibull(t *testing.T) {
	rs, err := ExtWeibull()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d panels, want 3", len(rs))
	}
	for _, r := range rs {
		if len(r.Series) != 3 {
			t.Fatalf("%s: %d series, want 3", r.ID, len(r.Series))
		}
		wb, br := r.Series[0], r.Series[1]
		// Eq. 6 and the numeric B-R must agree in log within 3% at every
		// buffer (the only difference is the integer-m restriction).
		for i := range wb.Y {
			lw, lb := math.Log(wb.Y[i]), math.Log(br.Y[i])
			if math.Abs(lw-lb) > 0.03*math.Abs(lb) {
				t.Fatalf("%s at %v msec: log eq6 %v vs log B-R %v",
					r.ID, wb.X[i], lw, lb)
			}
		}
	}
}

func TestExtFLR(t *testing.T) {
	r, err := ExtFLR(SimConfig{Reps: 1, Frames: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(r.Series))
	}
	clr, flr := r.Series[0], r.Series[1]
	for i := range clr.Y {
		if clr.Y[i] > 0 && flr.Y[i] <= clr.Y[i] {
			t.Fatalf("FLR %v not above CLR %v at buffer %v", flr.Y[i], clr.Y[i], clr.X[i])
		}
	}
	// Tight buffers must show observable loss at 97% load.
	if clr.Y[0] <= 0 {
		t.Fatal("no loss at 50-cell buffer under 97% load")
	}
	if _, err := ExtFLR(SimConfig{}); err == nil {
		t.Fatal("invalid config should error")
	}
}
