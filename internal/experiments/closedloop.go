package experiments

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/models"
	"repro/internal/mux"
	"repro/internal/telemetry"
	"repro/internal/telemetry/prof"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// ClosedLoopBufferGridMsec is the buffer grid of the closed-loop figure.
// It spans the same practical range as SimBufferGridMsec but with fewer
// points: closed-loop curves cannot share one arrival path across buffer
// sizes (the feedback tap couples arrivals to the buffer), so every point
// is a full per-buffer simulation rather than one leg of a coupled sweep.
var ClosedLoopBufferGridMsec = []float64{0, 1, 2, 4, 8, 14, 20}

// ClosedLoopC is the per-source bandwidth of the closed-loop figure,
// cells/frame. The paper's c = 538 (utilisation ≈ 0.93) leaves CLR near
// the resolution floor of a smoke-scale run and gives a controller that
// never exceeds its encoded rate almost nothing to react to; at c = 510
// (≈ 98% offered load) the open-loop families lose ~1e-3 of their cells
// and the open-vs-adaptive gap is the figure's subject, not noise.
const ClosedLoopC float64 = 510

// closedLoopSeries measures the simulated CLR of one (typically adaptive)
// model across the buffer grid with independent per-buffer runs, fanning
// the replications of each point over cfg's orchestration engine. All
// points share the master seed, so their underlying open-loop draws are
// positively coupled exactly like the coupled sweep's — only the
// feedback-driven adaptation differs per buffer. Results are bit-identical
// for any worker count: each replication's feedback dynamics are confined
// to its own serial step loop.
func closedLoopSeries(m traffic.Model, c float64, n int, grid []float64, cfg SimConfig) (Series, error) {
	if err := cfg.Validate(); err != nil {
		return Series{}, err
	}
	sp := cfg.Span.Child("closed-loop sweep "+m.Name(),
		trace.Int("N", n), trace.Float("c", c), trace.Int("reps", cfg.Reps))
	defer sp.End()
	ctx := trace.ContextWith(cfg.context(), sp)
	ctx = prof.WithLabels(ctx, prof.Labels{Model: m.Name()})
	eng := cfg.engine()
	s := Series{Label: m.Name()}
	clrs := make([]float64, cfg.Reps)
	for _, msec := range grid {
		// Unlike the coupled sweep, every grid point is its own simulation,
		// so CPU samples carry the buffer size they were spent on.
		pctx := prof.WithLabels(ctx, prof.Labels{SweepPoint: fmt.Sprintf("%gmsec", msec)})
		run := mux.Config{
			Model:  m,
			N:      n,
			C:      c,
			B:      MsecToPerSourceCells(msec, c),
			Frames: cfg.Frames,
			Warmup: cfg.Frames / 20,
			Seed:   cfg.Seed,
		}
		results, err := mux.RunReplicationsEngine(pctx, eng, run, cfg.Reps)
		if err != nil {
			return Series{}, fmt.Errorf("closed-loop %s: %w", m.Name(), err)
		}
		ci := mux.CLREstimate(results, 0.95)
		s.X = append(s.X, msec)
		s.Y = append(s.Y, ci.Point)
		s.Lo = append(s.Lo, ci.Low())
		s.Hi = append(s.Hi, ci.High())
		for rep, r := range results {
			clrs[rep] = r.CLR
		}
		v := diag.Assess(clrs, cfg.convRel())
		publishConvergence(v)
		s.Verdicts = append(s.Verdicts, v)
		if !v.Converged {
			telemetry.Log.Warnf("%s buffer %g msec: %s", m.Name(), msec, v)
		}
	}
	return s, nil
}

// closedLoopBases assembles the figure's base models: one of each family
// the paper sweeps — V^1 (balanced composite), Z^0.975 (the headline
// asymptotic-LRD model), its matched Markov model DAR(1), and the exact-
// LRD model L.
func closedLoopBases() ([]traffic.Model, error) {
	v, err := models.NewV(1)
	if err != nil {
		return nil, err
	}
	z, err := models.NewZ(0.975)
	if err != nil {
		return nil, err
	}
	s, err := models.FitS(z, 1)
	if err != nil {
		return nil, err
	}
	l, err := models.NewL()
	if err != nil {
		return nil, err
	}
	return []traffic.Model{v, z, s, l}, nil
}

// ExtClosedLoop regenerates the closed-loop extension figure: simulated
// CLR vs buffer for the paper's V/Z/S/L source families, each run twice —
// open-loop exactly as published, and wrapped in the AIMD rate controller
// (models.NewAIMD with defaults) so frame sizes adapt to the queue state
// through the stepped engine's feedback tap.
//
// This answers the ROADMAP question the paper cannot ask: does "short-term
// correlations dominate CLR" survive when sources react to the
// multiplexer? Compare each adaptive curve against its open-loop twin —
// and, across model families, whether the Markov model S still tracks the
// LRD models Z and L once all of them adapt.
//
// Open-loop twins run through the coupled sweep (one arrival path, all
// buffers); adaptive series run per-buffer through the stepped engine.
// Both fan replications over cfg's engine and are bit-identical for any
// worker count.
func ExtClosedLoop(cfg SimConfig) (*Result, error) {
	defer stage("extloop")()
	bases, err := closedLoopBases()
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "extloop",
		Title:  fmt.Sprintf("Closed-loop AIMD vs open-loop CLR (c=%g, N=%d)", ClosedLoopC, BopN),
		XLabel: "buffer msec", YLabel: "CLR",
	}
	for _, base := range bases {
		open, err := clrSeries(base, ClosedLoopC, BopN, ClosedLoopBufferGridMsec, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, open)
		ad, err := models.NewAIMD(base, models.AIMDConfig{})
		if err != nil {
			return nil, err
		}
		closed, err := closedLoopSeries(ad, ClosedLoopC, BopN, ClosedLoopBufferGridMsec, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, closed)
	}
	return res, nil
}
