package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/models"
	"repro/internal/mux"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/telemetry/prof"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// SimBufferGridMsec is the buffer grid used by the simulation figures.
// Loss rates much below 1/(frames × cells-per-frame) are unobservable, so
// the grid stops at 20 msec where the paper's own curves reach ≈1e-6.
var SimBufferGridMsec = []float64{0, 1, 2, 4, 6, 8, 10, 14, 20}

// clrSeries measures the simulated CLR of one model across the buffer grid
// using a coupled sweep (one arrival stream per replication drives all
// buffer sizes), averaging over cfg.Reps replications. Replications are
// fanned out over cfg's orchestration engine; the estimates are
// bit-identical for any worker count.
//
// Each sweep runs under a child span of cfg.Span (replications and mux
// chunks nest below it), and every grid point gets a convergence verdict
// over its per-replication CLRs; unconverged points are logged as
// warnings. Both are observational — they never touch the estimates.
func clrSeries(m traffic.Model, c float64, n int, grid []float64, cfg SimConfig) (Series, error) {
	if err := cfg.Validate(); err != nil {
		return Series{}, err
	}
	sp := cfg.Span.Child("sweep "+m.Name(),
		trace.Int("N", n), trace.Float("c", c), trace.Int("reps", cfg.Reps))
	defer sp.End()
	buffers := make([]float64, len(grid))
	for i, msec := range grid {
		buffers[i] = MsecToPerSourceCells(msec, c)
	}
	run := mux.Config{
		Model:  m,
		N:      n,
		C:      c,
		Frames: cfg.Frames,
		Warmup: cfg.Frames / 20,
		Seed:   cfg.Seed,
	}
	ctx := trace.ContextWith(cfg.context(), sp)
	// Profiling coordinates: every CPU sample taken under this sweep is
	// attributable to the model and to the coupled pass (all buffer sizes
	// share one arrival path, so there is no per-point coordinate to name).
	ctx = prof.WithLabels(ctx, prof.Labels{Model: m.Name(), SweepPoint: "coupled"})
	byBuffer, err := mux.SweepReplicationsEngine(ctx, cfg.engine(), run, buffers, cfg.Reps)
	if err != nil {
		return Series{}, fmt.Errorf("sim %s: %w", m.Name(), err)
	}
	s := Series{Label: m.Name()}
	clrs := make([]float64, cfg.Reps)
	for i := range grid {
		ci := mux.CLREstimate(byBuffer[i], 0.95)
		s.X = append(s.X, grid[i])
		s.Y = append(s.Y, ci.Point)
		s.Lo = append(s.Lo, ci.Low())
		s.Hi = append(s.Hi, ci.High())
		for rep, r := range byBuffer[i] {
			clrs[rep] = r.CLR
		}
		v := diag.Assess(clrs, cfg.convRel())
		publishConvergence(v)
		s.Verdicts = append(s.Verdicts, v)
		if !v.Converged {
			telemetry.Log.Warnf("%s buffer %g msec: %s", m.Name(), grid[i], v)
		}
	}
	return s, nil
}

// Fig8 regenerates Figure 8: simulated finite-buffer CLRs of (a) V^v and
// (b) Z^a with N = 30 and c = 538 — the empirical confirmation of Fig 5.
func Fig8(cfg SimConfig) ([]*Result, error) {
	defer stage("fig8")()
	a := &Result{
		ID: "fig8a", Title: "Simulated CLR of V^v (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "CLR",
	}
	for _, v := range models.VValues {
		m, err := models.NewV(v)
		if err != nil {
			return nil, err
		}
		s, err := clrSeries(m, BopC, BopN, SimBufferGridMsec, cfg)
		if err != nil {
			return nil, err
		}
		a.Series = append(a.Series, s)
	}
	b := &Result{
		ID: "fig8b", Title: "Simulated CLR of Z^a (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "CLR",
	}
	for _, av := range models.ZValues {
		m, err := models.NewZ(av)
		if err != nil {
			return nil, err
		}
		s, err := clrSeries(m, BopC, BopN, SimBufferGridMsec, cfg)
		if err != nil {
			return nil, err
		}
		b.Series = append(b.Series, s)
	}
	return []*Result{a, b}, nil
}

// Fig9 regenerates Figure 9: simulated CLRs of Z^a, L and the matched
// DAR(p) models — the empirical confirmation of Fig 6. Panel (a) uses
// Z^0.975 (with L), panel (b) Z^0.7.
func Fig9(cfg SimConfig) ([]*Result, error) {
	defer stage("fig9")()
	var out []*Result
	for i, target := range []float64{0.975, 0.7} {
		z, err := models.NewZ(target)
		if err != nil {
			return nil, err
		}
		res := &Result{
			ID:     fmt.Sprintf("fig9%c", 'a'+i),
			Title:  fmt.Sprintf("Simulated CLR: %s vs matched DAR(p) (c=538, N=30)", z.Name()),
			XLabel: "buffer msec", YLabel: "CLR",
		}
		s, err := clrSeries(z, BopC, BopN, SimBufferGridMsec, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
		for _, order := range models.SOrders {
			d, err := models.FitS(z, order)
			if err != nil {
				return nil, err
			}
			s, err := clrSeries(d, BopC, BopN, SimBufferGridMsec, cfg)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
		if i == 0 {
			l, err := models.NewL()
			if err != nil {
				return nil, err
			}
			s, err := clrSeries(l, BopC, BopN, SimBufferGridMsec, cfg)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig10 regenerates Figure 10: the accuracy of the two large-buffer
// asymptotics against simulation for the DAR(1) model matched to Z^0.975.
// Three series: B-R asymptotic, large-N asymptotic, and the simulated CLR.
func Fig10(cfg SimConfig) (*Result, error) {
	defer stage("fig10")()
	z, err := models.NewZ(0.975)
	if err != nil {
		return nil, err
	}
	d, err := models.FitS(z, 1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig10",
		Title:  "Asymptotics vs simulation for DAR(1)[Z^0.975] (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "probability",
	}
	br := Series{Label: "Bahadur-Rao"}
	ln := Series{Label: "Large-N"}
	mo := core.Moments(d)
	for _, msec := range SimBufferGridMsec {
		op := core.Operating{C: BopC, B: MsecToPerSourceCells(msec, BopC), N: BopN}
		pb, err := core.BahadurRaoMoments(mo, op, 0)
		if err != nil {
			return nil, err
		}
		pl, err := core.LargeNMoments(mo, op, 0)
		if err != nil {
			return nil, err
		}
		br.X = append(br.X, msec)
		br.Y = append(br.Y, pb)
		ln.X = append(ln.X, msec)
		ln.Y = append(ln.Y, pl)
	}
	sim, err := clrSeries(d, BopC, BopN, SimBufferGridMsec, cfg)
	if err != nil {
		return nil, err
	}
	sim.Label = "simulated CLR"
	res.Series = append(res.Series, br, ln, sim)
	return res, nil
}

// ZeroBufferCheck returns the analytic fluid zero-buffer CLR
// σ_N·L((C−μ_N)/σ_N)/μ_N that every model must reproduce at B = 0 (the
// paper notes all CLR curves start near 1e-5 at zero buffer, confirming
// identical marginals).
func ZeroBufferCheck(c float64, n int) float64 {
	muN := models.Mean * float64(n)
	sigmaN := math.Sqrt(models.Variance * float64(n))
	z := (c*float64(n) - muN) / sigmaN
	return sigmaN * stats.NormalLoss(z) / muN
}
