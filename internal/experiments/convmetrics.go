package experiments

import (
	"math"

	"repro/internal/diag"
	"repro/internal/telemetry"
)

// publishConvergence mirrors one grid point's convergence verdict into the
// process registry, so the flight recorder's periodic snapshots show
// convergence evolving point by point instead of only in the final
// manifest: conv_points_total{outcome} counts verdicts, conv_rel_ci and
// conv_ess track the most recent point's diagnostics, and
// conv_nonfinite_total accumulates quarantined observations (the SLO
// health rule "value(conv_nonfinite_total) == 0" watches it).
//
// Purely observational: reads the verdict, never the estimates. Undefined
// RelCI (fewer than two finite observations) is encoded as -1, mirroring
// the manifest's ConvRecord — gauges must stay JSON-encodable.
func publishConvergence(v diag.Verdict) {
	outcome := "converged"
	if !v.Converged {
		outcome = "unconverged"
	}
	telemetry.Default.Counter("conv_points_total", telemetry.L("outcome", outcome)).Inc()
	relCI := v.RelCI
	if math.IsNaN(relCI) || math.IsInf(relCI, 0) {
		relCI = -1
	}
	telemetry.Default.Gauge("conv_rel_ci").Set(relCI)
	ess := v.ESS
	if math.IsNaN(ess) || math.IsInf(ess, 0) {
		ess = 0
	}
	telemetry.Default.Gauge("conv_ess").Set(ess)
	if v.NonFinite > 0 {
		telemetry.Default.Counter("conv_nonfinite_total").Add(int64(v.NonFinite))
	}
}
