// Package experiments regenerates every table and figure of the paper's
// evaluation (Table 1, Figures 1-10). Each driver returns structured
// Series data that the cmd/repro tool and the benchmark harness render;
// EXPERIMENTS.md records the comparison against the published shapes.
//
// Analytic experiments (Table 1, Figs 1-7) are deterministic. Simulation
// experiments (Figs 8-10) take a SimConfig; the defaults are scaled down
// from the paper's 60 replications × 500k frames so the full suite runs in
// minutes — pass larger values (e.g. via cmd/repro -reps -frames) for
// paper-scale statistics.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/diag"
	"repro/internal/models"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Series is one labelled curve of an experiment. Simulation-backed series
// also carry replication confidence bounds (Lo/Hi parallel to Y) so run
// manifests can record CLR ± CI, not just the point estimate, and
// per-point convergence verdicts (Verdicts parallel to Y) so a manifest
// records whether each estimate had statistically converged; analytic
// series leave them nil. Render/CSV show the point estimates only.
type Series struct {
	Label    string
	X        []float64
	Y        []float64
	Lo       []float64
	Hi       []float64
	Verdicts []diag.Verdict
}

// stage times one experiment driver into the telemetry.Default stage-timer
// family: defer stage("fig8")() as the driver's first statement. The
// per-stage wall times surface on the -telemetry endpoint and in run
// manifests, pricing each figure of a sweep individually.
func stage(id string) func() {
	return telemetry.Default.Timer("experiments_stage_seconds", telemetry.L("stage", id)).Start()
}

// Result is one table or figure panel.
type Result struct {
	ID     string // e.g. "fig5a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Standard operating points from the paper.
const (
	// Fig4N and Fig4C: CTS figures use N = 100 sources at c = 526
	// cells/frame (paper Fig 4 caption).
	Fig4N = 100
	Fig4C = 526.0
	// BopN and BopC: all BOP/CLR figures use N = 30 sources at c = 538
	// cells/frame (paper Figs 5-10 captions).
	BopN = 30
	BopC = 538.0
)

// BufferGridMsec is the practical buffer range of Figs 4-6 and 8-10 (total
// buffer expressed as maximum delay in milliseconds).
var BufferGridMsec = []float64{0, 1, 2, 4, 6, 8, 10, 12, 15, 20, 25, 30}

// WideBufferGridMsec is the Fig 7 range, far beyond practical dimensioning.
var WideBufferGridMsec = []float64{1, 2, 5, 10, 20, 40, 80, 150, 300, 600, 1000}

// MsecToPerSourceCells converts a total-buffer delay in milliseconds to a
// per-source buffer allocation in cells at per-source bandwidth c
// (cells/frame): draining N·b cells at N·c cells per Ts takes b/c·Ts.
func MsecToPerSourceCells(msec, c float64) float64 {
	return msec / 1000 / models.Ts * c
}

// Render lays the result out as an aligned text table: the x column
// followed by one column per series.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "%-12s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range r.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		var x float64 = math.NaN()
		for _, s := range r.Series {
			if i < len(s.X) {
				x = s.X[i]
				break
			}
		}
		fmt.Fprintf(&b, "%-12.4g", x)
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %16.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the result as comma-separated values with a header row. All
// series are assumed to share the x grid of the longest series.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(r.XLabel)
	for _, s := range r.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range r.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		var x float64 = math.NaN()
		for _, s := range r.Series {
			if i < len(s.X) {
				x = s.X[i]
				break
			}
		}
		fmt.Fprintf(&b, "%g", x)
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SimConfig scales the simulation experiments and selects how their
// replications are orchestrated. Results are a pure function of
// (Reps, Frames, Seed) — Workers/Engine/Ctx change only wall-clock
// behaviour, never the numbers.
type SimConfig struct {
	Reps   int   // independent replications (paper: 60)
	Frames int   // frames per replication (paper: 500000)
	Seed   int64 // master seed

	// Workers bounds the replication worker pool when no Engine is
	// supplied: ≤ 0 means runtime.NumCPU(), 1 is the serial path.
	Workers int
	// Engine, when non-nil, runs every simulation job — sharing its
	// worker pool, progress counters and checkpoint across figures.
	Engine *runner.Engine
	// Ctx, when non-nil, cancels in-flight replications (fail-fast).
	Ctx context.Context

	// Span, when active, parents the figure's trace spans: each model
	// sweep becomes a child span, and replications/mux chunks nest below
	// it. The zero Span disables tracing. Observational only — never part
	// of seeds, so results are bit-identical with tracing on or off.
	Span trace.Span
	// ConvMaxRelCI is the target relative 95% CI half-width for per-point
	// convergence verdicts (≤ 0 selects DefaultConvMaxRelCI). Verdicts are
	// attached to every simulated series and unconverged points are logged
	// as warnings; they never alter the estimates themselves.
	ConvMaxRelCI float64
}

// DefaultConvMaxRelCI is the default convergence target: a relative 95%
// CI half-width of 50%. CLRs near 1e-6 are order-of-magnitude statements
// in the paper's plots, so ±50% is the widest interval that still
// supports the figures' qualitative claims.
const DefaultConvMaxRelCI = 0.5

// convRel returns the effective convergence target.
func (s SimConfig) convRel() float64 {
	if s.ConvMaxRelCI > 0 {
		return s.ConvMaxRelCI
	}
	return DefaultConvMaxRelCI
}

// engine returns the orchestration engine to run under.
func (s SimConfig) engine() *runner.Engine {
	if s.Engine != nil {
		return s.Engine
	}
	return runner.New(s.Workers)
}

// context returns the cancellation context to run under.
func (s SimConfig) context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// DefaultSim keeps the whole simulation suite to tens of minutes on one
// core. The dominant cost is the V^1.5 model, whose fractal onset time
// forces phase changes ~100× per frame; raise -reps/-frames deliberately.
var DefaultSim = SimConfig{Reps: 4, Frames: 20000, Seed: 1996}

// Validate checks the simulation scale.
func (s SimConfig) Validate() error {
	if s.Reps < 1 {
		return fmt.Errorf("experiments: reps = %d must be ≥ 1", s.Reps)
	}
	if s.Frames < 1 {
		return fmt.Errorf("experiments: frames = %d must be ≥ 1", s.Frames)
	}
	return nil
}
