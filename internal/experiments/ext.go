package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dar"
	"repro/internal/fbndp"
	"repro/internal/fgn"
	"repro/internal/mginf"
	"repro/internal/models"
	"repro/internal/traffic"
)

// The ext* experiments go beyond the paper's published evaluation into the
// directions its §6 sketches: MPEG-style periodic sources (§6.2),
// alternative LRD substrates (the §4.1 related-work models), and
// non-Gaussian marginals (§6.1).

// ExtMPEG compares the CTS and Bahadur-Rao BOP of an MPEG GOP-modulated
// source against its unmodulated base (paper §6.2 future work). The
// modulation adds variance and periodic correlation ripples; the CTS
// machinery applies unchanged and shows how much extra buffer the
// periodicity costs.
func ExtMPEG() ([]*Result, error) {
	defer stage("extmpeg")()
	z, err := models.NewZ(0.9)
	if err != nil {
		return nil, err
	}
	w, err := models.GOPWeights(models.TypicalGOP, 5, 3, 1)
	if err != nil {
		return nil, err
	}
	mp, err := models.NewMPEG(z, w)
	if err != nil {
		return nil, err
	}
	pair := []traffic.Model{z, mp}

	cts := &Result{
		ID: "extmpeg-cts", Title: "CTS: MPEG GOP modulation vs base (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "m*_b (frames)",
	}
	bop := &Result{
		ID: "extmpeg-bop", Title: "B-R BOP: MPEG GOP modulation vs base (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "P(W>B)",
	}
	for _, m := range pair {
		s, err := ctsSeries(m, BopC, BopN, BufferGridMsec)
		if err != nil {
			return nil, err
		}
		cts.Series = append(cts.Series, s)
		s, err = bopSeries(m, BopC, BopN, BufferGridMsec)
		if err != nil {
			return nil, err
		}
		bop.Series = append(bop.Series, s)
	}
	return []*Result{cts, bop}, nil
}

// ExtSubstrates compares the CTS and BOP of four LRD constructions at
// matched Hurst parameter (0.9) and identical first two moments: the
// paper's composite Z^0.9, a pure FBNDP, exact fractional Gaussian noise,
// and the M/G/∞ (Cox) model behind the hyperbolic-decay results of §4.1.
// The spread across substrates at equal H is itself the paper's message:
// the Hurst parameter alone does not determine queueing behaviour.
func ExtSubstrates() ([]*Result, error) {
	defer stage("extsub")()
	z, err := models.NewZ(0.9)
	if err != nil {
		return nil, err
	}
	t0, err := fbndp.SolveT0(models.Mean, models.Variance, 0.8, models.Ts)
	if err != nil {
		return nil, err
	}
	pure, err := fbndp.NewModel(fbndp.Params{
		Alpha: 0.8, Lambda: models.Mean / models.Ts, T0: t0, M: models.ML, Ts: models.Ts,
	})
	if err != nil {
		return nil, err
	}
	pure.SetName("FBNDP(H=0.9)")
	fg, err := fgn.NewModel(0.9, models.Mean, models.Variance)
	if err != nil {
		return nil, err
	}
	cox, err := mginf.NewFromMoments(models.Mean, models.Variance, 0.9, models.Ts, models.Ts)
	if err != nil {
		return nil, err
	}
	ms := []traffic.Model{z, pure, fg, cox}

	cts := &Result{
		ID: "extsub-cts", Title: "CTS across LRD substrates at H=0.9 (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "m*_b (frames)",
	}
	bop := &Result{
		ID: "extsub-bop", Title: "B-R BOP across LRD substrates at H=0.9 (c=538, N=30)",
		XLabel: "buffer msec", YLabel: "P(W>B)",
	}
	for _, m := range ms {
		s, err := ctsSeries(m, BopC, BopN, BufferGridMsec)
		if err != nil {
			return nil, err
		}
		cts.Series = append(cts.Series, s)
		s, err = bopSeries(m, BopC, BopN, BufferGridMsec)
		if err != nil {
			return nil, err
		}
		bop.Series = append(bop.Series, s)
	}
	return []*Result{cts, bop}, nil
}

// ExtWeibull verifies the paper's Eq. 6 (Appendix): for exact-LRD Gaussian
// sources the closed-form Weibull approximation must coincide with the
// numerically minimised Bahadur-Rao asymptotic, since FGN has exactly
// V(m) = σ²m^{2H}. One panel per Hurst parameter, three series each
// (Weibull Eq. 6, Bahadur-Rao, Large-N).
func ExtWeibull() ([]*Result, error) {
	defer stage("extweibull")()
	var out []*Result
	for _, h := range []float64{0.7, 0.86, 0.9} {
		m, err := fgn.NewModel(h, models.Mean, models.Variance)
		if err != nil {
			return nil, err
		}
		res := &Result{
			ID:     fmt.Sprintf("extweibull-h%02.0f", h*100),
			Title:  fmt.Sprintf("Eq. 6 Weibull vs numeric asymptotics, FGN H=%.2f (c=538, N=30)", h),
			XLabel: "buffer msec", YLabel: "P(W>B)",
		}
		wb := Series{Label: "weibull-eq6"}
		params := core.LRDParams{H: h, G: 1, Mu: models.Mean, Sigma2: models.Variance}
		for _, msec := range BufferGridMsec[1:] { // J → 0 at zero buffer
			op := core.Operating{C: BopC, B: MsecToPerSourceCells(msec, BopC), N: BopN}
			p, err := core.WeibullLRD(params, op)
			if err != nil {
				return nil, err
			}
			wb.X = append(wb.X, msec)
			wb.Y = append(wb.Y, p)
		}
		res.Series = append(res.Series, wb)
		br, err := bopSeries(m, BopC, BopN, BufferGridMsec[1:])
		if err != nil {
			return nil, err
		}
		br.Label = "bahadur-rao"
		res.Series = append(res.Series, br)
		ln := Series{Label: "large-N"}
		mo := core.Moments(m)
		for _, msec := range BufferGridMsec[1:] {
			op := core.Operating{C: BopC, B: MsecToPerSourceCells(msec, BopC), N: BopN}
			p, err := core.LargeNMoments(mo, op, 0)
			if err != nil {
				return nil, err
			}
			ln.X = append(ln.X, msec)
			ln.Y = append(ln.Y, p)
		}
		res.Series = append(res.Series, ln)
		out = append(out, res)
	}
	return out, nil
}

// ExtMarginals measures the simulated CLR of DAR(1) sources that share the
// correlation structure (ρ = 0.9) and the first two moments but differ in
// marginal distribution: Gaussian, Gamma and negative binomial. The paper
// argues (§6.1) its conclusions survive heavier-tailed marginals once the
// operating point is adjusted; this experiment quantifies how much the
// marginal alone moves the loss curve.
func ExtMarginals(cfg SimConfig) (*Result, error) {
	defer stage("extmarg")()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type entry struct {
		label string
		marg  dar.Marginal
	}
	entries := []entry{
		{"gaussian", dar.GaussianMarginal(models.Mean, models.Variance)},
		{"gamma", dar.GammaMarginal(models.Mean, models.Variance)},
		{"negbinomial", dar.NegativeBinomialMarginal(models.Mean, models.Variance)},
	}
	res := &Result{
		ID:     "extmarg",
		Title:  "Simulated CLR by marginal at matched moments and ACF (DAR(1) ρ=0.9, c=538, N=30)",
		XLabel: "buffer msec", YLabel: "CLR",
	}
	for _, e := range entries {
		p, err := dar.NewDAR1(0.9, e.marg)
		if err != nil {
			return nil, err
		}
		p.SetName(e.label)
		s, err := clrSeries(p, BopC, BopN, SimBufferGridMsec, cfg)
		if err != nil {
			return nil, fmt.Errorf("marginal %s: %w", e.label, err)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
