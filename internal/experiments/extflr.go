package experiments

import (
	"fmt"

	"repro/internal/cellsim"
	"repro/internal/models"
)

// ExtFLR measures the cell-level multiplexer across buffer sizes,
// reporting both the cell loss ratio and the AAL5 frame damage ratio for
// Z^0.975 at N = 10 sources and 97% load. The FLR/CLR amplification is
// the QOS quantity a video decoder actually experiences (one lost cell
// fails the whole CPCS-PDU's CRC-32); the paper's CLR targets implicitly
// assume this amplification is bounded by loss clustering, which the
// experiment verifies.
func ExtFLR(cfg SimConfig) (*Result, error) {
	defer stage("extflr")()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	z, err := models.NewZ(0.975)
	if err != nil {
		return nil, err
	}
	const (
		n     = 10
		slots = 5150 // cells/frame through the link (97% load at μ = 500)
	)
	res := &Result{
		ID:     "extflr",
		Title:  "Cell-level CLR vs AAL5 frame damage (Z^0.975, N=10, 97% load)",
		XLabel: "buffer cells (total)", YLabel: "ratio",
	}
	clr := Series{Label: "CLR"}
	flr := Series{Label: "FLR"}
	amp := Series{Label: "FLR/CLR"}
	for _, buf := range []int{50, 100, 200, 400, 800} {
		r, err := cellsim.RunFrameLoss(cellsim.Config{
			Model: z, N: n, SlotsPerFrame: slots,
			BufferCells: buf, Frames: cfg.Frames,
			Warmup: cfg.Frames / 20, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("extflr at %d cells: %w", buf, err)
		}
		x := float64(buf)
		clr.X = append(clr.X, x)
		clr.Y = append(clr.Y, r.CLR)
		flr.X = append(flr.X, x)
		flr.Y = append(flr.Y, r.FLR)
		amp.X = append(amp.X, x)
		if r.CLR > 0 {
			amp.Y = append(amp.Y, r.FLR/r.CLR)
		} else {
			amp.Y = append(amp.Y, 0)
		}
	}
	res.Series = append(res.Series, clr, flr, amp)
	return res, nil
}
