package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/models"
)

// tinySim keeps simulation-based tests fast; statistical assertions on
// tinySim runs are structural only (series shapes, orderings guaranteed by
// coupling) — point-value accuracy is tested separately on cheap models.
var tinySim = SimConfig{Reps: 2, Frames: 1500, Seed: 7}

func TestRenderAndCSV(t *testing.T) {
	r := &Result{
		ID: "x", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "s2", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	out := r.Render()
	for _, want := range []string{"demo", "s1", "s2", "10", "40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "x,s1,s2" {
		t.Fatalf("csv header %q", lines[0])
	}
	if lines[1] != "1,10,30" {
		t.Fatalf("csv row %q", lines[1])
	}
}

func TestRenderRaggedSeries(t *testing.T) {
	r := &Result{
		ID: "x", XLabel: "x",
		Series: []Series{
			{Label: "long", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
			{Label: "short", X: []float64{1}, Y: []float64{9}},
		},
	}
	if !strings.Contains(r.Render(), "-") {
		t.Fatal("missing placeholder for ragged series")
	}
	if !strings.Contains(r.CSV(), ",\n") && !strings.HasSuffix(r.CSV(), ",") {
		t.Log(r.CSV())
	}
}

func TestSimConfigValidate(t *testing.T) {
	if err := DefaultSim.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (SimConfig{Reps: 0, Frames: 10}).Validate(); err == nil {
		t.Error("reps 0 should error")
	}
	if err := (SimConfig{Reps: 1, Frames: 0}).Validate(); err == nil {
		t.Error("frames 0 should error")
	}
}

func TestMsecConversion(t *testing.T) {
	// 20 msec at c = 538 cells/frame with Ts = 40 msec: half a frame's
	// service = 269 cells per source.
	if got := MsecToPerSourceCells(20, 538); math.Abs(got-269) > 1e-9 {
		t.Fatalf("got %v, want 269", got)
	}
	if got := MsecToPerSourceCells(0, 538); got != 0 {
		t.Fatalf("zero delay should be zero cells, got %v", got)
	}
}

func TestTable1Driver(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 || len(tab.Fits) != 6 {
		t.Fatalf("unexpected table shape: %d rows, %d fits", len(tab.Rows), len(tab.Fits))
	}
}

func TestFig1(t *testing.T) {
	rs, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d panels, want 2", len(rs))
	}
	if len(rs[0].Series) != 3 || len(rs[1].Series) != 4 {
		t.Fatalf("series counts %d/%d, want 3/4", len(rs[0].Series), len(rs[1].Series))
	}
	for _, r := range rs {
		for _, s := range r.Series {
			for i, y := range s.Y {
				if math.IsNaN(y) || y <= 0 || y >= 1 {
					t.Fatalf("%s %s: ACF[%d] = %v out of (0,1)", r.ID, s.Label, i, y)
				}
			}
		}
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2(300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Y) != 300 {
			t.Fatalf("%s: %d frames, want 300", s.Label, len(s.Y))
		}
		// Aggregate of 10 sources with mean 500 each.
		var sum float64
		for _, y := range s.Y {
			sum += y
		}
		if mean := sum / 300; mean < 3500 || mean > 6500 {
			t.Fatalf("%s: aggregate mean %v implausible", s.Label, mean)
		}
	}
	if _, err := Fig2(0, 1); err == nil {
		t.Fatal("frames = 0 should error")
	}
}

func TestFig3PanelsAndFitProperty(t *testing.T) {
	rs, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d panels, want 4", len(rs))
	}
	// Panel (c)/(d): each DAR(p) series matches the Z series at lag 1.
	for _, panel := range rs[2:] {
		z := panel.Series[0]
		for _, s := range panel.Series[1:] {
			if math.Abs(s.Y[0]-z.Y[0]) > 1e-9 {
				t.Fatalf("%s %s: lag-1 %v != target %v", panel.ID, s.Label, s.Y[0], z.Y[0])
			}
		}
	}
	// Panel (b): Z and L tails converge by lag 1000 (within a factor 2).
	zb := rs[1]
	last := len(zb.Series[0].Y) - 1
	zTail := zb.Series[2].Y[last] // Z^0.975
	lTail := zb.Series[len(zb.Series)-1].Y[last]
	if ratio := lTail / zTail; ratio < 0.5 || ratio > 2 {
		t.Fatalf("L/Z tail ratio %v at lag 1000", ratio)
	}
}

func TestFig4Shapes(t *testing.T) {
	rs, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d panels, want 2", len(rs))
	}
	for _, r := range rs {
		for _, s := range r.Series {
			if len(s.X) != len(BufferGridMsec) {
				t.Fatalf("%s %s: %d points", r.ID, s.Label, len(s.X))
			}
			// m*_0 = 1 and non-decreasing.
			if s.Y[0] != 1 {
				t.Fatalf("%s %s: m*_0 = %v, want 1", r.ID, s.Label, s.Y[0])
			}
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1] {
					t.Fatalf("%s %s: CTS decreased at %v msec", r.ID, s.Label, s.X[i])
				}
			}
		}
	}
	// The paper's contrast is at small buffers: V^v values "much the same
	// for small buffer" while Z^a differs "as many as 15 even at B = 2
	// msec" (§5.3). At large buffers V^v legitimately spreads too — its
	// Hurst parameter (0.95) exceeds Z's (0.9), so its CTS slope is
	// steeper — which is why the comparison is pinned to 2 msec.
	spreadAt := func(r *Result, i int) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range r.Series {
			lo, hi = math.Min(lo, s.Y[i]), math.Max(hi, s.Y[i])
		}
		return hi - lo
	}
	idx := indexOf(BufferGridMsec, 2)
	vSpread, zSpread := spreadAt(rs[0], idx), spreadAt(rs[1], idx)
	if vSpread > 4 {
		t.Fatalf("V^v CTS spread %v at 2 msec; paper has them nearly equal", vSpread)
	}
	if zSpread < 10 {
		t.Fatalf("Z^a CTS spread %v at 2 msec; paper reports ≈15", zSpread)
	}
}

func TestFig5Ordering(t *testing.T) {
	rs, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Panel (b): at 20 msec, BOP increases with a.
	zb := rs[1]
	idx := indexOf(BufferGridMsec, 20)
	prev := 0.0
	for _, s := range zb.Series {
		if s.Y[idx] <= prev {
			t.Fatalf("Z panel not ordered by a at 20 msec: %s %v after %v", s.Label, s.Y[idx], prev)
		}
		prev = s.Y[idx]
	}
	// The paper's point is relative: the V^v curves (identical short-term
	// correlations) stay close together while the Z^a curves (identical
	// long-term correlations) fan out over many decades. Compare the
	// log-spreads at 20 msec.
	logSpread := func(r *Result) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range r.Series {
			l := math.Log10(s.Y[idx])
			lo, hi = math.Min(lo, l), math.Max(hi, l)
		}
		return hi - lo
	}
	vSpread, zSpread := logSpread(rs[0]), logSpread(rs[1])
	if vSpread > 0.4*zSpread {
		t.Fatalf("V^v log-spread %v not ≪ Z^a log-spread %v at 20 msec", vSpread, zSpread)
	}
	// All curves decreasing in buffer.
	for _, r := range rs {
		for _, s := range r.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] > s.Y[i-1] {
					t.Fatalf("%s %s: BOP increased at %v msec", r.ID, s.Label, s.X[i])
				}
			}
		}
	}
}

func indexOf(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func TestFig6DARBeatsLInPracticalRange(t *testing.T) {
	rs, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	a := rs[0] // Z^0.975, DAR(1..3), L
	if len(a.Series) != 5 {
		t.Fatalf("panel (a) has %d series, want 5", len(a.Series))
	}
	// At small buffers, where short-term correlations dominate, DAR(1)
	// must predict Z's loss better than the tail-only model L. (The exact
	// DAR(1)/L crossover location is calibration-sensitive; the paper puts
	// it beyond the practical range, ours sits somewhat earlier — see
	// EXPERIMENTS.md — but the small-buffer ordering is structural.)
	idx := indexOf(BufferGridMsec, 6)
	z := math.Log(a.Series[0].Y[idx])
	dar1 := math.Log(a.Series[1].Y[idx])
	l := math.Log(a.Series[4].Y[idx])
	if math.Abs(dar1-z) >= math.Abs(l-z) {
		t.Fatalf("at 6 msec DAR(1) (log %v) should beat L (log %v) against Z (log %v)",
			dar1, l, z)
	}
	// DAR(p) approaches Z as p grows (log distance shrinks), across the
	// practical range.
	idx20 := indexOf(BufferGridMsec, 20)
	z20 := math.Log(a.Series[0].Y[idx20])
	d1 := math.Abs(math.Log(a.Series[1].Y[idx20]) - z20)
	d3 := math.Abs(math.Log(a.Series[3].Y[idx20]) - z20)
	if d3 > d1 {
		t.Fatalf("DAR(3) (dist %v) should be closer to Z than DAR(1) (dist %v)", d3, d1)
	}
}

func TestFig7LWinsEventually(t *testing.T) {
	rs, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	a := rs[0]
	idx := len(WideBufferGridMsec) - 1 // 1000 msec
	z := math.Log(a.Series[0].Y[idx])
	dar1 := math.Log(a.Series[1].Y[idx])
	l := math.Log(a.Series[4].Y[idx])
	if math.Abs(l-z) >= math.Abs(dar1-z) {
		t.Fatalf("at 1000 msec L (log %v) should beat DAR(1) (log %v) against Z (log %v)",
			l, dar1, z)
	}
}

func TestFig8Structure(t *testing.T) {
	rs, err := Fig8(tinySim)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || len(rs[0].Series) != 3 || len(rs[1].Series) != 4 {
		t.Fatalf("unexpected panel shapes")
	}
	for _, r := range rs {
		for _, s := range r.Series {
			if len(s.X) != len(SimBufferGridMsec) {
				t.Fatalf("%s %s: %d points, want %d", r.ID, s.Label, len(s.X), len(SimBufferGridMsec))
			}
			// CLR non-increasing in buffer (guaranteed path-wise by the
			// coupled sweep) and never negative.
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] > s.Y[i-1] {
					t.Fatalf("%s %s: CLR rose with buffer at %v msec", r.ID, s.Label, s.X[i])
				}
				if s.Y[i] < 0 {
					t.Fatalf("%s %s: negative CLR", r.ID, s.Label)
				}
			}
		}
	}
}

func TestZeroBufferCLRAccuracy(t *testing.T) {
	// Point-value check of the simulation pipeline on a cheap generator:
	// a DAR(1) fit to Z^0.975 shares the Gaussian marginal, so its
	// zero-buffer CLR must match the analytic fluid value. DAR paths are
	// ~100× cheaper than FBNDP paths, affording real statistics.
	z, err := models.NewZ(0.975)
	if err != nil {
		t.Fatal(err)
	}
	d, err := models.FitS(z, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := clrSeries(d, BopC, BopN, []float64{0}, SimConfig{Reps: 4, Frames: 40000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := ZeroBufferCheck(BopC, BopN)
	if ratio := s.Y[0] / want; ratio < 0.5 || ratio > 2 {
		t.Fatalf("zero-buffer CLR %v vs analytic %v", s.Y[0], want)
	}
}

func TestFig9Structure(t *testing.T) {
	rs, err := Fig9(tinySim)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d panels", len(rs))
	}
	if len(rs[0].Series) != 5 { // Z, DAR(1..3), L
		t.Fatalf("panel (a) series %d, want 5", len(rs[0].Series))
	}
	if len(rs[1].Series) != 4 { // Z, DAR(1..3)
		t.Fatalf("panel (b) series %d, want 4", len(rs[1].Series))
	}
}

func TestFig10Structure(t *testing.T) {
	r, err := Fig10(tinySim)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(r.Series))
	}
	br, ln, sim := r.Series[0], r.Series[1], r.Series[2]
	for i := range br.Y {
		if br.Y[i] > ln.Y[i] {
			t.Fatalf("B-R above large-N at %v msec", br.X[i])
		}
	}
	if sim.Y[0] <= 0 {
		t.Fatal("simulated zero-buffer CLR should be positive")
	}
	// Both asymptotics upper-bound the simulated CLR at moderate buffers
	// (the paper reports ≈2 orders of magnitude of conservatism).
	idx := 4
	if ln.Y[idx] < sim.Y[idx] {
		t.Fatalf("large-N %v below simulation %v", ln.Y[idx], sim.Y[idx])
	}
}

func TestZeroBufferCheckValue(t *testing.T) {
	// The paper: "all the CLR curves begin around the same value at zero
	// buffer (slightly larger than 1e-5)".
	got := ZeroBufferCheck(BopC, BopN)
	if got < 5e-6 || got > 5e-5 {
		t.Fatalf("zero-buffer CLR %v outside the paper's ballpark", got)
	}
}

func TestSimRejectsBadConfig(t *testing.T) {
	if _, err := Fig8(SimConfig{}); err == nil {
		t.Fatal("invalid sim config should error")
	}
}
