package dar

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/traffic"
)

func TestGammaMarginalMoments(t *testing.T) {
	p, err := NewDAR1(0.5, GammaMarginal(500, 5000))
	if err != nil {
		t.Fatal(err)
	}
	xs := traffic.Generate(p.NewGenerator(9), 300000)
	if m := stats.Mean(xs); math.Abs(m-500) > 4 {
		t.Fatalf("mean %v, want ≈500", m)
	}
	if v := stats.Variance(xs); math.Abs(v-5000)/5000 > 0.08 {
		t.Fatalf("variance %v, want ≈5000", v)
	}
	for _, x := range xs[:10000] {
		if x < 0 {
			t.Fatal("gamma frames must be non-negative")
		}
	}
}

func TestGammaMarginalHeavierTailThanGaussian(t *testing.T) {
	pg, err := NewDAR1(0, GammaMarginal(500, 5000))
	if err != nil {
		t.Fatal(err)
	}
	pn, err := NewDAR1(0, GaussianMarginal(500, 5000))
	if err != nil {
		t.Fatal(err)
	}
	count := func(p *Process, seed int64) int {
		xs := traffic.Generate(p.NewGenerator(seed), 200000)
		n := 0
		for _, x := range xs {
			if x > 500+3.5*math.Sqrt(5000) {
				n++
			}
		}
		return n
	}
	if g, n := count(pg, 1), count(pn, 2); g <= n {
		t.Fatalf("gamma tail count %d should exceed gaussian %d", g, n)
	}
}

func TestNegativeBinomialMarginal(t *testing.T) {
	p, err := NewDAR1(0.9, NegativeBinomialMarginal(500, 5000))
	if err != nil {
		t.Fatal(err)
	}
	xs := traffic.Generate(p.NewGenerator(3), 300000)
	if m := stats.Mean(xs); math.Abs(m-500) > 5 {
		t.Fatalf("mean %v, want ≈500", m)
	}
	if v := stats.Variance(xs); math.Abs(v-5000)/5000 > 0.12 {
		t.Fatalf("variance %v, want ≈5000", v)
	}
	// Discrete support: every frame is a non-negative integer.
	for _, x := range xs[:20000] {
		if x < 0 || x != math.Trunc(x) {
			t.Fatalf("frame %v not a non-negative integer", x)
		}
	}
}

func TestMarginalsPreserveACF(t *testing.T) {
	// The DAR correlation structure is marginal-independent: ACF stays
	// ρ^k for every marginal (the design property the paper leans on).
	for _, marg := range []Marginal{
		GammaMarginal(500, 5000),
		NegativeBinomialMarginal(500, 5000),
	} {
		p, err := NewDAR1(0.8, marg)
		if err != nil {
			t.Fatal(err)
		}
		xs := traffic.Generate(p.NewGenerator(5), 200000)
		acf := stats.ACF(xs, 3)
		for k := 1; k <= 3; k++ {
			if want := math.Pow(0.8, float64(k)); math.Abs(acf[k]-want) > 0.03 {
				t.Fatalf("ACF(%d) = %v, want ≈%v", k, acf[k], want)
			}
		}
	}
}
