package dar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/traffic"
)

func gauss() Marginal { return GaussianMarginal(500, 5000) }

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		rho  float64
		a    []float64
	}{
		{"negative rho", -0.1, []float64{1}},
		{"rho one", 1, []float64{1}},
		{"empty a", 0.5, nil},
		{"negative a", 0.5, []float64{1.5, -0.5}},
		{"a not normalised", 0.5, []float64{0.5, 0.2}},
	}
	for _, c := range cases {
		if _, err := New(c.rho, c.a, gauss()); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := New(0.5, []float64{1}, Marginal{Mean: 0, Variance: 1}); err == nil {
		t.Error("nil sampler: expected error")
	}
}

func TestDAR1ACFIsGeometric(t *testing.T) {
	p, err := NewDAR1(0.8, gauss())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 20; k++ {
		want := math.Pow(0.8, float64(k))
		if got := p.ACF(k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("ACF(%d) = %v, want %v", k, got, want)
		}
	}
	if got := p.ACF(-3); math.Abs(got-p.ACF(3)) > 1e-15 {
		t.Fatalf("ACF not symmetric: %v vs %v", got, p.ACF(3))
	}
}

func TestDARpACFSatisfiesYuleWalker(t *testing.T) {
	p, err := New(0.87, []float64{0.7, 0.3}, gauss())
	if err != nil {
		t.Fatal(err)
	}
	// r(k) = Σ ρ a_i r(|k-i|) must hold for every k ≥ 1.
	for k := 1; k <= 50; k++ {
		var want float64
		for i := 1; i <= 2; i++ {
			lag := k - i
			if lag < 0 {
				lag = -lag
			}
			want += 0.87 * []float64{0.7, 0.3}[i-1] * p.ACF(lag)
		}
		if got := p.ACF(k); math.Abs(got-want) > 1e-10 {
			t.Fatalf("Yule-Walker violated at lag %d: %v vs %v", k, got, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	p, err := New(0.72, []float64{0.84, 0.16}, gauss())
	if err != nil {
		t.Fatal(err)
	}
	if p.Order() != 2 || p.Rho() != 0.72 {
		t.Fatalf("order/rho wrong: %d %v", p.Order(), p.Rho())
	}
	a := p.SelectionProbs()
	a[0] = 99 // must be a copy
	if p.SelectionProbs()[0] == 99 {
		t.Fatal("SelectionProbs returned internal slice")
	}
	if p.Name() != "DAR(2)" {
		t.Fatalf("name = %q", p.Name())
	}
	p.SetName("S")
	if p.Name() != "S" {
		t.Fatalf("renamed = %q", p.Name())
	}
	if p.Mean() != 500 || p.Variance() != 5000 {
		t.Fatalf("moments = %v %v", p.Mean(), p.Variance())
	}
}

func TestGeneratorMarginalMoments(t *testing.T) {
	p, err := NewDAR1(0.9, gauss())
	if err != nil {
		t.Fatal(err)
	}
	xs := traffic.Generate(p.NewGenerator(3), 400000)
	m, v := stats.Mean(xs), stats.Variance(xs)
	// High rho inflates estimator variance; tolerances sized accordingly.
	if math.Abs(m-500) > 3 {
		t.Fatalf("mean %v, want ≈500", m)
	}
	if math.Abs(v-5000)/5000 > 0.1 {
		t.Fatalf("variance %v, want ≈5000", v)
	}
}

func TestGeneratorEmpiricalACFMatchesAnalytic(t *testing.T) {
	p, err := New(0.87, []float64{0.7, 0.3}, gauss())
	if err != nil {
		t.Fatal(err)
	}
	xs := traffic.Generate(p.NewGenerator(11), 300000)
	acf := stats.ACF(xs, 10)
	for k := 1; k <= 10; k++ {
		if math.Abs(acf[k]-p.ACF(k)) > 0.03 {
			t.Fatalf("empirical ACF(%d) = %v, analytic %v", k, acf[k], p.ACF(k))
		}
	}
}

func TestGeneratorReproducible(t *testing.T) {
	p, err := NewDAR1(0.5, gauss())
	if err != nil {
		t.Fatal(err)
	}
	a := traffic.Generate(p.NewGenerator(42), 100)
	b := traffic.Generate(p.NewGenerator(42), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d", i)
		}
	}
	c := traffic.Generate(p.NewGenerator(43), 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical paths")
	}
}

func TestGeneratorRepeatsComeFromHistory(t *testing.T) {
	// With rho = 1 ... not allowed; use rho close to 1 and a discrete
	// marginal so repeats are detectable exactly.
	vals := []float64{1, 2, 3, 4, 5}
	marg := Marginal{
		Mean:     3,
		Variance: 2,
		Sample: func(r *rand.Rand) float64 {
			return vals[r.Intn(len(vals))]
		},
	}
	p, err := New(0.95, []float64{0.5, 0.5}, marg)
	if err != nil {
		t.Fatal(err)
	}
	g := p.NewGenerator(5)
	prev := []float64{g.NextFrame(), g.NextFrame()}
	for i := 0; i < 10000; i++ {
		x := g.NextFrame()
		ok := x == prev[0] || x == prev[1] || x == 1 || x == 2 || x == 3 || x == 4 || x == 5
		if !ok {
			t.Fatalf("value %v is neither history nor marginal support", x)
		}
		prev[0], prev[1] = prev[1], x
	}
}

func TestFitMatchesTargetsExactly(t *testing.T) {
	// Fit to targets that are known to be DAR-feasible, then the fitted
	// model's analytic ACF must reproduce them to solver precision.
	targets := [][]float64{
		{0.82},
		{0.821, 0.759},
		{0.821, 0.759, 0.724},
	}
	for _, tg := range targets {
		p, err := Fit(tg, gauss())
		if err != nil {
			t.Fatalf("fit %v: %v", tg, err)
		}
		for k, want := range tg {
			if got := p.ACF(k + 1); math.Abs(got-want) > 1e-9 {
				t.Fatalf("fit %v: ACF(%d) = %v, want %v", tg, k+1, got, want)
			}
		}
	}
}

func TestFitReproducesPaperTable1DAR2(t *testing.T) {
	// Paper Table 1: the DAR(2) matched to Z^0.975 has ρ ≈ 0.87 with
	// a ≈ (0.70, 0.30); matched to Z^0.7, ρ ≈ 0.72 with a ≈ (0.84, 0.16).
	// Targets computed from the Z^a analytic ACF (α = 0.8, Ts/T0 = 40/2.57).
	z := func(a float64, k int) float64 {
		const alpha = 0.8
		ratio := math.Pow(40.0/2.57, alpha)
		fk := float64(k)
		rx := ratio / (1 + ratio) * 0.5 *
			(math.Pow(fk+1, alpha+1) - 2*math.Pow(fk, alpha+1) + math.Pow(fk-1, alpha+1))
		return 0.5*rx + 0.5*math.Pow(a, fk)
	}
	cases := []struct {
		a       float64
		wantRho float64
		wantA   []float64
	}{
		{0.975, 0.87, []float64{0.70, 0.30}},
		{0.7, 0.72, []float64{0.84, 0.16}},
	}
	for _, c := range cases {
		p, err := Fit([]float64{z(c.a, 1), z(c.a, 2)}, gauss())
		if err != nil {
			t.Fatalf("fit Z^%v: %v", c.a, err)
		}
		if math.Abs(p.Rho()-c.wantRho) > 0.01 {
			t.Errorf("Z^%v: rho = %v, want ≈%v", c.a, p.Rho(), c.wantRho)
		}
		a := p.SelectionProbs()
		for i := range c.wantA {
			if math.Abs(a[i]-c.wantA[i]) > 0.02 {
				t.Errorf("Z^%v: a[%d] = %v, want ≈%v", c.a, i, a[i], c.wantA[i])
			}
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, gauss()); err == nil {
		t.Error("empty targets: expected error")
	}
	if _, err := Fit([]float64{1.2}, gauss()); err == nil {
		t.Error("correlation > 1: expected error")
	}
	if _, err := Fit([]float64{-0.5}, gauss()); err == nil {
		t.Error("negative rho fit: expected error")
	}
}

// Property: any DAR(1)-feasible single target round-trips through Fit.
func TestFitDAR1RoundTripProperty(t *testing.T) {
	f := func(raw float64) bool {
		rho := math.Abs(math.Mod(raw, 0.98))
		if rho < 1e-6 {
			return true
		}
		p, err := Fit([]float64{rho}, gauss())
		if err != nil {
			return false
		}
		return math.Abs(p.Rho()-rho) < 1e-12 && p.Order() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: fitted DAR(p) analytic ACF interpolates the targets for
// geometric target sequences (always feasible).
func TestFitGeometricTargetsProperty(t *testing.T) {
	f := func(raw float64, pRaw uint8) bool {
		rho := 0.1 + 0.85*math.Abs(math.Mod(raw, 1))
		p := 1 + int(pRaw%3)
		tg := make([]float64, p)
		for k := range tg {
			tg[k] = math.Pow(rho, float64(k+1))
		}
		proc, err := Fit(tg, gauss())
		if err != nil {
			return false
		}
		for k, want := range tg {
			if math.Abs(proc.ACF(k+1)-want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGeneratorDAR3(b *testing.B) {
	p, err := New(0.89, []float64{0.63, 0.18, 0.19}, gauss())
	if err != nil {
		b.Fatal(err)
	}
	g := p.NewGenerator(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextFrame()
	}
}

func BenchmarkACFLag1000(b *testing.B) {
	p, _ := New(0.87, []float64{0.7, 0.3}, gauss())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.ACF(1000)
	}
}
