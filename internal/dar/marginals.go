package dar

import (
	"math/rand"

	"repro/internal/randx"
)

// GammaMarginal returns a Gamma marginal with the given mean and variance
// (shape = mean²/variance, scale = variance/mean). Gamma frame sizes have
// a heavier right tail than Gaussian at matched moments, one of the
// alternative marginals the paper's §6.1 discussion anticipates.
func GammaMarginal(mean, variance float64) Marginal {
	shape := mean * mean / variance
	scale := variance / mean
	return Marginal{
		Mean:     mean,
		Variance: variance,
		Sample: func(r *rand.Rand) float64 {
			return randx.Gamma(r, shape, scale)
		},
	}
}

// NegativeBinomialMarginal returns the over-dispersed discrete marginal
// (variance > mean required) that Heyman and Lakshman used for VBR
// videoconference frame sizes — the distribution under which they reached
// the same conclusion as this paper (§6.1).
func NegativeBinomialMarginal(mean, variance float64) Marginal {
	return Marginal{
		Mean:     mean,
		Variance: variance,
		Sample: func(r *rand.Rand) float64 {
			return float64(randx.NegativeBinomial(r, mean, variance))
		},
	}
}
