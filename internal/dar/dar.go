// Package dar implements the discrete autoregressive process of order p,
// DAR(p), of Jacobs and Lewis (1978), exactly as used in the paper: a p-th
// order Markov chain whose stationary marginal distribution is chosen freely
// and whose autocorrelation function satisfies the Yule-Walker recursion of
// an AR(p) process.
//
// The process is
//
//	S_n = V_n · S_{n−A_n} + (1−V_n) · ε_n
//
// where V_n is Bernoulli(ρ), A_n picks lag i with probability a_i
// (Σ a_i = 1), and ε_n are i.i.d. draws from the marginal π. With
// probability ρ the process repeats one of its last p values; otherwise it
// innovates. Crucially the marginal of S_n is exactly π regardless of ρ and
// a, which is what lets the paper hold first-order statistics fixed while
// sweeping correlation structure.
//
// The package also provides the fitting procedure used for the paper's
// model S: given the first p autocorrelations of a target process, solve
// the (linear) Yule-Walker system for ρ and a_1..a_p so the DAR(p) matches
// them exactly (paper §3.1 and Table 1).
package dar

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/randx"
	"repro/internal/solver"
	"repro/internal/traffic"
)

// Marginal describes the stationary marginal distribution π of a DAR
// process: its first two moments plus a sampler.
type Marginal struct {
	Mean     float64
	Variance float64
	// Sample draws one value from π using r.
	Sample func(r *rand.Rand) float64
}

// GaussianMarginal returns a Gaussian marginal with the given mean and
// variance, the distribution used for every model in the paper.
func GaussianMarginal(mean, variance float64) Marginal {
	sd := math.Sqrt(variance)
	return Marginal{
		Mean:     mean,
		Variance: variance,
		Sample: func(r *rand.Rand) float64 {
			return mean + sd*r.NormFloat64()
		},
	}
}

// Process is a DAR(p) process with a fixed parameterisation. Its ACF
// evaluation is memoised and safe for concurrent use; generators returned
// by NewGenerator are not safe for concurrent use (one per goroutine).
type Process struct {
	rho      float64
	a        []float64 // selection probabilities, length p, sum 1
	cumA     []float64 // cumulative sums of a for inverse sampling
	marginal Marginal
	name     string

	mu     sync.Mutex
	acfMem []float64 // memoised r(0), r(1), ... extended on demand
}

// New constructs a DAR(p) process. rho must lie in [0, 1); a must be a
// probability vector (non-negative, summing to 1 within tolerance) of
// length p ≥ 1.
func New(rho float64, a []float64, marginal Marginal) (*Process, error) {
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("dar: rho %v outside [0, 1)", rho)
	}
	if len(a) == 0 {
		return nil, errors.New("dar: empty selection vector")
	}
	var sum float64
	for i, ai := range a {
		if ai < -1e-12 {
			return nil, fmt.Errorf("dar: negative selection probability a[%d] = %v", i+1, ai)
		}
		sum += ai
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("dar: selection probabilities sum to %v, want 1", sum)
	}
	if marginal.Sample == nil {
		return nil, errors.New("dar: marginal has no sampler")
	}
	p := &Process{
		rho:      rho,
		a:        append([]float64(nil), a...),
		marginal: marginal,
		name:     fmt.Sprintf("DAR(%d)", len(a)),
	}
	p.cumA = make([]float64, len(a))
	var c float64
	for i, ai := range p.a {
		c += ai
		p.cumA[i] = c
	}
	p.cumA[len(p.cumA)-1] = 1 // guard against rounding in inverse sampling
	return p, nil
}

// NewDAR1 constructs the first-order special case whose lag-k
// autocorrelation is exactly rho^k.
func NewDAR1(rho float64, marginal Marginal) (*Process, error) {
	return New(rho, []float64{1}, marginal)
}

// Order returns p.
func (p *Process) Order() int { return len(p.a) }

// Rho returns the retention probability ρ.
func (p *Process) Rho() float64 { return p.rho }

// SelectionProbs returns a copy of a_1..a_p.
func (p *Process) SelectionProbs() []float64 { return append([]float64(nil), p.a...) }

// Name implements traffic.Model.
func (p *Process) Name() string { return p.name }

// SetName overrides the display name (e.g. "DAR(2) fit to Z^0.975").
func (p *Process) SetName(name string) { p.name = name }

// Mean implements traffic.Model.
func (p *Process) Mean() float64 { return p.marginal.Mean }

// Variance implements traffic.Model.
func (p *Process) Variance() float64 { return p.marginal.Variance }

// ACF implements traffic.Model. The autocorrelations satisfy
// r(k) = Σ_{i=1..p} ρ a_i r(|k−i|) for k ≥ 1 with r(0) = 1; the first p
// values follow from solving that linear system, later values from the
// recursion. All computed values are memoised, so scanning lags 1..K (as
// the critical-time-scale search does) costs O(K) total.
func (p *Process) ACF(k int) float64 {
	if k < 0 {
		k = -k
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.acfMem == nil {
		p.acfMem = p.solveACFBase()
	}
	for lag := len(p.acfMem); lag <= k; lag++ {
		var r float64
		for i, ai := range p.a {
			r += p.rho * ai * p.acfMem[lag-1-i]
		}
		p.acfMem = append(p.acfMem, r)
	}
	return p.acfMem[k]
}

// solveACFBase solves the order-p Yule-Walker system for r(0..p).
func (p *Process) solveACFBase() []float64 {
	order := len(p.a)
	base := make([]float64, order+1)
	base[0] = 1
	if order == 1 {
		base[1] = p.rho * p.a[0]
		return base
	}
	// Unknowns x_j = r(j), j = 1..p. Equation for k = 1..p:
	//   r(k) − Σ_i ρ a_i r(|k−i|) = 0, with r(0) = 1 moved to the RHS.
	mat := make([][]float64, order)
	rhs := make([]float64, order)
	for k := 1; k <= order; k++ {
		row := make([]float64, order)
		row[k-1] = 1
		for i := 1; i <= order; i++ {
			c := p.rho * p.a[i-1]
			lag := k - i
			if lag < 0 {
				lag = -lag
			}
			if lag == 0 {
				rhs[k-1] += c
			} else {
				row[lag-1] -= c
			}
		}
		mat[k-1] = row
	}
	x, err := solver.Solve(mat, rhs)
	if err != nil {
		// The Yule-Walker matrix I−C is strictly diagonally dominant for
		// ρ < 1 and can only be singular through pathological rounding;
		// fall back to the DAR(1)-style geometric envelope.
		for k := 1; k <= order; k++ {
			base[k] = math.Pow(p.rho, float64(k))
		}
		return base
	}
	copy(base[1:], x)
	return base
}

// generator is the sample-path state of a DAR(p) source.
type generator struct {
	p    *Process
	rng  *rand.Rand
	hist []float64 // last p values, most recent at hist[0]
}

// NewGenerator implements traffic.Model. The chain starts from p i.i.d.
// draws of the marginal; because the marginal is exact for every n, no
// warm-up is required for first-order statistics, and second-order
// transients decay geometrically.
func (p *Process) NewGenerator(seed int64) traffic.Generator {
	rng := randx.NewRand(seed)
	hist := make([]float64, len(p.a))
	for i := range hist {
		hist[i] = p.marginal.Sample(rng)
	}
	return &generator{p: p, rng: rng, hist: hist}
}

// frame advances the chain one step.
func (g *generator) frame() float64 {
	var next float64
	if g.rng.Float64() < g.p.rho {
		// Repeat the value from lag A_n, where P(A_n = i) = a_i.
		u := g.rng.Float64()
		idx := len(g.p.cumA) - 1
		for i, c := range g.p.cumA {
			if u <= c {
				idx = i
				break
			}
		}
		next = g.hist[idx]
	} else {
		next = g.p.marginal.Sample(g.rng)
	}
	// Shift history: hist[0] is S_{n-1} for the next step.
	copy(g.hist[1:], g.hist)
	g.hist[0] = next
	return next
}

// NextFrame implements traffic.Generator.
func (g *generator) NextFrame() float64 { return g.frame() }

// Fill implements traffic.BlockGenerator with the same draw order as
// repeated NextFrame calls (bit-identical paths), amortising the two
// interface dispatches per frame over a whole chunk.
func (g *generator) Fill(dst []float64) {
	for i := range dst {
		dst[i] = g.frame()
	}
}

// Fit solves for the DAR(p) parameters (ρ, a) that exactly match the target
// autocorrelations target[0..p-1] = r(1)..r(p). This is the construction of
// the paper's model S (§3.1, Table 1): the Yule-Walker relations are linear
// in c_i = ρ a_i, so one dense solve suffices.
//
// Fit returns an error when the target correlations are not achievable by a
// DAR(p) (the solved ρ falls outside [0, 1) or some a_i is negative), which
// signals the caller to reduce p or adjust targets.
func Fit(target []float64, marginal Marginal) (*Process, error) {
	p := len(target)
	if p == 0 {
		return nil, errors.New("dar: no target correlations")
	}
	for i, r := range target {
		if r <= -1 || r >= 1 {
			return nil, fmt.Errorf("dar: target correlation r(%d) = %v outside (-1, 1)", i+1, r)
		}
	}
	// System: for k = 1..p, r(k) = Σ_i c_i r(|k−i|) with r(0) = 1.
	r := func(lag int) float64 {
		if lag < 0 {
			lag = -lag
		}
		if lag == 0 {
			return 1
		}
		return target[lag-1]
	}
	mat := make([][]float64, p)
	rhs := make([]float64, p)
	for k := 1; k <= p; k++ {
		row := make([]float64, p)
		for i := 1; i <= p; i++ {
			row[i-1] = r(k - i)
		}
		mat[k-1] = row
		rhs[k-1] = r(k)
	}
	c, err := solver.Solve(mat, rhs)
	if err != nil {
		return nil, fmt.Errorf("dar: Yule-Walker solve failed: %w", err)
	}
	var rho float64
	for _, ci := range c {
		rho += ci
	}
	if rho <= 0 || rho >= 1 {
		return nil, fmt.Errorf("dar: fitted rho %v outside (0, 1)", rho)
	}
	a := make([]float64, p)
	for i, ci := range c {
		a[i] = ci / rho
		if a[i] < -1e-9 {
			return nil, fmt.Errorf("dar: fitted a[%d] = %v negative; targets not DAR(%d)-feasible", i+1, a[i], p)
		}
		if a[i] < 0 {
			a[i] = 0
		}
	}
	proc, err := New(rho, a, marginal)
	if err != nil {
		return nil, err
	}
	return proc, nil
}
