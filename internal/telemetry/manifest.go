package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// ManifestSchemaVersion identifies the JSONL manifest schema. Bump when a
// line shape changes incompatibly; readers reject newer majors.
const ManifestSchemaVersion = 1

// A run manifest is a JSONL file written next to a run's -out artifacts:
// one self-describing JSON object per line, flushed as the run progresses
// so an interrupted run still leaves a valid (truncated) manifest. Line
// order is: exactly one header, then any number of stage and result lines
// interleaved in completion order, then at most one summary.
//
//	{"type":"header", ...}    run identity: tool, args, seed, config, VCS
//	{"type":"stage", ...}     one experiment stage: id, wall seconds, error
//	{"type":"result", ...}    one figure/table result: series with CI bounds
//	{"type":"summary", ...}   wall/CPU totals and the final metric snapshot
type manifestLine struct {
	Type    string          `json:"type"`
	Header  *ManifestHeader `json:"header,omitempty"`
	Stage   *StageRecord    `json:"stage,omitempty"`
	Result  *ResultRecord   `json:"result,omitempty"`
	Summary *RunSummary     `json:"summary,omitempty"`
}

// ManifestHeader identifies a run: what was executed, with which
// configuration, from which source revision.
type ManifestHeader struct {
	SchemaVersion int               `json:"schema_version"`
	Tool          string            `json:"tool"`
	Args          []string          `json:"args,omitempty"`
	Start         string            `json:"start"` // RFC3339Nano
	Seed          int64             `json:"seed"`
	GoVersion     string            `json:"go_version"`
	GitRevision   string            `json:"git_revision"`
	Host          string            `json:"host,omitempty"`
	Config        map[string]string `json:"config,omitempty"`
}

// StageRecord reports one completed experiment stage.
type StageRecord struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	Err         string  `json:"err,omitempty"`
}

// SeriesRecord is one labelled curve of a result, with optional
// replication confidence bounds (Lo/Hi parallel to Y when present) — the
// "CLR ± CI" provenance that a rendered figure alone loses — and optional
// per-point convergence verdicts (Conv parallel to Y) from the diag
// layer, so a manifest records not just what was estimated but whether
// the estimate had statistically converged.
type SeriesRecord struct {
	Label string       `json:"label"`
	X     []float64    `json:"x"`
	Y     []float64    `json:"y"`
	Lo    []float64    `json:"lo,omitempty"`
	Hi    []float64    `json:"hi,omitempty"`
	Conv  []ConvRecord `json:"conv,omitempty"`
}

// ConvRecord is the manifest form of one point's convergence verdict.
// RelCI is the relative 95% CI half-width scaled by the effective sample
// size; −1 encodes "undefined" (fewer than two finite observations, or a
// zero mean with spread) since JSON cannot carry ±Inf.
type ConvRecord struct {
	N         int     `json:"n"`
	NonFinite int     `json:"non_finite,omitempty"`
	RelCI     float64 `json:"rel_ci"`
	ESS       float64 `json:"ess"`
	Converged bool    `json:"converged"`
}

// ResultRecord reports one figure/table panel produced by a stage.
type ResultRecord struct {
	Stage  string         `json:"stage"`
	ID     string         `json:"id"`
	Title  string         `json:"title,omitempty"`
	Series []SeriesRecord `json:"series,omitempty"`
}

// SpanSummary is the manifest form of one span name's aggregated timing
// (the trace layer's "where did the run go" table).
type SpanSummary struct {
	Name         string  `json:"name"`
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// RunSummary closes a manifest with resource totals, the final state of
// the metrics registry, and — when tracing was enabled — the aggregated
// span timing table.
type RunSummary struct {
	WallSeconds float64       `json:"wall_seconds"`
	CPUSeconds  float64       `json:"cpu_seconds"`
	End         string        `json:"end"` // RFC3339Nano
	Metrics     []Snapshot    `json:"metrics,omitempty"`
	Spans       []SpanSummary `json:"spans,omitempty"`
}

// Manifest is the decoded form of a manifest file.
type Manifest struct {
	Header  ManifestHeader
	Stages  []StageRecord
	Results []ResultRecord
	Summary *RunSummary // nil when the run was interrupted before Close
}

// ManifestWriter appends manifest lines to a file, flushing after every
// line so the manifest is valid JSONL at any interruption point.
type ManifestWriter struct {
	f  *os.File
	bw *bufio.Writer
}

// CreateManifest creates (truncating) the manifest at path and writes the
// header line.
func CreateManifest(path string, h ManifestHeader) (*ManifestWriter, error) {
	h.SchemaVersion = ManifestSchemaVersion
	if h.GoVersion == "" {
		h.GoVersion = runtime.Version()
	}
	if h.GitRevision == "" {
		h.GitRevision = GitRevision()
	}
	if h.Host == "" {
		h.Host, _ = os.Hostname()
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: create manifest: %w", err)
	}
	w := &ManifestWriter{f: f, bw: bufio.NewWriter(f)}
	if err := w.write(manifestLine{Type: "header", Header: &h}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *ManifestWriter) write(line manifestLine) error {
	b, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("telemetry: encode manifest line: %w", err)
	}
	if _, err := w.bw.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("telemetry: write manifest: %w", err)
	}
	return w.bw.Flush()
}

// Stage records one completed stage.
func (w *ManifestWriter) Stage(s StageRecord) error {
	return w.write(manifestLine{Type: "stage", Stage: &s})
}

// Result records one produced result.
func (w *ManifestWriter) Result(r ResultRecord) error {
	return w.write(manifestLine{Type: "result", Result: &r})
}

// Close writes the summary line and closes the file.
func (w *ManifestWriter) Close(s RunSummary) error {
	err := w.write(manifestLine{Type: "summary", Summary: &s})
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadManifest decodes a manifest file. A missing summary (interrupted
// run) is not an error; a missing or incompatible header is.
func ReadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open manifest: %w", err)
	}
	defer f.Close()
	var m Manifest
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // result lines can be long
	lineno := 0
	sawHeader := false
	for sc.Scan() {
		lineno++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line manifestLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("telemetry: manifest %s line %d: %w", path, lineno, err)
		}
		switch line.Type {
		case "header":
			if line.Header == nil {
				return nil, fmt.Errorf("telemetry: manifest %s line %d: empty header", path, lineno)
			}
			if line.Header.SchemaVersion > ManifestSchemaVersion {
				return nil, fmt.Errorf("telemetry: manifest %s: schema version %d newer than supported %d",
					path, line.Header.SchemaVersion, ManifestSchemaVersion)
			}
			m.Header = *line.Header
			sawHeader = true
		case "stage":
			if line.Stage != nil {
				m.Stages = append(m.Stages, *line.Stage)
			}
		case "result":
			if line.Result != nil {
				m.Results = append(m.Results, *line.Result)
			}
		case "summary":
			m.Summary = line.Summary
		default:
			// Unknown line types from future minor revisions are skipped.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read manifest %s: %w", path, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("telemetry: manifest %s has no header line", path)
	}
	return &m, nil
}

// GitRevision reports the VCS revision baked into the binary by the Go
// toolchain ("unknown" outside a stamped build; a "+dirty" suffix marks
// uncommitted changes).
func GitRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}
