// Package prof is the attribution dimension of the observability layer:
// continuous profiling with experiment-coordinate labels.
//
// Telemetry (counters, histograms) and spans say how long each stage of a
// run took; the flight recorder says how that evolved over time. Neither
// says where the CPU time and allocations actually go. This package
// closes that gap with four pieces:
//
//  1. Label propagation (this file): the runner and the mux wrap
//     replication work in Do, which applies pprof goroutine labels drawn
//     from a FIXED key set — figure, sweep_point, model, path, lane — so
//     every CPU sample the Go profiler takes is attributable to an
//     experiment coordinate. The key set is closed on purpose: profiles
//     aggregate across runs and tools, and ad-hoc keys would fragment
//     attribution (the proflabels analyzer in internal/analysis enforces
//     this at lint time).
//
//  2. A background Collector (collector.go) that captures periodic CPU
//     windows plus heap/mutex/block/goroutine snapshots into a bounded,
//     schema-versioned on-disk Store (store.go) with the same
//     interrupt-safety contract as the flight log: the index is JSONL,
//     flushed per line, and a torn final line is a valid truncation
//     point, not corruption.
//
//  3. A stdlib-only pprof protobuf decoder (pprofpb.go) and aggregator
//     (agg.go) — in the spirit of internal/analysis mirroring
//     go/analysis — producing top-N tables by function and by label,
//     consumed by cmd/profdiff and cmd/obsreport.
//
//  4. A runtime/metrics bridge (runtime.go) exporting GC pause
//     quantiles, scheduler latency, heap bytes and goroutine counts into
//     the telemetry registry, so flight frames record them and SLO rules
//     can watch them (p99(go_gc_pause_seconds) < 0.01,
//     stalled(go_goroutines)).
//
// The same constraints as the flight recorder apply, in the same order:
// profiling must never perturb results (labels and profiles are pure
// observation; CI diffs profiled vs unprofiled smoke manifests at
// rtol 0), must be cheap (goroutine labels are a small map copy per
// replication, far below the per-replication simulation work; the
// benchdiff gate holds the mux hot path), and must not leak goroutines
// (Collector.Stop reaps; tests run under leakcheck.Main).
package prof

import (
	"context"
	"runtime/pprof"
)

// The fixed label key set. Every pprof goroutine label this repository
// attaches uses exactly these keys; cmd/profdiff measures what fraction
// of CPU samples carry at least one of them (the attribution floor the
// CI baseline commits to).
const (
	// KeyFigure is the experiment/figure id (fig8, extloop, ...), set by
	// the CLI driver loop.
	KeyFigure = "figure"
	// KeySweepPoint identifies the point within a figure's sweep — a
	// buffer size for per-point closed-loop runs, "coupled" for sweeps
	// whose single pass covers the whole grid.
	KeySweepPoint = "sweep_point"
	// KeyModel is the traffic model name (V, Z, S, L, aimd:..., ...).
	KeyModel = "model"
	// KeyPath distinguishes the mux execution paths: "chunked" (open-loop
	// block streaming) vs "stepped" (closed-loop per-frame engine).
	KeyPath = "path"
	// KeyLane is the runner worker lane (1-based), matching the lane
	// labels on runner_lane_reps_done_total and trace spans.
	KeyLane = "lane"
)

// Keys lists the fixed label key set in display order. The proflabels
// analyzer (internal/analysis) rejects any literal pprof label key
// outside this set.
var Keys = []string{KeyFigure, KeySweepPoint, KeyModel, KeyPath, KeyLane}

// Labels is the typed form of the fixed key set: the only way this
// repository attaches pprof labels. Empty fields are omitted, so callers
// set just the coordinates they own and inherit the rest from the
// context (pprof labels merge parent-to-child through ctx).
type Labels struct {
	Figure     string
	SweepPoint string
	Model      string
	Path       string
	Lane       string
}

// pairs flattens the non-empty fields to pprof's k,v,... form.
func (l Labels) pairs() []string {
	p := make([]string, 0, 10)
	if l.Figure != "" {
		p = append(p, KeyFigure, l.Figure)
	}
	if l.SweepPoint != "" {
		p = append(p, KeySweepPoint, l.SweepPoint)
	}
	if l.Model != "" {
		p = append(p, KeyModel, l.Model)
	}
	if l.Path != "" {
		p = append(p, KeyPath, l.Path)
	}
	if l.Lane != "" {
		p = append(p, KeyLane, l.Lane)
	}
	return p
}

// Do runs f with l's non-empty labels merged into ctx's label set and
// applied to the current goroutine for the duration of the call, so CPU
// samples taken inside f carry them. The previous goroutine labels are
// restored when f returns. A nil ctx is treated as context.Background();
// with no labels to add, f runs directly (zero cost beyond the call).
//
// Labels propagate only through the context: pass the ctx given to f
// onward (and into prof.Do in callees) or child work loses attribution.
func Do(ctx context.Context, l Labels, f func(ctx context.Context)) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := l.pairs()
	if len(p) == 0 {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(p...), f)
}

// WithLabels returns a context carrying l's non-empty labels merged with
// any labels already on ctx. It does NOT apply them to the current
// goroutine — they take effect at the next Do on the returned context.
// Use it to stack coordinates (figure at the driver, model at the
// series, lane in the runner) before the innermost Do applies them all.
func WithLabels(ctx context.Context, l Labels) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	p := l.pairs()
	if len(p) == 0 {
		return ctx
	}
	return pprof.WithLabels(ctx, pprof.Labels(p...))
}
