package prof

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestStore(t *testing.T, dir string, maxSets, nSets int) {
	t.Helper()
	w, err := CreateStore(dir, StoreHeader{Tool: "test", Start: "2026-01-01T00:00:00Z"}, maxSets)
	if err != nil {
		t.Fatalf("CreateStore: %v", err)
	}
	for i := 0; i < nSets; i++ {
		_, err := w.WriteSet(float64(i), map[string][]byte{
			KindCPU:  Encode(synthetic()),
			KindHeap: Encode(synthetic()),
		})
		if err != nil {
			t.Fatalf("WriteSet %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestStoreRoundTrip: what the writer stores, the reader returns —
// header, set metadata, decodable profiles.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeTestStore(t, dir, 0, 3)
	st, err := ReadStore(dir)
	if err != nil {
		t.Fatalf("ReadStore: %v", err)
	}
	if st.Header.SchemaVersion != StoreSchemaVersion || st.Header.Tool != "test" {
		t.Errorf("header = %+v", st.Header)
	}
	if len(st.Sets) != 3 || len(st.Live()) != 3 {
		t.Fatalf("sets = %d live %d, want 3/3", len(st.Sets), len(st.Live()))
	}
	if got := st.Kinds(); len(got) != 2 || got[0] != KindCPU || got[1] != KindHeap {
		t.Errorf("kinds = %v, want [cpu heap]", got)
	}
	ps, err := st.Profiles(KindCPU)
	if err != nil {
		t.Fatalf("Profiles: %v", err)
	}
	if len(ps) != 3 {
		t.Fatalf("decoded %d cpu profiles, want 3", len(ps))
	}
	if _, _, total := Attribution(ps, Keys, "cpu"); total != 3*600 {
		t.Errorf("merged total = %d, want 1800", total)
	}
	for i, set := range st.Sets {
		if set.Seq != int64(i+1) {
			t.Errorf("set %d seq = %d", i, set.Seq)
		}
	}
}

// TestStoreBounded: beyond MaxSets the oldest files are deleted; their
// index records remain and read back as Evicted, never as errors.
func TestStoreBounded(t *testing.T) {
	dir := t.TempDir()
	writeTestStore(t, dir, 2, 5)
	st, err := ReadStore(dir)
	if err != nil {
		t.Fatalf("ReadStore: %v", err)
	}
	if len(st.Sets) != 5 {
		t.Fatalf("index records = %d, want 5", len(st.Sets))
	}
	live := st.Live()
	if len(live) != 2 {
		t.Fatalf("live sets = %d, want 2", len(live))
	}
	if live[0].Seq != 4 || live[1].Seq != 5 {
		t.Errorf("live seqs = %d,%d, want 4,5", live[0].Seq, live[1].Seq)
	}
	// Only the window's files remain on disk.
	ents, _ := os.ReadDir(dir)
	var pbs int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".pb.gz") {
			pbs++
		}
	}
	if pbs != 4 { // 2 sets x 2 kinds
		t.Errorf("%d profile files on disk, want 4", pbs)
	}
	if ps, err := st.Profiles(KindCPU); err != nil || len(ps) != 2 {
		t.Errorf("Profiles over evicted store: %d, %v", len(ps), err)
	}
}

// TestStoreTornFinalLine: an index whose last line was cut mid-write
// (the interrupted-run signature) still reads, dropping only that line.
func TestStoreTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	writeTestStore(t, dir, 0, 2)
	path := filepath.Join(dir, "index.jsonl")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStore(dir)
	if err != nil {
		t.Fatalf("ReadStore(torn) = %v, want success", err)
	}
	if len(st.Sets) != 1 {
		t.Errorf("torn store sets = %d, want 1", len(st.Sets))
	}
}

// TestStoreCorruptMidFile: garbage followed by more lines is corruption,
// not truncation — the reader must refuse.
func TestStoreCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	writeTestStore(t, dir, 0, 2)
	path := filepath.Join(dir, "index.jsonl")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	lines[1] = "{{{ not json\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStore(dir); err == nil {
		t.Fatal("ReadStore(corrupt mid-file) = nil error")
	}
}

// TestStoreRejectsNewerSchema mirrors the flight log's forward
// incompatibility rule.
func TestStoreRejectsNewerSchema(t *testing.T) {
	dir := t.TempDir()
	idx := `{"type":"header","header":{"schema_version":99,"start":"2026-01-01T00:00:00Z"}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "index.jsonl"), []byte(idx), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStore(dir); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("ReadStore(newer schema) = %v, want schema version error", err)
	}
}

// TestStoreCorruptMember: a live set whose profile bytes are damaged
// fails Profiles loudly instead of reporting partial attribution.
func TestStoreCorruptMember(t *testing.T) {
	dir := t.TempDir()
	writeTestStore(t, dir, 0, 1)
	st, err := ReadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := st.Sets[0].Files[KindCPU]
	if err := os.WriteFile(filepath.Join(dir, name), []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Profiles(KindCPU); err == nil {
		t.Fatal("Profiles(corrupt member) = nil error")
	}
}
