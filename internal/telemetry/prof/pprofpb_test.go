package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"io"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

func mustGunzip(t *testing.T, b []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip read: %v", err)
	}
	return raw
}

// spin burns CPU until the deadline so the profiler has something to
// sample. The sink defeats dead-code elimination.
var sink float64

func spin(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d {
		for i := 0; i < 1<<12; i++ {
			sink += float64(i&7) * 1.000001
		}
	}
}

// TestDecodeRuntimeCPUProfile round-trips a profile produced in-process
// by runtime/pprof: decoded sample types must include the cpu column,
// labeled work wrapped in Do must carry the fixed keys, and the labeled
// portion must sum to no more than the total (attribution arithmetic).
func TestDecodeRuntimeCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler unavailable: %v", err)
	}
	Do(context.Background(), Labels{Figure: "figT", Model: "V", Lane: "1"}, func(context.Context) {
		spin(300 * time.Millisecond)
	})
	spin(50 * time.Millisecond) // unlabeled tail
	pprof.StopCPUProfile()

	p, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	idx := p.ValueIndex("cpu")
	if idx < 0 {
		t.Fatalf("no cpu sample type; got %+v", p.SampleTypes)
	}
	if p.PeriodType.Type != "cpu" || p.PeriodType.Unit != "nanoseconds" {
		t.Errorf("period type = %+v, want cpu/nanoseconds", p.PeriodType)
	}
	total := p.Total(idx)
	if total <= 0 {
		// A loaded CI machine can starve the profiler of samples; the
		// decode above already exercised the format.
		t.Skip("profiler gathered no samples")
	}
	frac, labeled, _ := Attribution([]*Profile{p}, Keys, "cpu")
	if labeled <= 0 {
		t.Fatalf("no labeled samples; attribution %v", frac)
	}
	if labeled > total {
		t.Fatalf("labeled %d > total %d", labeled, total)
	}
	rows, lab, tot := ByLabel([]*Profile{p}, KeyFigure, "cpu")
	if tot != total {
		t.Errorf("ByLabel total %d != %d", tot, total)
	}
	var rowSum int64
	for _, r := range rows {
		rowSum += r.Total
	}
	if rowSum != lab {
		t.Errorf("by-label rows sum %d != labeled %d", rowSum, lab)
	}
	if len(rows) == 0 || rows[0].Value != "figT" {
		t.Errorf("figure rows = %+v, want figT first", rows)
	}
	// Stacks must resolve to real function names.
	funcs, _ := TopFunctions([]*Profile{p}, "cpu", 10)
	if len(funcs) == 0 {
		t.Fatal("no functions resolved")
	}
	foundSpin := false
	for _, f := range funcs {
		if f.Name == "repro/internal/telemetry/prof.spin" {
			foundSpin = true
		}
	}
	if !foundSpin {
		t.Errorf("spin not in top functions: %+v", funcs)
	}
}

// TestDecodeRuntimeHeapProfile decodes the in-process heap profile:
// alloc_space/inuse_space columns must exist with non-negative totals.
func TestDecodeRuntimeHeapProfile(t *testing.T) {
	leak := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		leak = append(leak, make([]byte, 64<<10))
	}
	runtime.GC() // heap profile publishes at GC boundaries
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	p, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for _, want := range []string{"alloc_space", "inuse_space", "alloc_objects", "inuse_objects"} {
		if p.ValueIndex(want) < 0 {
			t.Errorf("heap profile missing sample type %s (have %+v)", want, p.SampleTypes)
		}
	}
	if tot := p.Total(p.ValueIndex("alloc_space")); tot <= 0 {
		t.Errorf("alloc_space total = %d, want > 0", tot)
	}
	_ = leak
}

// synthetic returns a small hand-built profile with known values.
func synthetic() *Profile {
	return &Profile{
		SampleTypes: []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		Samples: []Sample{
			{Stack: []string{"leafA", "mid", "root"}, Values: []int64{3, 300},
				Labels: map[string]string{KeyFigure: "fig8", KeyModel: "L"}},
			{Stack: []string{"leafB", "root"}, Values: []int64{2, 200},
				Labels: map[string]string{KeyFigure: "fig9"}},
			{Stack: []string{"leafA", "root"}, Values: []int64{1, 100}},
		},
		TimeNanos:     42,
		DurationNanos: 1e9,
		PeriodType:    ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:        10000000,
	}
}

// TestEncodeDecodeRoundTrip: the synthetic profile survives the encoder
// and decoder with stacks, values, labels and metadata intact, and the
// aggregations over it are exact.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := synthetic()
	p, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode(Encode): %v", err)
	}
	if len(p.Samples) != len(want.Samples) {
		t.Fatalf("got %d samples, want %d", len(p.Samples), len(want.Samples))
	}
	for i, s := range p.Samples {
		w := want.Samples[i]
		if len(s.Stack) != len(w.Stack) {
			t.Fatalf("sample %d stack %v, want %v", i, s.Stack, w.Stack)
		}
		for j := range s.Stack {
			if s.Stack[j] != w.Stack[j] {
				t.Errorf("sample %d frame %d = %q, want %q", i, j, s.Stack[j], w.Stack[j])
			}
		}
		for j, v := range s.Values {
			if v != w.Values[j] {
				t.Errorf("sample %d value %d = %d, want %d", i, j, v, w.Values[j])
			}
		}
		for k, v := range w.Labels {
			if s.Labels[k] != v {
				t.Errorf("sample %d label %s = %q, want %q", i, k, s.Labels[k], v)
			}
		}
	}
	if p.TimeNanos != want.TimeNanos || p.DurationNanos != want.DurationNanos ||
		p.Period != want.Period || p.PeriodType != want.PeriodType {
		t.Errorf("metadata = %d/%d/%d/%+v, want %d/%d/%d/%+v",
			p.TimeNanos, p.DurationNanos, p.Period, p.PeriodType,
			want.TimeNanos, want.DurationNanos, want.Period, want.PeriodType)
	}

	// Label attribution sums to the sample total: labeled(600-100=500) of 600.
	frac, labeled, total := Attribution([]*Profile{p}, Keys, "cpu")
	if total != 600 || labeled != 500 {
		t.Errorf("attribution labeled/total = %d/%d, want 500/600", labeled, total)
	}
	if frac < 0.8333 || frac > 0.8334 {
		t.Errorf("attribution fraction = %v, want 5/6", frac)
	}
	rows, labeled2, _ := ByLabel([]*Profile{p}, KeyFigure, "cpu")
	var sum int64
	for _, r := range rows {
		sum += r.Total
	}
	if sum != labeled2 || sum != 500 {
		t.Errorf("ByLabel sums = %d (labeled %d), want 500", sum, labeled2)
	}

	funcs, tot := TopFunctions([]*Profile{p}, "cpu", 0)
	if tot != 600 {
		t.Errorf("TopFunctions total = %d, want 600", tot)
	}
	byName := map[string]FuncTotal{}
	for _, f := range funcs {
		byName[f.Name] = f
	}
	if f := byName["leafA"]; f.Flat != 400 || f.Cum != 400 {
		t.Errorf("leafA flat/cum = %d/%d, want 400/400", f.Flat, f.Cum)
	}
	if f := byName["root"]; f.Flat != 0 || f.Cum != 600 {
		t.Errorf("root flat/cum = %d/%d, want 0/600", f.Flat, f.Cum)
	}
	if funcs[0].Name != "leafA" {
		t.Errorf("top function = %s, want leafA", funcs[0].Name)
	}
}

// TestDecodeTruncatedVsCorrupt pins the error contract: a prefix of a
// valid profile is ErrTruncated (the writer died mid-write, like a torn
// flight-log line); flipped bytes are ErrCorrupt.
func TestDecodeTruncatedVsCorrupt(t *testing.T) {
	full := Encode(synthetic())

	for _, cut := range []int{1, len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := Decode(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode(prefix %d/%d) = %v, want ErrTruncated", cut, len(full), err)
		}
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(empty) = %v, want ErrTruncated", err)
	}

	// Flip bytes in the gzip body: checksum or flate structure breaks.
	corrupt := append([]byte(nil), full...)
	for i := len(corrupt) / 3; i < len(corrupt)/3+8 && i < len(corrupt); i++ {
		corrupt[i] ^= 0x5a
	}
	if _, err := Decode(corrupt); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Decode(flipped) = %v, want ErrCorrupt", err)
	}

	// Raw (non-gzip) protobuf garbage: invalid wire structure.
	if _, err := Decode([]byte{0x07, 0x03, 0xff, 0xff}); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(garbage) = %v, want ErrCorrupt or ErrTruncated", err)
	}
	// A submessage whose declared length exceeds its content, embedded in
	// a complete stream, is corruption not truncation: field 2 (sample,
	// wire 2) declaring 5 bytes but containing a varint field that runs
	// past them.
	bad := []byte{0x12, 0x03, 0x08, 0x80, 0x80} // sample{ tag 1 varint unterminated }
	if _, err := Decode(bad); err == nil {
		t.Error("Decode(bad submessage) = nil error")
	}
}

// TestDecodeRawUncompressed: the decoder accepts bare protobuf (gzip is
// the transport runtime/pprof uses, not part of the message).
func TestDecodeRawUncompressed(t *testing.T) {
	gz := Encode(synthetic())
	p1, err := Decode(gz)
	if err != nil {
		t.Fatalf("gz decode: %v", err)
	}
	// Re-extract the raw stream by decoding the gzip layer only.
	raw := mustGunzip(t, gz)
	p2, err := Decode(raw)
	if err != nil {
		t.Fatalf("raw decode: %v", err)
	}
	if len(p1.Samples) != len(p2.Samples) {
		t.Errorf("raw vs gz sample counts differ: %d vs %d", len(p2.Samples), len(p1.Samples))
	}
}
