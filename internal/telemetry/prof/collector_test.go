package prof

import (
	"context"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestCollectorCapturesSets drives a real collector at test cadence: the
// store must contain at least the periodic set plus the final snapshot
// set, every profile must decode, and labeled CPU work must be
// attributable.
func TestCollectorCapturesSets(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	c, err := StartCollector(CollectorOptions{
		Dir:       dir,
		Interval:  150 * time.Millisecond,
		CPUWindow: 100 * time.Millisecond,
		Tool:      "prof-test",
		Registry:  reg,
	})
	if err != nil {
		t.Fatalf("StartCollector: %v", err)
	}
	Do(context.Background(), Labels{Figure: "figC"}, func(context.Context) {
		spin(400 * time.Millisecond)
	})
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}

	st, err := ReadStore(dir)
	if err != nil {
		t.Fatalf("ReadStore: %v", err)
	}
	if st.Header.Tool != "prof-test" || st.Header.IntervalSeconds == 0 {
		t.Errorf("header = %+v", st.Header)
	}
	live := st.Live()
	if len(live) < 2 {
		t.Fatalf("live sets = %d, want >= 2 (periodic + final)", len(live))
	}
	// Final set has no CPU window by contract.
	if _, hasCPU := live[len(live)-1].Files[KindCPU]; hasCPU {
		t.Error("final snapshot set should not carry a CPU window")
	}
	for _, kind := range []string{KindHeap, KindGoroutine} {
		ps, err := st.Profiles(kind)
		if err != nil {
			t.Fatalf("Profiles(%s): %v", kind, err)
		}
		if len(ps) != len(live) {
			t.Errorf("%s profiles = %d, want %d", kind, len(ps), len(live))
		}
	}
	cpus, err := st.Profiles(KindCPU)
	if err != nil {
		t.Fatalf("Profiles(cpu): %v", err)
	}
	if len(cpus) == 0 {
		t.Fatal("no CPU windows captured")
	}
	if frac, labeled, total := Attribution(cpus, Keys, "cpu"); total > 0 && labeled == 0 {
		t.Errorf("no labeled CPU despite labeled spin (frac %v)", frac)
	}

	// Self-metrics registered and moving.
	var sets float64
	for _, s := range reg.Snapshot() {
		if s.Name == "prof_sets_total" {
			sets = s.Value
		}
	}
	if sets < 2 {
		t.Errorf("prof_sets_total = %v, want >= 2", sets)
	}
}

// TestCollectorBoundedStore: MaxSets holds under churn.
func TestCollectorBoundedStore(t *testing.T) {
	dir := t.TempDir()
	c, err := StartCollector(CollectorOptions{
		Dir:       dir,
		Interval:  100 * time.Millisecond,
		CPUWindow: 20 * time.Millisecond,
		MaxSets:   2,
	})
	if err != nil {
		t.Fatalf("StartCollector: %v", err)
	}
	time.Sleep(550 * time.Millisecond)
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	st, err := ReadStore(dir)
	if err != nil {
		t.Fatalf("ReadStore: %v", err)
	}
	if live := st.Live(); len(live) > 2 {
		t.Errorf("live sets = %d, want <= 2", len(live))
	}
	if len(st.Sets) <= 2 {
		t.Errorf("index records = %d, want > 2 (evicted history retained)", len(st.Sets))
	}
}
