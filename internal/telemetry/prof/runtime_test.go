package prof

import (
	"runtime"
	"testing"

	"repro/internal/telemetry"
)

// TestRuntimeBridge polls the real runtime: gauges must carry live
// values, and forcing GC cycles between polls must move the pause
// histogram and the cycle counter.
func TestRuntimeBridge(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := NewRuntimeBridge(reg)

	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	b.Poll()

	snap := map[string]telemetry.Snapshot{}
	for _, s := range reg.Snapshot() {
		snap[s.Name] = s
	}

	g, ok := snap[MetricGoroutines]
	if !ok {
		t.Fatalf("%s not registered", MetricGoroutines)
	}
	if g.Kind != telemetry.KindGauge || g.Value < 1 {
		t.Errorf("%s = %+v, want gauge >= 1", MetricGoroutines, g)
	}
	if h, ok := snap[MetricHeapBytes]; !ok || h.Value <= 0 {
		t.Errorf("%s = %+v, want > 0", MetricHeapBytes, h)
	}
	if l, ok := snap[MetricHeapLive]; !ok || l.Value <= 0 {
		t.Errorf("%s = %+v, want > 0", MetricHeapLive, l)
	}
	if c, ok := snap[MetricGCCycles]; !ok || c.Value < 3 {
		t.Errorf("%s = %+v, want >= 3 after 3 forced GCs", MetricGCCycles, c)
	}
	p, ok := snap[MetricGCPause]
	if !ok {
		t.Fatalf("%s not registered", MetricGCPause)
	}
	if p.Count < 1 {
		t.Errorf("%s count = %d, want >= 1 pause recorded", MetricGCPause, p.Count)
	}
	if p.Count > 0 && (p.P99 <= 0 || p.P99 > 10) {
		t.Errorf("%s p99 = %v, want a plausible pause duration", MetricGCPause, p.P99)
	}
}

// TestRuntimeBridgeDeltaSemantics: a second bridge on a fresh registry
// starts from a zero baseline — it must not replay the process's entire
// GC history into the histogram.
func TestRuntimeBridgeDeltaSemantics(t *testing.T) {
	runtime.GC() // ensure the process has pause history to NOT replay
	reg := telemetry.NewRegistry()
	b := NewRuntimeBridge(reg)
	var count int64
	for _, s := range reg.Snapshot() {
		if s.Name == MetricGCPause {
			count = s.Count
		}
	}
	if count != 0 {
		t.Errorf("fresh bridge replayed %d historical pauses", count)
	}
	runtime.GC()
	b.Poll()
	count = 0
	for _, s := range reg.Snapshot() {
		if s.Name == MetricGCPause {
			count = s.Count
		}
	}
	if count < 1 {
		t.Errorf("pause after baseline not recorded (count %d)", count)
	}
}

// TestObserveN pins the bulk-observe arithmetic against per-event
// Observe.
func TestObserveN(t *testing.T) {
	a := telemetry.NewHistogram()
	bh := telemetry.NewHistogram()
	for i := 0; i < 5; i++ {
		a.Observe(0.25)
	}
	a.Observe(2.0)
	bh.ObserveN(0.25, 5)
	bh.ObserveN(2.0, 1)
	bh.ObserveN(3.0, 0)  // no-op
	bh.ObserveN(4.0, -2) // no-op
	sa, sb := a.Stats(), bh.Stats()
	if sa.Count != sb.Count || sa.Sum != sb.Sum || sa.Min != sb.Min || sa.Max != sb.Max { //lint:floateq identical observation streams must produce bit-identical aggregates
		t.Errorf("ObserveN stats %+v != Observe stats %+v", sb, sa)
	}
	if sa.P99 != sb.P99 { //lint:floateq same buckets, same quantile
		t.Errorf("p99 %v != %v", sb.P99, sa.P99)
	}
}
