// Stdlib-only decoder for the pprof profile.proto wire format — the
// gzipped protobuf that runtime/pprof writes. Like internal/analysis
// mirroring go/analysis, this deliberately reimplements the narrow slice
// of the format the repository needs (sample values, stacks resolved to
// function names, string/num labels, period and duration metadata)
// instead of vendoring github.com/google/pprof: no dependencies, and the
// subset is small enough to keep honest with round-trip tests against
// profiles produced in-process by runtime/pprof.
//
// Field numbers follow profile.proto
// (https://github.com/google/pprof/blob/main/proto/profile.proto):
//
//	Profile:  1 sample_type, 2 sample, 4 location, 5 function,
//	          6 string_table, 9 time_nanos, 10 duration_nanos,
//	          11 period_type, 12 period
//	Sample:   1 location_id (repeated, packed), 2 value (repeated,
//	          packed), 3 label
//	Label:    1 key, 2 str, 3 num
//	Location: 1 id, 4 line
//	Line:     1 function_id, 2 line
//	Function: 1 id, 2 name
//
// Error contract mirrors the flight log's: a profile cut short by an
// interrupted writer decodes to ErrTruncated, structurally invalid bytes
// to ErrCorrupt, and callers (the store reader, profdiff, CI) treat the
// two differently.
package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrTruncated marks a profile whose byte stream ends mid-message — the
// writer died before finishing. Like a torn final flight-log line, this
// is an interruption artifact, not data corruption.
var ErrTruncated = errors.New("prof: truncated profile")

// ErrCorrupt marks a profile whose bytes are structurally invalid — bad
// gzip framing, impossible wire types, out-of-range string indices.
var ErrCorrupt = errors.New("prof: corrupt profile")

// ValueType names one sample-value column, e.g. {"cpu", "nanoseconds"}
// or {"inuse_space", "bytes"}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one decoded profile sample: a call stack (leaf first,
// resolved to function names), one value per sample-type column, and the
// pprof labels attached to the originating goroutine.
type Sample struct {
	Stack     []string
	Values    []int64
	Labels    map[string]string
	NumLabels map[string][]int64
}

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	PeriodType    ValueType
	Period        int64
}

// ValueIndex returns the column index of the sample type named typ, or
// -1 when absent. Use e.g. "cpu" (nanoseconds), "samples" (count),
// "inuse_space"/"alloc_space" (heap bytes).
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// Total sums the given value column across all samples.
func (p *Profile) Total(idx int) int64 {
	if idx < 0 {
		return 0
	}
	var t int64
	for _, s := range p.Samples {
		if idx < len(s.Values) {
			t += s.Values[idx]
		}
	}
	return t
}

// DecodeFile reads and decodes one profile file.
func DecodeFile(path string) (*Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("prof: read %s: %w", path, err)
	}
	p, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Decode decodes a pprof profile from raw bytes, transparently
// un-gzipping (runtime/pprof always gzips; bare protobuf is accepted
// too). Truncation and corruption decode to ErrTruncated / ErrCorrupt
// respectively, matched with errors.Is.
func Decode(data []byte) (*Profile, error) {
	if len(data) < 2 {
		// Shorter than even a gzip magic number: a writer that died
		// immediately, not a malformed profile.
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%w: gzip header: %v", classifyGzipErr(err), err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("%w: gzip body: %v", classifyGzipErr(err), err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("%w: gzip close: %v", classifyGzipErr(err), err)
		}
		data = raw
	}
	return decodeProfile(data)
}

// classifyGzipErr maps gzip failures onto the truncation/corruption
// axis: an unexpected EOF means the writer stopped mid-stream (the file
// is a prefix of a valid one); checksum/header/flate errors mean the
// bytes themselves are wrong.
func classifyGzipErr(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return ErrTruncated
	}
	return ErrCorrupt
}

// --- protobuf wire reading ---------------------------------------------

// wireBuf is a cursor over protobuf bytes. Decoding errors distinguish
// running off the end (truncation) from invalid encoding (corruption).
type wireBuf struct {
	b []byte
	i int
}

func (w *wireBuf) done() bool { return w.i >= len(w.b) }

// varint reads one base-128 varint.
func (w *wireBuf) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if w.i >= len(w.b) {
			return 0, ErrTruncated
		}
		c := w.b[w.i]
		w.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
		}
	}
}

// field reads one tag and its payload. For length-delimited fields the
// payload bytes are returned; for varint fields the value; fixed32/64
// are skipped (the pprof schema never uses them, but a skipper keeps
// forward compatibility with unknown fields).
func (w *wireBuf) field() (num int, wt int, val uint64, payload []byte, err error) {
	tag, err := w.varint()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	num, wt = int(tag>>3), int(tag&7)
	if num == 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: field number 0", ErrCorrupt)
	}
	switch wt {
	case 0: // varint
		val, err = w.varint()
		return num, wt, val, nil, err
	case 1: // fixed64
		if w.i+8 > len(w.b) {
			return 0, 0, 0, nil, ErrTruncated
		}
		w.i += 8
		return num, wt, 0, nil, nil
	case 2: // length-delimited
		n, err := w.varint()
		if err != nil {
			return 0, 0, 0, nil, err
		}
		if n > uint64(len(w.b)-w.i) {
			return 0, 0, 0, nil, ErrTruncated
		}
		payload = w.b[w.i : w.i+int(n)]
		w.i += int(n)
		return num, wt, 0, payload, nil
	case 5: // fixed32
		if w.i+4 > len(w.b) {
			return 0, 0, 0, nil, ErrTruncated
		}
		w.i += 4
		return num, wt, 0, nil, nil
	default:
		return 0, 0, 0, nil, fmt.Errorf("%w: wire type %d", ErrCorrupt, wt)
	}
}

// packedInts decodes a repeated-varint payload. The pprof writers pack
// repeated integer fields; a single unpacked value arrives as wire type
// 0 and is handled at the call sites.
func packedInts(payload []byte, out []int64) ([]int64, error) {
	w := wireBuf{b: payload}
	for !w.done() {
		v, err := w.varint()
		if err != nil {
			// Truncation inside a length-delimited payload means the
			// declared length lied about its contents: corruption.
			return nil, fmt.Errorf("%w: packed int", ErrCorrupt)
		}
		out = append(out, int64(v))
	}
	return out, nil
}

func packedUints(payload []byte, out []uint64) ([]uint64, error) {
	w := wireBuf{b: payload}
	for !w.done() {
		v, err := w.varint()
		if err != nil {
			return nil, fmt.Errorf("%w: packed uint", ErrCorrupt)
		}
		out = append(out, v)
	}
	return out, nil
}

// --- profile message decoding ------------------------------------------

// raw intermediate structures, indices into the string table unresolved.
type rawValueType struct{ typ, unit int64 }

type rawLabel struct{ key, str, num int64 }

type rawSample struct {
	locs   []uint64
	values []int64
	labels []rawLabel
}

func decodeProfile(data []byte) (*Profile, error) {
	var (
		strtab      []string
		sampleTypes []rawValueType
		samples     []rawSample
		locLine     = map[uint64][]uint64{} // location id -> function ids, leaf line first
		funcName    = map[uint64]int64{}    // function id -> name string index
		p           Profile
		periodType  rawValueType
	)
	w := wireBuf{b: data}
	for !w.done() {
		num, wt, val, payload, err := w.field()
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		switch num {
		case 1: // sample_type
			vt, err := decodeValueType(payload)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			s, err := decodeSample(payload)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			id, fns, err := decodeLocation(payload)
			if err != nil {
				return nil, err
			}
			locLine[id] = fns
		case 5: // function
			id, name, err := decodeFunction(payload)
			if err != nil {
				return nil, err
			}
			funcName[id] = name
		case 6: // string_table
			if wt != 2 {
				return nil, fmt.Errorf("%w: string_table wire type %d", ErrCorrupt, wt)
			}
			strtab = append(strtab, string(payload))
		case 9:
			p.TimeNanos = int64(val)
		case 10:
			p.DurationNanos = int64(val)
		case 11:
			vt, err := decodeValueType(payload)
			if err != nil {
				return nil, err
			}
			periodType = vt
		case 12:
			p.Period = int64(val)
		default:
			// Unknown fields (mappings, comments, ...) already consumed.
		}
	}
	str := func(i int64) (string, error) {
		if i < 0 || i >= int64(len(strtab)) {
			return "", fmt.Errorf("%w: string index %d outside table of %d", ErrCorrupt, i, len(strtab))
		}
		return strtab[i], nil
	}
	if len(strtab) == 0 && (len(samples) > 0 || len(sampleTypes) > 0) {
		return nil, fmt.Errorf("%w: no string table", ErrCorrupt)
	}
	for _, vt := range sampleTypes {
		t, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: t, Unit: u})
	}
	if periodType.typ != 0 || periodType.unit != 0 {
		t, err := str(periodType.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(periodType.unit)
		if err != nil {
			return nil, err
		}
		p.PeriodType = ValueType{Type: t, Unit: u}
	}
	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, loc := range rs.locs {
			for _, fid := range locLine[loc] {
				if ni, ok := funcName[fid]; ok {
					name, err := str(ni)
					if err != nil {
						return nil, err
					}
					s.Stack = append(s.Stack, name)
				}
			}
		}
		for _, rl := range rs.labels {
			k, err := str(rl.key)
			if err != nil {
				return nil, err
			}
			if rl.str != 0 {
				v, err := str(rl.str)
				if err != nil {
					return nil, err
				}
				if s.Labels == nil {
					s.Labels = make(map[string]string)
				}
				s.Labels[k] = v
			} else {
				if s.NumLabels == nil {
					s.NumLabels = make(map[string][]int64)
				}
				s.NumLabels[k] = append(s.NumLabels[k], rl.num)
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return &p, nil
}

func decodeValueType(payload []byte) (rawValueType, error) {
	var vt rawValueType
	w := wireBuf{b: payload}
	for !w.done() {
		num, _, val, _, err := w.field()
		if err != nil {
			return vt, fmt.Errorf("value_type: %w", corruptInside(err))
		}
		switch num {
		case 1:
			vt.typ = int64(val)
		case 2:
			vt.unit = int64(val)
		}
	}
	return vt, nil
}

func decodeSample(payload []byte) (rawSample, error) {
	var s rawSample
	w := wireBuf{b: payload}
	for !w.done() {
		num, wt, val, sub, err := w.field()
		if err != nil {
			return s, fmt.Errorf("sample: %w", corruptInside(err))
		}
		switch num {
		case 1: // location_id
			if wt == 2 {
				if s.locs, err = packedUints(sub, s.locs); err != nil {
					return s, err
				}
			} else {
				s.locs = append(s.locs, val)
			}
		case 2: // value
			if wt == 2 {
				if s.values, err = packedInts(sub, s.values); err != nil {
					return s, err
				}
			} else {
				s.values = append(s.values, int64(val))
			}
		case 3: // label
			l, err := decodeLabel(sub)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, l)
		}
	}
	return s, nil
}

func decodeLabel(payload []byte) (rawLabel, error) {
	var l rawLabel
	w := wireBuf{b: payload}
	for !w.done() {
		num, _, val, _, err := w.field()
		if err != nil {
			return l, fmt.Errorf("label: %w", corruptInside(err))
		}
		switch num {
		case 1:
			l.key = int64(val)
		case 2:
			l.str = int64(val)
		case 3:
			l.num = int64(val)
		}
	}
	return l, nil
}

func decodeLocation(payload []byte) (id uint64, fns []uint64, err error) {
	w := wireBuf{b: payload}
	for !w.done() {
		num, _, val, sub, ferr := w.field()
		if ferr != nil {
			return 0, nil, fmt.Errorf("location: %w", corruptInside(ferr))
		}
		switch num {
		case 1:
			id = val
		case 4: // line
			fid, lerr := decodeLine(sub)
			if lerr != nil {
				return 0, nil, lerr
			}
			fns = append(fns, fid)
		}
	}
	return id, fns, nil
}

func decodeFunction(payload []byte) (id uint64, name int64, err error) {
	w := wireBuf{b: payload}
	for !w.done() {
		num, _, val, _, ferr := w.field()
		if ferr != nil {
			return 0, 0, fmt.Errorf("function: %w", corruptInside(ferr))
		}
		switch num {
		case 1:
			id = val
		case 2:
			name = int64(val)
		}
	}
	return id, name, nil
}

func decodeLine(payload []byte) (funcID uint64, err error) {
	w := wireBuf{b: payload}
	for !w.done() {
		num, _, val, _, ferr := w.field()
		if ferr != nil {
			return 0, fmt.Errorf("line: %w", corruptInside(ferr))
		}
		if num == 1 {
			funcID = val
		}
	}
	return funcID, nil
}

// corruptInside reclassifies ErrTruncated raised inside a
// length-delimited submessage as corruption: the enclosing length said
// more bytes were there, so the stream did not simply end early.
func corruptInside(err error) error {
	if errors.Is(err, ErrTruncated) {
		return fmt.Errorf("%w: submessage shorter than declared", ErrCorrupt)
	}
	return err
}
