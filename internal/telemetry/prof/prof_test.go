package prof

import (
	"context"
	"runtime/pprof"
	"testing"
)

// TestDoAppliesAndMergesLabels drives the real pprof label machinery:
// coordinates stacked with WithLabels upstream plus a Do at the
// innermost point must all be visible on the goroutine, and must be
// restored afterwards.
func TestDoAppliesAndMergesLabels(t *testing.T) {
	ctx := WithLabels(context.Background(), Labels{Figure: "fig8", Model: "L"})

	// Not yet applied: WithLabels only stages them on the context.
	if v, ok := pprof.Label(ctx, KeyFigure); !ok || v != "fig8" {
		t.Fatalf("ctx label figure = %q, %v; want fig8", v, ok)
	}

	ran := false
	Do(ctx, Labels{Lane: "3", Path: "chunked"}, func(ctx context.Context) {
		ran = true
		got := map[string]string{}
		pprof.ForLabels(ctx, func(k, v string) bool {
			got[k] = v
			return true
		})
		want := map[string]string{
			KeyFigure: "fig8", KeyModel: "L", KeyLane: "3", KeyPath: "chunked",
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("label %s = %q, want %q (all: %v)", k, got[k], v, got)
			}
		}
	})
	if !ran {
		t.Fatal("Do did not run f")
	}
}

// TestDoEmptyLabelsPassthrough: no fields set means no pprof machinery —
// the ctx is handed through unchanged.
func TestDoEmptyLabelsPassthrough(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	Do(ctx, Labels{}, func(got context.Context) {
		if got != ctx {
			t.Error("empty Labels should pass ctx through unchanged")
		}
	})
	Do(nil, Labels{}, func(got context.Context) {
		if got == nil {
			t.Error("nil ctx should become Background")
		}
	})
}

// TestPairsCoverKeys: every field of Labels maps onto a key in Keys, and
// empty fields are omitted.
func TestPairsCoverKeys(t *testing.T) {
	l := Labels{Figure: "f", SweepPoint: "s", Model: "m", Path: "p", Lane: "l"}
	p := l.pairs()
	if len(p) != 2*len(Keys) {
		t.Fatalf("full Labels yields %d pairs, want %d", len(p)/2, len(Keys))
	}
	seen := map[string]bool{}
	for i := 0; i < len(p); i += 2 {
		seen[p[i]] = true
		found := false
		for _, k := range Keys {
			if p[i] == k {
				found = true
			}
		}
		if !found {
			t.Errorf("pairs emitted key %q outside the fixed set %v", p[i], Keys)
		}
	}
	for _, k := range Keys {
		if !seen[k] {
			t.Errorf("key %q missing from full Labels pairs", k)
		}
	}
	if got := (Labels{Model: "V"}).pairs(); len(got) != 2 || got[0] != KeyModel {
		t.Errorf("partial Labels pairs = %v, want [model V]", got)
	}
}
