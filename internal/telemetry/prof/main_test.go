package prof

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package on goroutine leaks: every collector started
// by a test must be fully reaped by Stop before the test exits.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
