// Minimal pprof profile encoder — the inverse of pprofpb.go for the same
// narrow subset. It exists for the tests (round-trip fixtures with known
// stacks, labels and values, byte-surgery targets for the
// truncation/corruption contract) and for cmd/profdiff's synthetic
// regression injection; the production write path is runtime/pprof
// itself, which this never touches.
package prof

import (
	"bytes"
	"compress/gzip"
	"sort"
)

// Encode serialises p as a gzipped pprof protobuf decodable by Decode
// (and by the standard pprof tooling: string table slot 0 is the empty
// string, ids are 1-based, repeated ints are packed). Deterministic for
// a given Profile value — the string table is built in encounter order.
func Encode(p *Profile) []byte {
	e := &encoder{strs: map[string]int64{"": 0}, tab: []string{""}}
	var body bytes.Buffer

	for _, st := range p.SampleTypes {
		body.Write(e.msg(1, e.valueType(st)))
	}

	// Assign function/location ids: one location per unique function
	// name, one line per location. Collapsing the stack to named frames
	// loses addresses, which the aggregator never uses.
	funcID := map[string]uint64{}
	var funcs []string
	for _, s := range p.Samples {
		for _, fn := range s.Stack {
			if _, ok := funcID[fn]; !ok {
				funcID[fn] = uint64(len(funcs) + 1)
				funcs = append(funcs, fn)
			}
		}
	}

	for _, s := range p.Samples {
		var sm bytes.Buffer
		var locs bytes.Buffer
		for _, fn := range s.Stack {
			locs.Write(varint(funcID[fn])) // location id == function id
		}
		if locs.Len() > 0 {
			sm.Write(e.msg(1, locs.Bytes()))
		}
		var vals bytes.Buffer
		for _, v := range s.Values {
			vals.Write(varint(uint64(v)))
		}
		if vals.Len() > 0 {
			sm.Write(e.msg(2, vals.Bytes()))
		}
		for _, k := range sortedKeys(s.Labels) {
			sm.Write(e.msg(3, e.strLabel(k, s.Labels[k])))
		}
		for _, k := range sortedKeys(s.NumLabels) {
			for _, n := range s.NumLabels[k] {
				sm.Write(e.msg(3, e.numLabel(k, n)))
			}
		}
		body.Write(e.msg(2, sm.Bytes()))
	}

	for i, fn := range funcs {
		id := uint64(i + 1)
		var line bytes.Buffer
		line.Write(tagVarint(1, id)) // function_id
		line.Write(tagVarint(2, 1))  // line number (synthetic)
		var loc bytes.Buffer
		loc.Write(tagVarint(1, id)) // location id
		loc.Write(e.msg(4, line.Bytes()))
		body.Write(e.msg(4, loc.Bytes()))

		var f bytes.Buffer
		f.Write(tagVarint(1, id))                    // function id
		f.Write(tagVarint(2, uint64(e.str(fn))))     // name
		f.Write(tagVarint(3, uint64(e.str(fn))))     // system_name
		f.Write(tagVarint(4, uint64(e.str("_.go")))) // filename
		body.Write(e.msg(5, f.Bytes()))
	}

	if p.TimeNanos != 0 {
		body.Write(tagVarint(9, uint64(p.TimeNanos)))
	}
	if p.DurationNanos != 0 {
		body.Write(tagVarint(10, uint64(p.DurationNanos)))
	}
	if p.PeriodType != (ValueType{}) {
		body.Write(e.msg(11, e.valueType(p.PeriodType)))
	}
	if p.Period != 0 {
		body.Write(tagVarint(12, uint64(p.Period)))
	}

	// String table last in construction, but field order within a proto
	// message is free; append after everything so every string is interned.
	var out bytes.Buffer
	out.Write(body.Bytes())
	for _, s := range e.tab {
		out.Write(e.msg(6, []byte(s)))
	}

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(out.Bytes())
	zw.Close()
	return gz.Bytes()
}

type encoder struct {
	strs map[string]int64
	tab  []string
}

func (e *encoder) str(s string) int64 {
	if i, ok := e.strs[s]; ok {
		return i
	}
	i := int64(len(e.tab))
	e.strs[s] = i
	e.tab = append(e.tab, s)
	return i
}

func (e *encoder) valueType(vt ValueType) []byte {
	var b bytes.Buffer
	b.Write(tagVarint(1, uint64(e.str(vt.Type))))
	b.Write(tagVarint(2, uint64(e.str(vt.Unit))))
	return b.Bytes()
}

func (e *encoder) strLabel(k, v string) []byte {
	var b bytes.Buffer
	b.Write(tagVarint(1, uint64(e.str(k))))
	b.Write(tagVarint(2, uint64(e.str(v))))
	return b.Bytes()
}

func (e *encoder) numLabel(k string, n int64) []byte {
	var b bytes.Buffer
	b.Write(tagVarint(1, uint64(e.str(k))))
	b.Write(tagVarint(3, uint64(n)))
	return b.Bytes()
}

// msg frames payload as a length-delimited field.
func (e *encoder) msg(num int, payload []byte) []byte {
	out := varint(uint64(num)<<3 | 2)
	out = append(out, varint(uint64(len(payload)))...)
	return append(out, payload...)
}

// tagVarint frames v as a varint field.
func tagVarint(num int, v uint64) []byte {
	out := varint(uint64(num) << 3)
	return append(out, varint(v)...)
}

func varint(v uint64) []byte {
	var out []byte
	for v >= 0x80 {
		out = append(out, byte(v)|0x80)
		v >>= 7
	}
	return append(out, byte(v))
}

// sortedKeys gives map iteration a stable order for the encoder's
// determinism claim.
func sortedKeys[M map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
