// On-disk profile store: a directory holding numbered profile files plus
// an index.jsonl with the flight log's interrupt-safety contract — one
// self-describing JSON object per line, flushed per line, torn final
// line = valid truncation, garbage mid-file = corruption.
//
//	DIR/index.jsonl          {"type":"header",...} then {"type":"set",...} lines
//	DIR/cpu_000001.pb.gz     one gzipped pprof profile per kind per set
//	DIR/heap_000001.pb.gz    ...
//
// The store is bounded: beyond MaxSets, the oldest set's files are
// deleted while its index line remains — the reader reports such sets as
// evicted rather than erroring, so a long soak keeps a sliding window of
// profiles without an unbounded directory.
package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/telemetry"
)

// StoreSchemaVersion identifies the index line shape. Bump on
// incompatible change; readers reject newer majors.
const StoreSchemaVersion = 1

// DefaultMaxSets bounds the store when CollectorOptions.MaxSets is zero:
// at the default collector cadence, over an hour of sliding window.
const DefaultMaxSets = 256

// Profile kinds a set may carry. CPU windows are sampled profiles over
// an interval; the rest are point-in-time snapshots. "heap" carries both
// inuse_* and alloc_* columns (runtime/pprof's combined heap profile),
// so there is no separate allocs kind.
const (
	KindCPU       = "cpu"
	KindHeap      = "heap"
	KindMutex     = "mutex"
	KindBlock     = "block"
	KindGoroutine = "goroutine"
)

// StoreHeader identifies a profile store.
type StoreHeader struct {
	SchemaVersion   int     `json:"schema_version"`
	Tool            string  `json:"tool,omitempty"`
	Start           string  `json:"start"` // RFC3339Nano
	IntervalSeconds float64 `json:"interval_seconds"`
	CPUWindow       float64 `json:"cpu_window_seconds"`
	GoVersion       string  `json:"go_version"`
	GitRevision     string  `json:"git_revision"`
}

// SetRecord is one index line: a numbered capture of one or more profile
// kinds at one moment of the run.
type SetRecord struct {
	Seq            int64             `json:"seq"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	Files          map[string]string `json:"files"` // kind -> filename relative to the store dir
}

type storeLine struct {
	Type   string       `json:"type"`
	Header *StoreHeader `json:"header,omitempty"`
	Set    *SetRecord   `json:"set,omitempty"`
}

// StoreWriter appends profile sets to a store directory. The Collector
// owns one in production; tests construct synthetic stores directly.
type StoreWriter struct {
	dir     string
	f       *os.File
	bw      *bufio.Writer
	seq     int64
	maxSets int
	live    []SetRecord // sets whose files are still on disk, oldest first
}

// CreateStore initialises dir (created if needed, existing index
// truncated) and writes the header line. maxSets <= 0 means
// DefaultMaxSets.
func CreateStore(dir string, h StoreHeader, maxSets int) (*StoreWriter, error) {
	h.SchemaVersion = StoreSchemaVersion
	if h.GoVersion == "" {
		h.GoVersion = runtime.Version()
	}
	if h.GitRevision == "" {
		h.GitRevision = telemetry.GitRevision()
	}
	if maxSets <= 0 {
		maxSets = DefaultMaxSets
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: create store dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, "index.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("prof: create store index: %w", err)
	}
	w := &StoreWriter{dir: dir, f: f, bw: bufio.NewWriter(f), maxSets: maxSets}
	if err := w.write(storeLine{Type: "header", Header: &h}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *StoreWriter) write(line storeLine) error {
	b, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("prof: encode index line: %w", err)
	}
	if _, err := w.bw.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("prof: write index: %w", err)
	}
	return w.bw.Flush()
}

// WriteSet stores one capture: each kind's bytes land in their own file
// (written and synced before the index line, so a torn index line never
// references half-written profiles), then the index line is appended and
// flushed. Eviction of the oldest set keeps the directory bounded.
func (w *StoreWriter) WriteSet(elapsedSeconds float64, profiles map[string][]byte) (SetRecord, error) {
	w.seq++
	rec := SetRecord{Seq: w.seq, ElapsedSeconds: elapsedSeconds, Files: map[string]string{}}
	for _, kind := range sortedKeys(profiles) {
		name := fmt.Sprintf("%s_%06d.pb.gz", kind, w.seq)
		if err := os.WriteFile(filepath.Join(w.dir, name), profiles[kind], 0o644); err != nil {
			return rec, fmt.Errorf("prof: write %s: %w", name, err)
		}
		rec.Files[kind] = name
	}
	if err := w.write(storeLine{Type: "set", Set: &rec}); err != nil {
		return rec, err
	}
	w.live = append(w.live, rec)
	for len(w.live) > w.maxSets {
		old := w.live[0]
		w.live = w.live[1:]
		for _, name := range old.Files {
			// Best-effort: a file that refuses to delete leaves a slightly
			// larger window, never a broken store.
			os.Remove(filepath.Join(w.dir, name))
		}
	}
	return rec, nil
}

// Close flushes and closes the index.
func (w *StoreWriter) Close() error {
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Set is one readable capture in a store.
type Set struct {
	SetRecord
	Evicted bool // files deleted by the sliding window; record retained
}

// Store is a decoded store index.
type Store struct {
	Dir    string
	Header StoreHeader
	Sets   []Set
}

// ReadStore decodes DIR/index.jsonl with the flight log's tolerance: a
// torn final line is a valid truncation point, garbage followed by more
// lines is corruption, a missing or newer-major header is an error. Sets
// whose profile files are gone are marked Evicted, not failed.
func ReadStore(dir string) (*Store, error) {
	path := filepath.Join(dir, "index.jsonl")
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("prof: open store index: %w", err)
	}
	defer f.Close()
	st := &Store{Dir: dir}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineno := 0
	sawHeader := false
	for sc.Scan() {
		lineno++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line storeLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// Same contract as flight.ReadLog: a torn final line is how an
			// interrupted writer looks; anything followed by more content is
			// corruption.
			for sc.Scan() {
				if len(sc.Bytes()) != 0 {
					return nil, fmt.Errorf("prof: store index %s line %d: %w", path, lineno, err)
				}
			}
			break
		}
		switch line.Type {
		case "header":
			if line.Header == nil {
				return nil, fmt.Errorf("prof: store index %s line %d: empty header", path, lineno)
			}
			if line.Header.SchemaVersion > StoreSchemaVersion {
				return nil, fmt.Errorf("prof: store %s: schema version %d newer than supported %d",
					dir, line.Header.SchemaVersion, StoreSchemaVersion)
			}
			st.Header = *line.Header
			sawHeader = true
		case "set":
			if line.Set == nil {
				continue
			}
			s := Set{SetRecord: *line.Set}
			for _, name := range s.Files {
				if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
					s.Evicted = true
					break
				}
			}
			st.Sets = append(st.Sets, s)
		default:
			// Future minor revisions may add line types; skip them.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prof: read store index %s: %w", path, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("prof: store index %s has no header line", path)
	}
	return st, nil
}

// Live returns the non-evicted sets, oldest first.
func (s *Store) Live() []Set {
	out := make([]Set, 0, len(s.Sets))
	for _, set := range s.Sets {
		if !set.Evicted {
			out = append(out, set)
		}
	}
	return out
}

// Profiles decodes every live profile of one kind, oldest first. A
// profile that fails to decode fails the whole call — a store with
// corrupt members should not silently report partial attribution.
func (s *Store) Profiles(kind string) ([]*Profile, error) {
	var out []*Profile
	for _, set := range s.Live() {
		name, ok := set.Files[kind]
		if !ok {
			continue
		}
		p, err := DecodeFile(filepath.Join(s.Dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Kinds lists the profile kinds present in live sets, sorted.
func (s *Store) Kinds() []string {
	seen := map[string]bool{}
	for _, set := range s.Live() {
		for kind := range set.Files {
			seen[kind] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
