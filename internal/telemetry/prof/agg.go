// Aggregation over decoded profiles: top-N tables by function and by
// label, and label-attribution accounting — the answers cmd/profdiff and
// cmd/obsreport print. All aggregations merge across a slice of profiles
// (a store holds many periodic CPU windows; the question is about the
// run, not a window).
package prof

import "sort"

// FuncTotal is one row of a by-function table. Flat is the value
// attributed to samples whose leaf frame is this function; Cum counts
// every sample the function appears anywhere in (each function at most
// once per sample, so recursion does not double-count).
type FuncTotal struct {
	Name string `json:"name"`
	Flat int64  `json:"flat"`
	Cum  int64  `json:"cum"`
}

// TopFunctions merges the given value column across profiles and returns
// the top n functions by flat value (ties broken by name for
// determinism), plus the grand total of the column. n <= 0 returns all.
func TopFunctions(ps []*Profile, valueType string, n int) ([]FuncTotal, int64) {
	flat := map[string]int64{}
	cum := map[string]int64{}
	var total int64
	for _, p := range ps {
		idx := p.ValueIndex(valueType)
		if idx < 0 {
			continue
		}
		for _, s := range p.Samples {
			if idx >= len(s.Values) {
				continue
			}
			v := s.Values[idx]
			total += v
			if len(s.Stack) > 0 {
				flat[s.Stack[0]] += v
				seen := map[string]bool{}
				for _, fn := range s.Stack {
					if !seen[fn] {
						seen[fn] = true
						cum[fn] += v
					}
				}
			} else {
				flat["(unknown)"] += v
				cum["(unknown)"] += v
			}
		}
	}
	rows := make([]FuncTotal, 0, len(cum))
	for fn, v := range cum {
		rows = append(rows, FuncTotal{Name: fn, Flat: flat[fn], Cum: v})
	}
	// Sorted by flat: zero-flat interior frames rank below every real
	// leaf, so a top-N cut keeps the functions that actually burn cycles
	// while cum totals stay available for the rows that survive.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Flat != rows[j].Flat {
			return rows[i].Flat > rows[j].Flat
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows, total
}

// LabelTotal is one row of a by-label table: the total value carried by
// samples labelled key=Value.
type LabelTotal struct {
	Value string `json:"value"`
	Total int64  `json:"total"`
}

// ByLabel merges the given value column grouped by the values of one
// label key, sorted descending (ties by value name). Returns the rows,
// the value carried by samples that have the key at all, and the grand
// total — labeled/total is the attribution fraction for this key.
func ByLabel(ps []*Profile, key, valueType string) (rows []LabelTotal, labeled, total int64) {
	byVal := map[string]int64{}
	for _, p := range ps {
		idx := p.ValueIndex(valueType)
		if idx < 0 {
			continue
		}
		for _, s := range p.Samples {
			if idx >= len(s.Values) {
				continue
			}
			v := s.Values[idx]
			total += v
			if lv, ok := s.Labels[key]; ok {
				byVal[lv] += v
				labeled += v
			}
		}
	}
	rows = make([]LabelTotal, 0, len(byVal))
	for lv, v := range byVal {
		rows = append(rows, LabelTotal{Value: lv, Total: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Value < rows[j].Value
	})
	return rows, labeled, total
}

// Attribution reports the fraction of the given value column carried by
// samples labelled with at least one of the keys, and the grand total.
// This is the quantity the committed CI baseline puts a floor under: if
// label propagation regresses (a new code path forgets prof.Do), the
// fraction drops and profdiff -check fails. Zero total reports fraction
// 1 — an empty CPU window (idle process) attributes nothing and should
// not trip the floor.
func Attribution(ps []*Profile, keys []string, valueType string) (fraction float64, labeled, total int64) {
	for _, p := range ps {
		idx := p.ValueIndex(valueType)
		if idx < 0 {
			continue
		}
		for _, s := range p.Samples {
			if idx >= len(s.Values) {
				continue
			}
			v := s.Values[idx]
			total += v
			for _, k := range keys {
				if _, ok := s.Labels[k]; ok {
					labeled += v
					break
				}
			}
		}
	}
	if total == 0 {
		return 1, 0, 0
	}
	return float64(labeled) / float64(total), labeled, total
}
