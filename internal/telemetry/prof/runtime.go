// runtime/metrics bridge: polls the Go runtime's metric registry into
// the repository's telemetry registry, so GC pauses, scheduler latency,
// heap size and goroutine counts appear in /metrics output, flight
// frames, and SLO rules exactly like simulation metrics do —
// p99(go_gc_pause_seconds) < 0.01 and stalled(go_goroutines) are valid
// rules with this bridge attached.
//
// Metric names are probed at construction, not hard-coded: the runtime
// renamed the GC pause histogram between Go releases
// (/gc/pauses:seconds → /sched/pauses/total/gc:seconds), and a bridge
// that asks for an absent name gets KindBad, not an error. Histograms
// bridge by bucket-count delta — each poll feeds only the counts added
// since the previous poll into the telemetry histogram (at the bucket's
// midpoint, via ObserveN), so the telemetry side accumulates the same
// stream a per-event observer would have seen, within bucket resolution.
package prof

import (
	"math"
	"runtime/metrics"

	"repro/internal/telemetry"
)

// Bridged metric names on the telemetry side.
const (
	MetricGCPause      = "go_gc_pause_seconds"      // histogram
	MetricSchedLatency = "go_sched_latency_seconds" // histogram
	MetricGoroutines   = "go_goroutines"            // gauge
	MetricHeapBytes    = "go_heap_objects_bytes"    // gauge
	MetricHeapLive     = "go_heap_live_bytes"       // gauge
	MetricGCCycles     = "go_gc_cycles_total"       // counter
)

// runtime/metrics names probed, in preference order per bridged metric.
var (
	gcPauseNames = []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}
	schedNames   = []string{"/sched/latencies:seconds"}
	goroNames    = []string{"/sched/goroutines:goroutines"}
	heapNames    = []string{"/memory/classes/heap/objects:bytes"}
	liveNames    = []string{"/gc/heap/live:bytes"}
	cycleNames   = []string{"/gc/cycles/total:gc-cycles"}
)

// RuntimeBridge polls runtime/metrics into a telemetry.Registry. Poll is
// not safe for concurrent use; in production it runs as the flight
// recorder's BeforeSnapshot hook, which serialises on the recorder
// goroutine (plus the initial and final Record calls, which the recorder
// also serialises).
type RuntimeBridge struct {
	samples []metrics.Sample

	gcPause   *histBridge
	schedLat  *histBridge
	goro      *telemetry.Gauge
	goroIdx   int
	heap      *telemetry.Gauge
	heapIdx   int
	live      *telemetry.Gauge
	liveIdx   int
	cycles    *telemetry.Counter
	cycleIdx  int
	prevCycle uint64
}

// histBridge tracks one runtime Float64Histogram and forwards bucket
// deltas into a telemetry histogram.
type histBridge struct {
	idx  int
	h    *telemetry.Histogram
	prev []uint64
}

// NewRuntimeBridge probes the runtime's metric names and registers the
// bridged instruments. Metrics the running Go version does not expose
// are silently absent — rules over them evaluate against missing
// metrics, which the SLO engine already reports.
func NewRuntimeBridge(reg *telemetry.Registry) *RuntimeBridge {
	have := map[string]bool{}
	for _, d := range metrics.All() {
		have[d.Name] = true
	}
	b := &RuntimeBridge{goroIdx: -1, heapIdx: -1, liveIdx: -1, cycleIdx: -1}
	add := func(names []string) int {
		for _, n := range names {
			if have[n] {
				b.samples = append(b.samples, metrics.Sample{Name: n})
				return len(b.samples) - 1
			}
		}
		return -1
	}
	if i := add(gcPauseNames); i >= 0 {
		b.gcPause = &histBridge{idx: i, h: reg.Histogram(MetricGCPause)}
	}
	if i := add(schedNames); i >= 0 {
		b.schedLat = &histBridge{idx: i, h: reg.Histogram(MetricSchedLatency)}
	}
	if b.goroIdx = add(goroNames); b.goroIdx >= 0 {
		b.goro = reg.Gauge(MetricGoroutines)
	}
	if b.heapIdx = add(heapNames); b.heapIdx >= 0 {
		b.heap = reg.Gauge(MetricHeapBytes)
	}
	if b.liveIdx = add(liveNames); b.liveIdx >= 0 {
		b.live = reg.Gauge(MetricHeapLive)
	}
	if b.cycleIdx = add(cycleNames); b.cycleIdx >= 0 {
		b.cycles = reg.Counter(MetricGCCycles)
	}
	b.Poll() // baseline: histogram deltas start from here, gauges are live immediately
	return b
}

// Poll reads the runtime metrics and updates the telemetry instruments.
func (b *RuntimeBridge) Poll() {
	if len(b.samples) == 0 {
		return
	}
	metrics.Read(b.samples)
	if b.gcPause != nil {
		b.gcPause.feed(b.samples[b.gcPause.idx].Value)
	}
	if b.schedLat != nil {
		b.schedLat.feed(b.samples[b.schedLat.idx].Value)
	}
	if b.goro != nil {
		b.goro.Set(float64(b.samples[b.goroIdx].Value.Uint64()))
	}
	if b.heap != nil {
		b.heap.Set(float64(b.samples[b.heapIdx].Value.Uint64()))
	}
	if b.live != nil {
		b.live.Set(float64(b.samples[b.liveIdx].Value.Uint64()))
	}
	if b.cycles != nil {
		cur := b.samples[b.cycleIdx].Value.Uint64()
		if cur > b.prevCycle {
			b.cycles.Add(int64(cur - b.prevCycle))
		}
		b.prevCycle = cur
	}
}

// feed forwards the counts added since the previous poll, each bucket at
// its representative value.
func (hb *histBridge) feed(v metrics.Value) {
	if v.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	if h == nil {
		return
	}
	if hb.prev == nil || len(hb.prev) != len(h.Counts) {
		hb.prev = make([]uint64, len(h.Counts))
		copy(hb.prev, h.Counts)
		return // first sight of this geometry: establish the baseline only
	}
	for i, c := range h.Counts {
		d := int64(c - hb.prev[i])
		if d > 0 {
			hb.h.ObserveN(bucketValue(h.Buckets, i), d)
		}
		hb.prev[i] = c
	}
}

// bucketValue picks a representative value for bucket i of a runtime
// histogram: the midpoint of its bounds, falling back to the finite edge
// when the first/last bucket is unbounded. Runtime buckets are dense
// enough (sub-microsecond resolution for the latency histograms) that
// midpoint error is far below the telemetry histogram's own 4.4%
// quantile resolution.
func bucketValue(buckets []float64, i int) float64 {
	if len(buckets) < 2 || i+1 >= len(buckets) {
		return 0
	}
	lo, hi := buckets[i], buckets[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return lo + (hi-lo)/2
	}
}
