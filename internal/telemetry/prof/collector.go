// Background collector: periodically captures a CPU window plus
// point-in-time heap/mutex/block/goroutine snapshots into a Store.
//
// The cadence mirrors the flight recorder's loop (ticker + done channel
// + wait group, reaped by Stop), and the same first constraint applies:
// collection only reads runtime state — it never touches random streams
// or simulation buffers, so fixed-seed outputs are bit-identical with
// the collector on or off. The CPU profiler does add a small sampling
// overhead while a window is open; the benchdiff gate on the mux hot
// path bounds it below 1%.
package prof

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// DefaultCollectInterval is the capture cadence when
// CollectorOptions.Interval is zero. Profiles are heavier than flight
// frames, so the default is slower than the recorder's 1 s.
const DefaultCollectInterval = 15 * time.Second

// minCollectInterval guards against a mistyped flag turning the
// collector into a busy loop.
const minCollectInterval = 100 * time.Millisecond

// CollectorOptions parameterises a Collector.
type CollectorOptions struct {
	// Dir is the store directory (required).
	Dir string
	// Interval is the capture cadence (default DefaultCollectInterval,
	// clamped to at least 100 ms).
	Interval time.Duration
	// CPUWindow is how long each CPU profiling window stays open
	// (default: half the interval, capped at 10 s). Zero-cost snapshots
	// (heap, goroutine, ...) are taken when the window closes.
	CPUWindow time.Duration
	// MaxSets bounds the store's sliding window (default DefaultMaxSets).
	MaxSets int
	// Tool names the producing binary in the store header.
	Tool string
	// Registry, when non-nil, receives the collector's self-metrics:
	// prof_sets_total, prof_errors_total, prof_cpu_windows_skipped_total.
	Registry *telemetry.Registry
}

// Collector runs the capture loop. Create with StartCollector; Stop
// reaps the goroutine, captures one final snapshot set (without a CPU
// window — stopping should not cost a window's wall time) and closes the
// store.
type Collector struct {
	opts    CollectorOptions
	w       *StoreWriter
	t0      time.Time
	sets    *telemetry.Counter
	errors  *telemetry.Counter
	skipped *telemetry.Counter

	err  error
	done chan struct{}
	wg   chan struct{} // closed by the loop goroutine on exit

	stopMu  sync.Mutex
	stopped bool
}

// StartCollector opens the store and launches the capture loop.
func StartCollector(opts CollectorOptions) (*Collector, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("prof: collector needs a store dir")
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultCollectInterval
	}
	if opts.Interval < minCollectInterval {
		opts.Interval = minCollectInterval
	}
	if opts.CPUWindow <= 0 {
		opts.CPUWindow = opts.Interval / 2
		if opts.CPUWindow > 10*time.Second {
			opts.CPUWindow = 10 * time.Second
		}
	}
	if opts.CPUWindow > opts.Interval {
		opts.CPUWindow = opts.Interval
	}
	c := &Collector{
		opts: opts,
		t0:   time.Now(),
		done: make(chan struct{}),
		wg:   make(chan struct{}),
	}
	if opts.Registry != nil {
		c.sets = opts.Registry.Counter("prof_sets_total")
		c.errors = opts.Registry.Counter("prof_errors_total")
		c.skipped = opts.Registry.Counter("prof_cpu_windows_skipped_total")
	}
	w, err := CreateStore(opts.Dir, StoreHeader{
		Tool:            opts.Tool,
		Start:           c.t0.Format(time.RFC3339Nano),
		IntervalSeconds: opts.Interval.Seconds(),
		CPUWindow:       opts.CPUWindow.Seconds(),
	}, opts.MaxSets)
	if err != nil {
		return nil, err
	}
	c.w = w
	go c.loop()
	return c, nil
}

func (c *Collector) loop() {
	defer close(c.wg)
	t := time.NewTicker(c.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.collect(true)
		}
	}
}

// collect captures one set. withCPU opens a CPU window first (the
// snapshots are taken as it closes, so the set is internally coherent
// about "the end of this window").
func (c *Collector) collect(withCPU bool) {
	profiles := map[string][]byte{}
	if withCPU {
		var buf bytes.Buffer
		// StartCPUProfile fails when a profile is already running — e.g.
		// an operator hit /debug/pprof/profile on the telemetry endpoint.
		// That is contention, not corruption: count it, keep the snapshots.
		if err := pprof.StartCPUProfile(&buf); err != nil {
			c.inc(c.skipped)
		} else {
			select {
			case <-c.done:
				// Shutting down mid-window: close the window early and keep
				// whatever samples it gathered.
			case <-time.After(c.opts.CPUWindow):
			}
			pprof.StopCPUProfile()
			profiles[KindCPU] = buf.Bytes()
		}
	}
	for _, kind := range []string{KindHeap, KindMutex, KindBlock, KindGoroutine} {
		p := pprof.Lookup(kind)
		if p == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			c.inc(c.errors)
			continue
		}
		profiles[kind] = buf.Bytes()
	}
	if _, err := c.w.WriteSet(time.Since(c.t0).Seconds(), profiles); err != nil {
		c.inc(c.errors)
		if c.err == nil {
			c.err = err
		}
		return
	}
	c.inc(c.sets)
}

func (c *Collector) inc(ctr *telemetry.Counter) {
	if ctr != nil {
		ctr.Inc()
	}
}

// Stop halts the loop, captures a final snapshot set (heap, goroutine,
// ... — no CPU window), closes the store, and returns the first error.
func (c *Collector) Stop() error {
	c.stopMu.Lock()
	defer c.stopMu.Unlock()
	if c.stopped {
		return c.err
	}
	c.stopped = true
	close(c.done)
	<-c.wg
	c.collect(false)
	if err := c.w.Close(); err != nil && c.err == nil {
		c.err = err
	}
	return c.err
}

// Dir returns the store directory.
func (c *Collector) Dir() string { return c.opts.Dir }
