package slo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// Engine evaluates a fixed rule set online, one snapshot at a time. It is
// safe for concurrent use, though the usual wiring (the flight recorder's
// OnFrame hook) calls it from a single goroutine.
//
// Each Observe bumps slo_evaluations_total once per rule actually
// evaluated and slo_breaches_total{rule=...} once per breached rule, so
// alert state is itself a metric the next flight frame captures.
type Engine struct {
	rules []Rule
	reg   *telemetry.Registry

	mu    sync.Mutex
	state []*ruleState
}

// ruleState is one rule's accumulated evaluation history.
type ruleState struct {
	seen       bool // did the selector ever match an instrument?
	evals      int64
	breaches   int64
	lastValue  float64
	haveValue  bool
	lastBreach string
	// prev tracks, per matched instrument, the previous progress value —
	// the substrate for rate/delta/stalled.
	prev map[string]prevSample
}

type prevSample struct {
	val     float64
	elapsed float64
	stall   int64 // consecutive frames without movement
}

// NewEngine builds an engine over parsed rules. Alert counters register in
// reg (use the run's registry so breaches surface on /metrics and in the
// flight log); a nil reg keeps evaluation but skips the counters.
func NewEngine(reg *telemetry.Registry, rules []Rule) *Engine {
	st := make([]*ruleState, len(rules))
	for i := range st {
		st[i] = &ruleState{prev: make(map[string]prevSample)}
	}
	return &Engine{rules: rules, reg: reg, state: st}
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// Observe evaluates every rule against one snapshot taken elapsed seconds
// into the run. Snapshot order does not matter; labels follow the
// registry's Snapshot shape.
func (e *Engine) Observe(metrics []telemetry.Snapshot, elapsed float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, r := range e.rules {
		e.observeRule(r, e.state[i], metrics, elapsed)
	}
}

// observeRule evaluates one rule; caller holds e.mu.
func (e *Engine) observeRule(r Rule, st *ruleState, metrics []telemetry.Snapshot, elapsed float64) {
	evaluated := false
	breached := false
	detail := ""
	matchedAny := false
	for _, s := range metrics {
		if !r.matches(s) {
			continue
		}
		matchedAny = true
		st.seen = true
		v, ok := e.ruleValue(r, st, s, elapsed)
		if !ok {
			continue // derivative rule warming up, or agg inapplicable
		}
		evaluated = true
		st.lastValue, st.haveValue = v, true
		if !r.compare(v) {
			breached = true
			detail = fmt.Sprintf("t=%.1fs %s: observed %g", elapsed, instrumentName(s), v)
		}
	}
	if !matchedAny && r.zeroDefault() {
		// Absent flow metrics read as zero — health rules like
		// "value(x) == 0" hold before the instrument first registers.
		evaluated = true
		st.lastValue, st.haveValue = 0, true
		if !r.compare(0) {
			breached = true
			detail = fmt.Sprintf("t=%.1fs %s absent (reads 0)", elapsed, r.Metric)
		}
	}
	if !evaluated {
		return
	}
	st.evals++
	if e.reg != nil {
		e.reg.Counter("slo_evaluations_total").Inc()
	}
	if breached {
		st.breaches++
		st.lastBreach = detail
		if e.reg != nil {
			e.reg.Counter("slo_breaches_total", telemetry.L("rule", r.Expr)).Inc()
		}
	}
}

// ruleValue extracts the aggregation's value from one matched instrument,
// updating derivative state. ok=false means this instrument contributes
// nothing this frame (first sample of a derivative, or an aggregation the
// instrument kind cannot answer).
func (e *Engine) ruleValue(r Rule, st *ruleState, s telemetry.Snapshot, elapsed float64) (float64, bool) {
	dist := s.Kind == telemetry.KindHistogram || s.Kind == telemetry.KindTimer
	switch r.Agg {
	case AggValue:
		if dist {
			return s.Sum, true
		}
		return s.Value, true
	case AggCount:
		if dist {
			return float64(s.Count), true
		}
		return s.Value, true
	case AggSum:
		if dist {
			return s.Sum, true
		}
		return s.Value, true
	case AggNonFinite:
		if dist {
			return float64(s.NonFinite), true
		}
		return 0, true
	case AggMin:
		return s.Min, dist && s.Count > 0
	case AggMax:
		return s.Max, dist && s.Count > 0
	case AggP50:
		return s.P50, dist && s.Count > 0
	case AggP95:
		return s.P95, dist && s.Count > 0
	case AggP99:
		return s.P99, dist && s.Count > 0
	case AggRate, AggDelta, AggStalled:
		var cur float64
		if dist {
			cur = float64(s.Count)
		} else {
			cur = s.Value
		}
		key := instrumentName(s)
		p, havePrev := st.prev[key]
		next := prevSample{val: cur, elapsed: elapsed}
		if havePrev && cur == p.val { //lint:floateq stall detection is exact-repeat detection: any movement, however small, is progress
			next.stall = p.stall + 1
		}
		st.prev[key] = next
		if !havePrev {
			return 0, r.Agg == AggStalled // stalled evaluates from frame one (count 0)
		}
		switch r.Agg {
		case AggDelta:
			return cur - p.val, true
		case AggStalled:
			return float64(next.stall), true
		default: // AggRate
			dt := elapsed - p.elapsed
			if dt <= 0 {
				return 0, false
			}
			return (cur - p.val) / dt, true
		}
	}
	return 0, false
}

// instrumentName renders name{k=v,...} with sorted labels.
func instrumentName(s telemetry.Snapshot) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// RuleResult is one rule's terminal outcome.
type RuleResult struct {
	Rule        string  `json:"rule"`
	Evaluations int64   `json:"evaluations"`
	Breaches    int64   `json:"breaches"`
	MetricSeen  bool    `json:"metric_seen"`
	LastValue   float64 `json:"last_value"`
	LastBreach  string  `json:"last_breach,omitempty"`
	Pass        bool    `json:"pass"`
	Note        string  `json:"note,omitempty"`
}

// Verdict is the run-level outcome: the CI gate.
type Verdict struct {
	Rules  []RuleResult `json:"rules"`
	Failed bool         `json:"failed"`
}

// Verdict renders the terminal verdict. A rule fails if it ever breached,
// or if it needed observed data (quantiles, rates, stalls) and its metric
// never appeared — a typo must not read as green.
func (e *Engine) Verdict() Verdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	var v Verdict
	for i, r := range e.rules {
		st := e.state[i]
		rr := RuleResult{
			Rule:        r.Expr,
			Evaluations: st.evals,
			Breaches:    st.breaches,
			MetricSeen:  st.seen,
			LastBreach:  st.lastBreach,
		}
		if st.haveValue {
			rr.LastValue = st.lastValue
		}
		switch {
		case st.breaches > 0:
			rr.Pass = false
		case !st.seen && !r.zeroDefault():
			rr.Pass = false
			rr.Note = "metric never observed — check the metric name"
		case st.evals == 0:
			rr.Pass = false
			rr.Note = "rule never evaluated (no data reached the aggregation)"
		default:
			rr.Pass = true
		}
		if !rr.Pass {
			v.Failed = true
		}
		v.Rules = append(v.Rules, rr)
	}
	return v
}

// Summary renders a compact human-readable verdict, one line per rule.
func (v Verdict) Summary() string {
	var b strings.Builder
	for _, r := range v.Rules {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%s  %s  (evals=%d breaches=%d last=%g)",
			status, r.Rule, r.Evaluations, r.Breaches, r.LastValue)
		if r.Note != "" {
			fmt.Fprintf(&b, "  [%s]", r.Note)
		}
		if r.LastBreach != "" {
			fmt.Fprintf(&b, "  [%s]", r.LastBreach)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
