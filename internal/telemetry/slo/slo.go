// Package slo is a declarative service-level-objective engine evaluated
// online against flight-recorder snapshots. Rules are compact strings:
//
//	p99(admitd_decision_seconds) <= 0.01
//	p99(admitd_http_seconds{endpoint=admit}) <= 0.02
//	rate(mux_cells_lost_total) within [0, 1e6]
//	stalled(runner_reps_done_total) <= 5
//	nonfinite(mux_buffer_occupancy_cells) == 0
//	value(diag_health_total) == 0
//
// Grammar: AGG(METRIC[{k=v,...}]) OP BOUND, where
//
//   - AGG is one of value, count, sum, min, max, p50, p95, p99 (read the
//     matching snapshot field), nonfinite (quarantined NaN/±Inf
//     observations), rate (per-second delta between consecutive frames),
//     delta (raw change between consecutive frames), or stalled (number
//     of consecutive frames the value has not moved — the "convergence
//     stalled > N windows" detector).
//   - OP is <=, <, >=, >, ==, != against one number, or `within [lo, hi]`
//     for a closed band.
//   - The label set, when present, must be a subset of the instrument's
//     labels; a rule without labels applies to every instrument of the
//     family, and every matching instrument must satisfy the bound.
//
// Missing metrics: value/count/sum/nonfinite of an absent instrument read
// as 0 (an untouched counter and an absent one are the same thing), so
// "== 0" health rules hold vacuously. Quantile, min/max, rate, delta and
// stalled rules need observed data; they are skipped while the metric is
// absent, but a rule whose metric NEVER appeared over the whole run fails
// the verdict — a typo in a metric name must not pass CI as green.
//
// The engine is fed one snapshot at a time (Engine.Observe, typically
// from the flight recorder's OnFrame hook), bumps slo_evaluations_total /
// slo_breaches_total{rule=...} alert counters in the registry it's given,
// and renders a terminal Verdict whose Failed state is the CI gate.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// Agg enumerates the supported aggregations.
type Agg string

const (
	AggValue     Agg = "value"
	AggCount     Agg = "count"
	AggSum       Agg = "sum"
	AggMin       Agg = "min"
	AggMax       Agg = "max"
	AggP50       Agg = "p50"
	AggP95       Agg = "p95"
	AggP99       Agg = "p99"
	AggNonFinite Agg = "nonfinite"
	AggRate      Agg = "rate"
	AggDelta     Agg = "delta"
	AggStalled   Agg = "stalled"
)

var validAggs = map[Agg]bool{
	AggValue: true, AggCount: true, AggSum: true, AggMin: true, AggMax: true,
	AggP50: true, AggP95: true, AggP99: true, AggNonFinite: true,
	AggRate: true, AggDelta: true, AggStalled: true,
}

// Op enumerates the comparators.
type Op string

const (
	OpLE     Op = "<="
	OpLT     Op = "<"
	OpGE     Op = ">="
	OpGT     Op = ">"
	OpEQ     Op = "=="
	OpNE     Op = "!="
	OpWithin Op = "within"
)

// Rule is one parsed objective.
type Rule struct {
	Expr   string            // normalised source text, the rule's identity
	Agg    Agg               // aggregation over the metric
	Metric string            // metric family name
	Labels map[string]string // required label subset; nil = match all
	Op     Op
	Bound  float64 // comparison bound (unused for within)
	Lo, Hi float64 // within band, inclusive
}

// String returns the normalised rule text.
func (r Rule) String() string { return r.Expr }

// Parse parses one rule. See the package comment for the grammar.
func Parse(s string) (Rule, error) {
	orig := s
	s = strings.TrimSpace(s)
	if s == "" {
		return Rule{}, fmt.Errorf("slo: empty rule")
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return Rule{}, fmt.Errorf("slo: rule %q: want AGG(metric) OP bound", orig)
	}
	agg := Agg(strings.ToLower(strings.TrimSpace(s[:open])))
	if !validAggs[agg] {
		return Rule{}, fmt.Errorf("slo: rule %q: unknown aggregation %q", orig, string(agg))
	}
	depth, closeIdx := 1, -1
	for i := open + 1; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				closeIdx = i
			}
		}
		if closeIdx >= 0 {
			break
		}
	}
	if closeIdx < 0 {
		return Rule{}, fmt.Errorf("slo: rule %q: unclosed selector", orig)
	}
	metric, labels, err := parseSelector(s[open+1 : closeIdx])
	if err != nil {
		return Rule{}, fmt.Errorf("slo: rule %q: %w", orig, err)
	}
	rest := strings.TrimSpace(s[closeIdx+1:])
	r := Rule{Agg: agg, Metric: metric, Labels: labels}
	if strings.HasPrefix(strings.ToLower(rest), string(OpWithin)) {
		band := strings.TrimSpace(rest[len(OpWithin):])
		if !strings.HasPrefix(band, "[") || !strings.HasSuffix(band, "]") {
			return Rule{}, fmt.Errorf("slo: rule %q: want within [lo, hi]", orig)
		}
		parts := strings.Split(band[1:len(band)-1], ",")
		if len(parts) != 2 {
			return Rule{}, fmt.Errorf("slo: rule %q: want within [lo, hi]", orig)
		}
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil || !(lo <= hi) {
			return Rule{}, fmt.Errorf("slo: rule %q: bad band %q", orig, band)
		}
		r.Op, r.Lo, r.Hi = OpWithin, lo, hi
	} else {
		var op Op
		// Two-character operators first so "<=" never lexes as "<".
		for _, cand := range []Op{OpLE, OpGE, OpEQ, OpNE, OpLT, OpGT} {
			if strings.HasPrefix(rest, string(cand)) {
				op = cand
				break
			}
		}
		if op == "" {
			return Rule{}, fmt.Errorf("slo: rule %q: missing comparator", orig)
		}
		bound, err := strconv.ParseFloat(strings.TrimSpace(rest[len(op):]), 64)
		if err != nil {
			return Rule{}, fmt.Errorf("slo: rule %q: bad bound: %w", orig, err)
		}
		r.Op, r.Bound = op, bound
	}
	r.Expr = r.render()
	return r, nil
}

// ParseList parses a semicolon-separated rule list (empty segments are
// skipped, so trailing separators are harmless).
func ParseList(s string) ([]Rule, error) {
	var out []Rule
	for _, seg := range strings.Split(s, ";") {
		if strings.TrimSpace(seg) == "" {
			continue
		}
		r, err := Parse(seg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: no rules in %q", s)
	}
	return out, nil
}

// parseSelector splits "metric" or "metric{k=v,k2=v2}".
func parseSelector(s string) (string, map[string]string, error) {
	s = strings.TrimSpace(s)
	brace := strings.IndexByte(s, '{')
	if brace < 0 {
		if s == "" {
			return "", nil, fmt.Errorf("empty metric name")
		}
		return s, nil, nil
	}
	if !strings.HasSuffix(s, "}") {
		return "", nil, fmt.Errorf("unclosed label set in %q", s)
	}
	name := strings.TrimSpace(s[:brace])
	if name == "" {
		return "", nil, fmt.Errorf("empty metric name")
	}
	labels := make(map[string]string)
	for _, pair := range strings.Split(s[brace+1:len(s)-1], ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return "", nil, fmt.Errorf("bad label pair %q", pair)
		}
		k := strings.TrimSpace(pair[:eq])
		v := strings.Trim(strings.TrimSpace(pair[eq+1:]), `"`)
		labels[k] = v
	}
	return name, labels, nil
}

// render rebuilds the normalised rule text (sorted labels, canonical
// spacing) used as the rule's identity in metrics labels and reports.
func (r Rule) render() string {
	var b strings.Builder
	b.WriteString(string(r.Agg))
	b.WriteByte('(')
	b.WriteString(r.Metric)
	if len(r.Labels) > 0 {
		keys := make([]string, 0, len(r.Labels))
		for k := range r.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(r.Labels[k])
		}
		b.WriteByte('}')
	}
	b.WriteByte(')')
	if r.Op == OpWithin {
		fmt.Fprintf(&b, " within [%g, %g]", r.Lo, r.Hi)
	} else {
		fmt.Fprintf(&b, " %s %g", r.Op, r.Bound)
	}
	return b.String()
}

// compare applies the rule's comparator to one value.
func (r Rule) compare(v float64) bool {
	switch r.Op {
	case OpLE:
		return v <= r.Bound
	case OpLT:
		return v < r.Bound
	case OpGE:
		return v >= r.Bound
	case OpGT:
		return v > r.Bound
	case OpEQ:
		return v == r.Bound //lint:floateq SLO equality rules compare exact recorded values (typically integer-valued counters) by design
	case OpNE:
		return v != r.Bound //lint:floateq see above: exact comparison is the documented rule semantic
	case OpWithin:
		return v >= r.Lo && v <= r.Hi
	}
	return false
}

// matches reports whether a snapshot belongs to the rule's selector.
func (r Rule) matches(s telemetry.Snapshot) bool {
	if s.Name != r.Metric {
		return false
	}
	for k, v := range r.Labels {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// zeroDefault reports whether the rule's aggregation reads an absent
// instrument as 0 (flows and counts) rather than "no data" (distribution
// shapes and derivatives).
func (r Rule) zeroDefault() bool {
	switch r.Agg {
	case AggValue, AggCount, AggSum, AggNonFinite:
		return true
	}
	return false
}
