package slo

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func mustParse(t *testing.T, s string) Rule {
	t.Helper()
	r, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return r
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string // normalised Expr
	}{
		{"p99(admitd_decision_seconds) <= 0.01", "p99(admitd_decision_seconds) <= 0.01"},
		{"  P95( lat ) < 2 ", "p95(lat) < 2"},
		{"rate(mux_cells_lost_total) within [0, 1e6]", "rate(mux_cells_lost_total) within [0, 1e+06]"},
		{"value(x{b=2,a=1}) == 0", "value(x{a=1,b=2}) == 0"},
		{"stalled(reps_done_total) <= 5", "stalled(reps_done_total) <= 5"},
		{"nonfinite(occupancy) != 3", "nonfinite(occupancy) != 3"},
		{"count(h) >= 10", "count(h) >= 10"},
		{"delta(c) > 0", "delta(c) > 0"},
	}
	for _, c := range cases {
		r := mustParse(t, c.in)
		if r.Expr != c.want {
			t.Errorf("Parse(%q).Expr = %q, want %q", c.in, r.Expr, c.want)
		}
		// Normalisation is a fixed point.
		r2 := mustParse(t, r.Expr)
		if r2.Expr != r.Expr {
			t.Errorf("re-parse of %q gives %q", r.Expr, r2.Expr)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "p99", "p99()", "bogus(x) <= 1", "p99(x) 1", "p99(x) <=",
		"p99(x) within [1, 0]", "p99(x) within 1,2", "value(x{a}) == 0",
		"p99(x{a=1) <= 1",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

func TestParseList(t *testing.T) {
	rules, err := ParseList("p99(a) <= 1; value(b) == 0 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	if _, err := ParseList(" ; "); err == nil {
		t.Fatal("want error for empty list")
	}
}

func snap(reg *telemetry.Registry) []telemetry.Snapshot { return reg.Snapshot() }

func TestEngineThresholdBreach(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Timer("decision_seconds")
	eng := NewEngine(reg, []Rule{mustParse(t, "p99(decision_seconds) <= 0.01")})

	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	eng.Observe(snap(reg), 1)
	if v := eng.Verdict(); v.Failed {
		t.Fatalf("fast decisions should pass: %s", v.Summary())
	}
	h.Observe(10 * time.Second) // one catastrophic outlier drags p99 over
	for i := 0; i < 5; i++ {
		h.Observe(10 * time.Second)
	}
	eng.Observe(snap(reg), 2)
	v := eng.Verdict()
	if !v.Failed {
		t.Fatalf("slow p99 should fail: %s", v.Summary())
	}
	if v.Rules[0].Breaches != 1 || v.Rules[0].Evaluations != 2 {
		t.Errorf("rule result %+v", v.Rules[0])
	}
	if got := reg.Counter("slo_breaches_total", telemetry.L("rule", v.Rules[0].Rule)).Value(); got != 1 {
		t.Errorf("slo_breaches_total = %d, want 1", got)
	}
	if got := reg.Counter("slo_evaluations_total").Value(); got != 2 {
		t.Errorf("slo_evaluations_total = %d, want 2", got)
	}
}

func TestEngineAbsentMetricDefaults(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng := NewEngine(reg, []Rule{
		mustParse(t, "value(health_nonfinite_total) == 0"), // absent → 0 → pass
		mustParse(t, "p99(never_observed_seconds) <= 1"),   // absent → never evaluated → fail
	})
	eng.Observe(snap(reg), 1)
	v := eng.Verdict()
	if !v.Rules[0].Pass {
		t.Errorf("absent counter ==0 should pass: %+v", v.Rules[0])
	}
	if v.Rules[1].Pass {
		t.Errorf("absent quantile metric should fail the verdict: %+v", v.Rules[1])
	}
	if !v.Failed {
		t.Error("verdict should fail overall")
	}
	if !strings.Contains(v.Rules[1].Note, "never observed") {
		t.Errorf("note %q", v.Rules[1].Note)
	}
}

func TestEngineRate(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("lost_total")
	eng := NewEngine(reg, []Rule{mustParse(t, "rate(lost_total) within [0, 10]")})
	c.Add(5)
	eng.Observe(snap(reg), 1) // first sample: warming up, no eval
	c.Add(5)
	eng.Observe(snap(reg), 2) // 5/s — in band
	if v := eng.Verdict(); v.Failed {
		t.Fatalf("in-band rate failed: %s", v.Summary())
	}
	c.Add(100)
	eng.Observe(snap(reg), 3) // 100/s — breach
	v := eng.Verdict()
	if !v.Failed || v.Rules[0].Breaches != 1 {
		t.Fatalf("out-of-band rate should breach once: %s", v.Summary())
	}
}

func TestEngineStalled(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("reps_done_total")
	eng := NewEngine(reg, []Rule{mustParse(t, "stalled(reps_done_total) <= 2")})
	c.Add(1)
	for i := 0; i < 3; i++ { // progress every frame: stall count stays 0
		c.Inc()
		eng.Observe(snap(reg), float64(i))
	}
	if v := eng.Verdict(); v.Failed {
		t.Fatalf("progressing counter stalled: %s", v.Summary())
	}
	for i := 0; i < 3; i++ { // frozen: stall reaches 3 > 2
		eng.Observe(snap(reg), float64(10+i))
	}
	v := eng.Verdict()
	if !v.Failed {
		t.Fatalf("frozen counter should breach stall rule: %s", v.Summary())
	}
}

func TestEngineLabelSelector(t *testing.T) {
	reg := telemetry.NewRegistry()
	hit := reg.Counter("cache_total", telemetry.L("outcome", "hit"))
	miss := reg.Counter("cache_total", telemetry.L("outcome", "miss"))
	eng := NewEngine(reg, []Rule{mustParse(t, "value(cache_total{outcome=miss}) <= 5")})
	hit.Add(1000) // must not count against the miss rule
	miss.Add(3)
	eng.Observe(snap(reg), 1)
	if v := eng.Verdict(); v.Failed {
		t.Fatalf("hit counter leaked into miss selector: %s", v.Summary())
	}
	miss.Add(100)
	eng.Observe(snap(reg), 2)
	if v := eng.Verdict(); !v.Failed {
		t.Fatalf("miss breach not detected: %s", v.Summary())
	}
}

func TestEngineUnlabeledRuleMatchesAllInstruments(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := reg.Counter("lane_total", telemetry.L("lane", "1"))
	b := reg.Counter("lane_total", telemetry.L("lane", "2"))
	eng := NewEngine(reg, []Rule{mustParse(t, "value(lane_total) <= 10")})
	a.Add(5)
	b.Add(50) // any matching instrument over the bound breaches
	eng.Observe(snap(reg), 1)
	if v := eng.Verdict(); !v.Failed {
		t.Fatalf("per-instrument breach missed: %s", v.Summary())
	}
}

func TestVerdictSummary(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("ok_total").Add(1)
	eng := NewEngine(reg, []Rule{mustParse(t, "value(ok_total) >= 1")})
	eng.Observe(snap(reg), 1)
	s := eng.Verdict().Summary()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "ok_total") {
		t.Errorf("summary %q", s)
	}
}

func TestEngineNilRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("x_total").Add(1)
	eng := NewEngine(nil, []Rule{mustParse(t, "value(x_total) == 1")})
	eng.Observe(snap(reg), 1) // must not panic without an alert registry
	if v := eng.Verdict(); v.Failed {
		t.Fatalf("unexpected failure: %s", v.Summary())
	}
}
