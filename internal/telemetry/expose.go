package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof" // the only allowed pprof import in the module (enforced by lint_test.go and CI)
	"runtime"
	"sort"
	"strings"
)

// Route is an extra endpoint mounted onto a telemetry Handler — e.g. the
// flight recorder's /vars/history, which lives a package below and cannot
// be imported from here.
type Route struct {
	Pattern string // e.g. "/vars/history"
	Handler http.Handler
}

// varsBody is the /vars response. An explicit struct (not a map) pins the
// field order, so exposition is deterministic byte-for-byte given the same
// registry state: metrics come from Snapshot (sorted by name then labels)
// and runtime stats have a fixed field sequence.
type varsBody struct {
	Metrics []Snapshot  `json:"metrics"`
	Runtime runtimeVars `json:"runtime"`
}

type runtimeVars struct {
	Goroutines int    `json:"goroutines"`
	AllocBytes uint64 `json:"alloc_bytes"`
	SysBytes   uint64 `json:"sys_bytes"`
	NumGC      uint32 `json:"num_gc"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Handler serves a registry over HTTP:
//
//	/              index of endpoints
//	/metrics       Prometheus text exposition (histograms as summaries)
//	/vars          expvar-style JSON: metric snapshots + runtime stats
//	/debug/pprof/  net/http/pprof profiles (heap, profile, trace, ...)
//
// plus any extra routes (the CLIs mount the flight recorder's
// /vars/history this way). Every endpoint sets an explicit Content-Type
// and emits metric families in the registry's sorted canonical order.
//
// pprof handlers are registered explicitly on a private mux — importing
// this package does not touch http.DefaultServeMux, and no other package
// in the module may import net/http/pprof (CI enforces this), so profiling
// is only ever exposed through an opt-in -telemetry listener.
func Handler(reg *Registry, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	index := []string{"/metrics", "/vars", "/debug/pprof/"}
	for _, rt := range extra {
		index = append(index, rt.Pattern)
	}
	sort.Strings(index)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "telemetry endpoints:\n")
		for _, p := range index {
			fmt.Fprintf(w, "  %s\n", p)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, reg)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(varsBody{
			Metrics: reg.Snapshot(),
			Runtime: runtimeVars{
				Goroutines: runtime.NumGoroutine(),
				AllocBytes: ms.Alloc,
				SysBytes:   ms.Sys,
				NumGC:      ms.NumGC,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			},
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

// writePrometheus renders the registry in Prometheus text format.
// Counters and gauges are single samples; histograms and timers are
// rendered as summaries (quantile samples plus _sum and _count).
func writePrometheus(w http.ResponseWriter, reg *Registry) {
	snaps := reg.Snapshot()
	// Emit one TYPE line per family even when labeled variants repeat it.
	typed := make(map[string]bool)
	for _, s := range snaps {
		name := sanitize(s.Name)
		labels := promLabels(s.Labels)
		switch s.Kind {
		case KindCounter, KindFloatCounter:
			if !typed[name] {
				fmt.Fprintf(w, "# TYPE %s counter\n", name)
				typed[name] = true
			}
			fmt.Fprintf(w, "%s%s %g\n", name, labels, s.Value)
		case KindGauge:
			if !typed[name] {
				fmt.Fprintf(w, "# TYPE %s gauge\n", name)
				typed[name] = true
			}
			fmt.Fprintf(w, "%s%s %g\n", name, labels, s.Value)
		case KindHistogram, KindTimer:
			if !typed[name] {
				fmt.Fprintf(w, "# TYPE %s summary\n", name)
				typed[name] = true
			}
			for _, qv := range []struct {
				q string
				v float64
			}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
				fmt.Fprintf(w, "%s%s %g\n", name, promLabelsWith(s.Labels, "quantile", qv.q), qv.v)
			}
			fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, s.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
		}
	}
}

func promLabels(labels map[string]string) string {
	return promLabelsWith(labels, "", "")
}

// promLabelsWith renders a label map (plus one optional extra pair) as
// {k="v",...}, with keys sorted for stable output.
func promLabelsWith(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", sanitize(k), labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// Serve starts the exposition endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") in a background goroutine and returns the server together
// with the bound address. Extra routes are mounted as in Handler. The
// caller owns shutdown via srv.Close.
func Serve(addr string, reg *Registry, extra ...Route) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, extra...)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
