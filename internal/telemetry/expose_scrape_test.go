package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

type stringHandler string

func (s stringHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprint(w, string(s))
}

// TestExpositionDeterministicOrder scrapes a static registry twice and
// checks the output is byte-identical with families in sorted order and
// explicit Content-Type headers on every endpoint.
func TestExpositionDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta_total").Add(1)
	reg.Counter("alpha_total").Add(2)
	reg.Gauge("mid_gauge", L("b", "2")).Set(3)
	reg.Gauge("mid_gauge", L("a", "1")).Set(4)
	reg.Histogram("hist_cells").Observe(10)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path, wantCT string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != wantCT {
			t.Errorf("GET %s Content-Type = %q, want %q", path, got, wantCT)
		}
		var b strings.Builder
		if _, err := fmt.Fprint(&b, readAll(t, resp.Body)); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	m1 := get("/metrics", "text/plain; version=0.0.4; charset=utf-8")
	m2 := get("/metrics", "text/plain; version=0.0.4; charset=utf-8")
	if m1 != m2 {
		t.Error("/metrics not byte-identical across scrapes of a static registry")
	}
	// Families sorted: alpha before mid before zeta; label variants sorted.
	for _, pair := range [][2]string{
		{"alpha_total", "hist_cells"},
		{"hist_cells", "mid_gauge"},
		{`mid_gauge{a="1"}`, `mid_gauge{b="2"}`},
		{"mid_gauge", "zeta_total"},
	} {
		if strings.Index(m1, pair[0]) >= strings.Index(m1, pair[1]) {
			t.Errorf("/metrics order: %q should precede %q\n%s", pair[0], pair[1], m1)
		}
	}

	get("/", "text/plain; charset=utf-8")
	v1 := get("/vars", "application/json")
	var body struct {
		Metrics []Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(v1), &body); err != nil {
		t.Fatalf("/vars decode: %v", err)
	}
	for i := 1; i < len(body.Metrics); i++ {
		if body.Metrics[i-1].Name > body.Metrics[i].Name {
			t.Errorf("/vars metrics unsorted: %s after %s", body.Metrics[i].Name, body.Metrics[i-1].Name)
		}
	}
}

func TestHandlerExtraRoutes(t *testing.T) {
	reg := NewRegistry()
	extra := Route{Pattern: "/vars/history", Handler: stringHandler("history!")}
	srv := httptest.NewServer(Handler(reg, extra))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/vars/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := readAll(t, resp.Body); got != "history!" {
		t.Errorf("extra route body %q", got)
	}
	resp2, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if idx := readAll(t, resp2.Body); !strings.Contains(idx, "/vars/history") {
		t.Errorf("index does not list extra route:\n%s", idx)
	}
}

// TestScrapeWhileWrite hammers /metrics and /vars while writers mutate the
// registry — run under -race in CI. Counters parsed from consecutive
// /vars scrapes must never decrease.
func TestScrapeWhileWrite(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("scrape_hammer_total")
			h := reg.Histogram("scrape_hammer_cells", L("w", fmt.Sprint(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i % 1000))
			}
		}(w)
	}

	deadline := time.After(200 * time.Millisecond)
	var lastCounter float64
	var lastCounts = map[string]int64{}
scrape:
	for {
		select {
		case <-deadline:
			break scrape
		default:
		}
		for _, path := range []string{"/metrics", "/vars"} {
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			if path == "/vars" {
				var body struct {
					Metrics []Snapshot `json:"metrics"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Fatalf("/vars decode: %v", err)
				}
				for _, m := range body.Metrics {
					switch m.Kind {
					case KindCounter:
						if m.Name == "scrape_hammer_total" {
							if m.Value < lastCounter {
								t.Fatalf("counter went backwards: %g -> %g", lastCounter, m.Value)
							}
							lastCounter = m.Value
						}
					case KindHistogram:
						key := m.Name + "|" + m.Labels["w"]
						if m.Count < lastCounts[key] {
							t.Fatalf("histogram %s count went backwards: %d -> %d",
								key, lastCounts[key], m.Count)
						}
						lastCounts[key] = m.Count
					}
				}
			}
			resp.Body.Close()
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkHistogramStats measures one full histogram snapshot — the
// flight recorder's per-scrape cost. The pooled counts buffer keeps this
// allocation-free (before the pool: one ~4.5 KB slice per call).
func BenchmarkHistogramStats(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := h.Stats()
		if st.Count == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkHistogramQuantile measures the lighter single-quantile path.
func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Quantile(0.99) == 0 {
			b.Fatal("zero quantile")
		}
	}
}
