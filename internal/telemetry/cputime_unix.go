//go:build unix

package telemetry

import "syscall"

// CPUSeconds returns the process's consumed CPU time (user + system,
// summed across all threads) in seconds, for run-manifest summaries. The
// ratio CPUSeconds/wall-clock is the effective parallelism of a run.
func CPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvSeconds(ru.Utime) + tvSeconds(ru.Stime)
}

func tvSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}
