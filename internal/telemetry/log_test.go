package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLoggerLevelFiltering(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, "tool", LevelWarn)
	l.Errorf("boom")
	l.Warnf("careful")
	l.Infof("progress")
	l.Debugf("detail")
	got := buf.String()
	if !strings.Contains(got, "tool: error: boom") {
		t.Errorf("missing error line in %q", got)
	}
	if !strings.Contains(got, "tool: warn: careful") {
		t.Errorf("missing warn line in %q", got)
	}
	if strings.Contains(got, "progress") || strings.Contains(got, "detail") {
		t.Errorf("suppressed levels leaked: %q", got)
	}
}

func TestLoggerInfoHasNoLevelTag(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, "repro", LevelInfo)
	l.Infof("fig8 done")
	if got, want := buf.String(), "repro: fig8 done\n"; got != want {
		t.Errorf("info line = %q, want %q", got, want)
	}
	buf.Reset()
	l.SetPrefix("")
	l.Infof("bare")
	if got, want := buf.String(), "bare\n"; got != want {
		t.Errorf("unprefixed info line = %q, want %q", got, want)
	}
}

func TestLevelFromFlags(t *testing.T) {
	cases := []struct {
		verbose, quiet bool
		want           Level
	}{
		{false, false, LevelInfo},
		{true, false, LevelDebug},
		{false, true, LevelError},
		{true, true, LevelError}, // quiet wins
	}
	for _, c := range cases {
		if got := LevelFromFlags(c.verbose, c.quiet); got != c.want {
			t.Errorf("LevelFromFlags(%v, %v) = %v, want %v", c.verbose, c.quiet, got, c.want)
		}
	}
}

func TestLoggerWriterAdapter(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, "", LevelInfo)
	w := l.Writer(LevelInfo)
	fmt.Fprintf(w, "progress 50%%\n")
	if got, want := buf.String(), "progress 50%\n"; got != want {
		t.Errorf("writer line = %q, want %q", got, want)
	}
	// Writes below the level are swallowed but still report success.
	buf.Reset()
	dw := l.Writer(LevelDebug)
	n, err := dw.Write([]byte("hidden\n"))
	if err != nil || n != 7 {
		t.Errorf("Write = (%d, %v), want (7, nil)", n, err)
	}
	if buf.Len() != 0 {
		t.Errorf("debug write leaked at info level: %q", buf.String())
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	l := NewLogger(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), "x", LevelDebug)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Infof("worker %d line %d", i, j)
				l.SetLevel(LevelDebug)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	lines := strings.Count(buf.String(), "\n")
	mu.Unlock()
	if lines != 8*50 {
		t.Errorf("got %d lines, want %d", lines, 8*50)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
