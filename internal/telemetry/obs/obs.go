// Package obs is the command-line glue between the flight recorder
// (internal/telemetry/flight), the SLO engine (internal/telemetry/slo)
// and the continuous profiler (internal/telemetry/prof): one flag set,
// one Start call, one Finish call, shared by every CLI so `-flight`,
// `-flight-interval`, `-slo`, `-profile` and `-profile-interval` mean
// the same thing in repro, atmsim, admitd and admitload.
//
// The packages stay decoupled — flight knows nothing of SLO rules or
// profile stores, slo knows nothing of recording cadence — and meet only
// here, through the recorder's hooks: each snapshot is fed to the engine
// as it is taken (OnFrame), so breaches increment slo_* counters online
// (visible on /metrics mid-run) rather than in a post-hoc replay, and
// the runtime/metrics bridge is polled just before each scrape
// (BeforeSnapshot), so every frame carries fresh go_* runtime-health
// metrics for both the log and the SLO rules.
//
// Typical wiring:
//
//	obsFlags := obs.AddFlags()          // before flag.Parse
//	flag.Parse()
//	sess, err := obsFlags.Start(telemetry.Default, "mytool")
//	...
//	telemetry.Serve(addr, reg, sess.Routes()...)   // mounts /vars/history
//	...
//	if !sess.Finish() { os.Exit(3) }    // stop, log verdict, gate exit
//
// Every method on *Session is nil-safe, so callers need no "is
// observability on" branches: a nil session routes nothing and finishes
// clean.
package obs

import (
	"flag"
	"fmt"
	"net/http"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
	"repro/internal/telemetry/prof"
	"repro/internal/telemetry/slo"
)

// Flags holds the shared observability flag values. Zero value = off.
type Flags struct {
	// Path is the -flight flag: the JSONL flight-log destination.
	Path string
	// Interval is the -flight-interval flag: the snapshot cadence.
	Interval time.Duration
	// Rules is the -slo flag: a semicolon-separated slo.ParseList input.
	Rules string
	// ProfileDir is the -profile flag: the continuous-profiling store
	// directory.
	ProfileDir string
	// ProfileInterval is the -profile-interval flag: the capture cadence.
	ProfileInterval time.Duration
}

// AddFlags registers -flight, -flight-interval, -slo, -profile and
// -profile-interval on the default flag set and returns the value
// holder. Call before flag.Parse.
func AddFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Path, "flight", "", "record a delta-encoded JSONL flight log of periodic metric snapshots to this file (replay with obsreport); empty = off")
	flag.DurationVar(&f.Interval, "flight-interval", flight.DefaultInterval, "flight recorder snapshot cadence (min 10ms)")
	flag.StringVar(&f.Rules, "slo", "", `semicolon-separated SLO rules evaluated against each snapshot, e.g. 'p99(admitd_decision_latency_seconds) <= 0.01; value(mux_cells_lost_total) within [0, 1e6]'; any breach fails the run`)
	flag.StringVar(&f.ProfileDir, "profile", "", "capture continuous CPU/heap/goroutine profiles into this store directory (inspect with profdiff/obsreport); empty = off")
	flag.DurationVar(&f.ProfileInterval, "profile-interval", prof.DefaultCollectInterval, "continuous-profiling capture cadence (min 100ms); each capture opens a CPU window of half the cadence")
	return f
}

// Session is a live recorder (always) plus an SLO engine (with -slo) and
// a profile collector (with -profile). A nil *Session is valid and
// inert.
type Session struct {
	Rec  *flight.Recorder
	Eng  *slo.Engine     // nil without -slo
	Prof *prof.Collector // nil without -profile

	tool string
	path string
}

// Start launches the recorder — and the online SLO evaluation when rules
// were given, and the profile collector when a store dir was given —
// against reg. Returns (nil, nil) when all flags are off: observability
// not requested. SLO rules or a profile dir without a -flight path are
// valid (the recorder then keeps only its in-memory ring). Any session
// also attaches the runtime/metrics bridge, so every frame — and every
// SLO evaluation — sees fresh go_* runtime-health metrics.
func (f *Flags) Start(reg *telemetry.Registry, tool string) (*Session, error) {
	if f == nil || (f.Path == "" && f.Rules == "" && f.ProfileDir == "") {
		return nil, nil
	}
	s := &Session{tool: tool, path: f.Path}
	if f.Rules != "" {
		rules, err := slo.ParseList(f.Rules)
		if err != nil {
			return nil, fmt.Errorf("-slo: %w", err)
		}
		s.Eng = slo.NewEngine(reg, rules)
	}
	opts := flight.Options{
		Interval: f.Interval,
		Path:     f.Path,
		Tool:     tool,
	}
	if s.Eng != nil {
		eng := s.Eng
		opts.OnFrame = func(cur flight.Frame, prev *flight.Frame) {
			eng.Observe(cur.Metrics, cur.ElapsedSeconds)
		}
	}
	// The bridge polls on the recorder goroutine just before each scrape;
	// NewRuntimeBridge takes the baseline poll here so even frame 0
	// carries live gauges.
	bridge := prof.NewRuntimeBridge(reg)
	opts.BeforeSnapshot = bridge.Poll
	if f.ProfileDir != "" {
		col, err := prof.StartCollector(prof.CollectorOptions{
			Dir:      f.ProfileDir,
			Interval: f.ProfileInterval,
			Tool:     tool,
			Registry: reg,
		})
		if err != nil {
			return nil, fmt.Errorf("-profile: %w", err)
		}
		s.Prof = col
	}
	rec, err := flight.Start(reg, opts)
	if err != nil {
		if s.Prof != nil {
			s.Prof.Stop()
		}
		return nil, err
	}
	s.Rec = rec
	telemetry.Log.Infof("flight recorder on (interval %v%s)", opts.Interval, describeSinks(f))
	return s, nil
}

// describeSinks renders the active sinks for the startup log line.
func describeSinks(f *Flags) string {
	out := ""
	if f.Path != "" {
		out += ", log " + f.Path
	}
	if f.Rules != "" {
		out += ", slo online"
	}
	if f.ProfileDir != "" {
		out += ", profiles " + f.ProfileDir
	}
	return out
}

// Routes returns the extra telemetry endpoint routes this session serves
// (the /vars/history ring). Splice into telemetry.Serve/Handler.
func (s *Session) Routes() []telemetry.Route {
	if s == nil {
		return nil
	}
	return []telemetry.Route{{Pattern: "/vars/history", Handler: s.Rec.HistoryHandler()}}
}

// History returns the /vars/history handler, for servers that mount
// their own mux (admitd's Config.History). Nil when the session is nil.
func (s *Session) History() http.Handler {
	if s == nil {
		return nil
	}
	return s.Rec.HistoryHandler()
}

// Finish stops the recorder (recording the final frame) and the profile
// collector (capturing the final snapshot set), logs the SLO verdict,
// and reports whether the run is observability-clean: true when the log
// and profile store were written intact and no SLO rule failed. Callers
// gate their exit status on it.
func (s *Session) Finish() bool {
	if s == nil {
		return true
	}
	ok := true
	if err := s.Rec.Stop(); err != nil {
		telemetry.Log.Errorf("flight log %s: %v", s.path, err)
		ok = false
	} else if s.path != "" {
		telemetry.Log.Infof("flight log: %d frames in ring, log %s", s.Rec.Len(), s.path)
	}
	if s.Prof != nil {
		if err := s.Prof.Stop(); err != nil {
			telemetry.Log.Errorf("profile store %s: %v", s.Prof.Dir(), err)
			ok = false
		} else {
			telemetry.Log.Infof("profile store: %s", s.Prof.Dir())
		}
	}
	if s.Eng != nil {
		v := s.Eng.Verdict()
		if v.Failed {
			telemetry.Log.Errorf("SLO verdict: FAIL\n%s", v.Summary())
			ok = false
		} else {
			telemetry.Log.Infof("SLO verdict: PASS\n%s", v.Summary())
		}
	}
	return ok
}
