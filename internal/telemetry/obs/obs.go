// Package obs is the command-line glue between the flight recorder
// (internal/telemetry/flight) and the SLO engine (internal/telemetry/slo):
// one flag set, one Start call, one Finish call, shared by every CLI so
// `-flight`, `-flight-interval` and `-slo` mean the same thing in repro,
// atmsim, admitd and admitload.
//
// The two packages stay decoupled — flight knows nothing of SLO rules,
// slo knows nothing of recording cadence — and meet only here, through
// the recorder's OnFrame hook: each snapshot is fed to the engine as it
// is taken, so breaches increment slo_* counters online (visible on
// /metrics mid-run) rather than in a post-hoc replay.
//
// Typical wiring:
//
//	obsFlags := obs.AddFlags()          // before flag.Parse
//	flag.Parse()
//	sess, err := obsFlags.Start(telemetry.Default, "mytool")
//	...
//	telemetry.Serve(addr, reg, sess.Routes()...)   // mounts /vars/history
//	...
//	if !sess.Finish() { os.Exit(3) }    // stop, log verdict, gate exit
//
// Every method on *Session is nil-safe, so callers need no "is
// observability on" branches: a nil session routes nothing and finishes
// clean.
package obs

import (
	"flag"
	"fmt"
	"net/http"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
	"repro/internal/telemetry/slo"
)

// Flags holds the shared observability flag values. Zero value = off.
type Flags struct {
	// Path is the -flight flag: the JSONL flight-log destination.
	Path string
	// Interval is the -flight-interval flag: the snapshot cadence.
	Interval time.Duration
	// Rules is the -slo flag: a semicolon-separated slo.ParseList input.
	Rules string
}

// AddFlags registers -flight, -flight-interval and -slo on the default
// flag set and returns the value holder. Call before flag.Parse.
func AddFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Path, "flight", "", "record a delta-encoded JSONL flight log of periodic metric snapshots to this file (replay with obsreport); empty = off")
	flag.DurationVar(&f.Interval, "flight-interval", flight.DefaultInterval, "flight recorder snapshot cadence (min 10ms)")
	flag.StringVar(&f.Rules, "slo", "", `semicolon-separated SLO rules evaluated against each snapshot, e.g. 'p99(admitd_decision_latency_seconds) <= 0.01; value(mux_cells_lost_total) within [0, 1e6]'; any breach fails the run`)
	return f
}

// Session is a live recorder (always) plus an SLO engine (with -slo).
// A nil *Session is valid and inert.
type Session struct {
	Rec *flight.Recorder
	Eng *slo.Engine // nil without -slo

	tool string
	path string
}

// Start launches the recorder — and the online SLO evaluation when rules
// were given — against reg. Returns (nil, nil) when both flags are off:
// observability not requested. SLO rules without a -flight path are
// valid (the recorder then keeps only its in-memory ring).
func (f *Flags) Start(reg *telemetry.Registry, tool string) (*Session, error) {
	if f == nil || (f.Path == "" && f.Rules == "") {
		return nil, nil
	}
	s := &Session{tool: tool, path: f.Path}
	if f.Rules != "" {
		rules, err := slo.ParseList(f.Rules)
		if err != nil {
			return nil, fmt.Errorf("-slo: %w", err)
		}
		s.Eng = slo.NewEngine(reg, rules)
	}
	opts := flight.Options{
		Interval: f.Interval,
		Path:     f.Path,
		Tool:     tool,
	}
	if s.Eng != nil {
		eng := s.Eng
		opts.OnFrame = func(cur flight.Frame, prev *flight.Frame) {
			eng.Observe(cur.Metrics, cur.ElapsedSeconds)
		}
	}
	rec, err := flight.Start(reg, opts)
	if err != nil {
		return nil, err
	}
	s.Rec = rec
	telemetry.Log.Infof("flight recorder on (interval %v%s)", opts.Interval, describeSinks(f))
	return s, nil
}

// describeSinks renders the active sinks for the startup log line.
func describeSinks(f *Flags) string {
	out := ""
	if f.Path != "" {
		out += ", log " + f.Path
	}
	if f.Rules != "" {
		out += ", slo online"
	}
	return out
}

// Routes returns the extra telemetry endpoint routes this session serves
// (the /vars/history ring). Splice into telemetry.Serve/Handler.
func (s *Session) Routes() []telemetry.Route {
	if s == nil {
		return nil
	}
	return []telemetry.Route{{Pattern: "/vars/history", Handler: s.Rec.HistoryHandler()}}
}

// History returns the /vars/history handler, for servers that mount
// their own mux (admitd's Config.History). Nil when the session is nil.
func (s *Session) History() http.Handler {
	if s == nil {
		return nil
	}
	return s.Rec.HistoryHandler()
}

// Finish stops the recorder (recording the final frame), logs the SLO
// verdict, and reports whether the run is observability-clean: true when
// the log was written intact and no SLO rule failed. Callers gate their
// exit status on it.
func (s *Session) Finish() bool {
	if s == nil {
		return true
	}
	ok := true
	if err := s.Rec.Stop(); err != nil {
		telemetry.Log.Errorf("flight log %s: %v", s.path, err)
		ok = false
	} else if s.path != "" {
		telemetry.Log.Infof("flight log: %d frames in ring, log %s", s.Rec.Len(), s.path)
	}
	if s.Eng != nil {
		v := s.Eng.Verdict()
		if v.Failed {
			telemetry.Log.Errorf("SLO verdict: FAIL\n%s", v.Summary())
			ok = false
		} else {
			telemetry.Log.Infof("SLO verdict: PASS\n%s", v.Summary())
		}
	}
	return ok
}
