//go:build !unix

package telemetry

// CPUSeconds is unavailable off unix; manifests record 0 there.
func CPUSeconds() float64 { return 0 }
