package telemetry

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testHeader() ManifestHeader {
	return ManifestHeader{
		Tool:   "repro",
		Args:   []string{"-exp", "fig8", "-seed", "7"},
		Start:  time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC).Format(time.RFC3339Nano),
		Seed:   7,
		Config: map[string]string{"reps": "2", "frames": "3000"},
	}
}

// TestManifestRoundTrip proves the schema round-trips: everything written
// through ManifestWriter decodes back structurally identical.
func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	w, err := CreateManifest(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	stages := []StageRecord{
		{ID: "fig8", WallSeconds: 1.25},
		{ID: "fig9", WallSeconds: 2.5, Err: "interrupted"},
	}
	for _, s := range stages {
		if err := w.Stage(s); err != nil {
			t.Fatal(err)
		}
	}
	result := ResultRecord{
		Stage: "fig8", ID: "fig8a", Title: "Simulated CLR of V^v",
		Series: []SeriesRecord{{
			Label: "V^0.5",
			X:     []float64{0, 1, 2},
			Y:     []float64{1e-5, 3e-6, 1e-6},
			Lo:    []float64{8e-6, 2e-6, 5e-7},
			Hi:    []float64{1.2e-5, 4e-6, 1.5e-6},
		}},
	}
	if err := w.Result(result); err != nil {
		t.Fatal(err)
	}
	summary := RunSummary{
		WallSeconds: 3.75, CPUSeconds: 12.5,
		End:     time.Date(2026, 8, 6, 12, 0, 4, 0, time.UTC).Format(time.RFC3339Nano),
		Metrics: []Snapshot{{Name: "mux_frames_total", Kind: KindCounter, Value: 6000}},
	}
	if err := w.Close(summary); err != nil {
		t.Fatal(err)
	}

	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.SchemaVersion != ManifestSchemaVersion {
		t.Errorf("schema version = %d, want %d", m.Header.SchemaVersion, ManifestSchemaVersion)
	}
	if m.Header.Tool != "repro" || m.Header.Seed != 7 || m.Header.Config["frames"] != "3000" {
		t.Errorf("header did not round-trip: %+v", m.Header)
	}
	if m.Header.GoVersion == "" {
		t.Error("GoVersion not auto-filled")
	}
	if m.Header.GitRevision == "" {
		t.Error("GitRevision not auto-filled (want at least \"unknown\")")
	}
	if !reflect.DeepEqual(m.Stages, stages) {
		t.Errorf("stages did not round-trip:\n got %+v\nwant %+v", m.Stages, stages)
	}
	if len(m.Results) != 1 || !reflect.DeepEqual(m.Results[0], result) {
		t.Errorf("result did not round-trip:\n got %+v\nwant %+v", m.Results, result)
	}
	if m.Summary == nil || !reflect.DeepEqual(*m.Summary, summary) {
		t.Errorf("summary did not round-trip:\n got %+v\nwant %+v", m.Summary, summary)
	}
}

// An interrupted run leaves a header (and possibly stages) with no
// summary; that must still decode.
func TestManifestInterrupted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	w, err := CreateManifest(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Stage(StageRecord{ID: "fig8", WallSeconds: 1}); err != nil {
		t.Fatal(err)
	}
	w.f.Close() // simulate the process dying before Close

	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Summary != nil {
		t.Error("interrupted manifest should have nil summary")
	}
	if len(m.Stages) != 1 {
		t.Errorf("stages = %d, want 1", len(m.Stages))
	}
}

func TestManifestRejectsGarbageAndFuture(t *testing.T) {
	dir := t.TempDir()
	noHeader := filepath.Join(dir, "nh.jsonl")
	os.WriteFile(noHeader, []byte(`{"type":"stage","stage":{"id":"x"}}`+"\n"), 0o644)
	if _, err := ReadManifest(noHeader); err == nil {
		t.Error("manifest without header should fail to decode")
	}
	future := filepath.Join(dir, "fut.jsonl")
	os.WriteFile(future, []byte(`{"type":"header","header":{"schema_version":999,"tool":"x","start":"t"}}`+"\n"), 0o644)
	if _, err := ReadManifest(future); err == nil {
		t.Error("manifest with future schema version should fail to decode")
	}
	garbage := filepath.Join(dir, "g.jsonl")
	os.WriteFile(garbage, []byte("not json\n"), 0o644)
	if _, err := ReadManifest(garbage); err == nil {
		t.Error("non-JSON manifest should fail to decode")
	}
}
