// Package telemetry is the repository's observability layer: a lock-cheap
// metrics registry (atomic counters, float counters, gauges, streaming
// histograms with quantile estimates, and timers) with labeled metric
// families, plus two sinks — a structured JSONL run-manifest writer
// (manifest.go) and an HTTP exposition endpoint serving expvar-style JSON,
// Prometheus text format and net/http/pprof (expose.go).
//
// Design constraints, in order:
//
//  1. Recording must never perturb results. Metrics are observational:
//     nothing in this package touches random number streams or simulation
//     state, so fixed-seed outputs are bit-identical with telemetry read,
//     exposed, or ignored.
//  2. Recording must be cheap enough for simulation hot paths. Counter.Add
//     is one atomic add; FloatCounter/Gauge are one CAS loop (uncontended
//     in practice — writers are per-chunk, not per-frame); Histogram.Observe
//     is one bucket-index computation plus a handful of atomics. No locks
//     are taken after a metric has been created.
//  3. Reading is approximately consistent. Snapshots read each atomic
//     individually without fencing the set, which is the usual (and here
//     sufficient) contract for progress observability.
//
// Metrics live in a Registry. The package-level Default registry is the
// recording target for the cross-cutting instrumentation in internal/mux,
// internal/fgn and internal/experiments; internal/runner engines default to
// a private registry so concurrently-tested engines do not share counters,
// and accept Default explicitly in the CLIs.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry used by package-level
// instrumentation (mux chunk metrics, fgn cache metrics, experiment stage
// timers). CLIs expose and snapshot it; tests read deltas from it.
var Default = NewRegistry()

// Label is one key=value dimension of a metric family.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind enumerates the metric types a registry can hold.
type Kind string

const (
	KindCounter      Kind = "counter"
	KindFloatCounter Kind = "float_counter"
	KindGauge        Kind = "gauge"
	KindHistogram    Kind = "histogram"
	KindTimer        Kind = "timer"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is a programming error but is not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 metric, for
// accumulated quantities that are naturally fractional (e.g. fluid cells).
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v via a CAS loop.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 metric that can move in either direction.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v via a CAS loop.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metric is one registered instrument.
type metric struct {
	name   string
	labels []Label // sorted by key
	kind   Kind

	c *Counter
	f *FloatCounter
	g *Gauge
	h *Histogram
	t *Timer
}

// Registry is a set of named, optionally labeled metrics. The zero value
// is not usable; call NewRegistry. Lookup/creation takes a mutex; the
// returned instruments are lock-free, so callers should hold on to them
// rather than re-looking them up per observation when the path is hot.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// key builds the lookup key and returns the sorted label set.
func key(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), ls
}

// lookup returns the metric for (name, labels), creating it with mk on
// first use. Requesting an existing metric with a different kind panics:
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(name string, kind Kind, labels []Label, mk func(*metric)) *metric {
	k, ls := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[k]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: ls, kind: kind}
	mk(m)
	r.metrics[k] = m
	return m
}

// Counter returns the int64 counter for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, KindCounter, labels, func(m *metric) { m.c = &Counter{} }).c
}

// FloatCounter returns the float64 counter for (name, labels).
func (r *Registry) FloatCounter(name string, labels ...Label) *FloatCounter {
	return r.lookup(name, KindFloatCounter, labels, func(m *metric) { m.f = &FloatCounter{} }).f
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, KindGauge, labels, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns the streaming histogram for (name, labels).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, KindHistogram, labels, func(m *metric) { m.h = NewHistogram() }).h
}

// Timer returns the duration timer for (name, labels). Timers record into
// a histogram of seconds.
func (r *Registry) Timer(name string, labels ...Label) *Timer {
	return r.lookup(name, KindTimer, labels, func(m *metric) { m.t = &Timer{h: NewHistogram()} }).t
}

// Snapshot is one metric's point-in-time state, as written to manifests
// and the JSON exposition endpoint. Scalar metrics fill Value; histograms
// and timers fill Count/Sum/Min/Max and the fixed quantile set.
type Snapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   Kind              `json:"kind"`
	Value  float64           `json:"value,omitempty"`
	Count  int64             `json:"count,omitempty"`
	// NonFinite counts quarantined NaN/±Inf histogram observations; they
	// participate in no other statistic.
	NonFinite int64   `json:"non_finite,omitempty"`
	Sum       float64 `json:"sum,omitempty"`
	Min       float64 `json:"min,omitempty"`
	Max       float64 `json:"max,omitempty"`
	P50       float64 `json:"p50,omitempty"`
	P95       float64 `json:"p95,omitempty"`
	P99       float64 `json:"p99,omitempty"`
}

// Snapshot returns the state of every registered metric, sorted by name
// then labels, suitable for JSON encoding.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return labelString(ms[i].labels) < labelString(ms[j].labels)
	})
	out := make([]Snapshot, 0, len(ms))
	for _, m := range ms {
		s := Snapshot{Name: m.name, Kind: m.kind}
		if len(m.labels) > 0 {
			s.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindFloatCounter:
			s.Value = m.f.Value()
		case KindGauge:
			s.Value = m.g.Value()
		case KindHistogram, KindTimer:
			h := m.h
			if m.kind == KindTimer {
				h = m.t.h
			}
			st := h.Stats()
			s.Count, s.Sum, s.Min, s.Max = st.Count, st.Sum, st.Min, st.Max
			s.P50, s.P95, s.P99 = st.P50, st.P95, st.P99
			s.NonFinite = st.NonFinite
		}
		out = append(out, s)
	}
	return out
}

// labelString renders sorted labels as {k="v",...} (empty for none) — the
// Prometheus exposition form, reused as a stable sort key.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", sanitize(l.Key), l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sanitize maps a metric or label name into the Prometheus-legal charset.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}
