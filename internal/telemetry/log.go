package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Level orders log severities. Messages at or below the logger's level
// are written; LevelError is the quietest setting that still reports
// failures.
type Level int32

const (
	LevelError Level = iota
	LevelWarn
	LevelInfo
	LevelDebug
)

func (l Level) String() string {
	switch l {
	case LevelError:
		return "error"
	case LevelWarn:
		return "warn"
	case LevelInfo:
		return "info"
	case LevelDebug:
		return "debug"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// Logger is the small leveled logger behind every human-readable line the
// CLIs and the runner emit — one formatting convention, one place the
// -v/-quiet flags act on, instead of ad-hoc fmt.Fprintf(os.Stderr, ...)
// scattered per call site. Lines render as "prefix: message" with a
// "warn:"/"debug:" tag on non-default severities, matching the existing
// CLI output style. All methods are safe for concurrent use; the level
// can be changed while goroutines log.
type Logger struct {
	mu     sync.Mutex
	out    io.Writer
	prefix string
	level  atomic.Int32
}

// NewLogger builds a logger writing to w (nil = stderr) with the given
// prefix and level.
func NewLogger(w io.Writer, prefix string, level Level) *Logger {
	if w == nil {
		w = os.Stderr
	}
	l := &Logger{out: w, prefix: prefix}
	l.level.Store(int32(level))
	return l
}

// Log is the process-wide default logger, used by package-level
// instrumentation and any code not handed an explicit logger. CLIs set
// its prefix and level from their flags at startup.
var Log = NewLogger(os.Stderr, "", LevelInfo)

// SetLevel changes the logger's verbosity.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// GetLevel returns the current verbosity.
func (l *Logger) GetLevel() Level { return Level(l.level.Load()) }

// SetPrefix changes the line prefix (typically the binary name).
func (l *Logger) SetPrefix(prefix string) {
	l.mu.Lock()
	l.prefix = prefix
	l.mu.Unlock()
}

// Enabled reports whether a message at level would be written, for
// callers that want to skip expensive argument construction.
func (l *Logger) Enabled(level Level) bool { return level <= l.GetLevel() }

// LevelFromFlags maps the conventional CLI pair (-v, -quiet) to a level:
// -quiet wins and drops to errors only, -v raises to debug, neither is
// the info default.
func LevelFromFlags(verbose, quiet bool) Level {
	switch {
	case quiet:
		return LevelError
	case verbose:
		return LevelDebug
	default:
		return LevelInfo
	}
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.prefix != "" && level == LevelInfo:
		fmt.Fprintf(l.out, "%s: %s\n", l.prefix, msg)
	case l.prefix != "":
		fmt.Fprintf(l.out, "%s: %s: %s\n", l.prefix, level, msg)
	case level == LevelInfo:
		fmt.Fprintln(l.out, msg)
	default:
		fmt.Fprintf(l.out, "%s: %s\n", level, msg)
	}
}

// Errorf logs at LevelError (never suppressed short of discarding the
// writer).
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// Warnf logs at LevelWarn.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Infof logs at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Debugf logs at LevelDebug (shown only under -v).
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Writer adapts the logger to an io.Writer emitting whole lines at the
// given level — the bridge for components that take a writer (e.g. the
// runner's progress logger), so their output obeys -quiet like everything
// else. Trailing newlines are trimmed to avoid blank lines.
func (l *Logger) Writer(level Level) io.Writer {
	return writerAdapter{l: l, level: level}
}

type writerAdapter struct {
	l     *Logger
	level Level
}

func (w writerAdapter) Write(p []byte) (int, error) {
	msg := string(p)
	for len(msg) > 0 && (msg[len(msg)-1] == '\n' || msg[len(msg)-1] == '\r') {
		msg = msg[:len(msg)-1]
	}
	if msg != "" {
		w.l.logf(w.level, "%s", msg)
	}
	return len(p), nil
}
