package telemetry

import (
	"encoding/json"
	"math"
	"testing"
)

// Zero and negative observations are finite: they must land in the
// underflow bucket and participate in count/sum/min/max/quantiles without
// corrupting anything.
func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-3.5)
	h.Observe(2.0)

	st := h.Stats()
	if st.Count != 3 {
		t.Fatalf("Count = %d, want 3", st.Count)
	}
	if st.NonFinite != 0 {
		t.Fatalf("NonFinite = %d, want 0", st.NonFinite)
	}
	if st.Min != -3.5 || st.Max != 2.0 {
		t.Fatalf("Min/Max = %v/%v, want -3.5/2.0", st.Min, st.Max)
	}
	if got, want := st.Sum, -1.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	// Quantiles are clamped to the exact observed range.
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		v := h.Quantile(q)
		if v < st.Min || v > st.Max {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, st.Min, st.Max)
		}
	}
}

// NaN and ±Inf observations must be quarantined: counted in NonFinite and
// excluded from every other statistic, leaving quantiles finite and the
// snapshot JSON-encodable.
func TestHistogramNonFiniteQuarantine(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))

	if got := h.NonFinite(); got != 3 {
		t.Fatalf("NonFinite = %d, want 3", got)
	}
	st := h.Stats()
	if st.Count != 3 {
		t.Fatalf("Count = %d, want 3 (non-finite must not count)", st.Count)
	}
	if st.Min != 1 || st.Max != 3 {
		t.Fatalf("Min/Max = %v/%v, want 1/3 (±Inf must not widen range)", st.Min, st.Max)
	}
	if math.Abs(st.Sum-6) > 1e-12 {
		t.Fatalf("Sum = %v, want 6 (NaN must not poison sum)", st.Sum)
	}
	for _, v := range []float64{st.Sum, st.Min, st.Max, st.P50, st.P95, st.P99} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("stats contain non-finite value %v: %+v", v, st)
		}
	}
	// Bucket integrity: total bucket mass equals the finite count.
	countsBuf, total := h.snapshotCounts()
	defer putCounts(countsBuf)
	if total != 3 {
		t.Fatalf("bucket total = %d, want 3", total)
	}
	var sum int64
	for _, c := range *countsBuf {
		sum += c
	}
	if sum != total {
		t.Fatalf("bucket sum %d != total %d", sum, total)
	}
}

// An all-non-finite histogram reports empty stats (plus the quarantine
// count) rather than Inf min/max.
func TestHistogramOnlyNonFinite(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	st := h.Stats()
	if st.Count != 0 || st.NonFinite != 2 {
		t.Fatalf("Count/NonFinite = %d/%d, want 0/2", st.Count, st.NonFinite)
	}
	if st.Min != 0 || st.Max != 0 || st.Sum != 0 {
		t.Fatalf("empty stats not zero: %+v", st)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("Quantile on empty histogram = %v, want 0", h.Quantile(0.5))
	}
}

// Registry snapshots must stay JSON-encodable even after hostile
// observations — json.Marshal fails outright on NaN/Inf.
func TestSnapshotJSONSafeUnderNonFinite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_hist")
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(42)

	snaps := r.Snapshot()
	b, err := json.Marshal(snaps)
	if err != nil {
		t.Fatalf("Snapshot not JSON-encodable: %v", err)
	}
	var back []Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != 1 || back[0].NonFinite != 2 || back[0].Count != 1 {
		t.Fatalf("round-tripped snapshot wrong: %+v", back)
	}
}
