package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeFloatCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("same name did not return the same counter")
	}
	f := r.FloatCounter("f")
	f.Add(0.5)
	f.Add(1.25)
	if got := f.Value(); got != 1.75 {
		t.Errorf("float counter = %v, want 1.75", got)
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("stage", L("id", "fig8"))
	b := r.Counter("stage", L("id", "fig9"))
	if a == b {
		t.Fatal("different labels returned the same counter")
	}
	// Label order must not matter.
	x := r.Counter("multi", L("a", "1"), L("b", "2"))
	y := r.Counter("multi", L("b", "2"), L("a", "1"))
	if x != y {
		t.Error("label order changed metric identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("requesting a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	f := r.FloatCounter("x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", c.Value())
	}
	if f.Value() != 4000 {
		t.Errorf("concurrent float counter = %v, want 4000", f.Value())
	}
}

// exactQuantile is the nearest-rank sorted-slice quantile the histogram
// approximates: the ceil(q·n)-th smallest element.
func exactQuantile(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistogramQuantiles checks the streaming quantile estimates against
// exact sorted-slice quantiles within the documented RelativeError bound,
// across distributions with very different shapes and scales.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := map[string]func() float64{
		"uniform":   func() float64 { return rng.Float64() },
		"exp":       func() float64 { return rng.ExpFloat64() * 1e-3 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64() * 2) },
		"heavy":     func() float64 { return math.Pow(rng.Float64(), -1.5) },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram()
			xs := make([]float64, 20000)
			for i := range xs {
				xs[i] = draw()
				h.Observe(xs[i])
			}
			sort.Float64s(xs)
			for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
				want := exactQuantile(xs, q)
				got := h.Quantile(q)
				relErr := math.Abs(got-want) / want
				if relErr > RelativeError+1e-12 {
					t.Errorf("q=%v: got %v, exact %v, rel err %.4f > bound %.4f",
						q, got, want, relErr, RelativeError)
				}
			}
			if h.Quantile(0) != xs[0] || h.Quantile(1) != xs[len(xs)-1] {
				t.Errorf("q=0/q=1 should be exact min/max: got %v/%v want %v/%v",
					h.Quantile(0), h.Quantile(1), xs[0], xs[len(xs)-1])
			}
		})
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty histogram should report zeros")
	}
	// Zero and negative observations land in the underflow bucket but keep
	// exact min/max via the clamp.
	h.Observe(0)
	h.Observe(-3)
	h.Observe(5)
	st := h.Stats()
	if st.Count != 3 || st.Min != -3 || st.Max != 5 || st.Sum != 2 {
		t.Errorf("stats = %+v, want count 3 min -3 max 5 sum 2", st)
	}
	if q := h.Quantile(0.01); q < -3 || q > 5 {
		t.Errorf("quantile %v outside observed range [-3, 5]", q)
	}
	// A single value is every quantile.
	h2 := NewHistogram()
	h2.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h2.Quantile(q)
		if math.Abs(got-7)/7 > RelativeError {
			t.Errorf("single-value q=%v = %v, want ≈7", q, got)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				h.Observe(float64(k*2000+j) + 1)
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 16000 {
		t.Errorf("concurrent count = %d, want 16000", h.Count())
	}
	st := h.Stats()
	if st.Min != 1 || st.Max != 16000 {
		t.Errorf("min/max = %v/%v, want 1/16000", st.Min, st.Max)
	}
	wantSum := 16000.0 * 16001 / 2
	if math.Abs(st.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("sum = %v, want %v", st.Sum, wantSum)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("op_seconds")
	tm.Observe(50 * time.Millisecond)
	stop := tm.Start()
	stop()
	if tm.Count() != 2 {
		t.Errorf("timer count = %d, want 2", tm.Count())
	}
	if s := tm.SumSeconds(); s < 0.05 || s > 10 {
		t.Errorf("timer sum = %v s, want ≥ 0.05 and sane", s)
	}
}

func TestSnapshotStableAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_level").Set(1.5)
	r.Histogram("c_hist").Observe(10)
	r.Timer("d_seconds").Observe(time.Second)
	r.Counter("b_labeled", L("k", "v")).Inc()
	snaps := r.Snapshot()
	if len(snaps) != 5 {
		t.Fatalf("snapshot has %d entries, want 5", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].Name > snaps[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", snaps[i-1].Name, snaps[i].Name)
		}
	}
	// Snapshots must round-trip through JSON (they enter manifests).
	b, err := json.Marshal(snaps)
	if err != nil {
		t.Fatal(err)
	}
	var back []Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	for i := range snaps {
		if back[i].Name != snaps[i].Name || back[i].Kind != snaps[i].Kind || back[i].Value != snaps[i].Value {
			t.Errorf("snapshot %d did not round-trip: %+v vs %+v", i, snaps[i], back[i])
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", L("stage", "fig8")).Add(123)
	r.Timer("stage_seconds").Observe(time.Millisecond)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	prom := get("/metrics")
	if !strings.Contains(prom, `frames_total{stage="fig8"} 123`) {
		t.Errorf("prometheus exposition missing counter sample:\n%s", prom)
	}
	if !strings.Contains(prom, "stage_seconds_count") {
		t.Errorf("prometheus exposition missing summary count:\n%s", prom)
	}

	var vars struct {
		Metrics []Snapshot     `json:"metrics"`
		Runtime map[string]any `json:"runtime"`
	}
	if err := json.Unmarshal([]byte(get("/vars")), &vars); err != nil {
		t.Fatalf("/vars is not valid JSON: %v", err)
	}
	if len(vars.Metrics) != 2 || vars.Runtime["goroutines"] == nil {
		t.Errorf("/vars incomplete: %+v", vars)
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline returned empty body")
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
