package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry. Buckets are log-spaced with subScale buckets
// per power of two, i.e. a growth factor of 2^(1/subScale) ≈ 1.090 per
// bucket; a value is reported as the geometric midpoint of its bucket, so
// any quantile estimate is within a relative error of
//
//	RelativeError = 2^(1/(2·subScale)) − 1 ≈ 4.4 %
//
// of an exact sorted-sample quantile (the property the tests assert).
// The covered range [histMin, histMax) spans nanosecond timers to
// trillion-cell accumulations; values outside are clamped into the
// first/last bucket, and exact min/max are tracked separately so clamping
// never widens the reported range.
const (
	subScale = 8
	histMin  = 1e-9
	histMax  = 1e12
)

// RelativeError is the worst-case relative error of Histogram quantile
// estimates against exact sorted-sample quantiles, for in-range values.
var RelativeError = math.Pow(2, 1/(2*float64(subScale))) - 1

// nBuckets: one underflow bucket for v ≤ histMin (including zeros and
// negatives), then log2(histMax/histMin)·subScale log-spaced buckets, with
// the last also absorbing overflow.
var nBuckets = 2 + int(math.Ceil(math.Log2(histMax/histMin)*subScale))

// Histogram is a lock-free streaming histogram: fixed log-spaced buckets
// with atomic counters, plus atomically maintained count/sum/min/max.
// Observe is wait-free apart from the sum/min/max CAS loops; quantile
// queries walk the bucket array and are intended for snapshot-rate use.
//
// Non-finite observations (NaN, ±Inf) are quarantined: counted separately
// and excluded from buckets, sum, min/max and quantiles. A single NaN
// folded into the running sum would silently poison every later snapshot
// (and make the JSON manifest unencodable); a counted quarantine keeps
// the histogram honest and makes the bad input visible. Zero and negative
// observations are finite and recorded normally — they land in the
// underflow bucket and participate in sum/min/max.
type Histogram struct {
	buckets   []atomic.Int64
	count     atomic.Int64
	nonFinite atomic.Int64
	sumBits   atomic.Uint64
	minBits   atomic.Uint64 // math.Float64bits, +Inf when empty
	maxBits   atomic.Uint64 // math.Float64bits, -Inf when empty
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{buckets: make([]atomic.Int64, nBuckets)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps a (finite) value to its bucket.
func bucketIndex(v float64) int {
	if !(v > histMin) { // negatives, zero and tiny values underflow
		return 0
	}
	i := 1 + int(math.Log2(v/histMin)*subScale)
	if i >= nBuckets {
		return nBuckets - 1
	}
	return i
}

// bucketMid returns the representative value (geometric midpoint) of a
// bucket. The underflow bucket is represented by histMin.
func bucketMid(i int) float64 {
	if i <= 0 {
		return histMin
	}
	lo := histMin * math.Pow(2, float64(i-1)/subScale)
	return lo * math.Pow(2, 0.5/subScale)
}

// Observe records one value. Non-finite values are quarantined (see type
// comment) rather than recorded.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonFinite.Add(1)
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveN records n occurrences of value v in one shot — the bulk form
// of Observe, for bridging pre-aggregated histograms (runtime/metrics
// Float64Histogram bucket deltas can be millions of counts per poll;
// calling Observe in a loop would melt the poll). Semantics match n
// consecutive Observe(v) calls: n added to v's bucket and the count,
// n·v to the sum, min/max updated once. n <= 0 is a no-op; non-finite v
// quarantines n observations.
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonFinite.Add(n)
		return
	}
	h.buckets[bucketIndex(v)].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistStats is a point-in-time summary of a histogram. NonFinite counts
// quarantined NaN/±Inf observations, which participate in nothing else.
type HistStats struct {
	Count         int64
	NonFinite     int64
	Sum, Min, Max float64
	P50, P95, P99 float64
}

// Stats snapshots count/sum/min/max and the standard quantile set. An
// empty histogram reports zeros.
func (h *Histogram) Stats() HistStats {
	p, total := h.snapshotCounts()
	defer putCounts(p)
	counts := *p
	if total == 0 {
		return HistStats{NonFinite: h.nonFinite.Load()}
	}
	st := HistStats{
		Count:     total,
		NonFinite: h.nonFinite.Load(),
		Sum:       math.Float64frombits(h.sumBits.Load()),
		Min:       math.Float64frombits(h.minBits.Load()),
		Max:       math.Float64frombits(h.maxBits.Load()),
	}
	// Observe quarantines non-finite values, so min/max can only be ±Inf
	// in the sub-microsecond window between a concurrent Observe's bucket
	// add and its min/max CAS. Guard anyway: snapshots must stay
	// JSON-encodable.
	if math.IsInf(st.Min, 0) {
		st.Min = 0
	}
	if math.IsInf(st.Max, 0) {
		st.Max = 0
	}
	st.P50 = h.quantileFrom(counts, total, st.Min, st.Max, 0.5)
	st.P95 = h.quantileFrom(counts, total, st.Min, st.Max, 0.95)
	st.P99 = h.quantileFrom(counts, total, st.Min, st.Max, 0.99)
	return st
}

// Count returns the number of (finite) observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// NonFinite returns the number of quarantined NaN/±Inf observations.
func (h *Histogram) NonFinite() int64 { return h.nonFinite.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (q in [0, 1]) of everything
// observed so far, within RelativeError of the exact sorted-sample
// quantile for in-range values. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	p, total := h.snapshotCounts()
	defer putCounts(p)
	if total == 0 {
		return 0
	}
	mn := math.Float64frombits(h.minBits.Load())
	mx := math.Float64frombits(h.maxBits.Load())
	return h.quantileFrom(*p, total, mn, mx, q)
}

// countsPool recycles bucket-count scratch buffers across snapshots. Every
// histogram shares the same geometry (nBuckets), so one pool serves all;
// without it each Stats/Quantile call allocated a fresh ~4.5 KB slice,
// which at flight-recorder cadence times every histogram in the registry
// is steady GC pressure on the hot path for a buffer that lives
// microseconds (BenchmarkHistogramStats proves the before/after).
var countsPool = sync.Pool{
	New: func() any {
		b := make([]int64, nBuckets)
		return &b
	},
}

// snapshotCounts copies the bucket counters into a pooled scratch buffer;
// the caller must hand it back via putCounts. The copy is not fenced
// against concurrent Observe calls; each counter is itself consistent.
func (h *Histogram) snapshotCounts() (*[]int64, int64) {
	p := countsPool.Get().(*[]int64)
	counts := *p
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return p, total
}

func putCounts(p *[]int64) { countsPool.Put(p) }

// quantileFrom locates the bucket holding the nearest-rank element
// rank = ceil(q·n) and reports its geometric midpoint, clamped to the
// exact observed [min, max] so estimates never exceed the data range.
func (h *Histogram) quantileFrom(counts []int64, total int64, mn, mx, q float64) float64 {
	if q <= 0 {
		return mn
	}
	if q >= 1 {
		return mx
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v < mn {
				v = mn
			}
			if v > mx {
				v = mx
			}
			return v
		}
	}
	return mx
}

// Timer records durations into a histogram of seconds.
type Timer struct {
	h *Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Start begins timing; the returned stop function records the elapsed
// duration when called. Typical use: defer tm.Start()().
func (t *Timer) Start() func() {
	t0 := time.Now()
	return func() { t.Observe(time.Since(t0)) }
}

// Count returns the number of recorded durations.
func (t *Timer) Count() int64 { return t.h.Count() }

// SumSeconds returns the total recorded time in seconds.
func (t *Timer) SumSeconds() float64 { return t.h.Sum() }
