// Delta-encoded JSONL flight log: one self-describing JSON object per
// line, flushed per line (like run manifests) so an interrupted run
// leaves a valid truncated log.
//
//	{"type":"header", ...}   schema version, tool, start time, cadence
//	{"type":"frame", ...}    one snapshot: seq, elapsed, changed samples
//
// Counters, float counters, histogram counts and sums are written as
// deltas against the previous frame, and samples that did not change are
// omitted entirely — a steady-state soak logs near-empty frames instead
// of re-serialising the whole registry every second. ReadLog reverses the
// encoding, returning absolute frames identical to what the in-memory
// ring held.
package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// LogSchemaVersion identifies the flight-log line shape. Bump on
// incompatible change; readers reject newer majors.
const LogSchemaVersion = 1

// LogHeader identifies a flight log.
type LogHeader struct {
	SchemaVersion   int     `json:"schema_version"`
	Tool            string  `json:"tool,omitempty"`
	Start           string  `json:"start"` // RFC3339Nano
	IntervalSeconds float64 `json:"interval_seconds"`
	GoVersion       string  `json:"go_version"`
	GitRevision     string  `json:"git_revision"`
}

// Sample is one metric's contribution to a frame line. Value carries the
// absolute value for gauges and the delta since the previous frame for
// counters and float counters; Count/NonFinite/Sum are deltas for
// histograms and timers, whose Min/Max/P50/P95/P99 stay absolute (they
// are cumulative-distribution properties, not flows).
type Sample struct {
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	Kind      telemetry.Kind    `json:"kind"`
	Value     float64           `json:"value,omitempty"`
	Count     int64             `json:"count,omitempty"`
	NonFinite int64             `json:"non_finite,omitempty"`
	Sum       float64           `json:"sum,omitempty"`
	Min       float64           `json:"min,omitempty"`
	Max       float64           `json:"max,omitempty"`
	P50       float64           `json:"p50,omitempty"`
	P95       float64           `json:"p95,omitempty"`
	P99       float64           `json:"p99,omitempty"`
}

// logFrame is the on-disk form of one frame.
type logFrame struct {
	Seq            int64    `json:"seq"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
	Samples        []Sample `json:"samples,omitempty"`
}

type logLine struct {
	Type   string     `json:"type"`
	Header *LogHeader `json:"header,omitempty"`
	Frame  *logFrame  `json:"frame,omitempty"`
}

// logWriter appends log lines, flushing after each so the file is valid
// JSONL at every interruption point.
type logWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func createLog(path string, h LogHeader) (*logWriter, error) {
	h.SchemaVersion = LogSchemaVersion
	if h.GoVersion == "" {
		h.GoVersion = runtime.Version()
	}
	if h.GitRevision == "" {
		h.GitRevision = telemetry.GitRevision()
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("flight: create log dir: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("flight: create log: %w", err)
	}
	w := &logWriter{f: f, bw: bufio.NewWriter(f)}
	if err := w.write(logLine{Type: "header", Header: &h}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *logWriter) write(line logLine) error {
	b, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("flight: encode log line: %w", err)
	}
	if _, err := w.bw.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("flight: write log: %w", err)
	}
	return w.bw.Flush()
}

// frame writes cur delta-encoded against prev (nil prev = first frame,
// every sample absolute).
func (w *logWriter) frame(cur Frame, prev *Frame) error {
	lf := logFrame{Seq: cur.Seq, ElapsedSeconds: cur.ElapsedSeconds}
	var old map[string]telemetry.Snapshot
	if prev != nil {
		old = make(map[string]telemetry.Snapshot, len(prev.Metrics))
		for _, s := range prev.Metrics {
			old[sampleKey(s.Name, s.Labels)] = s
		}
	}
	for _, s := range cur.Metrics {
		if d, changed := encodeSample(s, old); changed {
			lf.Samples = append(lf.Samples, d)
		}
	}
	return w.write(logLine{Type: "frame", Frame: &lf})
}

func (w *logWriter) close() error {
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeSample deltas s against its previous state (absent = zero
// baseline) and reports whether anything changed.
func encodeSample(s telemetry.Snapshot, old map[string]telemetry.Snapshot) (Sample, bool) {
	p, seen := old[sampleKey(s.Name, s.Labels)]
	d := Sample{Name: s.Name, Labels: s.Labels, Kind: s.Kind}
	switch s.Kind {
	case telemetry.KindCounter, telemetry.KindFloatCounter:
		d.Value = s.Value - p.Value
		return d, !seen || d.Value != 0
	case telemetry.KindGauge:
		d.Value = s.Value
		return d, !seen || s.Value != p.Value //lint:floateq change detection must be exact; identical bits round-trip losslessly through JSON
	default: // histogram, timer
		d.Count = s.Count - p.Count
		d.NonFinite = s.NonFinite - p.NonFinite
		d.Sum = s.Sum - p.Sum
		d.Min, d.Max = s.Min, s.Max
		d.P50, d.P95, d.P99 = s.P50, s.P95, s.P99
		return d, !seen || d.Count != 0 || d.NonFinite != 0
	}
}

// sampleKey builds the (name, labels) identity of a metric, mirroring the
// registry's canonical ordering.
func sampleKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte(0xff)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// Log is the decoded, re-integrated form of a flight log: absolute frames
// identical (up to float round-trip) to what the recorder's ring held.
type Log struct {
	Header LogHeader
	Frames []Frame
}

// ReadLog decodes a flight log and reverses the delta encoding. A log
// truncated mid-run is not an error — every complete line contributes and
// a torn final line (the process died mid-write) is a valid truncation
// point; a missing or incompatible header, or garbage mid-file, is.
func ReadLog(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flight: open log: %w", err)
	}
	defer f.Close()
	var lg Log
	state := make(map[string]telemetry.Snapshot)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineno := 0
	sawHeader := false
	for sc.Scan() {
		lineno++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line logLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// A torn final line (process killed mid-write) is a valid
			// truncation point; garbage followed by more lines is corruption.
			for sc.Scan() {
				if len(sc.Bytes()) != 0 {
					return nil, fmt.Errorf("flight: log %s line %d: %w", path, lineno, err)
				}
			}
			break
		}
		switch line.Type {
		case "header":
			if line.Header == nil {
				return nil, fmt.Errorf("flight: log %s line %d: empty header", path, lineno)
			}
			if line.Header.SchemaVersion > LogSchemaVersion {
				return nil, fmt.Errorf("flight: log %s: schema version %d newer than supported %d",
					path, line.Header.SchemaVersion, LogSchemaVersion)
			}
			lg.Header = *line.Header
			sawHeader = true
		case "frame":
			if line.Frame == nil {
				continue
			}
			for _, d := range line.Frame.Samples {
				k := sampleKey(d.Name, d.Labels)
				s, ok := state[k]
				if !ok {
					s = telemetry.Snapshot{Name: d.Name, Labels: d.Labels, Kind: d.Kind}
				}
				switch d.Kind {
				case telemetry.KindCounter, telemetry.KindFloatCounter:
					s.Value += d.Value
				case telemetry.KindGauge:
					s.Value = d.Value
				default:
					s.Count += d.Count
					s.NonFinite += d.NonFinite
					s.Sum += d.Sum
					s.Min, s.Max = d.Min, d.Max
					s.P50, s.P95, s.P99 = d.P50, d.P95, d.P99
				}
				state[k] = s
			}
			lg.Frames = append(lg.Frames, Frame{
				Seq:            line.Frame.Seq,
				ElapsedSeconds: line.Frame.ElapsedSeconds,
				Metrics:        materialize(state),
			})
		default:
			// Unknown line types from future minor revisions are skipped.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flight: read log %s: %w", path, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("flight: log %s has no header line", path)
	}
	return &lg, nil
}

// materialize renders the running state as a sorted snapshot slice (the
// registry's canonical order: name, then label string).
func materialize(state map[string]telemetry.Snapshot) []telemetry.Snapshot {
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]telemetry.Snapshot, 0, len(keys))
	for _, k := range keys {
		out = append(out, state[k])
	}
	return out
}
