// Package flight is the time dimension of the observability layer: a
// flight recorder that periodically snapshots a telemetry.Registry —
// counters, gauges, histogram quantiles, and whatever convergence or
// health state the run publishes as metrics — into an in-memory ring
// buffer (served live at /vars/history) and an append-only, delta-encoded
// JSONL time-series log that survives interruption at any line boundary.
//
// Point-in-time telemetry answers "where is the run now"; the flight
// recorder answers "how did it get there": how convergence tightened, when
// the loss counters started moving, whether a latency quantile degraded
// mid-soak. The log replays through cmd/obsreport into a unified run
// report, and each snapshot can be evaluated online by the SLO engine
// (internal/telemetry/slo) through the OnFrame hook.
//
// Design constraints, in order:
//
//  1. Recording must never perturb results. The recorder only reads the
//     registry (each instrument atomically, exactly like a /metrics
//     scrape); it never touches random streams or simulation state, so
//     fixed-seed outputs are bit-identical with the recorder on or off —
//     CI proves this by diffing flight-on vs flight-off smoke manifests at
//     rtol 0.
//  2. Recording must be cheap. One snapshot is one registry scrape plus
//     one buffered JSONL line; at the default 1 s cadence the overhead on
//     a simulation hot path is far below 1% (BenchmarkFlightSnapshot and
//     the benchdiff gate keep it that way).
//  3. The snapshot goroutine must not leak. Stop reaps it (wait group +
//     done channel), and the package's tests run under leakcheck.Main.
//
// Consistency model (DESIGN.md §15): each instrument in a frame is read
// atomically, so per-metric series are exact — a counter can never
// decrease across frames. The set of instruments is NOT fenced: a frame
// is not a consistent cut across metrics, which is the usual (and here
// sufficient) contract for progress observability.
package flight

import (
	"fmt"
	"net/http"
	"time"

	"encoding/json"
	"sync"

	"repro/internal/telemetry"
)

// DefaultInterval is the snapshot cadence when Options.Interval is zero.
const DefaultInterval = time.Second

// DefaultCapacity is the ring-buffer size when Options.Capacity is zero:
// at the default cadence, a bit over eight minutes of history.
const DefaultCapacity = 512

// minInterval guards against a mistyped flag melting a run with
// millisecond scrapes.
const minInterval = 10 * time.Millisecond

// Frame is one point-in-time snapshot of the registry. Metrics are
// absolute values in the registry's canonical (name, labels) sort order.
type Frame struct {
	Seq            int64                `json:"seq"`
	ElapsedSeconds float64              `json:"elapsed_seconds"`
	Metrics        []telemetry.Snapshot `json:"metrics"`
}

// Options parameterises a Recorder.
type Options struct {
	// Interval is the snapshot cadence (default DefaultInterval, clamped
	// to at least 10 ms).
	Interval time.Duration
	// Capacity bounds the in-memory ring (default DefaultCapacity).
	Capacity int
	// Path, when non-empty, appends a delta-encoded JSONL log (see log.go)
	// flushed per line, so an interrupted run leaves a valid truncated log.
	Path string
	// Tool names the producing binary in the log header.
	Tool string
	// OnFrame, when non-nil, is called after every snapshot with the new
	// frame and the previous one (nil for the first). It runs on the
	// recorder goroutine outside the recorder lock — the SLO engine's
	// online evaluation hook. It must not block for long: the next
	// snapshot waits for it.
	OnFrame func(cur Frame, prev *Frame)
	// BeforeSnapshot, when non-nil, runs immediately before each registry
	// scrape, on the calling goroutine and outside the recorder lock. It
	// exists for pull-style metric sources that must be polled into the
	// registry so the frame about to be taken sees fresh values — the
	// runtime/metrics bridge (internal/telemetry/prof) is the canonical
	// user. Same contract as OnFrame: cheap, never touches simulation
	// state.
	BeforeSnapshot func()
}

// Recorder periodically snapshots a registry. Create with Start; stop
// with Stop, which records one final frame so even runs shorter than the
// interval leave history behind.
type Recorder struct {
	reg  *telemetry.Registry
	opts Options
	log  *logWriter
	t0   time.Time

	// Self-instrumentation, registered in the observed registry so the
	// recorder's own health shows up on /metrics and in its own frames
	// (one frame behind: counters are bumped after the scrape).
	frameCount *telemetry.Counter // flight_frames_total
	logErrors  *telemetry.Counter // flight_log_errors_total

	mu   sync.Mutex
	ring []Frame
	head int // next write slot
	n    int // occupied slots
	seq  int64
	last *Frame // most recent frame (absolute), for deltas and OnFrame
	err  error  // first log write error

	done chan struct{}
	wg   sync.WaitGroup
}

// Start builds a recorder, records the initial frame, and launches the
// snapshot goroutine. The caller owns Stop.
func Start(reg *telemetry.Registry, opts Options) (*Recorder, error) {
	if reg == nil {
		return nil, fmt.Errorf("flight: nil registry")
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Interval < minInterval {
		opts.Interval = minInterval
	}
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	r := &Recorder{
		reg:        reg,
		opts:       opts,
		t0:         time.Now(),
		ring:       make([]Frame, opts.Capacity),
		done:       make(chan struct{}),
		frameCount: reg.Counter("flight_frames_total"),
		logErrors:  reg.Counter("flight_log_errors_total"),
	}
	if opts.Path != "" {
		lw, err := createLog(opts.Path, LogHeader{
			Tool:            opts.Tool,
			Start:           r.t0.Format(time.RFC3339Nano),
			IntervalSeconds: opts.Interval.Seconds(),
		})
		if err != nil {
			return nil, err
		}
		r.log = lw
	}
	r.Record() // frame 0: the baseline every delta integrates from
	r.wg.Add(1)
	go r.loop()
	return r, nil
}

// loop drives the periodic snapshots until Stop.
func (r *Recorder) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.Record()
		}
	}
}

// Record takes one frame immediately, outside the periodic cadence:
// scrape, ring append, delta-encoded log line, OnFrame callback (outside
// the lock). The ticker calls it once per interval; callers may also
// invoke it at moments worth pinning (stage boundaries, benchmarks).
func (r *Recorder) Record() {
	if r.opts.BeforeSnapshot != nil {
		r.opts.BeforeSnapshot()
	}
	metrics := r.reg.Snapshot()

	r.mu.Lock()
	cur := Frame{
		Seq:            r.seq,
		ElapsedSeconds: time.Since(r.t0).Seconds(),
		Metrics:        metrics,
	}
	r.seq++
	prev := r.last
	r.ring[r.head] = cur
	r.head = (r.head + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.last = &cur
	if r.log != nil {
		if err := r.log.frame(cur, prev); err != nil {
			r.logErrors.Inc()
			if r.err == nil {
				r.err = err
			}
		}
	}
	onFrame := r.opts.OnFrame
	r.mu.Unlock()

	r.frameCount.Inc()
	if onFrame != nil {
		onFrame(cur, prev)
	}
}

// Stop halts the snapshot goroutine, records a final frame (so the log
// always carries the run's closing state), closes the log, and returns
// the first write error if any.
func (r *Recorder) Stop() error {
	r.mu.Lock()
	select {
	case <-r.done:
		r.mu.Unlock()
		return r.err // already stopped
	default:
		close(r.done)
	}
	r.mu.Unlock()
	r.wg.Wait()
	r.Record()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.log != nil {
		if err := r.log.close(); err != nil && r.err == nil {
			r.err = err
		}
		r.log = nil
	}
	return r.err
}

// Frames returns the ring contents, oldest first.
func (r *Recorder) Frames() []Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Frame, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Len returns the number of frames currently buffered.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// HistoryHandler serves the ring as JSON — mounted at /vars/history by
// the CLIs' telemetry endpoints and the admitd mux:
//
//	{"interval_seconds": 1, "frames": [{"seq":0, "elapsed_seconds":..., "metrics":[...]}, ...]}
//
// Frames carry absolute values (the delta encoding is a log-file
// compactness concern, not an API one).
func (r *Recorder) HistoryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"interval_seconds": r.opts.Interval.Seconds(),
			"frames":           r.Frames(),
		})
	})
}
