package flight

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// startTest builds a recorder over a fresh registry with a long interval
// (tests drive snapshots via Stop or takeFrame, not the ticker).
func startTest(t *testing.T, reg *telemetry.Registry, opts Options) *Recorder {
	t.Helper()
	if opts.Interval == 0 {
		opts.Interval = time.Hour
	}
	r, err := Start(reg, opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return r
}

func TestRecorderFramesAndStop(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("evt_total")
	r := startTest(t, reg, Options{})
	c.Add(5)
	r.Record()
	c.Add(2)
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	frames := r.Frames()
	if len(frames) != 3 { // start frame, manual snap, final Stop frame
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	for i, f := range frames {
		if f.Seq != int64(i) {
			t.Errorf("frame %d has seq %d", i, f.Seq)
		}
	}
	if v := counterValue(t, frames[2], "evt_total"); v != 7 {
		t.Errorf("final evt_total = %g, want 7", v)
	}
	// Stop is idempotent.
	if err := r.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestRingWraps(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := startTest(t, reg, Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		r.Record()
	}
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	frames := r.Frames()
	if len(frames) != 4 {
		t.Fatalf("ring holds %d frames, want capacity 4", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Seq != frames[i-1].Seq+1 {
			t.Fatalf("ring out of order: seq %d after %d", frames[i].Seq, frames[i-1].Seq)
		}
	}
	// Newest frame must be the final Stop frame (seq 11: 1 start + 10 manual + 1 stop).
	if got := frames[len(frames)-1].Seq; got != 11 {
		t.Errorf("newest seq = %d, want 11", got)
	}
}

// TestLogRoundTrip drives a run with counters, gauges, and a histogram,
// then checks ReadLog re-integrates the delta encoding into exactly the
// frames the ring held.
func TestLogRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("cells_total", telemetry.L("path", "stepped"))
	g := reg.Gauge("occupancy")
	h := reg.Histogram("latency_seconds")
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r := startTest(t, reg, Options{Path: path, Tool: "flight-test"})
	for i := 1; i <= 5; i++ {
		c.Add(int64(i))
		g.Set(float64(i) * 0.5)
		h.Observe(float64(i))
		r.Record()
	}
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	want := r.Frames()

	lg, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if lg.Header.SchemaVersion != LogSchemaVersion {
		t.Errorf("schema version %d, want %d", lg.Header.SchemaVersion, LogSchemaVersion)
	}
	if lg.Header.Tool != "flight-test" {
		t.Errorf("tool %q", lg.Header.Tool)
	}
	if len(lg.Frames) != len(want) {
		t.Fatalf("decoded %d frames, ring has %d", len(lg.Frames), len(want))
	}
	for i := range want {
		if lg.Frames[i].Seq != want[i].Seq {
			t.Fatalf("frame %d seq mismatch", i)
		}
		got, exp := lg.Frames[i].Metrics, want[i].Metrics
		if len(got) != len(exp) {
			t.Fatalf("frame %d: %d metrics decoded, want %d", i, len(got), len(exp))
		}
		for j := range exp {
			if got[j].Name != exp[j].Name || got[j].Value != exp[j].Value ||
				got[j].Count != exp[j].Count || got[j].Sum != exp[j].Sum ||
				got[j].P99 != exp[j].P99 {
				t.Errorf("frame %d metric %s: decoded %+v want %+v",
					i, exp[j].Name, got[j], exp[j])
			}
		}
	}
}

// TestLogCreatesParentDir covers the common CLI shape where the flight
// log shares the run's -out directory, which does not exist yet when the
// recorder starts (CLIs start the recorder before the first result is
// written).
func TestLogCreatesParentDir(t *testing.T) {
	reg := telemetry.NewRegistry()
	path := filepath.Join(t.TempDir(), "out", "nested", "flight.jsonl")
	r := startTest(t, reg, Options{Path: path, Tool: "flight-test"})
	r.Record()
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := ReadLog(path); err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
}

// TestLogOmitsUnchanged checks steady-state frames carry no user samples —
// the whole point of the delta encoding. The recorder's own
// flight_frames_total advances once per frame by construction, so it is
// the only sample allowed through.
func TestLogOmitsUnchanged(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("static_total").Add(3)
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r := startTest(t, reg, Options{Path: path})
	r.Record() // nothing changed since frame 0
	r.Record()
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	// header + 4 frames (start, 2 manual, stop)
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	for i, line := range lines[2:] { // frames after the baseline
		var ll struct {
			Frame struct {
				Samples []Sample `json:"samples"`
			} `json:"frame"`
		}
		if err := json.Unmarshal([]byte(line), &ll); err != nil {
			t.Fatal(err)
		}
		for _, s := range ll.Frame.Samples {
			if s.Name != "flight_frames_total" {
				t.Errorf("steady-state frame line %d carries sample %q, want only recorder self-metrics", i, s.Name)
			}
		}
	}
}

// TestLogTruncated checks a log cut mid-run (interrupt, crash) still
// decodes: every complete line contributes.
func TestLogTruncated(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("evt_total")
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r := startTest(t, reg, Options{Path: path})
	c.Add(1)
	r.Record()
	c.Add(1)
	r.Record()
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Keep the header and first two frames, drop the rest plus simulate a
	// torn partial line at the cut point (process killed mid-write): the
	// torn tail is a valid truncation point, not an error.
	trunc := strings.Join(lines[:3], "") + `{"type":"frame","frame":{"se`
	if err := os.WriteFile(path, []byte(trunc), 0o644); err != nil {
		t.Fatal(err)
	}
	lg, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog with torn tail: %v", err)
	}
	if len(lg.Frames) != 2 {
		t.Fatalf("decoded %d frames from torn log, want 2", len(lg.Frames))
	}
	// Garbage mid-file (more lines after the bad one) IS corruption.
	bad := strings.Join(lines[:2], "") + "{torn}\n" + lines[2]
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(path); err == nil {
		t.Fatal("want error for mid-file corruption")
	}
	// A cleanly-flushed prefix (no torn line) must decode.
	if err := os.WriteFile(path, []byte(strings.Join(lines[:3], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	lg, err = ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog truncated: %v", err)
	}
	if len(lg.Frames) != 2 {
		t.Fatalf("decoded %d frames from truncated log, want 2", len(lg.Frames))
	}
	if v := counterValue(t, lg.Frames[1], "evt_total"); v != 1 {
		t.Errorf("evt_total after truncation = %g, want 1", v)
	}
}

func TestReadLogRejectsMissingHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte(`{"type":"frame","frame":{"seq":0}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(path); err == nil {
		t.Fatal("want error for headerless log")
	}
}

func TestOnFrameHook(t *testing.T) {
	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var calls int
	var sawPrev bool
	r := startTest(t, reg, Options{OnFrame: func(cur Frame, prev *Frame) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if prev != nil {
			sawPrev = true
			if cur.Seq != prev.Seq+1 {
				t.Errorf("hook: cur seq %d after prev %d", cur.Seq, prev.Seq)
			}
		}
	}})
	r.Record()
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 || !sawPrev {
		t.Fatalf("hook calls=%d sawPrev=%v, want 3/true", calls, sawPrev)
	}
}

// TestScrapeWhileWrite hammers /vars/history (and the recorder itself at a
// fast cadence) while writers mutate the registry, under -race in CI.
// Within every flight frame sequence, monotone counters must never
// decrease — the no-torn-snapshot assertion.
func TestScrapeWhileWrite(t *testing.T) {
	reg := telemetry.NewRegistry()
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r, err := Start(reg, Options{Interval: minInterval, Path: path, Capacity: 64})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	srv := httptest.NewServer(r.HistoryHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hammer_total", telemetry.L("w", string(rune('a'+w))))
			h := reg.Histogram("hammer_seconds")
			g := reg.Gauge("hammer_gauge")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i % 100))
				g.Set(float64(i))
			}
		}(w)
	}
	deadline := time.After(200 * time.Millisecond)
	client := srv.Client()
scrape:
	for {
		select {
		case <-deadline:
			break scrape
		default:
		}
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type %q", ct)
		}
		var body struct {
			Frames []Frame `json:"frames"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode history: %v", err)
		}
		resp.Body.Close()
		assertMonotone(t, body.Frames)
	}
	close(stop)
	wg.Wait()
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	assertMonotone(t, r.Frames())

	// The on-disk log must re-integrate into the same monotone series.
	lg, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	assertMonotone(t, lg.Frames)
	if len(lg.Frames) < 2 {
		t.Fatalf("log captured %d frames, want several", len(lg.Frames))
	}
}

// assertMonotone fails if any counter or histogram count decreases across
// consecutive frames.
func assertMonotone(t *testing.T, frames []Frame) {
	t.Helper()
	type state struct {
		value float64
		count int64
	}
	prev := make(map[string]state)
	for fi, f := range frames {
		for _, m := range f.Metrics {
			key := m.Name + "|" + labelKey(m.Labels)
			p, ok := prev[key]
			if ok {
				switch m.Kind {
				case telemetry.KindCounter, telemetry.KindFloatCounter:
					if m.Value < p.value {
						t.Fatalf("frame %d: counter %s decreased %g -> %g", fi, key, p.value, m.Value)
					}
				case telemetry.KindHistogram, telemetry.KindTimer:
					if m.Count < p.count {
						t.Fatalf("frame %d: histogram %s count decreased %d -> %d", fi, key, p.count, m.Count)
					}
				}
			}
			prev[key] = state{value: m.Value, count: m.Count}
		}
	}
}

func labelKey(labels map[string]string) string {
	return sampleKey("", labels)
}

func counterValue(t *testing.T, f Frame, name string) float64 {
	t.Helper()
	for _, m := range f.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not in frame", name)
	return 0
}
