package telemetry

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoPprofImportsOutsideTelemetry enforces the profiling boundary: only
// this package may import net/http/pprof, so profiling endpoints are
// exposed exclusively through the opt-in -telemetry listener and never
// leak onto http.DefaultServeMux from a stray import. CI runs the same
// guard as a grep for defence in depth.
func TestNoPprofImportsOutsideTelemetry(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "results" || name == "bench" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, _ := filepath.Rel(root, path)
		if strings.HasPrefix(rel, filepath.Join("internal", "telemetry")+string(filepath.Separator)) {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "net/http/pprof" {
				t.Errorf("%s imports net/http/pprof; only internal/telemetry may", rel)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}
